// Named benchmark datasets.
//
// The paper evaluates on the DIMACS road networks NY, COL, FLA and CUSA.
// Those public files are not bundled offline, so the registry provides
// scaled-down synthetic stand-ins (NY-S, COL-S, FLA-S, CUSA-S) with the same
// relative size ordering and road-like structure (see DESIGN.md's
// substitution table). Set the environment variable KSPDG_DATA_DIR to a
// directory containing USA-road-d.NY.gr etc. to run on the real networks.
#ifndef KSPDG_WORKLOAD_DATASETS_H_
#define KSPDG_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace kspdg {

struct DatasetSpec {
  std::string name;          // "NY-S", ...
  std::string dimacs_file;   // file name under KSPDG_DATA_DIR, if available
  RoadNetworkOptions road;   // synthetic fallback parameters
  uint32_t default_z;        // default subgraph size for this dataset
};

/// The four standard datasets, smallest to largest.
const std::vector<DatasetSpec>& StandardDatasets();

/// Spec by name ("NY-S", "COL-S", "FLA-S", "CUSA-S"), or nullptr.
const DatasetSpec* FindDataset(const std::string& name);

/// Spec by name; aborts on unknown name (prefer FindDataset in services).
const DatasetSpec& DatasetByName(const std::string& name);

/// Loads the dataset: the real DIMACS file when KSPDG_DATA_DIR is set and
/// the file exists, otherwise the synthetic stand-in.
Graph LoadDataset(const DatasetSpec& spec, bool directed = false);

/// A smaller instance of the same family, scaled to ~`target_vertices`
/// (used by the graph-size sweeps of Figures 20-21).
Graph LoadScaledDataset(const DatasetSpec& spec, size_t target_vertices,
                        bool directed = false);

}  // namespace kspdg

#endif  // KSPDG_WORKLOAD_DATASETS_H_
