// Random KSP query generation for experiments (§6.4: batches of Nq queries
// fed into the system simultaneously).
#ifndef KSPDG_WORKLOAD_QUERY_GEN_H_
#define KSPDG_WORKLOAD_QUERY_GEN_H_

#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

/// Generates `count` (s, t) pairs with s != t, uniform over vertices.
std::vector<std::pair<VertexId, VertexId>> MakeRandomQueries(
    const Graph& g, size_t count, uint64_t seed);

/// Generates queries whose endpoints are roughly `hops` grid steps apart
/// (locality-controlled workloads; navigation queries are usually local).
std::vector<std::pair<VertexId, VertexId>> MakeLocalQueries(
    const Graph& g, size_t count, size_t hops, uint64_t seed);

}  // namespace kspdg

#endif  // KSPDG_WORKLOAD_QUERY_GEN_H_
