#include "workload/bench_runner.h"

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>
#include <sstream>
#include <thread>
#include <utility>

#include "api/routing_service.h"
#include "api/routing_service_interface.h"
#include "core/mutex.h"
#include "core/strings.h"
#include "core/timer.h"
#include "graph/traffic_model.h"
#include "ksp/path.h"
#include "obs/metrics.h"
#include "remote/remote_sharded_routing_service.h"
#include "shard/sharded_routing_service.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace kspdg {
namespace {

struct WorkItem {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  size_t backend_index = 0;
};

void AppendJsonKey(std::ostringstream& out, const char* key,
                   const std::string& indent) {
  out << indent << '"' << key << "\": ";
}

/// Nearest-rank percentile (q in [0, 100]) over an unsorted sample set.
/// Sorts in place; returns 0 for an empty sample.
double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t index =
      static_cast<size_t>(std::ceil(q / 100.0 * samples.size()));
  if (index > 0) --index;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

/// One timed sequential Query pass over a request list. All parity phases
/// run this once per service — the service only has to speak
/// RoutingServiceInterface, so plain, sharded and remote services share the
/// identical harness code.
struct QueryPassResult {
  std::vector<std::vector<Path>> paths;
  std::vector<char> answered;
  size_t errors = 0;
  double elapsed_micros = 0;
};

QueryPassResult RunQueryPass(RoutingServiceInterface& service,
                             const std::vector<RouteRequest>& requests) {
  QueryPassResult result;
  result.paths.resize(requests.size());
  result.answered.assign(requests.size(), 0);
  WallTimer timer;
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<RouteResponse> response = service.Query(requests[i]);
    if (!response.ok()) {
      ++result.errors;
      continue;
    }
    result.answered[i] = 1;
    result.paths[i] = std::move(response).value().paths;
  }
  result.elapsed_micros = timer.ElapsedMicros();
  return result;
}

bool SamePaths(const std::vector<Path>& got, const std::vector<Path>& want) {
  if (got.size() != want.size()) return false;
  for (size_t p = 0; p < got.size(); ++p) {
    if (got[p].vertices != want[p].vertices ||
        got[p].distance != want[p].distance) {
      return false;
    }
  }
  return true;
}

/// Requests answered by both passes whose path sets differ in route or
/// distance. Failed queries are already counted in `errors`.
size_t CountMismatches(const QueryPassResult& expected,
                       const QueryPassResult& actual) {
  size_t mismatches = 0;
  for (size_t i = 0; i < expected.paths.size(); ++i) {
    if (!expected.answered[i] || !actual.answered[i]) continue;
    if (!SamePaths(actual.paths[i], expected.paths[i])) ++mismatches;
  }
  return mismatches;
}

/// queries_ok_total + queries_rejected_total across every label set: the
/// "one accounting event per issued request" side of the CI invariant.
uint64_t QueriesTotal(const MetricsSnapshot& snapshot) {
  return snapshot.CounterTotal("queries_ok_total") +
         snapshot.CounterTotal("queries_rejected_total");
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\n";
  AppendJsonKey(out, "dataset", "  ");
  out << '"' << dataset << "\",\n";
  AppendJsonKey(out, "num_vertices", "  ");
  out << num_vertices << ",\n";
  AppendJsonKey(out, "num_edges", "  ");
  out << num_edges << ",\n";
  AppendJsonKey(out, "num_subgraphs", "  ");
  out << num_subgraphs << ",\n";
  AppendJsonKey(out, "k", "  ");
  out << k << ",\n";
  AppendJsonKey(out, "index_build_micros", "  ");
  out << index_build_micros << ",\n";
  AppendJsonKey(out, "batches_applied", "  ");
  out << batches_applied << ",\n";
  AppendJsonKey(out, "batch_errors", "  ");
  out << batch_errors << ",\n";
  AppendJsonKey(out, "updates_applied", "  ");
  out << updates_applied << ",\n";
  AppendJsonKey(out, "update_total_micros", "  ");
  out << update_total_micros << ",\n";
  AppendJsonKey(out, "update_p50_micros", "  ");
  out << update_p50_micros << ",\n";
  AppendJsonKey(out, "update_p95_micros", "  ");
  out << update_p95_micros << ",\n";
  AppendJsonKey(out, "update_p99_micros", "  ");
  out << update_p99_micros << ",\n";
  AppendJsonKey(out, "cands_subgraphs_rebuilt", "  ");
  out << cands_subgraphs_rebuilt << ",\n";
  AppendJsonKey(out, "cands_pair_paths_recomputed", "  ");
  out << cands_pair_paths_recomputed << ",\n";
  AppendJsonKey(out, "cands_rebuild_micros", "  ");
  out << cands_rebuild_micros << ",\n";
  AppendJsonKey(out, "final_epoch", "  ");
  out << final_epoch << ",\n";
  AppendJsonKey(out, "batch", "  ");
  out << "{\n";
  AppendJsonKey(out, "batch_size", "    ");
  out << batch.batch_size << ",\n";
  AppendJsonKey(out, "requests", "    ");
  out << batch.requests << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << batch.errors << ",\n";
  AppendJsonKey(out, "non_uniform_batches", "    ");
  out << batch.non_uniform_batches << ",\n";
  AppendJsonKey(out, "sequential_micros", "    ");
  out << batch.sequential_micros << ",\n";
  AppendJsonKey(out, "batch_micros", "    ");
  out << batch.batch_micros << ",\n";
  AppendJsonKey(out, "sequential_qps", "    ");
  out << batch.sequential_qps << ",\n";
  AppendJsonKey(out, "batch_qps", "    ");
  out << batch.batch_qps << ",\n";
  AppendJsonKey(out, "speedup", "    ");
  out << batch.speedup << "\n";
  out << "  },\n";
  AppendJsonKey(out, "diverse", "  ");
  out << "{\n";
  AppendJsonKey(out, "requests", "    ");
  out << diverse.requests << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << diverse.errors << ",\n";
  AppendJsonKey(out, "k", "    ");
  out << diverse.k << ",\n";
  AppendJsonKey(out, "overfetch", "    ");
  out << diverse.overfetch << ",\n";
  AppendJsonKey(out, "theta", "    ");
  out << diverse.theta << ",\n";
  AppendJsonKey(out, "candidates_total", "    ");
  out << diverse.candidates_total << ",\n";
  AppendJsonKey(out, "kept_total", "    ");
  out << diverse.kept_total << ",\n";
  AppendJsonKey(out, "filtered_total", "    ");
  out << diverse.filtered_total << ",\n";
  AppendJsonKey(out, "kept_min", "    ");
  out << diverse.kept_min << ",\n";
  AppendJsonKey(out, "kept_max", "    ");
  out << diverse.kept_max << ",\n";
  AppendJsonKey(out, "mean_pairwise_similarity", "    ");
  out << diverse.mean_pairwise_similarity << ",\n";
  AppendJsonKey(out, "max_pairwise_similarity", "    ");
  out << diverse.max_pairwise_similarity << ",\n";
  AppendJsonKey(out, "ep_raw_entries", "    ");
  out << diverse.ep_raw_entries << ",\n";
  AppendJsonKey(out, "ep_path_nodes", "    ");
  out << diverse.ep_path_nodes << ",\n";
  AppendJsonKey(out, "mfp_compression_ratio", "    ");
  out << diverse.mfp_compression_ratio << ",\n";
  AppendJsonKey(out, "p50_micros", "    ");
  out << diverse.p50_micros << ",\n";
  AppendJsonKey(out, "p95_micros", "    ");
  out << diverse.p95_micros << ",\n";
  AppendJsonKey(out, "p99_micros", "    ");
  out << diverse.p99_micros << ",\n";
  AppendJsonKey(out, "plain_micros", "    ");
  out << diverse.plain_micros << ",\n";
  AppendJsonKey(out, "diverse_micros", "    ");
  out << diverse.diverse_micros << ",\n";
  AppendJsonKey(out, "plain_qps", "    ");
  out << diverse.plain_qps << ",\n";
  AppendJsonKey(out, "diverse_qps", "    ");
  out << diverse.diverse_qps << ",\n";
  AppendJsonKey(out, "overhead", "    ");
  out << diverse.overhead << "\n";
  out << "  },\n";
  AppendJsonKey(out, "shard", "  ");
  out << "{\n";
  AppendJsonKey(out, "num_shards", "    ");
  out << shard.num_shards << ",\n";
  AppendJsonKey(out, "requests", "    ");
  out << shard.requests << ",\n";
  AppendJsonKey(out, "diverse_requests", "    ");
  out << shard.diverse_requests << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << shard.errors << ",\n";
  AppendJsonKey(out, "mismatches", "    ");
  out << shard.mismatches << ",\n";
  AppendJsonKey(out, "batches_applied", "    ");
  out << shard.batches_applied << ",\n";
  AppendJsonKey(out, "final_epoch", "    ");
  out << shard.final_epoch << ",\n";
  AppendJsonKey(out, "direct_partials", "    ");
  out << shard.direct_partials << ",\n";
  AppendJsonKey(out, "scattered_partials", "    ");
  out << shard.scattered_partials << ",\n";
  AppendJsonKey(out, "single_shard_queries", "    ");
  out << shard.single_shard_queries << ",\n";
  AppendJsonKey(out, "cross_shard_queries", "    ");
  out << shard.cross_shard_queries << ",\n";
  AppendJsonKey(out, "min_subgraphs_per_shard", "    ");
  out << shard.min_subgraphs_per_shard << ",\n";
  AppendJsonKey(out, "max_subgraphs_per_shard", "    ");
  out << shard.max_subgraphs_per_shard << ",\n";
  AppendJsonKey(out, "sharded_micros", "    ");
  out << shard.sharded_micros << ",\n";
  AppendJsonKey(out, "unsharded_micros", "    ");
  out << shard.unsharded_micros << ",\n";
  AppendJsonKey(out, "sharded_qps", "    ");
  out << shard.sharded_qps << ",\n";
  AppendJsonKey(out, "unsharded_qps", "    ");
  out << shard.unsharded_qps << "\n";
  out << "  },\n";
  AppendJsonKey(out, "shard_batch", "  ");
  out << "{\n";
  AppendJsonKey(out, "num_shards", "    ");
  out << shard_batch.num_shards << ",\n";
  AppendJsonKey(out, "batch_size", "    ");
  out << shard_batch.batch_size << ",\n";
  AppendJsonKey(out, "requests", "    ");
  out << shard_batch.requests << ",\n";
  AppendJsonKey(out, "batches_submitted", "    ");
  out << shard_batch.batches_submitted << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << shard_batch.errors << ",\n";
  AppendJsonKey(out, "mismatches", "    ");
  out << shard_batch.mismatches << ",\n";
  AppendJsonKey(out, "non_uniform_batches", "    ");
  out << shard_batch.non_uniform_batches << ",\n";
  AppendJsonKey(out, "partial_cache_hits", "    ");
  out << shard_batch.partial_cache_hits << ",\n";
  AppendJsonKey(out, "direct_partials", "    ");
  out << shard_batch.direct_partials << ",\n";
  AppendJsonKey(out, "scattered_partials", "    ");
  out << shard_batch.scattered_partials << ",\n";
  AppendJsonKey(out, "p50_micros", "    ");
  out << shard_batch.p50_micros << ",\n";
  AppendJsonKey(out, "p95_micros", "    ");
  out << shard_batch.p95_micros << ",\n";
  AppendJsonKey(out, "p99_micros", "    ");
  out << shard_batch.p99_micros << ",\n";
  AppendJsonKey(out, "sharded_batch_micros", "    ");
  out << shard_batch.sharded_batch_micros << ",\n";
  AppendJsonKey(out, "unsharded_sequential_micros", "    ");
  out << shard_batch.unsharded_sequential_micros << ",\n";
  AppendJsonKey(out, "sharded_batch_qps", "    ");
  out << shard_batch.sharded_batch_qps << ",\n";
  AppendJsonKey(out, "unsharded_sequential_qps", "    ");
  out << shard_batch.unsharded_sequential_qps << ",\n";
  AppendJsonKey(out, "speedup", "    ");
  out << shard_batch.speedup << "\n";
  out << "  },\n";
  AppendJsonKey(out, "remote_shard", "  ");
  out << "{\n";
  AppendJsonKey(out, "num_shards", "    ");
  out << remote_shard.num_shards << ",\n";
  AppendJsonKey(out, "num_replicas", "    ");
  out << remote_shard.num_replicas << ",\n";
  AppendJsonKey(out, "requests", "    ");
  out << remote_shard.requests << ",\n";
  AppendJsonKey(out, "diverse_requests", "    ");
  out << remote_shard.diverse_requests << ",\n";
  AppendJsonKey(out, "batch_size", "    ");
  out << remote_shard.batch_size << ",\n";
  AppendJsonKey(out, "batches_submitted", "    ");
  out << remote_shard.batches_submitted << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << remote_shard.errors << ",\n";
  AppendJsonKey(out, "mismatches", "    ");
  out << remote_shard.mismatches << ",\n";
  AppendJsonKey(out, "batches_applied", "    ");
  out << remote_shard.batches_applied << ",\n";
  AppendJsonKey(out, "final_epoch", "    ");
  out << remote_shard.final_epoch << ",\n";
  AppendJsonKey(out, "rpc_calls", "    ");
  out << remote_shard.rpc_calls << ",\n";
  AppendJsonKey(out, "rpc_retries", "    ");
  out << remote_shard.rpc_retries << ",\n";
  AppendJsonKey(out, "rpc_deadline_expired", "    ");
  out << remote_shard.rpc_deadline_expired << ",\n";
  AppendJsonKey(out, "worker_restarts", "    ");
  out << remote_shard.worker_restarts << ",\n";
  AppendJsonKey(out, "replica_catchups", "    ");
  out << remote_shard.replica_catchups << ",\n";
  AppendJsonKey(out, "reads_by_replica", "    ");
  out << "[";
  for (size_t i = 0; i < remote_shard.reads_by_replica.size(); ++i) {
    if (i > 0) out << ", ";
    out << remote_shard.reads_by_replica[i];
  }
  out << "],\n";
  AppendJsonKey(out, "baseline_r1_qps", "    ");
  out << remote_shard.baseline_r1_qps << ",\n";
  AppendJsonKey(out, "failover_requests", "    ");
  out << remote_shard.failover_requests << ",\n";
  AppendJsonKey(out, "failover_errors", "    ");
  out << remote_shard.failover_errors << ",\n";
  AppendJsonKey(out, "failover_mismatches", "    ");
  out << remote_shard.failover_mismatches << ",\n";
  AppendJsonKey(out, "partial_cache_hits", "    ");
  out << remote_shard.partial_cache_hits << ",\n";
  AppendJsonKey(out, "partial_cache_skips", "    ");
  out << remote_shard.partial_cache_skips << ",\n";
  AppendJsonKey(out, "direct_partials", "    ");
  out << remote_shard.direct_partials << ",\n";
  AppendJsonKey(out, "scattered_partials", "    ");
  out << remote_shard.scattered_partials << ",\n";
  AppendJsonKey(out, "remote_micros", "    ");
  out << remote_shard.remote_micros << ",\n";
  AppendJsonKey(out, "remote_batch_micros", "    ");
  out << remote_shard.remote_batch_micros << ",\n";
  AppendJsonKey(out, "inprocess_micros", "    ");
  out << remote_shard.inprocess_micros << ",\n";
  AppendJsonKey(out, "remote_qps", "    ");
  out << remote_shard.remote_qps << ",\n";
  AppendJsonKey(out, "remote_batch_qps", "    ");
  out << remote_shard.remote_batch_qps << ",\n";
  AppendJsonKey(out, "inprocess_qps", "    ");
  out << remote_shard.inprocess_qps << "\n";
  out << "  },\n";
  AppendJsonKey(out, "overload", "  ");
  out << "{\n";
  AppendJsonKey(out, "factor", "    ");
  out << overload.factor << ",\n";
  AppendJsonKey(out, "requests", "    ");
  out << overload.requests << ",\n";
  AppendJsonKey(out, "queue_capacity", "    ");
  out << overload.queue_capacity << ",\n";
  AppendJsonKey(out, "per_tenant_quota", "    ");
  out << overload.per_tenant_quota << ",\n";
  AppendJsonKey(out, "num_tenants", "    ");
  out << overload.num_tenants << ",\n";
  AppendJsonKey(out, "capacity_qps", "    ");
  out << overload.capacity_qps << ",\n";
  AppendJsonKey(out, "offered_qps", "    ");
  out << overload.offered_qps << ",\n";
  AppendJsonKey(out, "admitted", "    ");
  out << overload.admitted << ",\n";
  AppendJsonKey(out, "shed_deadline", "    ");
  out << overload.shed_deadline << ",\n";
  AppendJsonKey(out, "shed_quota", "    ");
  out << overload.shed_quota << ",\n";
  AppendJsonKey(out, "accounted", "    ");
  out << overload.accounted << ",\n";
  AppendJsonKey(out, "errors", "    ");
  out << overload.errors << ",\n";
  AppendJsonKey(out, "mismatches", "    ");
  out << overload.mismatches << ",\n";
  AppendJsonKey(out, "registry_admitted", "    ");
  out << overload.registry_admitted << ",\n";
  AppendJsonKey(out, "registry_shed_deadline", "    ");
  out << overload.registry_shed_deadline << ",\n";
  AppendJsonKey(out, "registry_shed_quota", "    ");
  out << overload.registry_shed_quota << ",\n";
  AppendJsonKey(out, "elapsed_micros", "    ");
  out << overload.elapsed_micros << ",\n";
  AppendJsonKey(out, "goodput_qps", "    ");
  out << overload.goodput_qps << ",\n";
  // Flattened copies of the headline per-priority numbers so single
  // --check lines can compare them (the checker dereferences paths, it
  // does not compute across objects).
  AppendJsonKey(out, "interactive_goodput_qps", "    ");
  out << overload.per_priority[0].goodput_qps << ",\n";
  AppendJsonKey(out, "batch_goodput_qps", "    ");
  out << overload.per_priority[2].goodput_qps << ",\n";
  AppendJsonKey(out, "interactive_p99_micros", "    ");
  out << overload.per_priority[0].p99_micros << ",\n";
  AppendJsonKey(out, "batch_p99_micros", "    ");
  out << overload.per_priority[2].p99_micros << ",\n";
  AppendJsonKey(out, "per_priority", "    ");
  out << "{\n";
  for (size_t p = 0; p < 3; ++p) {
    const OverloadPriorityStats& slice = overload.per_priority[p];
    AppendJsonKey(out, PriorityName(static_cast<RequestPriority>(p)),
                  "      ");
    out << "{\n";
    AppendJsonKey(out, "issued", "        ");
    out << slice.issued << ",\n";
    AppendJsonKey(out, "served", "        ");
    out << slice.served << ",\n";
    AppendJsonKey(out, "shed_deadline", "        ");
    out << slice.shed_deadline << ",\n";
    AppendJsonKey(out, "shed_quota", "        ");
    out << slice.shed_quota << ",\n";
    AppendJsonKey(out, "errors", "        ");
    out << slice.errors << ",\n";
    AppendJsonKey(out, "goodput_qps", "        ");
    out << slice.goodput_qps << ",\n";
    AppendJsonKey(out, "p50_micros", "        ");
    out << slice.p50_micros << ",\n";
    AppendJsonKey(out, "p99_micros", "        ");
    out << slice.p99_micros << "\n";
    out << "      }" << (p + 1 < 3 ? "," : "") << "\n";
  }
  out << "    }\n";
  out << "  },\n";
  AppendJsonKey(out, "metrics", "  ");
  out << "{\n";
  AppendJsonKey(out, "mixed", "    ");
  out << "{\n";
  AppendJsonKey(out, "issued_requests", "      ");
  out << metrics.mixed.issued_requests << ",\n";
  AppendJsonKey(out, "queries_total", "      ");
  out << metrics.mixed.queries_total << ",\n";
  AppendJsonKey(out, "queries_rejected_total", "      ");
  out << metrics.mixed.queries_rejected_total << "\n";
  out << "    },\n";
  AppendJsonKey(out, "shard_batch", "    ");
  out << "{\n";
  AppendJsonKey(out, "issued_requests", "      ");
  out << metrics.shard_batch.issued_requests << ",\n";
  AppendJsonKey(out, "queries_total", "      ");
  out << metrics.shard_batch.queries_total << ",\n";
  AppendJsonKey(out, "queries_rejected_total", "      ");
  out << metrics.shard_batch.queries_rejected_total << ",\n";
  AppendJsonKey(out, "partial_cache_hits", "      ");
  out << metrics.shard_batch.partial_cache_hits << "\n";
  out << "    },\n";
  AppendJsonKey(out, "remote_shard", "    ");
  out << "{\n";
  AppendJsonKey(out, "issued_requests", "      ");
  out << metrics.remote_shard.issued_requests << ",\n";
  AppendJsonKey(out, "queries_total", "      ");
  out << metrics.remote_shard.queries_total << ",\n";
  AppendJsonKey(out, "queries_rejected_total", "      ");
  out << metrics.remote_shard.queries_rejected_total << ",\n";
  AppendJsonKey(out, "partial_cache_hits", "      ");
  out << metrics.remote_shard.partial_cache_hits << ",\n";
  AppendJsonKey(out, "worker_snapshots", "      ");
  out << metrics.worker_snapshots << "\n";
  out << "    }\n";
  out << "  },\n";
  AppendJsonKey(out, "backends", "  ");
  out << "[\n";
  for (size_t i = 0; i < backends.size(); ++i) {
    const BackendBenchStats& b = backends[i];
    out << "    {\n";
    AppendJsonKey(out, "backend", "      ");
    out << '"' << b.backend << "\",\n";
    AppendJsonKey(out, "queries", "      ");
    out << b.queries << ",\n";
    AppendJsonKey(out, "errors", "      ");
    out << b.errors << ",\n";
    AppendJsonKey(out, "paths_returned", "      ");
    out << b.paths_returned << ",\n";
    AppendJsonKey(out, "total_micros", "      ");
    out << b.total_micros << ",\n";
    AppendJsonKey(out, "mean_micros", "      ");
    out << b.mean_micros << ",\n";
    AppendJsonKey(out, "max_micros", "      ");
    out << b.max_micros << ",\n";
    AppendJsonKey(out, "p50_micros", "      ");
    out << b.p50_micros << ",\n";
    AppendJsonKey(out, "p95_micros", "      ");
    out << b.p95_micros << ",\n";
    AppendJsonKey(out, "p99_micros", "      ");
    out << b.p99_micros << ",\n";
    AppendJsonKey(out, "min_epoch", "      ");
    out << b.min_epoch << ",\n";
    AppendJsonKey(out, "max_epoch", "      ");
    out << b.max_epoch << ",\n";
    AppendJsonKey(out, "engine_iterations", "      ");
    out << b.engine_iterations << "\n";
    out << "    }" << (i + 1 < backends.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

Result<BenchReport> RunMixedBench(const BenchOptions& options) {
  if (options.backends.empty()) {
    return Status::InvalidArgument("at least one backend required");
  }
  if (options.queries_per_backend == 0) {
    return Status::InvalidArgument("queries_per_backend must be >= 1");
  }
  const DatasetSpec* spec = FindDataset(options.dataset);
  if (spec == nullptr) {
    std::vector<std::string> known;
    for (const DatasetSpec& s : StandardDatasets()) known.push_back(s.name);
    return Status::NotFound("unknown dataset '" + options.dataset +
                            "' (known: " + JoinNames(known) + ")");
  }
  Graph graph = options.target_vertices == 0
                    ? LoadDataset(*spec)
                    : LoadScaledDataset(*spec, options.target_vertices);
  // The shard and remote phases build fresh services over the pristine
  // graph, so keep copies before the mixed-workload service takes
  // ownership.
  Graph pristine_graph;
  if (options.shards > 0) pristine_graph = graph;
  Graph remote_graph;
  Graph remote_reference_graph;
  Graph remote_r1_graph;
  if (options.remote_shards > 0) {
    remote_graph = graph;
    remote_reference_graph = graph;
    // The read-scaling baseline builds a third fleet at R=1.
    if (options.replicas > 1) remote_r1_graph = graph;
  }
  // The overload phase needs an unperturbed service whose capacity pass
  // doubles as the parity reference, so it too starts from pristine weights.
  Graph overload_graph;
  if (options.overload_factor > 0) overload_graph = graph;

  RoutingServiceOptions service_options;
  service_options.defaults.k = options.k;
  service_options.defaults.diversity.theta = options.diverse_theta;
  service_options.defaults.diversity.overfetch = options.diverse_overfetch;
  service_options.dtlp.partition.max_vertices =
      options.z != 0 ? options.z : spec->default_z;
  service_options.batch_threads = options.batch_threads;

  BenchReport report;
  report.dataset = options.dataset;
  report.num_vertices = graph.NumVertices();
  report.num_edges = graph.NumEdges();
  report.k = options.k;

  // Accumulates each service's final registry snapshot, tagged with a
  // service label, for the --metrics-out export.
  MetricsSnapshot fleet_export;
  // Requests handed to the mixed service across all its phases; its
  // registry must account for every one of them.
  size_t mixed_issued = 0;

  WallTimer build_timer;
  Result<std::unique_ptr<RoutingService>> service_or =
      RoutingService::Create(std::move(graph), service_options);
  if (!service_or.ok()) return service_or.status();
  std::unique_ptr<RoutingService> service = std::move(service_or).value();
  report.index_build_micros = build_timer.ElapsedMicros();
  report.num_subgraphs = service->dtlp().NumSubgraphs();

  // Fail fast on typoed backend names instead of producing a report whose
  // stats are all errors.
  std::vector<std::string> registered = service->BackendNames();
  for (const std::string& backend : options.backends) {
    if (std::find(registered.begin(), registered.end(), backend) ==
        registered.end()) {
      return Status::NotFound("unknown backend '" + backend +
                              "' (registered: " + JoinNames(registered) +
                              ")");
    }
  }

  TrafficModelOptions traffic_options;
  traffic_options.alpha = options.alpha;
  traffic_options.tau = options.tau;
  traffic_options.seed = options.seed + 1;
  TrafficModel traffic(service->graph(), traffic_options);

  // Interleave the backends in one flat work list so every backend sees the
  // same mixture of fresh and already-updated epochs.
  std::vector<std::pair<VertexId, VertexId>> endpoints = MakeRandomQueries(
      service->graph(), options.queries_per_backend, options.seed);
  std::vector<WorkItem> work;
  work.reserve(endpoints.size() * options.backends.size());
  for (const auto& [s, t] : endpoints) {
    for (size_t b = 0; b < options.backends.size(); ++b) {
      work.push_back({s, t, b});
    }
  }

  std::vector<BackendBenchStats> stats(options.backends.size());
  std::vector<std::vector<double>> latency_samples(options.backends.size());
  for (size_t b = 0; b < options.backends.size(); ++b) {
    stats[b].backend = options.backends[b];
    stats[b].min_epoch = std::numeric_limits<uint64_t>::max();
    latency_samples[b].reserve(options.queries_per_backend);
  }
  Mutex stats_mu{"bench_runner::stats_mu"};
  std::atomic<size_t> next_item{0};

  auto reader = [&]() {
    for (;;) {
      size_t i = next_item.fetch_add(1, std::memory_order_relaxed);
      if (i >= work.size()) return;
      const WorkItem& item = work[i];
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      Result<RouteResponse> response = service->Query(request);
      MutexLock guard(stats_mu);
      BackendBenchStats& s = stats[item.backend_index];
      ++s.queries;
      if (!response.ok()) {
        ++s.errors;
        continue;
      }
      const RouteResponse& r = response.value();
      s.paths_returned += r.paths.size();
      latency_samples[item.backend_index].push_back(r.stats.solve_micros);
      s.total_micros += r.stats.solve_micros;
      s.max_micros = std::max(s.max_micros, r.stats.solve_micros);
      s.min_epoch = std::min(s.min_epoch, r.epoch);
      s.max_epoch = std::max(s.max_epoch, r.epoch);
      s.engine_iterations += r.stats.engine.iterations;
    }
  };

  // Writer: spread the batches across the reader phase so early and late
  // queries land on different epochs.
  double update_micros = 0;
  std::vector<double> update_samples;
  size_t updates_applied = 0;
  size_t batches_applied = 0;
  size_t batch_errors = 0;
  size_t cands_subgraphs_rebuilt = 0;
  size_t cands_pair_paths = 0;
  double cands_micros = 0;
  // kspdg-lint: allow(raw-thread) — bench load generators, joined below.
  std::thread writer([&]() {
    for (size_t batch = 0; batch < options.num_batches; ++batch) {
      while (next_item.load(std::memory_order_relaxed) <
             (batch + 1) * work.size() / (options.num_batches + 1)) {
        // Coarse pacing only: sleep rather than spin so the waiting writer
        // does not steal cycles from the reader latencies being measured.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::vector<WeightUpdate> updates = traffic.NextBatch();
      WallTimer timer;
      Result<TrafficBatchResult> applied =
          service->ApplyTrafficBatch(updates);
      if (applied.ok()) {
        double micros = timer.ElapsedMicros();
        update_micros += micros;
        update_samples.push_back(micros);
        ++batches_applied;
        updates_applied += applied.value().dtlp.updates_applied;
        cands_subgraphs_rebuilt += applied.value().cands.subgraphs_rebuilt;
        cands_pair_paths += applied.value().cands.pair_paths_recomputed;
        cands_micros += applied.value().cands_micros;
      } else {
        ++batch_errors;
      }
    }
  });

  std::vector<std::thread> readers;  // kspdg-lint: allow(raw-thread)
  size_t num_threads = std::max<size_t>(1, options.query_threads);
  readers.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) readers.emplace_back(reader);
  for (std::thread& t : readers) t.join();  // kspdg-lint: allow(raw-thread)
  writer.join();
  mixed_issued += work.size();

  report.batches_applied = batches_applied;
  report.batch_errors = batch_errors;
  report.updates_applied = updates_applied;
  report.update_total_micros = update_micros;
  report.update_p50_micros = Percentile(update_samples, 50);
  report.update_p95_micros = Percentile(update_samples, 95);
  report.update_p99_micros = Percentile(update_samples, 99);
  report.cands_subgraphs_rebuilt = cands_subgraphs_rebuilt;
  report.cands_pair_paths_recomputed = cands_pair_paths;
  report.cands_rebuild_micros = cands_micros;
  report.final_epoch = service->CurrentEpoch();
  for (size_t b = 0; b < stats.size(); ++b) {
    BackendBenchStats& s = stats[b];
    if (s.queries > s.errors) {
      s.mean_micros = s.total_micros / static_cast<double>(s.queries - s.errors);
    }
    s.p50_micros = Percentile(latency_samples[b], 50);
    s.p95_micros = Percentile(latency_samples[b], 95);
    s.p99_micros = Percentile(latency_samples[b], 99);
    if (s.min_epoch == std::numeric_limits<uint64_t>::max()) s.min_epoch = 0;
  }
  report.backends = std::move(stats);

  // Batch phase: answer one mixed request list twice — sequential Query
  // calls vs QueryBatch — with no concurrent writer, so the wall-clock
  // difference isolates what batching buys (single lock acquisition,
  // pooled worker scratch, parallel execution).
  if (options.batch_size > 0) {
    std::vector<RouteRequest> requests;
    requests.reserve(work.size());
    for (const WorkItem& item : work) {
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      requests.push_back(std::move(request));
    }
    BatchPhaseStats& phase = report.batch;
    phase.batch_size = options.batch_size;
    phase.requests = requests.size();

    WallTimer sequential_timer;
    for (const RouteRequest& request : requests) {
      if (!service->Query(request).ok()) ++phase.errors;
    }
    phase.sequential_micros = sequential_timer.ElapsedMicros();
    mixed_issued += requests.size();

    WallTimer batch_timer;
    for (size_t begin = 0; begin < requests.size();
         begin += options.batch_size) {
      size_t count = std::min(options.batch_size, requests.size() - begin);
      Result<RouteBatchResponse> batched = service->QueryBatch(
          std::span<const RouteRequest>(requests.data() + begin, count));
      if (!batched.ok()) {
        phase.errors += count;
        continue;
      }
      mixed_issued += count;
      const RouteBatchResponse& b = batched.value();
      phase.errors += b.num_rejected;
      for (const RouteBatchItem& item : b.items) {
        if (item.status.ok() && item.response.epoch != b.epoch) {
          ++phase.non_uniform_batches;
          break;
        }
      }
    }
    phase.batch_micros = batch_timer.ElapsedMicros();

    if (phase.sequential_micros > 0) {
      phase.sequential_qps = static_cast<double>(phase.requests) /
                             (phase.sequential_micros / 1e6);
    }
    if (phase.batch_micros > 0) {
      phase.batch_qps =
          static_cast<double>(phase.requests) / (phase.batch_micros / 1e6);
      phase.speedup = phase.sequential_micros / phase.batch_micros;
    }
  }

  // Diverse phase: the same endpoints and backends answered once as plain
  // kKsp and once as kDiverseKsp, with no concurrent writer — so `overhead`
  // isolates the query-path cost of the §4 pipeline (over-fetch, per-query
  // EP-Index/MFP build, MinHash filter) against plain KSP.
  if (options.diverse) {
    DiversePhaseStats& phase = report.diverse;
    phase.k = options.k;
    phase.overfetch = options.diverse_overfetch;
    phase.theta = options.diverse_theta;

    std::vector<RouteRequest> plain_requests;
    std::vector<RouteRequest> diverse_requests;
    plain_requests.reserve(work.size());
    diverse_requests.reserve(work.size());
    for (const WorkItem& item : work) {
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      plain_requests.push_back(request);
      request.kind = QueryKind::kDiverseKsp;
      diverse_requests.push_back(std::move(request));
    }
    phase.requests = diverse_requests.size();

    WallTimer plain_timer;
    for (const RouteRequest& request : plain_requests) {
      if (!service->Query(request).ok()) ++phase.errors;
    }
    phase.plain_micros = plain_timer.ElapsedMicros();
    mixed_issued += plain_requests.size();

    std::vector<double> samples;
    samples.reserve(diverse_requests.size());
    phase.kept_min = std::numeric_limits<size_t>::max();
    double mean_sum = 0;
    size_t mean_count = 0;
    WallTimer diverse_timer;
    for (const RouteRequest& request : diverse_requests) {
      Result<RouteResponse> response = service->Query(request);
      if (!response.ok() || !response.value().diverse.has_value()) {
        ++phase.errors;
        continue;
      }
      const DiverseStats& d = *response.value().diverse;
      phase.candidates_total += d.candidates;
      phase.kept_total += d.kept;
      phase.filtered_total += d.filtered;
      phase.kept_min = std::min<size_t>(phase.kept_min, d.kept);
      phase.kept_max = std::max<size_t>(phase.kept_max, d.kept);
      mean_sum += d.mean_pairwise_similarity;
      ++mean_count;
      phase.max_pairwise_similarity = std::max(
          phase.max_pairwise_similarity, d.max_pairwise_similarity);
      phase.ep_raw_entries += d.ep_raw_entries;
      phase.ep_path_nodes += d.ep_path_nodes;
      samples.push_back(response.value().stats.solve_micros);
    }
    phase.diverse_micros = diverse_timer.ElapsedMicros();
    mixed_issued += diverse_requests.size();
    if (phase.kept_min == std::numeric_limits<size_t>::max()) {
      phase.kept_min = 0;
    }
    if (mean_count > 0) {
      phase.mean_pairwise_similarity =
          mean_sum / static_cast<double>(mean_count);
    }
    if (phase.ep_raw_entries > 0) {
      phase.mfp_compression_ratio =
          static_cast<double>(phase.ep_path_nodes) /
          static_cast<double>(phase.ep_raw_entries);
    }
    phase.p50_micros = Percentile(samples, 50);
    phase.p95_micros = Percentile(samples, 95);
    phase.p99_micros = Percentile(samples, 99);
    if (phase.plain_micros > 0) {
      phase.plain_qps =
          static_cast<double>(phase.requests) / (phase.plain_micros / 1e6);
    }
    if (phase.diverse_micros > 0) {
      phase.diverse_qps =
          static_cast<double>(phase.requests) / (phase.diverse_micros / 1e6);
    }
    if (phase.plain_micros > 0) {
      phase.overhead = phase.diverse_micros / phase.plain_micros;
    }
  }

  // Registry cross-check for the mixed service: its own counters must
  // account for every request the harness issued across the phases above
  // (the CI metrics gate asserts the equality).
  {
    MetricsSnapshot snapshot = service->Metrics();
    report.metrics.mixed.issued_requests = mixed_issued;
    report.metrics.mixed.queries_total = QueriesTotal(snapshot);
    report.metrics.mixed.queries_rejected_total =
        snapshot.CounterTotal("queries_rejected_total");
    snapshot.AddLabel("service", "mixed");
    fleet_export.Merge(snapshot);
  }

  // Shard phase: build a sharded and an unsharded service over identical
  // pristine graphs, feed both the identical traffic history, then answer
  // the same request list on both and require path-for-path equality —
  // sharding may move work, never change answers.
  if (options.shards > 0) {
    ShardPhaseStats& phase = report.shard;
    phase.num_shards = options.shards;

    Graph unsharded_graph = pristine_graph;
    Result<std::unique_ptr<RoutingService>> plain_or =
        RoutingService::Create(std::move(unsharded_graph), service_options);
    if (!plain_or.ok()) return plain_or.status();
    std::unique_ptr<RoutingService> plain = std::move(plain_or).value();

    ShardedRoutingServiceOptions sharded_options;
    sharded_options.defaults = service_options.defaults;
    sharded_options.dtlp = service_options.dtlp;
    sharded_options.num_shards = static_cast<uint32_t>(options.shards);
    sharded_options.batch_threads = options.batch_threads;
    Result<std::unique_ptr<ShardedRoutingService>> sharded_or =
        ShardedRoutingService::Create(std::move(pristine_graph),
                                      sharded_options);
    if (!sharded_or.ok()) return sharded_or.status();
    std::unique_ptr<ShardedRoutingService> sharded =
        std::move(sharded_or).value();

    // Identical traffic history on both services (batches are anchored to
    // the immutable initial weights, so pre-generating them is exact).
    TrafficModelOptions replay_options = traffic_options;
    replay_options.seed = options.seed + 2;
    TrafficModel replay(plain->graph(), replay_options);
    for (size_t b = 0; b < options.num_batches; ++b) {
      std::vector<WeightUpdate> batch = replay.NextBatch();
      bool ok = plain->ApplyTrafficBatch(batch).ok();
      ok = sharded->ApplyTrafficBatch(batch).ok() && ok;
      if (ok) ++phase.batches_applied;
    }

    std::vector<RouteRequest> requests;
    requests.reserve(work.size() * (options.diverse ? 2 : 1));
    for (const WorkItem& item : work) {
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      requests.push_back(std::move(request));
    }
    if (options.diverse) {
      // Diverse answers must be as shard-invisible as plain ones: append a
      // kDiverseKsp copy of the request list to the parity workload.
      for (const WorkItem& item : work) {
        RouteRequest request;
        request.kind = QueryKind::kDiverseKsp;
        request.source = item.source;
        request.target = item.target;
        request.options.backend = options.backends[item.backend_index];
        requests.push_back(std::move(request));
      }
      phase.diverse_requests = work.size();
    }
    phase.requests = requests.size();

    // Both passes run the identical interface-typed harness, so the qps
    // comparison is symmetric; the path-by-path check runs after the
    // timers.
    QueryPassResult expected = RunQueryPass(*plain, requests);
    phase.errors += expected.errors;
    phase.unsharded_micros = expected.elapsed_micros;

    QueryPassResult actual = RunQueryPass(*sharded, requests);
    phase.errors += actual.errors;
    phase.sharded_micros = actual.elapsed_micros;

    phase.mismatches += CountMismatches(expected, actual);

    phase.final_epoch = sharded->CurrentEpoch();
    if (plain->CurrentEpoch() != sharded->CurrentEpoch()) ++phase.errors;
    ShardedServiceCounters counters = sharded->counters();
    phase.direct_partials = counters.direct_partial_requests;
    phase.scattered_partials = counters.scattered_partial_requests;
    phase.single_shard_queries = counters.single_shard_queries;
    phase.cross_shard_queries = counters.cross_shard_queries;
    std::vector<ShardInfo> infos = sharded->ShardInfos();
    if (!infos.empty()) {
      phase.min_subgraphs_per_shard = infos[0].subgraphs;
      for (const ShardInfo& info : infos) {
        phase.min_subgraphs_per_shard =
            std::min(phase.min_subgraphs_per_shard, info.subgraphs);
        phase.max_subgraphs_per_shard =
            std::max(phase.max_subgraphs_per_shard, info.subgraphs);
      }
    }
    if (phase.unsharded_micros > 0) {
      phase.unsharded_qps = static_cast<double>(phase.requests) /
                            (phase.unsharded_micros / 1e6);
    }
    if (phase.sharded_micros > 0) {
      phase.sharded_qps =
          static_cast<double>(phase.requests) / (phase.sharded_micros / 1e6);
    }

    // Combined shard-batch phase: the same request list goes to the sharded
    // service asynchronously — every batch_size requests become one
    // SubmitBatch ticket, issued back-to-back so request production
    // overlaps solving — and every answer is checked against the unsharded
    // sequential reference computed above. The reference timing is that
    // sequential pass, so the speedup reads "sharded async batches vs one
    // thread asking one unsharded service politely".
    if (options.batch_size > 0) {
      ShardBatchPhaseStats& combined = report.shard_batch;
      combined.num_shards = options.shards;
      combined.batch_size = options.batch_size;
      combined.requests = requests.size();
      combined.unsharded_sequential_micros = phase.unsharded_micros;
      ShardedServiceCounters before = sharded->counters();
      MetricsSnapshot registry_before = sharded->Metrics();
      size_t combined_issued = 0;

      std::vector<BatchTicket> tickets;
      tickets.reserve(requests.size() / options.batch_size + 1);
      WallTimer batch_timer;
      for (size_t begin = 0; begin < requests.size();
           begin += options.batch_size) {
        size_t count = std::min(options.batch_size, requests.size() - begin);
        tickets.push_back(sharded->SubmitBatch(std::vector<RouteRequest>(
            requests.begin() + begin, requests.begin() + begin + count)));
      }
      combined.batches_submitted = tickets.size();
      std::vector<double> item_samples;
      item_samples.reserve(requests.size());
      size_t next = 0;
      for (const BatchTicket& ticket : tickets) {
        const Result<RouteBatchResponse>& outcome = ticket.Wait();
        size_t count = std::min(options.batch_size, requests.size() - next);
        if (!outcome.ok()) {
          combined.errors += count;
          next += count;
          continue;
        }
        const RouteBatchResponse& b = outcome.value();
        combined_issued += b.items.size();
        bool uniform = true;
        for (const RouteBatchItem& item : b.items) {
          size_t i = next++;
          if (!item.status.ok() || i >= requests.size()) {
            ++combined.errors;
            continue;
          }
          if (item.response.epoch != b.epoch) uniform = false;
          item_samples.push_back(item.response.stats.solve_micros);
          if (!expected.answered[i]) {
            ++combined.errors;  // async side answered, reference side failed
            continue;
          }
          if (!SamePaths(item.response.paths, expected.paths[i])) {
            ++combined.mismatches;
          }
        }
        if (!uniform) ++combined.non_uniform_batches;
      }
      combined.sharded_batch_micros = batch_timer.ElapsedMicros();
      combined.p50_micros = Percentile(item_samples, 50);
      combined.p95_micros = Percentile(item_samples, 95);
      combined.p99_micros = Percentile(item_samples, 99);

      ShardedServiceCounters after = sharded->counters();
      // Registry cross-check for the async phase: counter deltas between
      // the two scrapes must match what the tickets delivered.
      MetricsSnapshot registry_after = sharded->Metrics();
      report.metrics.shard_batch.issued_requests = combined_issued;
      report.metrics.shard_batch.queries_total =
          QueriesTotal(registry_after) - QueriesTotal(registry_before);
      report.metrics.shard_batch.queries_rejected_total =
          registry_after.CounterTotal("queries_rejected_total") -
          registry_before.CounterTotal("queries_rejected_total");
      report.metrics.shard_batch.partial_cache_hits =
          registry_after.CounterTotal("partial_cache_hits_total") -
          registry_before.CounterTotal("partial_cache_hits_total");
      combined.partial_cache_hits =
          after.partial_cache_hits - before.partial_cache_hits;
      combined.direct_partials =
          after.direct_partial_requests - before.direct_partial_requests;
      combined.scattered_partials =
          after.scattered_partial_requests - before.scattered_partial_requests;
      if (combined.unsharded_sequential_micros > 0) {
        combined.unsharded_sequential_qps =
            static_cast<double>(combined.requests) /
            (combined.unsharded_sequential_micros / 1e6);
      }
      if (combined.sharded_batch_micros > 0) {
        combined.sharded_batch_qps =
            static_cast<double>(combined.requests) /
            (combined.sharded_batch_micros / 1e6);
        combined.speedup = combined.unsharded_sequential_micros /
                           combined.sharded_batch_micros;
      }
    }

    MetricsSnapshot sharded_snapshot = sharded->Metrics();
    sharded_snapshot.AddLabel("service", "sharded");
    fleet_export.Merge(sharded_snapshot);
  }

  // Remote phase: the same drill as the shard phase, but the shards live in
  // worker processes — a RemoteShardedRoutingService (coordinator + fleet)
  // against an in-process ShardedRoutingService reference, identical
  // traffic history (two-phase epoch commit on the remote side), identical
  // request list, path-by-path parity. A batched leg then answers the list
  // again through the remote QueryBatch, amortising RPC round trips across
  // the batch pool.
  if (options.remote_shards > 0) {
    RemoteShardPhaseStats& phase = report.remote_shard;
    phase.num_shards = options.remote_shards;
    phase.num_replicas = options.replicas > 0 ? options.replicas : 1;

    ShardedRoutingServiceOptions reference_options;
    reference_options.defaults = service_options.defaults;
    reference_options.dtlp = service_options.dtlp;
    reference_options.num_shards =
        static_cast<uint32_t>(options.remote_shards);
    reference_options.batch_threads = options.batch_threads;
    Result<std::unique_ptr<ShardedRoutingService>> reference_or =
        ShardedRoutingService::Create(std::move(remote_reference_graph),
                                      reference_options);
    if (!reference_or.ok()) return reference_or.status();
    std::unique_ptr<ShardedRoutingService> reference =
        std::move(reference_or).value();

    RemoteShardedRoutingServiceOptions remote_options;
    remote_options.defaults = service_options.defaults;
    remote_options.dtlp = service_options.dtlp;
    remote_options.num_shards = static_cast<uint32_t>(options.remote_shards);
    remote_options.num_replicas = static_cast<uint32_t>(phase.num_replicas);
    remote_options.batch_threads = options.batch_threads;
    remote_options.remote.worker_binary = options.worker_binary;
    Result<std::unique_ptr<RemoteShardedRoutingService>> remote_or =
        RemoteShardedRoutingService::Create(std::move(remote_graph),
                                            remote_options);
    if (!remote_or.ok()) return remote_or.status();
    std::unique_ptr<RemoteShardedRoutingService> remote =
        std::move(remote_or).value();

    TrafficModelOptions replay_options = traffic_options;
    replay_options.seed = options.seed + 3;
    TrafficModel replay(reference->graph(), replay_options);
    // Kept so the R=1 baseline fleet can replay the identical history.
    std::vector<std::vector<WeightUpdate>> replay_batches;
    for (size_t b = 0; b < options.num_batches; ++b) {
      std::vector<WeightUpdate> batch = replay.NextBatch();
      bool ok = reference->ApplyTrafficBatch(batch).ok();
      ok = remote->ApplyTrafficBatch(batch).ok() && ok;
      if (ok) ++phase.batches_applied;
      replay_batches.push_back(std::move(batch));
    }

    std::vector<RouteRequest> requests;
    requests.reserve(work.size() * (options.diverse ? 2 : 1));
    for (const WorkItem& item : work) {
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      requests.push_back(std::move(request));
    }
    if (options.diverse) {
      for (const WorkItem& item : work) {
        RouteRequest request;
        request.kind = QueryKind::kDiverseKsp;
        request.source = item.source;
        request.target = item.target;
        request.options.backend = options.backends[item.backend_index];
        requests.push_back(std::move(request));
      }
      phase.diverse_requests = work.size();
    }
    phase.requests = requests.size();

    QueryPassResult expected = RunQueryPass(*reference, requests);
    phase.errors += expected.errors;
    phase.inprocess_micros = expected.elapsed_micros;

    auto check_parity = [&](size_t i, const std::vector<Path>& got) {
      if (!expected.answered[i]) return;
      if (!SamePaths(got, expected.paths[i])) ++phase.mismatches;
    };

    MetricsSnapshot registry_before = remote->Metrics();
    size_t remote_issued = 0;

    // Single-query leg: the same interface-typed pass as the reference.
    QueryPassResult remote_pass = RunQueryPass(*remote, requests);
    phase.errors += remote_pass.errors;
    phase.remote_micros = remote_pass.elapsed_micros;
    phase.mismatches += CountMismatches(expected, remote_pass);
    remote_issued += requests.size();

    // Batched leg.
    phase.batch_size = options.batch_size > 0 ? options.batch_size : 8;
    WallTimer batch_timer;
    for (size_t begin = 0; begin < requests.size();
         begin += phase.batch_size) {
      size_t count = std::min(phase.batch_size, requests.size() - begin);
      Result<RouteBatchResponse> batched = remote->QueryBatch(
          std::span<const RouteRequest>(requests.data() + begin, count));
      ++phase.batches_submitted;
      if (!batched.ok()) {
        phase.errors += count;
        continue;
      }
      const RouteBatchResponse& b = batched.value();
      remote_issued += b.items.size();
      for (size_t j = 0; j < b.items.size(); ++j) {
        if (!b.items[j].status.ok()) {
          ++phase.errors;
          continue;
        }
        check_parity(begin + j, b.items[j].response.paths);
      }
    }
    phase.remote_batch_micros = batch_timer.ElapsedMicros();

    // Replicated fleets only: read-scaling baseline + failover drill.
    if (phase.num_replicas > 1) {
      // Baseline: an identical fleet at R=1 over the same traffic history
      // and request list — remote_qps vs baseline_r1_qps is the measured
      // read-scaling of replication.
      RemoteShardedRoutingServiceOptions r1_options = remote_options;
      r1_options.num_replicas = 1;
      Result<std::unique_ptr<RemoteShardedRoutingService>> r1_or =
          RemoteShardedRoutingService::Create(std::move(remote_r1_graph),
                                              r1_options);
      if (!r1_or.ok()) {
        ++phase.errors;
      } else {
        std::unique_ptr<RemoteShardedRoutingService> r1 =
            std::move(r1_or).value();
        bool r1_ok = true;
        for (size_t b = 0; b < options.num_batches; ++b) {
          if (!r1->ApplyTrafficBatch(replay_batches[b]).ok()) r1_ok = false;
        }
        if (r1_ok) {
          QueryPassResult r1_pass = RunQueryPass(*r1, requests);
          if (r1_pass.errors == 0 && r1_pass.elapsed_micros > 0) {
            phase.baseline_r1_qps = static_cast<double>(requests.size()) /
                                    (r1_pass.elapsed_micros / 1e6);
          }
        }
      }

      // Drill part one: kill the last replica of shard 0 and answer the
      // whole list again — sibling failover must be error- and
      // mismatch-free.
      for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
        if (info.shard == 0 && info.replica == phase.num_replicas - 1 &&
            info.pid > 0) {
          kill(info.pid, SIGKILL);
        }
      }
      QueryPassResult failover_pass = RunQueryPass(*remote, requests);
      phase.failover_requests += requests.size();
      phase.failover_errors += failover_pass.errors;
      phase.failover_mismatches += CountMismatches(expected, failover_pass);
      remote_issued += requests.size();

      // Drill part two: one more traffic batch auto-restarts the victim
      // (checkpoint load + history replay), then the list is answered a
      // third time against a freshly computed reference at the new epoch.
      std::vector<WeightUpdate> drill_batch = replay.NextBatch();
      bool drill_ok = reference->ApplyTrafficBatch(drill_batch).ok();
      drill_ok = remote->ApplyTrafficBatch(drill_batch).ok() && drill_ok;
      if (drill_ok) ++phase.batches_applied;
      QueryPassResult healed_expected = RunQueryPass(*reference, requests);
      QueryPassResult healed_pass = RunQueryPass(*remote, requests);
      phase.failover_requests += requests.size();
      phase.failover_errors += healed_expected.errors + healed_pass.errors;
      phase.failover_mismatches +=
          CountMismatches(healed_expected, healed_pass);
      remote_issued += requests.size();
    }

    phase.final_epoch = remote->CurrentEpoch();
    if (reference->CurrentEpoch() != remote->CurrentEpoch()) ++phase.errors;

    // Registry cross-check for the remote legs, plus the fleet snapshot:
    // Metrics() pings every live worker, so the merged result carries each
    // worker's own registry tagged with its shard label.
    MetricsSnapshot registry_after = remote->Metrics();
    report.metrics.remote_shard.issued_requests = remote_issued;
    report.metrics.remote_shard.queries_total =
        QueriesTotal(registry_after) - QueriesTotal(registry_before);
    report.metrics.remote_shard.queries_rejected_total =
        registry_after.CounterTotal("queries_rejected_total") -
        registry_before.CounterTotal("queries_rejected_total");
    report.metrics.remote_shard.partial_cache_hits =
        registry_after.CounterTotal("partial_cache_hits_total") -
        registry_before.CounterTotal("partial_cache_hits_total");
    report.metrics.worker_snapshots =
        registry_after.GaugeSampleCount("worker_epoch");
    registry_after.AddLabel("service", "remote");
    fleet_export.Merge(registry_after);

    RemoteServiceCounters counters = remote->counters();
    phase.rpc_calls = counters.rpc_calls;
    phase.rpc_retries = counters.rpc_retries;
    phase.rpc_deadline_expired = counters.rpc_deadline_expired;
    phase.worker_restarts = counters.worker_restarts;
    phase.replica_catchups = counters.replica_catchups;
    for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
      phase.reads_by_replica.push_back(info.reads);
    }
    phase.partial_cache_hits = counters.sharded.partial_cache_hits;
    phase.partial_cache_skips = counters.sharded.partial_cache_skips;
    phase.direct_partials = counters.sharded.direct_partial_requests;
    phase.scattered_partials = counters.sharded.scattered_partial_requests;
    if (phase.inprocess_micros > 0) {
      phase.inprocess_qps = static_cast<double>(phase.requests) /
                            (phase.inprocess_micros / 1e6);
    }
    if (phase.remote_micros > 0) {
      phase.remote_qps =
          static_cast<double>(phase.requests) / (phase.remote_micros / 1e6);
    }
    if (phase.remote_batch_micros > 0) {
      phase.remote_batch_qps = static_cast<double>(phase.requests) /
                               (phase.remote_batch_micros / 1e6);
    }
  }

  // Overload phase: make admission control choose. A fresh service first
  // answers the distinct request list sequentially — that pass measures its
  // capacity AND records the no-pressure reference answers — then the same
  // requests, dressed with rotating priorities / tenants / per-priority
  // deadlines, are offered open-loop at factor x capacity through
  // SubmitBatch. The pacer never blocks (QoS submits shed instead), so the
  // offered rate really is open-loop; the accounting must be exact
  // (served + shed_deadline + shed_quota == offered) and every served
  // answer must match the reference path-for-path.
  if (options.overload_factor > 0) {
    OverloadPhaseStats& phase = report.overload;
    phase.factor = options.overload_factor;

    RoutingServiceOptions overload_options = service_options;
    // Small queue + per-tenant quota so both shed reasons and the
    // priority-eviction path engage at modest offered loads.
    overload_options.submit_queue_capacity = 8;
    overload_options.per_tenant_quota = 4;
    constexpr size_t kNumTenants = 4;
    phase.queue_capacity = overload_options.submit_queue_capacity;
    phase.per_tenant_quota = overload_options.per_tenant_quota;
    phase.num_tenants = kNumTenants;

    Result<std::unique_ptr<RoutingService>> overload_or =
        RoutingService::Create(std::move(overload_graph), overload_options);
    if (!overload_or.ok()) return overload_or.status();
    std::unique_ptr<RoutingService> overload_svc =
        std::move(overload_or).value();

    std::vector<RouteRequest> distinct;
    distinct.reserve(work.size());
    for (const WorkItem& item : work) {
      RouteRequest request;
      request.source = item.source;
      request.target = item.target;
      request.options.backend = options.backends[item.backend_index];
      distinct.push_back(std::move(request));
    }

    // Capacity pass (no pressure, no QoS): reference answers + the rate the
    // offered load is a multiple of.
    QueryPassResult reference = RunQueryPass(*overload_svc, distinct);
    phase.errors += reference.errors;
    double mean_micros =
        reference.elapsed_micros / static_cast<double>(distinct.size());
    if (mean_micros <= 0) mean_micros = 1;
    phase.capacity_qps =
        static_cast<double>(distinct.size()) /
        (reference.elapsed_micros > 0 ? reference.elapsed_micros / 1e6 : 1e-6);
    AdmissionCounters admission_before =
        AdmissionCountersFrom(overload_svc->Metrics());

    // Offered load: every distinct request four times over, priorities
    // drawn from a repeating interactive-light / batch-heavy pattern
    // (3 : 1 : 6 per ten requests). Under strict priority a uniform mix at
    // sustained overload starves the batch class completely (every batch
    // entry is displaced before the queue ever drains down to it); with
    // this mix interactive + normal under-fill capacity, so the leftover
    // trickle serves batch work late — which is exactly the contrast the
    // phase exists to measure (interactive p99 far below batch p99, both
    // real). Tenants rotate so each one sees the same mix. Deadlines scale
    // with the measured mean solve time — generous for interactive (it
    // jumps the queue, so it should nearly always make it), tight for
    // normal, none for batch (batch is displaced or quota-shed, never
    // deadline-shed).
    constexpr RequestPriority kPriorityPattern[] = {
        RequestPriority::kInteractive, RequestPriority::kInteractive,
        RequestPriority::kInteractive, RequestPriority::kNormal,
        RequestPriority::kBatch,       RequestPriority::kBatch,
        RequestPriority::kBatch,       RequestPriority::kBatch,
        RequestPriority::kBatch,       RequestPriority::kBatch};
    constexpr size_t kPatternSize =
        sizeof(kPriorityPattern) / sizeof(kPriorityPattern[0]);
    const size_t total = distinct.size() * 4;
    phase.requests = total;
    const double interval_micros =
        1e6 / (options.overload_factor * phase.capacity_qps);
    const auto interactive_budget = std::chrono::microseconds(
        static_cast<int64_t>(mean_micros * 64));
    const auto normal_budget =
        std::chrono::microseconds(static_cast<int64_t>(mean_micros * 16));
    std::vector<std::string> tenants;
    for (size_t t = 0; t < kNumTenants; ++t) {
      tenants.push_back(std::string("t") + std::to_string(t));
    }

    struct OverloadOutcome {
      AdmissionOutcome admission = AdmissionOutcome::kRejected;
      bool ok = false;
      bool mismatch = false;
      double latency_micros = 0;
    };
    std::vector<OverloadOutcome> outcomes(total);
    std::vector<BatchTicket> tickets;
    tickets.reserve(total);
    // Tickets are fulfilled BEFORE their callbacks run, so Wait() alone
    // does not order the slot writes below against the reads after the
    // loop; this counter does.
    std::atomic<size_t> callbacks_done{0};

    WallTimer overload_timer;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(
                      static_cast<int64_t>(interval_micros * i)));
      const size_t distinct_index = i % distinct.size();
      RouteRequest request = distinct[distinct_index];
      request.context.priority = kPriorityPattern[i % kPatternSize];
      request.context.tenant_id = tenants[i % kNumTenants];
      const auto now = std::chrono::steady_clock::now();
      if (request.context.priority == RequestPriority::kInteractive) {
        request.context.deadline = now + interactive_budget;
      } else if (request.context.priority == RequestPriority::kNormal) {
        request.context.deadline = now + normal_budget;
      }
      OverloadOutcome* slot = &outcomes[i];
      const std::vector<Path>* want =
          reference.answered[distinct_index] ? &reference.paths[distinct_index]
                                             : nullptr;
      std::vector<RouteRequest> one;
      one.push_back(std::move(request));
      tickets.push_back(overload_svc->SubmitBatch(
          std::move(one),
          [slot, want, now,
           &callbacks_done](const Result<RouteBatchResponse>& result) {
            slot->latency_micros =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - now)
                    .count();
            if (result.ok() && result.value().items.size() == 1) {
              const RouteBatchItem& item = result.value().items.front();
              slot->admission = item.admission;
              slot->ok = item.status.ok();
              if (slot->ok && want != nullptr &&
                  !SamePaths(item.response.paths, *want)) {
                slot->mismatch = true;
              }
            }
            callbacks_done.fetch_add(1, std::memory_order_release);
          }));
    }
    for (const BatchTicket& ticket : tickets) ticket.Wait();
    while (callbacks_done.load(std::memory_order_acquire) < total) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    phase.elapsed_micros = overload_timer.ElapsedMicros();
    phase.offered_qps =
        static_cast<double>(total) / (phase.elapsed_micros / 1e6);

    std::vector<std::vector<double>> latency_by_priority(kNumPriorities);
    for (size_t i = 0; i < total; ++i) {
      const OverloadOutcome& got = outcomes[i];
      const size_t priority =
          static_cast<size_t>(kPriorityPattern[i % kPatternSize]);
      OverloadPriorityStats& slice = phase.per_priority[priority];
      ++slice.issued;
      switch (got.admission) {
        case AdmissionOutcome::kServed:
          if (got.ok) {
            ++phase.admitted;
            ++slice.served;
            latency_by_priority[priority].push_back(got.latency_micros);
            if (got.mismatch) ++phase.mismatches;
          } else {
            // Admitted but failed to solve: not an admission outcome at
            // all — a real error.
            ++phase.errors;
            ++slice.errors;
          }
          break;
        case AdmissionOutcome::kShedDeadline:
          ++phase.shed_deadline;
          ++slice.shed_deadline;
          break;
        case AdmissionOutcome::kShedQuota:
          ++phase.shed_quota;
          ++slice.shed_quota;
          break;
        case AdmissionOutcome::kRejected:
          ++phase.errors;
          ++slice.errors;
          break;
      }
    }
    phase.accounted = phase.admitted + phase.shed_deadline + phase.shed_quota;
    if (phase.elapsed_micros > 0) {
      phase.goodput_qps =
          static_cast<double>(phase.admitted) / (phase.elapsed_micros / 1e6);
      for (size_t p = 0; p < kNumPriorities; ++p) {
        phase.per_priority[p].goodput_qps =
            static_cast<double>(phase.per_priority[p].served) /
            (phase.elapsed_micros / 1e6);
      }
    }
    for (size_t p = 0; p < kNumPriorities; ++p) {
      phase.per_priority[p].p50_micros =
          Percentile(latency_by_priority[p], 50);
      phase.per_priority[p].p99_micros =
          Percentile(latency_by_priority[p], 99);
    }

    // The service's own registry must tell the same story as the harness
    // tallies (delta over the overload window; the capacity pass already
    // bumped admitted once per reference answer).
    MetricsSnapshot overload_snapshot = overload_svc->Metrics();
    AdmissionCounters admission_after =
        AdmissionCountersFrom(overload_snapshot);
    phase.registry_admitted =
        admission_after.admitted - admission_before.admitted;
    phase.registry_shed_deadline =
        admission_after.shed_deadline - admission_before.shed_deadline;
    phase.registry_shed_quota =
        admission_after.shed_quota - admission_before.shed_quota;
    overload_snapshot.AddLabel("service", "overload");
    fleet_export.Merge(overload_snapshot);
  }

  report.metrics_export = fleet_export.ToJson();
  return report;
}

}  // namespace kspdg
