#include "workload/query_gen.h"

#include <deque>

namespace kspdg {

std::vector<std::pair<VertexId, VertexId>> MakeRandomQueries(
    const Graph& g, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> queries;
  queries.reserve(count);
  const size_t n = g.NumVertices();
  while (queries.size() < count) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t || g.Degree(s) == 0 || g.Degree(t) == 0) continue;
    queries.emplace_back(s, t);
  }
  return queries;
}

std::vector<std::pair<VertexId, VertexId>> MakeLocalQueries(
    const Graph& g, size_t count, size_t hops, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> queries;
  queries.reserve(count);
  const size_t n = g.NumVertices();
  std::vector<uint32_t> visited(n, 0);
  uint32_t epoch = 0;
  while (queries.size() < count) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    if (g.Degree(s) == 0) continue;
    // BFS out `hops` levels, pick a random vertex from the frontier.
    ++epoch;
    std::deque<std::pair<VertexId, size_t>> queue = {{s, 0}};
    visited[s] = epoch;
    std::vector<VertexId> frontier;
    while (!queue.empty()) {
      auto [u, depth] = queue.front();
      queue.pop_front();
      if (depth == hops) {
        frontier.push_back(u);
        continue;
      }
      for (const Arc& a : g.Neighbors(u)) {
        if (visited[a.to] != epoch) {
          visited[a.to] = epoch;
          queue.emplace_back(a.to, depth + 1);
        }
      }
    }
    if (frontier.empty()) continue;
    VertexId t = frontier[rng.NextBounded(frontier.size())];
    if (t != s) queries.emplace_back(s, t);
  }
  return queries;
}

}  // namespace kspdg
