#include "workload/datasets.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "graph/dimacs_io.h"

namespace kspdg {

const std::vector<DatasetSpec>& StandardDatasets() {
  static const std::vector<DatasetSpec>* kDatasets = [] {
    auto* v = new std::vector<DatasetSpec>;
    RoadNetworkOptions base;
    base.thinning = 0.35;
    base.diagonal_prob = 0.05;
    base.min_weight = 3;
    base.max_weight = 20;

    DatasetSpec ny{"NY-S", "USA-road-t.NY.gr", base, 100};
    ny.road.rows = 128;
    ny.road.cols = 128;
    ny.road.seed = 1001;
    v->push_back(ny);

    DatasetSpec col{"COL-S", "USA-road-t.COL.gr", base, 100};
    col.road.rows = 160;
    col.road.cols = 160;
    col.road.seed = 1002;
    v->push_back(col);

    DatasetSpec fla{"FLA-S", "USA-road-t.FLA.gr", base, 150};
    fla.road.rows = 200;
    fla.road.cols = 200;
    fla.road.seed = 1003;
    v->push_back(fla);

    DatasetSpec cusa{"CUSA-S", "USA-road-t.CTR.gr", base, 200};
    cusa.road.rows = 300;
    cusa.road.cols = 300;
    cusa.road.seed = 1004;
    v->push_back(cusa);
    return v;
  }();
  return *kDatasets;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  const DatasetSpec* spec = FindDataset(name);
  if (spec != nullptr) return *spec;
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::abort();
}

Graph LoadDataset(const DatasetSpec& spec, bool directed) {
  const char* dir = std::getenv("KSPDG_DATA_DIR");
  if (dir != nullptr && !spec.dimacs_file.empty()) {
    std::string path = std::string(dir) + "/" + spec.dimacs_file;
    if (std::ifstream(path).good()) {
      Result<Graph> g = ReadDimacsFile(path, directed);
      if (g.ok()) return std::move(g).value();
      std::fprintf(stderr, "failed to read %s: %s — using synthetic\n",
                   path.c_str(), g.status().ToString().c_str());
    }
  }
  RoadNetworkOptions options = spec.road;
  options.directed = directed;
  return MakeRoadNetwork(options);
}

Graph LoadScaledDataset(const DatasetSpec& spec, size_t target_vertices,
                        bool directed) {
  RoadNetworkOptions options = spec.road;
  options.directed = directed;
  double side = std::sqrt(static_cast<double>(target_vertices));
  options.rows = static_cast<uint32_t>(std::max(2.0, side));
  options.cols = options.rows;
  return MakeRoadNetwork(options);
}

}  // namespace kspdg
