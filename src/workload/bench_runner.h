// Mixed query/update benchmark harness over RoutingService.
//
// Reproduces the paper's serving scenario (§6.4): a batch of KSP queries is
// answered by concurrent reader threads while a traffic generator applies
// weight batches through the service's writer path. Results are grouped per
// backend so the DTLP-backed solver can be compared against the baselines
// under identical load, and serialised to JSON for the BENCH_* artefacts.
#ifndef KSPDG_WORKLOAD_BENCH_RUNNER_H_
#define KSPDG_WORKLOAD_BENCH_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/routing_options.h"
#include "core/status.h"

namespace kspdg {

struct BenchOptions {
  /// Dataset registry name ("NY-S", "COL-S", "FLA-S", "CUSA-S").
  std::string dataset = "NY-S";
  /// Scale the dataset down to ~this many vertices (0 = full size).
  size_t target_vertices = 4096;
  /// Paths per query.
  uint32_t k = 4;
  /// Queries issued per backend.
  size_t queries_per_backend = 48;
  /// Traffic batches applied while queries are in flight.
  size_t num_batches = 6;
  /// Concurrent reader threads.
  size_t query_threads = 4;
  /// Traffic model: fraction of edges per batch and variation range.
  double alpha = 0.35;
  double tau = 0.30;
  /// Subgraph size cap z (0 = dataset default).
  uint32_t z = 0;
  uint64_t seed = 42;
  /// Backends exercised; must all be registered.
  std::vector<std::string> backends = {kBackendKspDg, kBackendYen,
                                       kBackendFindKsp};
  /// When > 0, a batch-vs-sequential throughput phase runs after the mixed
  /// workload: the same mixed request list is answered once via sequential
  /// Query calls and once via QueryBatch in batches of this size.
  size_t batch_size = 0;
  /// Worker threads for the service's QueryBatch pool (0 = auto).
  unsigned batch_threads = 0;
  /// When > 0, a sharded-vs-unsharded phase runs after the other phases:
  /// two fresh services (one ShardedRoutingService with this many shards,
  /// one RoutingService) receive the identical traffic history and answer
  /// the same request list, and every sharded answer is checked against the
  /// unsharded one path-by-path. When batch_size is ALSO > 0, a combined
  /// shard-batch phase follows: the same request list is submitted to the
  /// sharded service asynchronously (SubmitBatch) in batches of batch_size
  /// and every answer is again checked against the unsharded sequential
  /// reference ("shard_batch" JSON object).
  size_t shards = 0;
  /// When > 0, a remote-shard phase runs after the shard phases: a
  /// RemoteShardedRoutingService with this many out-of-process shard
  /// workers and an in-process ShardedRoutingService receive the identical
  /// traffic history (cross-process two-phase epoch commit vs in-process
  /// fan-out) and answer the same request list — once via sequential remote
  /// Query calls and once via remote QueryBatch — and every remote answer
  /// is checked path-by-path against the in-process one ("remote_shard"
  /// JSON object).
  size_t remote_shards = 0;
  /// Replica workers per remote shard (>= 1; only meaningful with
  /// --remote-shards). At > 1 the remote phase additionally measures the
  /// read-scaling baseline (an identical R=1 fleet answering the same
  /// list) and runs a failover drill: one replica is killed, the full
  /// request list is re-answered (sibling failover must yield zero errors
  /// and zero mismatches), then one more traffic batch auto-restarts and
  /// catches the victim up, and the list is answered a third time against
  /// a freshly computed reference.
  size_t replicas = 1;
  /// shard_worker binary for the remote phase (empty = auto-locate next to
  /// the current executable, or $KSPDG_WORKER_BIN).
  std::string worker_binary;
  /// When > 0, an open-loop overload phase runs after the other phases: a
  /// fresh RoutingService (pristine graph copy, own registry) first answers
  /// the request list sequentially to measure its capacity (and record the
  /// reference answers), then the same requests — with rotating priorities,
  /// tenants, and per-priority deadlines — are offered open-loop at this
  /// factor times the measured capacity through SubmitBatch. The phase
  /// reports goodput, shed counts by reason, per-priority latency
  /// percentiles, and checks every served answer against the reference
  /// ("overload" JSON object).
  double overload_factor = 0;
  /// When true, a diversity phase runs after the batch phase: the mixed
  /// request list is answered once as plain kKsp and once as kDiverseKsp
  /// (over-fetch + MFP/MinHash filter), contrasting the two throughputs
  /// ("diverse" JSON object). The shard phase, when enabled, additionally
  /// appends a kDiverseKsp copy of its request list so diverse answers are
  /// parity-checked sharded vs unsharded.
  bool diverse = false;
  /// θ and over-fetch factor of the diversity phase (service defaults).
  double diverse_theta = 0.5;
  uint32_t diverse_overfetch = 4;
};

struct BackendBenchStats {
  std::string backend;
  size_t queries = 0;
  size_t errors = 0;
  size_t paths_returned = 0;
  double total_micros = 0;
  double mean_micros = 0;
  double max_micros = 0;
  /// Solve-latency percentiles over this backend's successful queries.
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  /// Epoch range observed in responses (shows the query/update interleave).
  uint64_t min_epoch = 0;
  uint64_t max_epoch = 0;
  /// Summed KSP-DG iteration counts (0 for baselines).
  uint64_t engine_iterations = 0;
};

/// Batch-vs-sequential comparison over one request list (batch phase).
struct BatchPhaseStats {
  /// Requests per QueryBatch call; 0 means the phase did not run.
  size_t batch_size = 0;
  size_t requests = 0;
  /// Item-level failures across both passes (should be 0).
  size_t errors = 0;
  /// Batches whose items disagreed on the epoch (must be 0: QueryBatch
  /// guarantees snapshot uniformity).
  size_t non_uniform_batches = 0;
  double sequential_micros = 0;
  double batch_micros = 0;
  double sequential_qps = 0;
  double batch_qps = 0;
  /// sequential_micros / batch_micros (> 1 means batching wins).
  double speedup = 0;
};

/// Sharded-vs-unsharded comparison over one request list (shard phase).
/// Parity fields must come out zero: sharding may change *where* work runs,
/// never *what* is answered.
struct ShardPhaseStats {
  /// Shards of the ShardedRoutingService; 0 means the phase did not run.
  size_t num_shards = 0;
  size_t requests = 0;
  /// kDiverseKsp requests inside `requests` (0 unless --diverse): diverse
  /// answers are parity-checked like every other kind.
  size_t diverse_requests = 0;
  /// Query failures across both services (should be 0).
  size_t errors = 0;
  /// Requests whose sharded path set differed from the unsharded one in
  /// route or distance (must be 0).
  size_t mismatches = 0;
  /// Traffic batches applied identically to both services.
  size_t batches_applied = 0;
  /// Global epoch both services ended at (they must agree).
  uint64_t final_epoch = 0;
  /// Boundary-pair partial requests served by exactly one shard vs
  /// gathered across shards (KSP-DG refine traffic).
  uint64_t direct_partials = 0;
  uint64_t scattered_partials = 0;
  /// KSP-DG queries whose partials stayed on one shard vs spanned shards.
  uint64_t single_shard_queries = 0;
  uint64_t cross_shard_queries = 0;
  /// Subgraph-ownership spread across shards (balance indicator).
  size_t min_subgraphs_per_shard = 0;
  size_t max_subgraphs_per_shard = 0;
  double sharded_micros = 0;
  double unsharded_micros = 0;
  double sharded_qps = 0;
  double unsharded_qps = 0;
};

/// Sharded async QueryBatch vs unsharded sequential comparison (combined
/// phase; runs when both --shards and --batch-size are given). The parity
/// counters must come out zero: batching and sharding may change *where*
/// and *when* work runs, never *what* is answered.
struct ShardBatchPhaseStats {
  /// Shards / batch size of the phase; 0 means the phase did not run.
  size_t num_shards = 0;
  size_t batch_size = 0;
  size_t requests = 0;
  /// Async SubmitBatch tickets issued (ceil(requests / batch_size)).
  size_t batches_submitted = 0;
  /// Item-level failures on either side (must be 0).
  size_t errors = 0;
  /// Requests whose sharded-batch path set differed from the unsharded
  /// sequential one in route or distance (must be 0).
  size_t mismatches = 0;
  /// Batches whose items disagreed on the epoch (must be 0: one read pin
  /// covers the whole batch).
  size_t non_uniform_batches = 0;
  /// Per-(shard, worker) partial-cache hits during this phase (scratch
  /// reuse evidence).
  uint64_t partial_cache_hits = 0;
  /// Boundary-pair routing split during this phase.
  uint64_t direct_partials = 0;
  uint64_t scattered_partials = 0;
  /// Solve-latency percentiles over the successful async-batch items, so
  /// latency trajectories are comparable with the batch phase's.
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  double sharded_batch_micros = 0;
  double unsharded_sequential_micros = 0;
  double sharded_batch_qps = 0;
  double unsharded_sequential_qps = 0;
  /// unsharded_sequential_micros / sharded_batch_micros (> 1 means the
  /// sharded async batch path wins).
  double speedup = 0;
};

/// Remote-vs-in-process sharded comparison over one request list (remote
/// phase). The parity counters must come out zero: moving the shards out of
/// process may add RPC hops, never change answers — remote responses are
/// byte-identical (exact routes, bit-exact distances) to the in-process
/// sharded service fed the same traffic history.
struct RemoteShardPhaseStats {
  /// Worker processes of the remote service; 0 means the phase did not run.
  size_t num_shards = 0;
  /// Replica workers per shard (1 = unreplicated fleet).
  size_t num_replicas = 0;
  size_t requests = 0;
  /// kDiverseKsp requests inside `requests` (0 unless --diverse).
  size_t diverse_requests = 0;
  /// Requests per QueryBatch call on the batched leg.
  size_t batch_size = 0;
  size_t batches_submitted = 0;
  /// Query failures across all legs (must be 0 with healthy workers).
  size_t errors = 0;
  /// Remote answers that differed from the in-process ones in route or
  /// distance, across both legs (must be 0).
  size_t mismatches = 0;
  /// Traffic batches applied identically to both services (two-phase epoch
  /// commit across the worker fleet on the remote side).
  size_t batches_applied = 0;
  /// Global epoch both services ended at (they must agree).
  uint64_t final_epoch = 0;
  /// Transport totals across the worker fleet.
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_deadline_expired = 0;
  /// Workers respawned during the phase (0 unless the failover drill ran,
  /// which respawns its one victim).
  uint64_t worker_restarts = 0;
  /// Replicas replayed back to the committed epoch (respawn or in-place;
  /// >= 1 after the failover drill).
  uint64_t replica_catchups = 0;
  /// Partial fetches served per replica, fleet order (shard-major:
  /// shard * num_replicas + replica) — the read-rotation share.
  std::vector<uint64_t> reads_by_replica;
  /// Sequential-leg throughput of an identical R=1 fleet over the same
  /// traffic + request list (read-scaling baseline; 0 unless replicas > 1).
  double baseline_r1_qps = 0;
  /// Failover drill totals (0 unless replicas > 1): requests across the
  /// kill pass and the post-catch-up pass; errors and mismatches must be 0
  /// — a kill behind a live sibling is answer-invisible.
  size_t failover_requests = 0;
  size_t failover_errors = 0;
  size_t failover_mismatches = 0;
  /// Per-(shard, worker) partial-cache traffic on the coordinator.
  uint64_t partial_cache_hits = 0;
  uint64_t partial_cache_skips = 0;
  /// Boundary-pair partials routed to exactly one worker vs gathered.
  uint64_t direct_partials = 0;
  uint64_t scattered_partials = 0;
  double remote_micros = 0;
  double remote_batch_micros = 0;
  double inprocess_micros = 0;
  double remote_qps = 0;
  double remote_batch_qps = 0;
  double inprocess_qps = 0;
};

/// Diverse-vs-plain KSP comparison over one request list (diverse phase).
/// The same endpoints and backends are answered once as kKsp (k paths) and
/// once as kDiverseKsp (k' = k * overfetch candidates filtered to <= k
/// pairwise-dissimilar routes), so `overhead` isolates what the §4 pipeline
/// costs on the query path.
struct DiversePhaseStats {
  /// Requests per pass; 0 means the phase did not run.
  size_t requests = 0;
  /// Query failures across both passes (should be 0).
  size_t errors = 0;
  uint32_t k = 0;
  uint32_t overfetch = 0;
  double theta = 0;
  /// Summed over the diverse responses.
  size_t candidates_total = 0;
  size_t kept_total = 0;
  size_t filtered_total = 0;
  /// Per-query kept-count range (kept == k everywhere when the graph offers
  /// enough dissimilar routes).
  size_t kept_min = 0;
  size_t kept_max = 0;
  /// Mean over queries of the per-query mean pairwise similarity, and the
  /// maximum pairwise similarity any query reported (<= θ by construction).
  double mean_pairwise_similarity = 0;
  double max_pairwise_similarity = 0;
  /// Per-query EP-Index totals: raw (edge, path) incidences vs MFP path
  /// nodes, and their ratio (< 1 means the trees compressed).
  size_t ep_raw_entries = 0;
  size_t ep_path_nodes = 0;
  double mfp_compression_ratio = 0;
  /// Solve-latency percentiles over the successful diverse queries.
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  double plain_micros = 0;
  double diverse_micros = 0;
  double plain_qps = 0;
  double diverse_qps = 0;
  /// diverse_micros / plain_micros (> 1 means diversity costs throughput).
  double overhead = 0;
};

/// One priority class's slice of the overload phase.
struct OverloadPriorityStats {
  /// Requests offered with this priority.
  size_t issued = 0;
  /// Requests admitted, solved, and answered OK.
  size_t served = 0;
  /// Requests shed because their deadline expired before solving.
  size_t shed_deadline = 0;
  /// Requests shed by quota/queue pressure (kResourceExhausted).
  size_t shed_quota = 0;
  /// Any other failure (must be 0).
  size_t errors = 0;
  /// served / elapsed seconds of the overload window.
  double goodput_qps = 0;
  /// Submit-to-completion latency percentiles over served requests.
  double p50_micros = 0;
  double p99_micros = 0;
};

/// Open-loop overload phase ("overload" JSON object): load is offered at
/// `factor` x the service's measured sequential capacity, with mixed
/// priorities, per-tenant quotas, and per-priority deadlines, so admission
/// control has to choose. The accounting is exact: every offered request is
/// served, shed-on-deadline, or shed-on-quota — never silently dropped and
/// never blocked — and every served answer must match the no-pressure
/// reference path-for-path.
struct OverloadPhaseStats {
  /// Offered-load multiplier; 0 means the phase did not run.
  double factor = 0;
  /// Requests offered during the overload window.
  size_t requests = 0;
  /// Queue capacity / per-tenant quota / tenant count the phase ran with.
  size_t queue_capacity = 0;
  size_t per_tenant_quota = 0;
  size_t num_tenants = 0;
  /// Sequential no-pressure throughput measured before the overload window
  /// (the capacity the offered load is a multiple of).
  double capacity_qps = 0;
  /// requests / elapsed seconds actually achieved by the open-loop pacer.
  double offered_qps = 0;
  /// Admission outcomes; admitted + shed_deadline + shed_quota == requests.
  size_t admitted = 0;
  size_t shed_deadline = 0;
  size_t shed_quota = 0;
  /// admitted + shed_deadline + shed_quota, so the identity above is
  /// checkable with one `--check overload.accounted == overload.requests`.
  size_t accounted = 0;
  /// Non-admission failures (must be 0).
  size_t errors = 0;
  /// Served answers that differed from the no-pressure reference (must be
  /// 0: pressure may shed work, never corrupt it).
  size_t mismatches = 0;
  /// The service registry's own admission counters over the phase
  /// (AdmissionCountersFrom); must agree with the harness tallies above.
  uint64_t registry_admitted = 0;
  uint64_t registry_shed_deadline = 0;
  uint64_t registry_shed_quota = 0;
  double elapsed_micros = 0;
  /// admitted / elapsed seconds across all priorities.
  double goodput_qps = 0;
  /// Per-priority slices, indexed by RequestPriority (interactive, normal,
  /// batch).
  OverloadPriorityStats per_priority[3];
};

/// Registry-derived counter deltas for one bench phase, paired with the
/// number of requests the harness actually handed to that service, so the
/// invariant "every issued request is accounted exactly once as ok or
/// rejected" is checkable from the JSON alone.
struct PhaseMetricsSummary {
  /// Requests the harness issued: every Query call, plus every item of a
  /// batch call that returned a response.
  size_t issued_requests = 0;
  /// queries_ok_total + queries_rejected_total over the phase (must equal
  /// issued_requests).
  uint64_t queries_total = 0;
  uint64_t queries_rejected_total = 0;
  /// partial_cache_hits_total over the phase (sharded services only).
  uint64_t partial_cache_hits = 0;
};

/// Metrics-registry cross-check of the bench ("metrics" JSON object): the
/// services' own registries must agree with what the harness issued.
struct BenchMetricsSummary {
  /// Mixed-workload service, cumulative over the mixed, batch and diverse
  /// phases.
  PhaseMetricsSummary mixed;
  /// Sharded service, delta over the async shard-batch phase only.
  PhaseMetricsSummary shard_batch;
  /// Remote service, delta over both remote legs.
  PhaseMetricsSummary remote_shard;
  /// Worker registries present in the remote fleet snapshot (one per
  /// reporting worker; 0 when the remote phase did not run).
  size_t worker_snapshots = 0;
};

struct BenchReport {
  std::string dataset;
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t num_subgraphs = 0;
  uint32_t k = 0;
  double index_build_micros = 0;
  size_t batches_applied = 0;
  /// Batches the service rejected (should be 0; nonzero means the traffic
  /// model and the service disagree about the graph).
  size_t batch_errors = 0;
  size_t updates_applied = 0;
  /// Wall time of *successful* batch applications only.
  double update_total_micros = 0;
  /// Apply-latency percentiles over successful traffic batches.
  double update_p50_micros = 0;
  double update_p95_micros = 0;
  double update_p99_micros = 0;
  /// CANDS rebuild-on-update maintenance across the mixed phase's traffic
  /// batches (inside update_total_micros): the expensive half of the
  /// paper's Figures 40-41 contrast with the DTLP's incremental Algorithm 2.
  size_t cands_subgraphs_rebuilt = 0;
  size_t cands_pair_paths_recomputed = 0;
  double cands_rebuild_micros = 0;
  uint64_t final_epoch = 0;
  std::vector<BackendBenchStats> backends;
  /// Batch-vs-sequential phase (batch_size 0 when not requested).
  BatchPhaseStats batch;
  /// Diverse-vs-plain phase (requests 0 when not requested).
  DiversePhaseStats diverse;
  /// Sharded-vs-unsharded phase (num_shards 0 when not requested).
  ShardPhaseStats shard;
  /// Combined sharded-batch phase (num_shards 0 when not requested).
  ShardBatchPhaseStats shard_batch;
  /// Remote-vs-in-process sharded phase (num_shards 0 when not requested).
  RemoteShardPhaseStats remote_shard;
  /// Open-loop admission-control phase (factor 0 when not requested).
  OverloadPhaseStats overload;
  /// Registry cross-check over the phases above ("metrics" JSON object).
  BenchMetricsSummary metrics;
  /// Full merged metrics snapshot of every service the bench built, each
  /// sample tagged {service="mixed"|"sharded"|"remote"} (the remote fleet's
  /// worker registries ride along with their shard labels). Strict JSON;
  /// written to a separate file via kspdg_bench --metrics-out, not embedded
  /// in ToJson().
  std::string metrics_export;

  /// Pretty-printed JSON object (stable key order).
  std::string ToJson() const;
};

/// Builds the service for `options.dataset` and drives the mixed workload.
Result<BenchReport> RunMixedBench(const BenchOptions& options);

}  // namespace kspdg

#endif  // KSPDG_WORKLOAD_BENCH_RUNNER_H_
