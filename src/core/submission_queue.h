// Bounded job queue backing the asynchronous batch-submission APIs.
//
// SubmitBatch must let a caller overlap request production with solving
// without letting it run unboundedly ahead: the queue holds at most
// `capacity` pending jobs and Submit blocks once it is full, so a producer
// that outpaces the solver is throttled to the solver's speed instead of
// buffering an unbounded backlog. Dedicated worker threads drain the queue
// in FIFO order; Shutdown stops intake, drains what was accepted, and joins
// the workers — every accepted job runs exactly once.
#ifndef KSPDG_CORE_SUBMISSION_QUEUE_H_
#define KSPDG_CORE_SUBMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace kspdg {

/// Optional telemetry for one SubmissionQueue (no-op handles by default).
/// Depth is exported by the owning service as a gauge callback over
/// pending(); these cover the part only the queue can see — backpressure.
struct SubmissionQueueMetrics {
  /// Submit calls that found the queue full and had to wait.
  Counter enqueue_blocked_total;
  /// How long each blocked Submit stalled before its job was accepted.
  Histogram enqueue_block_micros;
};

/// Bounded multi-producer job queue with owned worker threads (see file
/// comment). All methods are thread-safe.
class SubmissionQueue {
 public:
  /// A queue admitting up to `capacity` pending jobs (0 is treated as 1),
  /// drained by `num_workers` dedicated threads (0 is treated as 1).
  explicit SubmissionQueue(size_t capacity, unsigned num_workers = 1,
                           SubmissionQueueMetrics metrics = {});

  /// Shutdown() + join: blocks until every accepted job has run.
  ~SubmissionQueue();

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Enqueues one job. Blocks while the queue is full (backpressure).
  /// Returns true if the job was accepted; false if the queue has been shut
  /// down, in which case the job will never run.
  bool Submit(std::function<void()> job);

  /// Stops accepting jobs. Already-accepted jobs still run to completion;
  /// idempotent. Does not wait (the destructor joins).
  void Shutdown();

  /// Jobs accepted but not yet started (snapshot).
  size_t pending() const;

  size_t capacity() const { return capacity_; }

  /// Jobs accepted / finished so far (monotone counters, for monitoring
  /// and tests).
  uint64_t submitted() const;
  uint64_t completed() const;

 private:
  void WorkerLoop();

  const size_t capacity_;
  const SubmissionQueueMetrics metrics_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_full_;   // producers wait here
  std::condition_variable cv_not_empty_;  // workers wait here
  std::deque<std::function<void()>> jobs_;
  bool shutdown_ = false;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_SUBMISSION_QUEUE_H_
