// Admission-controlled job queue backing the asynchronous batch-submission
// APIs.
//
// Two submission contracts share one queue:
//
//   Submit(job)           — the original bounded-FIFO contract. Blocks while
//                           the queue is full (backpressure), so a producer
//                           that outpaces the solver is throttled instead of
//                           buffering an unbounded backlog. Such jobs are
//                           never shed or displaced.
//   Submit(context, job)  — the QoS contract for work carrying a
//                           RequestContext. NEVER blocks: work the queue
//                           cannot take now is shed immediately with an
//                           AdmissionOutcome instead of stalling the caller.
//
// Dequeue order is strict priority (kInteractive > kNormal > kBatch) with
// FIFO within a class. Admission applies three policies to QoS work:
//
//   deadlines  — a job whose deadline has already passed is answered
//                immediately (kShedDeadline) at submit time; a job whose
//                deadline passes while queued is answered the moment a
//                worker dequeues it, without running the solve.
//   quotas     — a tenant with `per_tenant_quota` jobs already pending is
//                shed (kShedQuota) instead of monopolising the queue.
//   eviction   — when the queue is full, a strictly more urgent arrival
//                displaces the newest queued job of the least urgent class
//                (evicted job answered kShedQuota); if nothing less urgent
//                is queued, the arrival itself is shed. Blocking-contract
//                jobs are never displaced.
//
// Every admitted job's callback is invoked exactly once — with kServed when
// it ran, or a shed outcome when admission answered for it. Shutdown stops
// intake, drains what was accepted, and joins the workers.
#ifndef KSPDG_CORE_SUBMISSION_QUEUE_H_
#define KSPDG_CORE_SUBMISSION_QUEUE_H_

#include <array>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"

namespace kspdg {

/// Optional telemetry for one SubmissionQueue (no-op handles by default).
/// Depth is exported by the owning service as a gauge callback over
/// pending(); these cover the events only the queue can see.
struct SubmissionQueueMetrics {
  /// Blocking-contract Submit calls that found the queue full and waited.
  Counter enqueue_blocked_total;
  /// How long each blocked Submit stalled before its job was accepted.
  Histogram enqueue_block_micros;
  /// QoS jobs shed because their deadline expired (at submit or dequeue).
  Counter shed_deadline_total;
  /// QoS jobs shed by load control (tenant quota, full queue, eviction).
  Counter shed_quota_total;
};

/// Admission-policy knobs for the QoS submission contract.
struct AdmissionOptions {
  /// Max jobs one tenant_id may hold pending at once (0 = unlimited).
  /// Jobs with an empty tenant_id are unmetered.
  size_t per_tenant_quota = 0;
};

/// What Submit(context, job) decided. On kAdmitted the job's callback fires
/// later from a worker; on a shed outcome it already fired (on the calling
/// thread) before Submit returned; on kRefused (shutdown) it never fires.
enum class SubmitOutcome : uint8_t {
  kAdmitted = 0,
  kShedDeadline = 1,
  kShedQuota = 2,
  kRefused = 3,
};

/// A QoS job: invoked exactly once with the admission decision. kServed
/// means "run now"; a shed outcome means "answer for yourself without
/// doing the work".
using AdmissionJob = std::function<void(AdmissionOutcome)>;

/// Bounded multi-producer job queue with owned worker threads (see file
/// comment). All methods are thread-safe.
class SubmissionQueue {
 public:
  /// A queue admitting up to `capacity` pending jobs (0 is treated as 1),
  /// drained by `num_workers` dedicated threads (0 is treated as 1).
  explicit SubmissionQueue(size_t capacity, unsigned num_workers = 1,
                           SubmissionQueueMetrics metrics = {},
                           AdmissionOptions admission = {});

  /// Shutdown() + join: blocks until every accepted job has run.
  ~SubmissionQueue();

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Blocking contract: enqueues one job at kNormal priority. Blocks while
  /// the queue is full (backpressure); the job is never shed or displaced.
  /// Returns true if the job was accepted; false if the queue has been shut
  /// down, in which case the job will never run.
  [[nodiscard]] bool Submit(std::function<void()> job);

  /// QoS contract: admission-controlled, never blocks (see file comment).
  [[nodiscard]] SubmitOutcome Submit(const RequestContext& context,
                                     AdmissionJob job);

  /// Stops accepting jobs. Already-accepted jobs still run to completion
  /// (dequeue-time deadline shedding still applies); idempotent. Does not
  /// wait (the destructor joins).
  void Shutdown();

  /// Jobs accepted but not yet started (snapshot), total / per class.
  size_t pending() const;
  size_t pending(RequestPriority priority) const;

  size_t capacity() const { return capacity_; }

  /// Monotone counters for monitoring and tests. `submitted` counts
  /// admitted jobs; `completed` counts admitted jobs whose callback has
  /// been invoked (served or shed after admission), so
  /// pending() == submitted() - completed() - running. Jobs shed at submit
  /// time count only in the shed counters.
  uint64_t submitted() const;
  uint64_t completed() const;
  uint64_t shed_deadline() const;
  uint64_t shed_quota() const;

 private:
  struct Entry {
    AdmissionJob job;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::string tenant;
    /// Blocking-contract jobs are not evictable and never deadline-shed.
    bool evictable = false;
  };

  void WorkerLoop();
  /// Total queued jobs across all classes.
  size_t TotalPendingLocked() const REQUIRES(mu_);
  /// Removes one queued charge for `tenant`.
  void ReleaseTenantLocked(const std::string& tenant) REQUIRES(mu_);

  const size_t capacity_;
  const SubmissionQueueMetrics metrics_;
  const AdmissionOptions admission_;
  mutable Mutex mu_{"SubmissionQueue::mu_"};
  CondVar cv_not_full_;   // blocking producers wait here
  CondVar cv_not_empty_;  // workers wait here
  /// One FIFO per priority class, indexed by RequestPriority.
  std::array<std::deque<Entry>, kNumPriorities> classes_ GUARDED_BY(mu_);
  std::map<std::string, size_t> tenant_pending_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  uint64_t submitted_ GUARDED_BY(mu_) = 0;
  uint64_t completed_ GUARDED_BY(mu_) = 0;
  uint64_t shed_deadline_ GUARDED_BY(mu_) = 0;
  uint64_t shed_quota_ GUARDED_BY(mu_) = 0;
  std::vector<std::thread> workers_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_SUBMISSION_QUEUE_H_
