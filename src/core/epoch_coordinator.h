// Epoch bookkeeping AND the snapshot-locking protocol for services whose
// state is split across N shards.
//
// A sharded service wants the same client-visible contract as a single
// EpochLock service: every response names ONE epoch, and an epoch means "all
// shards reflect exactly the traffic batches numbered 1..epoch". The
// coordinator owns everything that contract needs — the committed global
// epoch, the per-shard published epochs, the global reader/writer lock, and
// one reader/writer lock per shard — so there is exactly one implementation
// of the locking protocol for every front-end path (single query, batch
// query, traffic batch).
//
// Write protocol (the service's ApplyTrafficBatch):
//
//   std::unique_lock<EpochLock> lock(coordinator.global_lock());
//   uint64_t next = coordinator.BeginAdvance();
//   ... fan the batch out; each shard worker takes
//       std::unique_lock<EpochLock>(coordinator.shard_lock(i)),
//       applies its slice, then coordinator.PublishShard(i, next) ...
//   coordinator.Commit(next);                     // all shards published
//
// Read protocol: construct a ReadPin. The pin holds the global lock shared,
// which freezes the committed epoch of EVERY shard at once (writers take the
// global lock exclusively before touching any shard), so a whole batch of
// queries — including partial requests that hop across shards — observes one
// coherent multi-shard snapshot; a concurrent traffic batch can never tear
// it. Per-shard epochs are atomics so monitoring can sample them without
// taking any lock; the advance protocol itself must be serialised by the
// caller (exactly one writer between BeginAdvance and Commit, which the
// global exclusive lock provides).
#ifndef KSPDG_CORE_EPOCH_COORDINATOR_H_
#define KSPDG_CORE_EPOCH_COORDINATOR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/epoch_lock.h"
#include "core/thread_annotations.h"

namespace kspdg {

class EpochCoordinator {
 public:
  /// A coordinator over `num_shards` shards, all at epoch 0.
  explicit EpochCoordinator(size_t num_shards)
      : shard_epochs_(std::make_unique<std::atomic<uint64_t>[]>(num_shards)),
        shard_locks_(std::make_unique<EpochLock[]>(num_shards)),
        num_shards_(num_shards) {
    for (size_t i = 0; i < num_shards; ++i) {
      shard_epochs_[i] = 0;
      // One role, one lock-order node: an inversion against ANY shard lock
      // is caught, while sibling shard locks stay unordered (lock_order.h).
      shard_locks_[i].set_name("EpochCoordinator::shard_lock");
    }
  }

  size_t num_shards() const { return num_shards_; }

  /// The committed global epoch: every shard reflects batches 1..global().
  uint64_t global() const { return global_.load(std::memory_order_acquire); }

  /// The epoch shard `shard` last published. Between BeginAdvance and Commit
  /// this may lead global() by one; it never lags it.
  uint64_t shard(size_t shard) const {
    assert(shard < num_shards_);
    return shard_epochs_[shard].load(std::memory_order_acquire);
  }

  /// Global snapshot lock: readers pin the whole multi-shard snapshot via a
  /// ReadPin; the writer holds it exclusively across one epoch advance.
  /// Write-preferring, so traffic batches cannot starve under query churn.
  EpochLock& global_lock() const { return global_lock_; }

  /// Lock guarding shard `shard`'s slice of the snapshot state. Nests
  /// strictly inside global_lock(): readers take it through
  /// ReadPin::LockShard while the pin is held; the writer's per-shard
  /// fan-out workers take it exclusively under the global exclusive lock.
  EpochLock& shard_lock(size_t shard) const {
    assert(shard < num_shards_);
    return shard_locks_[shard];
  }

  /// RAII multi-shard read pin: holds global_lock() shared, freezing the
  /// committed epoch of every shard for the pin's lifetime. One pin may
  /// serve many queries (a whole QueryBatch) and its shard locks may be
  /// taken from any thread while the pin is held — the owning thread of the
  /// pin must simply outlive those uses.
  class ReadPin {
   public:
    // The shared hold spans the pin's lifetime — an object-lifetime
    // contract that function-scope thread-safety analysis cannot express,
    // hence the explicit lock calls with the analysis off. The lock-order
    // checker still sees both operations.
    explicit ReadPin(const EpochCoordinator& coordinator)
        NO_THREAD_SAFETY_ANALYSIS : coordinator_(coordinator) {
      coordinator.global_lock().lock_shared();
      epoch_ = coordinator.global();
      // A committed snapshot is consistent by construction; a failure here
      // means a writer touched shard state outside the advance protocol.
      assert(coordinator.Consistent());
    }

    ~ReadPin() NO_THREAD_SAFETY_ANALYSIS {
      coordinator_.global_lock().unlock_shared();
    }

    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

    /// The global epoch pinned at construction; stable until the pin drops.
    uint64_t epoch() const { return epoch_; }

    /// Epoch of shard `shard`; under a pin this always equals epoch().
    uint64_t shard_epoch(size_t shard) const {
      return coordinator_.shard(shard);
    }

    /// Shared hold on one shard's slice for the duration of a partial
    /// computation — the in-process stand-in for shipping the request to
    /// the shard's worker with its state frozen while it computes. Returned
    /// by value (guaranteed copy elision); the ACQUIRE_SHARED annotation
    /// tells the analysis the returned guard holds the shard's lock.
    EpochReaderLock LockShard(size_t shard) const
        ACQUIRE_SHARED(coordinator_.shard_lock(shard)) {
      return EpochReaderLock(coordinator_.shard_lock(shard));
    }

   private:
    const EpochCoordinator& coordinator_;
    uint64_t epoch_;
  };

  /// Starts one global advance and returns the epoch being entered
  /// (global() + 1). Caller must hold global_lock() exclusively.
  uint64_t BeginAdvance() {
    assert(!advancing_ && "advance already in progress");
    advancing_ = true;
    return global_.load(std::memory_order_relaxed) + 1;
  }

  /// Records that shard `shard` has fully applied the batch for `epoch`.
  /// Safe to call from the per-shard worker threads of one advance (each
  /// shard publishes exactly once).
  void PublishShard(size_t shard, uint64_t epoch) {
    assert(shard < num_shards_);
    assert(epoch == global_.load(std::memory_order_relaxed) + 1);
    shard_epochs_[shard].store(epoch, std::memory_order_release);
  }

  /// Commits the advance begun by BeginAdvance: every shard must have
  /// published `epoch`. After Commit, global() == epoch.
  void Commit(uint64_t epoch) {
    assert(advancing_);
    assert(epoch == global_.load(std::memory_order_relaxed) + 1);
    for (size_t i = 0; i < num_shards_; ++i) {
      assert(shard_epochs_[i].load(std::memory_order_relaxed) == epoch &&
             "Commit before every shard published");
      (void)i;
    }
    advancing_ = false;
    global_.store(epoch, std::memory_order_release);
  }

  /// True iff every shard sits exactly at the committed global epoch (i.e.
  /// no advance is mid-flight and no shard was skipped).
  bool Consistent() const {
    uint64_t g = global();
    for (size_t i = 0; i < num_shards_; ++i) {
      if (shard(i) != g) return false;
    }
    return true;
  }

 private:
  std::atomic<uint64_t> global_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> shard_epochs_;
  /// Mutable so const service query paths can pin the snapshot; the locks
  /// carry no logical state of the coordinator.
  mutable EpochLock global_lock_{"EpochCoordinator::global_lock"};
  mutable std::unique_ptr<EpochLock[]> shard_locks_;
  size_t num_shards_;
  bool advancing_ = false;  // debug-only: guards against overlapping advances
};

}  // namespace kspdg

#endif  // KSPDG_CORE_EPOCH_COORDINATOR_H_
