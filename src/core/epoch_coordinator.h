// Epoch bookkeeping for services whose snapshot state is split across N
// shards.
//
// A sharded service wants the same client-visible contract as a single
// EpochLock service: every response names ONE epoch, and an epoch means "all
// shards reflect exactly the traffic batches numbered 1..epoch". The
// coordinator makes that protocol explicit:
//
//   uint64_t next = coordinator.BeginAdvance();   // writer, global lock held
//   ... fan the batch out; each shard worker applies its slice ...
//   coordinator.PublishShard(shard, next);        // per shard, as it finishes
//   coordinator.Commit(next);                     // all shards published
//
// Readers call global() for the committed epoch and Consistent() to assert
// that no shard lags or leads it — the invariant the parity tests pin down.
// Per-shard epochs are atomics so monitoring can sample them without taking
// the service's locks; the advance protocol itself must be serialised by the
// caller (exactly one writer between BeginAdvance and Commit, which the
// owning service's exclusive snapshot lock provides).
#ifndef KSPDG_CORE_EPOCH_COORDINATOR_H_
#define KSPDG_CORE_EPOCH_COORDINATOR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace kspdg {

class EpochCoordinator {
 public:
  /// A coordinator over `num_shards` shards, all at epoch 0.
  explicit EpochCoordinator(size_t num_shards)
      : shard_epochs_(std::make_unique<std::atomic<uint64_t>[]>(num_shards)),
        num_shards_(num_shards) {
    for (size_t i = 0; i < num_shards; ++i) shard_epochs_[i] = 0;
  }

  size_t num_shards() const { return num_shards_; }

  /// The committed global epoch: every shard reflects batches 1..global().
  uint64_t global() const { return global_.load(std::memory_order_acquire); }

  /// The epoch shard `shard` last published. Between BeginAdvance and Commit
  /// this may lead global() by one; it never lags it.
  uint64_t shard(size_t shard) const {
    assert(shard < num_shards_);
    return shard_epochs_[shard].load(std::memory_order_acquire);
  }

  /// Starts one global advance and returns the epoch being entered
  /// (global() + 1). Caller must hold the service's exclusive snapshot lock.
  uint64_t BeginAdvance() {
    assert(!advancing_ && "advance already in progress");
    advancing_ = true;
    return global_.load(std::memory_order_relaxed) + 1;
  }

  /// Records that shard `shard` has fully applied the batch for `epoch`.
  /// Safe to call from the per-shard worker threads of one advance (each
  /// shard publishes exactly once).
  void PublishShard(size_t shard, uint64_t epoch) {
    assert(shard < num_shards_);
    assert(epoch == global_.load(std::memory_order_relaxed) + 1);
    shard_epochs_[shard].store(epoch, std::memory_order_release);
  }

  /// Commits the advance begun by BeginAdvance: every shard must have
  /// published `epoch`. After Commit, global() == epoch.
  void Commit(uint64_t epoch) {
    assert(advancing_);
    assert(epoch == global_.load(std::memory_order_relaxed) + 1);
    for (size_t i = 0; i < num_shards_; ++i) {
      assert(shard_epochs_[i].load(std::memory_order_relaxed) == epoch &&
             "Commit before every shard published");
      (void)i;
    }
    advancing_ = false;
    global_.store(epoch, std::memory_order_release);
  }

  /// True iff every shard sits exactly at the committed global epoch (i.e.
  /// no advance is mid-flight and no shard was skipped).
  bool Consistent() const {
    uint64_t g = global();
    for (size_t i = 0; i < num_shards_; ++i) {
      if (shard(i) != g) return false;
    }
    return true;
  }

 private:
  std::atomic<uint64_t> global_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> shard_epochs_;
  size_t num_shards_;
  bool advancing_ = false;  // debug-only: guards against overlapping advances
};

}  // namespace kspdg

#endif  // KSPDG_CORE_EPOCH_COORDINATOR_H_
