// Write-preferring reader/writer lock for epoch-snapshot services.
//
// std::shared_mutex (pthread rwlock) may starve writers indefinitely under
// continuous reader churn — on a loaded query service the weight-update
// path would never run. EpochLock gives writers strict preference: once a
// writer is waiting, new readers queue behind it, the writer drains the
// active readers, applies its batch, and readers resume. This is the
// "drain readers, apply, bump epoch" discipline RoutingService relies on.
//
// Meets the SharedMutex named requirements, so it drops into
// std::shared_lock / std::unique_lock.
#ifndef KSPDG_CORE_EPOCH_LOCK_H_
#define KSPDG_CORE_EPOCH_LOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace kspdg {

class EpochLock {
 public:
  EpochLock() = default;
  EpochLock(const EpochLock&) = delete;
  EpochLock& operator=(const EpochLock&) = delete;

  // --- exclusive (writer) ---------------------------------------------------
  void lock() {
    std::unique_lock<std::mutex> guard(mu_);
    ++waiting_writers_;
    cv_writers_.wait(guard,
                     [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> guard(mu_);
    if (writer_active_ || active_readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::lock_guard<std::mutex> guard(mu_);
    writer_active_ = false;
    // Wake a queued writer first; readers get the gap only when no writer
    // is waiting.
    if (waiting_writers_ > 0) {
      cv_writers_.notify_one();
    } else {
      cv_readers_.notify_all();
    }
  }

  // --- shared (readers) -----------------------------------------------------
  void lock_shared() {
    std::unique_lock<std::mutex> guard(mu_);
    cv_readers_.wait(
        guard, [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> guard(mu_);
    if (writer_active_ || waiting_writers_ > 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() {
    std::lock_guard<std::mutex> guard(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      cv_writers_.notify_one();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_readers_;
  std::condition_variable cv_writers_;
  uint32_t active_readers_ = 0;
  uint32_t waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_EPOCH_LOCK_H_
