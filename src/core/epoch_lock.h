// Write-preferring reader/writer lock for epoch-snapshot services.
//
// std::shared_mutex (pthread rwlock) may starve writers indefinitely under
// continuous reader churn — on a loaded query service the weight-update
// path would never run. EpochLock gives writers strict preference: once a
// writer is waiting, new readers queue behind it, the writer drains the
// active readers, applies its batch, and readers resume. This is the
// "drain readers, apply, bump epoch" discipline RoutingService relies on.
//
// Meets the SharedMutex named requirements, so it drops into
// std::shared_lock / std::unique_lock.
#ifndef KSPDG_CORE_EPOCH_LOCK_H_
#define KSPDG_CORE_EPOCH_LOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "core/timer.h"
#include "obs/metrics.h"

namespace kspdg {

/// Write-preferring shared/exclusive lock (see file comment). Readers hold
/// it shared for the duration of one snapshot read (a query); the writer
/// holds it exclusive while moving the protected state to the next epoch.
/// Not reentrant in either mode.
class EpochLock {
 public:
  EpochLock() = default;
  EpochLock(const EpochLock&) = delete;
  EpochLock& operator=(const EpochLock&) = delete;

  // --- exclusive (writer) ---------------------------------------------------

  /// Wires writer-drain telemetry: `drains` counts exclusive acquisitions
  /// and `wait_micros` records how long each writer waited for the active
  /// readers to drain. Handles are stored under the internal mutex, so
  /// instrumentation may be attached while the lock is in use (services do
  /// it once at Create).
  void InstrumentWriter(Counter drains, Histogram wait_micros) {
    std::lock_guard<std::mutex> guard(mu_);
    writer_drains_ = drains;
    writer_wait_micros_ = wait_micros;
  }

  /// Acquires the lock exclusively: registers as a waiting writer (which
  /// blocks new readers), waits for the active readers to drain, then owns
  /// the state alone until unlock(). Blocking; not reentrant.
  void lock() {
    WallTimer drain_timer;
    std::unique_lock<std::mutex> guard(mu_);
    ++waiting_writers_;
    cv_writers_.wait(guard,
                     [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
    writer_drains_.Increment();
    writer_wait_micros_.Observe(drain_timer.ElapsedMicros());
  }

  /// Acquires exclusively iff no reader or writer currently holds the lock;
  /// never blocks and never queues. Returns true on success.
  bool try_lock() {
    std::lock_guard<std::mutex> guard(mu_);
    if (writer_active_ || active_readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  /// Releases exclusive ownership. A queued writer is woken before any
  /// reader, so back-to-back update batches cannot be interleaved by
  /// queries sneaking in between them.
  void unlock() {
    std::lock_guard<std::mutex> guard(mu_);
    writer_active_ = false;
    // Wake a queued writer first; readers get the gap only when no writer
    // is waiting.
    if (waiting_writers_ > 0) {
      cv_writers_.notify_one();
    } else {
      cv_readers_.notify_all();
    }
  }

  // --- shared (readers) -----------------------------------------------------

  /// Acquires the lock shared. Blocks while a writer is active OR waiting —
  /// that queueing-behind-writers rule is what makes the lock
  /// write-preferring. Any number of readers may hold the lock at once.
  void lock_shared() {
    std::unique_lock<std::mutex> guard(mu_);
    cv_readers_.wait(
        guard, [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  /// Acquires shared iff no writer is active or waiting; never blocks.
  /// Returns true on success.
  bool try_lock_shared() {
    std::lock_guard<std::mutex> guard(mu_);
    if (writer_active_ || waiting_writers_ > 0) return false;
    ++active_readers_;
    return true;
  }

  /// Releases one shared hold; the last reader out hands the lock to a
  /// waiting writer.
  void unlock_shared() {
    std::lock_guard<std::mutex> guard(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      cv_writers_.notify_one();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_readers_;
  std::condition_variable cv_writers_;
  uint32_t active_readers_ = 0;
  uint32_t waiting_writers_ = 0;
  bool writer_active_ = false;
  /// Optional telemetry (no-op handles until InstrumentWriter); touched
  /// only under mu_, on the writer path.
  Counter writer_drains_;
  Histogram writer_wait_micros_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_EPOCH_LOCK_H_
