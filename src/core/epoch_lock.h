// Write-preferring reader/writer lock for epoch-snapshot services.
//
// std::shared_mutex (pthread rwlock) may starve writers indefinitely under
// continuous reader churn — on a loaded query service the weight-update
// path would never run. EpochLock gives writers strict preference: once a
// writer is waiting, new readers queue behind it, the writer drains the
// active readers, applies its batch, and readers resume. This is the
// "drain readers, apply, bump epoch" discipline RoutingService relies on.
//
// Meets the SharedMutex named requirements, so it drops into
// std::shared_lock / std::unique_lock; first-party code uses the annotated
// EpochWriterLock / EpochReaderLock guards below, which thread-safety
// analysis can follow (the std adapters live in system headers it cannot
// see into).
#ifndef KSPDG_CORE_EPOCH_LOCK_H_
#define KSPDG_CORE_EPOCH_LOCK_H_

#include <cstdint>

#include "core/lock_order.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/timer.h"
#include "obs/metrics.h"

namespace kspdg {

/// Write-preferring shared/exclusive lock (see file comment). Readers hold
/// it shared for the duration of one snapshot read (a query); the writer
/// holds it exclusive while moving the protected state to the next epoch.
/// Not reentrant in either mode.
///
/// The lock is itself a CAPABILITY, so services annotate their snapshot
/// state GUARDED_BY the EpochLock instance; the lock-order checker sees it
/// under the role name passed at construction. The internal mu_ below is a
/// strict leaf: the public capability is reported to the order graph only
/// outside the internal critical section, so "EpochLock::mu_" never gains
/// outgoing edges and cannot fabricate a cycle between its owners.
class CAPABILITY("epoch_lock") EpochLock {
 public:
  EpochLock() = default;
  /// `name` labels this lock in lock-order diagnostics (instances sharing a
  /// role share a name, e.g. every per-shard lock is
  /// "EpochCoordinator::shard_lock"). Must outlive the lock.
  explicit EpochLock(const char* name) : name_(name) {}

  EpochLock(const EpochLock&) = delete;
  EpochLock& operator=(const EpochLock&) = delete;

  // --- exclusive (writer) ---------------------------------------------------

  /// Wires writer-drain telemetry: `drains` counts exclusive acquisitions
  /// and `wait_micros` records how long each writer waited for the active
  /// readers to drain. Handles are stored under the internal mutex, so
  /// instrumentation may be attached while the lock is in use (services do
  /// it once at Create).
  void InstrumentWriter(Counter drains, Histogram wait_micros) {
    MutexLock guard(mu_);
    writer_drains_ = drains;
    writer_wait_micros_ = wait_micros;
  }

  /// Acquires the lock exclusively: registers as a waiting writer (which
  /// blocks new readers), waits for the active readers to drain, then owns
  /// the state alone until unlock(). Blocking; not reentrant.
  void lock() ACQUIRE() {
    WallTimer drain_timer;
    {
      MutexLock guard(mu_);
      ++waiting_writers_;
      while (writer_active_ || active_readers_ != 0) cv_writers_.Wait(mu_);
      --waiting_writers_;
      writer_active_ = true;
      writer_drains_.Increment();
      writer_wait_micros_.Observe(drain_timer.ElapsedMicros());
    }
    lock_order::OnAcquire(name_);
  }

  /// Acquires exclusively iff no reader or writer currently holds the lock;
  /// never blocks and never queues. Returns true on success.
  bool try_lock() TRY_ACQUIRE(true) {
    {
      MutexLock guard(mu_);
      if (writer_active_ || active_readers_ != 0) return false;
      writer_active_ = true;
    }
    lock_order::OnAcquire(name_);
    return true;
  }

  /// Releases exclusive ownership. A queued writer is woken before any
  /// reader, so back-to-back update batches cannot be interleaved by
  /// queries sneaking in between them.
  void unlock() RELEASE() {
    lock_order::OnRelease(name_);
    MutexLock guard(mu_);
    writer_active_ = false;
    // Wake a queued writer first; readers get the gap only when no writer
    // is waiting.
    if (waiting_writers_ > 0) {
      cv_writers_.NotifyOne();
    } else {
      cv_readers_.NotifyAll();
    }
  }

  // --- shared (readers) -----------------------------------------------------

  /// Acquires the lock shared. Blocks while a writer is active OR waiting —
  /// that queueing-behind-writers rule is what makes the lock
  /// write-preferring. Any number of readers may hold the lock at once.
  void lock_shared() ACQUIRE_SHARED() {
    {
      MutexLock guard(mu_);
      while (writer_active_ || waiting_writers_ != 0) cv_readers_.Wait(mu_);
      ++active_readers_;
    }
    lock_order::OnAcquire(name_);
  }

  /// Acquires shared iff no writer is active or waiting; never blocks.
  /// Returns true on success.
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    {
      MutexLock guard(mu_);
      if (writer_active_ || waiting_writers_ > 0) return false;
      ++active_readers_;
    }
    lock_order::OnAcquire(name_);
    return true;
  }

  /// Releases one shared hold; the last reader out hands the lock to a
  /// waiting writer.
  void unlock_shared() RELEASE_SHARED() {
    lock_order::OnRelease(name_);
    MutexLock guard(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      cv_writers_.NotifyOne();
    }
  }

  const char* name() const { return name_; }

  /// Assigns the diagnostics name after construction — for locks that live
  /// in arrays, where a constructor argument cannot be passed. Call before
  /// the lock is shared between threads.
  void set_name(const char* name) { name_ = name; }

 private:
  Mutex mu_{"EpochLock::mu_"};
  CondVar cv_readers_;
  CondVar cv_writers_;
  uint32_t active_readers_ GUARDED_BY(mu_) = 0;
  uint32_t waiting_writers_ GUARDED_BY(mu_) = 0;
  bool writer_active_ GUARDED_BY(mu_) = false;
  /// Optional telemetry (no-op handles until InstrumentWriter); touched
  /// only under mu_, on the writer path.
  Counter writer_drains_ GUARDED_BY(mu_);
  Histogram writer_wait_micros_ GUARDED_BY(mu_);
  const char* name_ = "EpochLock";
};

/// RAII exclusive hold on an EpochLock (the annotated std::unique_lock).
/// Unlock() releases early — the update paths publish the new epoch and
/// drop the lock before running completion callbacks.
class SCOPED_CAPABILITY EpochWriterLock {
 public:
  explicit EpochWriterLock(EpochLock& lock) ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }

  EpochWriterLock(const EpochWriterLock&) = delete;
  EpochWriterLock& operator=(const EpochWriterLock&) = delete;

  ~EpochWriterLock() RELEASE() {
    if (owned_) lock_.unlock();
  }

  /// Releases before end of scope; the guard must not be reused after.
  void Unlock() RELEASE() {
    owned_ = false;
    lock_.unlock();
  }

  /// True until Unlock() — same accessor std::unique_lock offers.
  bool owns_lock() const { return owned_; }

 private:
  EpochLock& lock_;
  bool owned_ = true;
};

/// RAII shared hold on an EpochLock (the annotated std::shared_lock).
/// Returned by value from EpochCoordinator::LockShard — guaranteed copy
/// elision constructs it in place, so it needs (and has) no move support.
class SCOPED_CAPABILITY EpochReaderLock {
 public:
  explicit EpochReaderLock(EpochLock& lock) ACQUIRE_SHARED(lock)
      : lock_(lock) {
    lock_.lock_shared();
  }

  EpochReaderLock(const EpochReaderLock&) = delete;
  EpochReaderLock& operator=(const EpochReaderLock&) = delete;

  ~EpochReaderLock() RELEASE_GENERIC() {
    if (owned_) lock_.unlock_shared();
  }

  /// Releases before end of scope; the guard must not be reused after.
  void Unlock() RELEASE_GENERIC() {
    owned_ = false;
    lock_.unlock_shared();
  }

  /// True until Unlock() — same accessor std::shared_lock offers.
  bool owns_lock() const { return owned_; }

 private:
  EpochLock& lock_;
  bool owned_ = true;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_EPOCH_LOCK_H_
