#include "core/thread_pool.h"

#include <algorithm>

namespace kspdg {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (unsigned w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock guard(mu_);
    stop_ = true;
  }
  cv_start_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock guard(mu_);
      while (!stop_ && (job_ == nullptr || generation_ == seen)) {
        cv_start_.Wait(mu_);
      }
      if (stop_) return;
      job = job_;
      seen = generation_;
    }
    RunChunks(*job, worker);
  }
}

void ThreadPool::RunChunks(Job& job, unsigned worker) {
  for (;;) {
    size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.count) return;
    size_t end = std::min(begin + job.chunk, job.count);
    for (size_t i = begin; i < end; ++i) (*job.fn)(worker, i);
    size_t finished = end - begin;
    if (job.done.fetch_add(finished, std::memory_order_acq_rel) + finished ==
        job.count) {
      // Last chunk in the loop: wake the blocked caller. Taking the mutex
      // keeps the notify from slipping between the caller's predicate check
      // and its wait.
      MutexLock guard(mu_);
      cv_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t count, size_t chunk,
    const std::function<void(unsigned, size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  // Inline fast path: no workers, or everything fits in one chunk that a
  // single thread would claim anyway — skip the publish/wake round-trip.
  if (workers_.empty() || count <= chunk) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  MutexLock serialize(serialize_mu_);
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  job->chunk = chunk;
  {
    MutexLock guard(mu_);
    job_ = job;
    ++generation_;
  }
  cv_start_.NotifyAll();
  RunChunks(*job, /*worker=*/0);
  MutexLock guard(mu_);
  while (job->done.load(std::memory_order_acquire) != job->count) {
    cv_done_.Wait(mu_);
  }
  // Unpublish so late-waking workers see no runnable job. Stragglers still
  // holding the shared_ptr observe next >= count and touch fn no further.
  job_ = nullptr;
}

}  // namespace kspdg
