// Minimal Status/Result error-handling primitives (no exceptions on hot
// paths), in the style used by database engines such as RocksDB and Arrow.
#ifndef KSPDG_CORE_STATUS_H_
#define KSPDG_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kspdg {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// A required peer (e.g. a shard worker process) is unreachable or dead.
  kUnavailable,
  /// The per-call deadline expired before the peer answered.
  kDeadlineExceeded,
  /// Admission control shed the work: a tenant exceeded its pending quota
  /// or a full queue displaced it. Retryable after backing off.
  kResourceExhausted,
};

/// Lightweight status object; cheap to return by value. `ok()` statuses carry
/// no message and perform no allocation.
///
/// [[nodiscard]] at class scope: every function returning a Status makes a
/// claim the caller must check; an ignored return is a compile error
/// (-Werror). The sanctioned opt-out is an explicit `(void)` cast at the
/// call site, which tools/kspdg_lint.py treats as deliberate.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: k must be >= 1".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error pair. Access to `value()` requires `ok()`.
/// [[nodiscard]] for the same reason as Status: dropping one on the floor
/// silently swallows the error half.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "ok Status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kspdg

#define KSPDG_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::kspdg::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // KSPDG_CORE_STATUS_H_
