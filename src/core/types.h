// Fundamental identifier and numeric types shared by every module.
#ifndef KSPDG_CORE_TYPES_H_
#define KSPDG_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace kspdg {

/// Identifier of a vertex in the original graph G (dense, 0-based).
using VertexId = uint32_t;

/// Identifier of an edge in the original graph G (dense, 0-based). An
/// undirected edge has a single EdgeId regardless of traversal direction.
using EdgeId = uint32_t;

/// Identifier of a subgraph produced by the partitioner.
using SubgraphId = uint32_t;

/// Identifier of a worker ("server") in the simulated cluster.
using WorkerId = uint32_t;

/// Current (dynamic) weight of an edge. Weights evolve with traffic but are
/// always strictly positive.
using Weight = double;

/// Number of virtual fragments (vfrags) of an edge or a path. The vfrag count
/// of an edge equals its *initial* integer weight and never changes (§3.4).
using VfragCount = uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr SubgraphId kInvalidSubgraph =
    std::numeric_limits<SubgraphId>::max();
inline constexpr Weight kInfiniteWeight =
    std::numeric_limits<Weight>::infinity();

/// Tolerance used when comparing path distances assembled in different orders.
inline constexpr Weight kWeightEpsilon = 1e-7;

/// Returns true if |a| and |b| are equal up to accumulated floating error.
inline bool WeightsEqual(Weight a, Weight b) {
  Weight diff = a > b ? a - b : b - a;
  Weight scale = (a > b ? a : b);
  if (scale < 1.0) scale = 1.0;
  return diff <= kWeightEpsilon * scale;
}

/// Returns true if a < b beyond floating tolerance.
inline bool WeightLess(Weight a, Weight b) {
  return a < b && !WeightsEqual(a, b);
}

}  // namespace kspdg

#endif  // KSPDG_CORE_TYPES_H_
