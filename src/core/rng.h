// Deterministic, fast pseudo-random number generation (splitmix64 /
// xoshiro256**). Every stochastic component in the library takes an explicit
// seed so that experiments are reproducible run-to-run.
#ifndef KSPDG_CORE_RNG_H_
#define KSPDG_CORE_RNG_H_

#include <cstdint>

namespace kspdg {

/// splitmix64 step; used for seeding and hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, usable as a hash function.
inline uint64_t Mix64(uint64_t x) { return SplitMix64(x); }

/// xoshiro256** generator: tiny state, excellent statistical quality,
/// dramatically faster than std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5bd1e995u) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here (all << 2^64).
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace kspdg

#endif  // KSPDG_CORE_RNG_H_
