// Small helper containers used on query hot paths.
#ifndef KSPDG_CORE_SMALL_SET_H_
#define KSPDG_CORE_SMALL_SET_H_

#include <algorithm>
#include <vector>

namespace kspdg {

/// A set over small element counts backed by a sorted vector. Faster and more
/// compact than std::set / unordered_set for the handful-of-elements case
/// (boundary vertices of a subgraph, vertices of one path, ...).
template <typename T>
class SmallSortedSet {
 public:
  SmallSortedSet() = default;

  void Reserve(size_t n) { items_.reserve(n); }

  /// Inserts `v`; returns true if it was not already present.
  bool Insert(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it != items_.end() && *it == v) return false;
    items_.insert(it, v);
    return true;
  }

  bool Contains(const T& v) const {
    return std::binary_search(items_.begin(), items_.end(), v);
  }

  bool Erase(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it == items_.end() || *it != v) return false;
    items_.erase(it);
    return true;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  const std::vector<T>& items() const { return items_; }

 private:
  std::vector<T> items_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_SMALL_SET_H_
