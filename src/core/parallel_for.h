// Minimal blocking parallel-for over an index range, used for the
// embarrassingly parallel parts of index construction (per-subgraph work)
// and one-shot measurement loops. Long-lived services that run many loops
// should own a core/thread_pool.h ThreadPool instead of paying thread
// creation per call.
#ifndef KSPDG_CORE_PARALLEL_FOR_H_
#define KSPDG_CORE_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace kspdg {

/// Runs fn(worker, i) for every i in [0, count) using `num_threads` threads
/// (<= 1 means inline execution as worker 0). Indices are claimed in
/// contiguous chunks of `chunk` (0 is treated as 1): larger chunks cut
/// claim contention and keep consecutive items on one worker, so fn may
/// cache per-worker state in an array indexed by `worker`, which is always
/// < num_threads.
template <typename Fn>
void ParallelForChunked(size_t count, size_t chunk, unsigned num_threads,
                        Fn&& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  if (num_threads <= 1 || count <= chunk) {
    for (size_t i = 0; i < count; ++i) fn(0u, i);
    return;
  }
  size_t max_workers = (count + chunk - 1) / chunk;
  if (num_threads > max_workers) {
    num_threads = static_cast<unsigned>(max_workers);
  }
  std::atomic<size_t> next{0};
  auto worker = [&](unsigned id) {
    for (;;) {
      size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      size_t end = std::min(begin + chunk, count);
      for (size_t i = begin; i < end; ++i) fn(id, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 1; t < num_threads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
}

/// Runs fn(i) for every i in [0, count) using `num_threads` threads (1 means
/// inline execution). Work is claimed dynamically one index at a time so
/// uneven per-item cost still balances.
template <typename Fn>
void ParallelFor(size_t count, unsigned num_threads, Fn&& fn) {
  ParallelForChunked(count, /*chunk=*/1, num_threads,
                     [&fn](unsigned, size_t i) { fn(i); });
}

}  // namespace kspdg

#endif  // KSPDG_CORE_PARALLEL_FOR_H_
