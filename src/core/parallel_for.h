// Minimal blocking parallel-for over an index range, used for the
// embarrassingly parallel parts of index construction (per-subgraph work).
#ifndef KSPDG_CORE_PARALLEL_FOR_H_
#define KSPDG_CORE_PARALLEL_FOR_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace kspdg {

/// Runs fn(i) for every i in [0, count) using `num_threads` threads (1 means
/// inline execution). Work is claimed dynamically in chunks so uneven
/// per-item cost still balances.
template <typename Fn>
void ParallelFor(size_t count, unsigned num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (num_threads > count) num_threads = static_cast<unsigned>(count);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
}

}  // namespace kspdg

#endif  // KSPDG_CORE_PARALLEL_FOR_H_
