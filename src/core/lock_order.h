// Runtime lock-order checker: deadlock *potential* detection in debug and
// sanitizer builds.
//
// Compiled in when KSPDG_CHECK_LOCK_ORDER is defined (the CMake option of
// the same name; the asan CI leg turns it on so every concurrency test
// exercises it) and free otherwise — the hooks compile to empty inlines.
//
// Model: every annotated lock (core::Mutex, EpochLock) reports its
// acquisitions and releases here with a *name* — a string naming the lock's
// role, e.g. "EpochCoordinator::global_lock". Each thread keeps the stack
// of names it currently holds; every acquisition of B while holding A adds
// the directed edge A -> B to one global acquisition-order graph. A new
// edge that closes a cycle means two code paths acquire the same pair of
// locks in opposite orders — a deadlock waiting for the right interleaving
// — and the process aborts immediately, printing BOTH sides: the current
// thread's held stack and the held stack recorded when the reverse path was
// first established. Catching the inversion requires only that each order
// runs once, on any thread, in any interleaving — far stronger than hoping
// the actual deadlock manifests under test.
//
// Instances sharing a name are one graph node: the per-shard EpochLocks all
// report as "EpochCoordinator::shard_lock", so an order violation against
// any shard's lock is caught, while acquiring two *sibling* shard locks is
// deliberately not flagged (same-name self-edges are skipped; readers hold
// siblings concurrently by design and shared holds cannot deadlock each
// other). A condition-variable wait keeps its mutex in the held stack: the
// reacquisition on wakeup is the same lock, and the edges recorded at the
// original acquisition stay valid.
#ifndef KSPDG_CORE_LOCK_ORDER_H_
#define KSPDG_CORE_LOCK_ORDER_H_

#ifdef KSPDG_CHECK_LOCK_ORDER

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace kspdg {
namespace lock_order {

struct Graph {
  /// Guards the maps below. A plain std::mutex on purpose: the checker must
  /// not report its own lock, and nothing is ever acquired while holding it.
  std::mutex mu;
  /// Acquisition-order edges: edges[a] holds every b acquired while a was
  /// held, each with the held stack recorded when the edge first appeared
  /// (the "other side" printed on a violation).
  std::map<std::string, std::map<std::string, std::string>> edges;
};

inline Graph& GlobalGraph() {
  static Graph* graph = new Graph();  // leaked: outlives every static lock
  return *graph;
}

/// Names this thread currently holds, in acquisition order.
inline std::vector<const char*>& HeldStack() {
  thread_local std::vector<const char*> held;
  return held;
}

inline std::string DescribeStack(const std::vector<const char*>& held,
                                 const char* acquiring) {
  std::string out = "[";
  for (const char* name : held) {
    out += name;
    out += " -> ";
  }
  out += acquiring;
  out += "]";
  return out;
}

/// True iff `to` is reachable from `from` in the order graph. Caller holds
/// graph.mu.
inline bool Reachable(Graph& graph, const std::string& from,
                      const std::string& to, std::set<std::string>& seen) {
  if (from == to) return true;
  if (!seen.insert(from).second) return false;
  auto it = graph.edges.find(from);
  if (it == graph.edges.end()) return false;
  for (const auto& [next, witness] : it->second) {
    if (Reachable(graph, next, to, seen)) return true;
  }
  return false;
}

[[noreturn]] inline void ReportInversion(const char* held,
                                         const char* acquiring,
                                         const std::string& this_stack,
                                         const std::string& other_stack) {
  std::fprintf(
      stderr,
      "kspdg lock order inversion (potential deadlock):\n"
      "  this thread:  acquiring \"%s\" while holding \"%s\"\n"
      "                held stack %s\n"
      "  established:  \"%s\" is (transitively) acquired while holding "
      "\"%s\"\n"
      "                first recorded with held stack %s\n"
      "Every pair of locks must be acquired in one global order; see "
      "docs/STATIC_ANALYSIS.md.\n",
      acquiring, held, this_stack.c_str(), held, acquiring,
      other_stack.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Records `name` being acquired by this thread; aborts on an order
/// inversion against any previously observed acquisition order.
inline void OnAcquire(const char* name) {
  std::vector<const char*>& held = HeldStack();
  if (!held.empty()) {
    Graph& graph = GlobalGraph();
    std::lock_guard<std::mutex> guard(graph.mu);
    for (const char* h : held) {
      std::string from(h);
      std::string to(name);
      if (from == to) continue;  // same-name siblings: not ordered
      auto& out_edges = graph.edges[from];
      if (out_edges.find(to) != out_edges.end()) continue;  // known-good
      // New edge from -> to: a path to -> ... -> from means the reverse
      // order was already established somewhere — abort with both sides.
      std::set<std::string> seen;
      if (Reachable(graph, to, from, seen)) {
        // Find the recorded witness on the first hop of the reverse path.
        std::string other = "(unrecorded)";
        auto rev = graph.edges.find(to);
        if (rev != graph.edges.end()) {
          for (const auto& [next, witness] : rev->second) {
            std::set<std::string> hop_seen;
            if (Reachable(graph, next, from, hop_seen)) {
              other = witness;
              break;
            }
          }
        }
        ReportInversion(h, name, DescribeStack(held, name), other);
      }
      out_edges.emplace(std::move(to), DescribeStack(held, name));
    }
  }
  held.push_back(name);
}

/// Records `name` being released. Releases may be out of acquisition order
/// (std::unique_lock allows it), so the newest matching entry is removed.
inline void OnRelease(const char* name) {
  std::vector<const char*>& held = HeldStack();
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i] == name || std::string(held[i]) == name) {
      held.erase(held.begin() + static_cast<long>(i));
      return;
    }
  }
}

}  // namespace lock_order
}  // namespace kspdg

#else  // !KSPDG_CHECK_LOCK_ORDER

namespace kspdg {
namespace lock_order {

inline void OnAcquire(const char*) {}
inline void OnRelease(const char*) {}

}  // namespace lock_order
}  // namespace kspdg

#endif  // KSPDG_CHECK_LOCK_ORDER

#endif  // KSPDG_CORE_LOCK_ORDER_H_
