// Wall-clock timing helper used by the benchmark harnesses.
#ifndef KSPDG_CORE_TIMER_H_
#define KSPDG_CORE_TIMER_H_

#include <chrono>

namespace kspdg {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_TIMER_H_
