// Persistent worker pool for batch query execution.
//
// A RoutingService owns one ThreadPool and reuses it for every QueryBatch
// instead of spawning threads per call: thread creation costs more than many
// individual solves, and persistent workers give per-worker scratch state a
// stable home (fn receives a worker index usable as an array slot). One
// parallel loop runs at a time — concurrent callers serialise — which
// matches the service's usage and keeps the wake/complete protocol simple.
#ifndef KSPDG_CORE_THREAD_POOL_H_
#define KSPDG_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace kspdg {

/// Threads one QueryBatch may use when the caller passes 0: one per
/// hardware thread, capped at 16. The single policy both service
/// front-ends size their batch pools with.
inline unsigned DefaultBatchThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return hw < 16u ? hw : 16u;
}

/// Persistent worker pool executing one parallel loop at a time (see file
/// comment). All methods are thread-safe; concurrent ParallelFor callers
/// serialise against each other.
class ThreadPool {
 public:
  /// A pool that executes loops on `num_threads` threads in total. The
  /// caller of ParallelFor participates as worker 0, so num_threads - 1
  /// threads are spawned; num_threads <= 1 means fully inline execution.
  explicit ThreadPool(unsigned num_threads);

  /// Stops and joins the spawned workers. No loop may be in flight (the
  /// owner must outlive every ParallelFor call it issued).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads a loop runs on (spawned workers plus the calling thread).
  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(worker, i) for every i in [0, count), blocking until every
  /// invocation has finished. Indices are claimed in contiguous chunks of
  /// `chunk` (0 is treated as 1) so consecutive items tend to stay on one
  /// worker and its scratch state stays hot. `worker` < num_threads().
  /// Thread-safe: concurrent ParallelFor calls execute one loop at a time.
  void ParallelFor(size_t count, size_t chunk,
                   const std::function<void(unsigned worker, size_t index)>& fn);

 private:
  /// One published loop. Workers keep a shared_ptr while executing, so the
  /// caller can safely unpublish the job as soon as all items are done.
  struct Job {
    const std::function<void(unsigned, size_t)>* fn = nullptr;
    size_t count = 0;
    size_t chunk = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop(unsigned worker);
  void RunChunks(Job& job, unsigned worker);

  Mutex mu_{"ThreadPool::mu_"};
  CondVar cv_start_;
  CondVar cv_done_;
  /// Non-null while a loop is being executed.
  std::shared_ptr<Job> job_ GUARDED_BY(mu_);
  /// Bumped per published job; workers join each loop at most once.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Admits one ParallelFor caller at a time.
  Mutex serialize_mu_{"ThreadPool::serialize_mu_"};
  std::vector<std::thread> workers_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_THREAD_POOL_H_
