// Addressable binary min-heap keyed by dense integer ids, used by Dijkstra
// and the skeleton-graph searches. Supports DecreaseKey in O(log n).
#ifndef KSPDG_CORE_INDEXED_HEAP_H_
#define KSPDG_CORE_INDEXED_HEAP_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace kspdg {

/// Min-heap over ids in [0, capacity) with mutable priorities.
/// Keys are doubles; ties are broken by id for determinism.
class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(size_t capacity)
      : pos_(capacity, kAbsent) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  bool Contains(uint32_t id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  double KeyOf(uint32_t id) const {
    assert(Contains(id));
    return heap_[pos_[id]].key;
  }

  /// Inserts `id` with `key`, or lowers its key if already present with a
  /// larger key. Returns true if the entry was inserted or updated.
  bool PushOrDecrease(uint32_t id, double key) {
    assert(id < pos_.size());
    if (pos_[id] == kAbsent) {
      pos_[id] = heap_.size();
      heap_.push_back({key, id});
      SiftUp(heap_.size() - 1);
      return true;
    }
    size_t i = pos_[id];
    if (key < heap_[i].key) {
      heap_[i].key = key;
      SiftUp(i);
      return true;
    }
    return false;
  }

  /// Removes and returns the id with the smallest key.
  uint32_t PopMin(double* key_out = nullptr) {
    assert(!heap_.empty());
    uint32_t top = heap_[0].id;
    if (key_out != nullptr) *key_out = heap_[0].key;
    Swap(0, heap_.size() - 1);
    pos_[top] = kAbsent;
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  void Clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    double key;
    uint32_t id;
  };

  static constexpr size_t kAbsent = static_cast<size_t>(-1);

  bool Less(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void Swap(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i].id] = i;
    pos_[heap_[j].id] = j;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Less(heap_[i], heap_[parent])) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    for (;;) {
      size_t left = 2 * i + 1;
      size_t right = left + 1;
      size_t smallest = i;
      if (left < heap_.size() && Less(heap_[left], heap_[smallest]))
        smallest = left;
      if (right < heap_.size() && Less(heap_[right], heap_[smallest]))
        smallest = right;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::vector<size_t> pos_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_INDEXED_HEAP_H_
