// Annotated lock wrappers: the repo's only sanctioned mutual-exclusion
// primitives outside std::atomic.
//
// core::Mutex / core::MutexLock / core::CondVar / core::SharedMutex wrap
// the std primitives 1:1 and add the two static-analysis layers this repo
// builds on:
//
//   1. Clang Thread Safety Analysis (core/thread_annotations.h): Mutex is a
//      CAPABILITY and MutexLock a SCOPED_CAPABILITY, so `GUARDED_BY(mu_)`
//      members and `REQUIRES(mu_)` functions are checked at compile time by
//      the CI `analysis` job (`clang++ -Wthread-safety -Werror`).
//   2. The runtime lock-order checker (core/lock_order.h): every Lock()
//      reports to the global acquisition-order graph when
//      KSPDG_CHECK_LOCK_ORDER is on, so a lock-order inversion anywhere in
//      the test suite aborts with both stacks' lock names.
//
// Naked std::mutex / std::shared_mutex / std::thread outside src/core/ are
// a lint error (tools/kspdg_lint.py, rule raw-primitive): state guarded by
// an unannotated lock is invisible to both layers.
//
// The constructor takes the lock's role name ("SubmissionQueue::mu_") for
// order-checker diagnostics; instances sharing a name are one node in the
// order graph (see lock_order.h on why that is the right granularity).
#ifndef KSPDG_CORE_MUTEX_H_
#define KSPDG_CORE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "core/lock_order.h"
#include "core/thread_annotations.h"

namespace kspdg {

/// Plain mutual-exclusion lock (wraps std::mutex). Not reentrant. Prefer
/// MutexLock over calling Lock/Unlock by hand.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` labels this lock in lock-order diagnostics; use the member's
  /// qualified role, e.g. "ThreadPool::mu_". Must outlive the mutex
  /// (string literals always do).
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    lock_order::OnAcquire(name_);
  }

  void Unlock() RELEASE() {
    lock_order::OnRelease(name_);
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_order::OnAcquire(name_);
    return true;
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "Mutex";
};

/// RAII guard for Mutex (the std::lock_guard/std::unique_lock of this
/// repo). Supports early Unlock() and re-Lock() like std::unique_lock; the
/// destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (owned_) mu_.Unlock();
  }

  /// Releases before end of scope (e.g. to run a callback outside the
  /// critical section).
  void Unlock() RELEASE() {
    owned_ = false;
    mu_.Unlock();
  }

  /// Reacquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    owned_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool owned_ = true;
};

/// Condition variable paired with core::Mutex. There is deliberately no
/// predicate-lambda Wait overload: the analysis cannot see the caller's
/// lock inside a lambda body, so waits are written as explicit loops —
/// `while (!cond) cv.Wait(mu);` — which the analysis checks exactly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  /// The lock-order model keeps `mu` in the held set across the wait: the
  /// wakeup reacquires the same lock, so its recorded edges stay valid.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Reader/writer lock (wraps std::shared_mutex). For epoch-snapshot state
/// prefer EpochLock (write-preferring; core/epoch_lock.h) — SharedMutex is
/// for plain mostly-read state with no starvation concern.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    lock_order::OnAcquire(name_);
  }
  void Unlock() RELEASE() {
    lock_order::OnRelease(name_);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_order::OnAcquire(name_);
    return true;
  }

  void LockShared() ACQUIRE_SHARED() {
    mu_.lock_shared();
    lock_order::OnAcquire(name_);
  }
  void UnlockShared() RELEASE_SHARED() {
    lock_order::OnRelease(name_);
    mu_.unlock_shared();
  }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lock_order::OnAcquire(name_);
    return true;
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "SharedMutex";
};

/// RAII exclusive hold on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared hold on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

}  // namespace kspdg

#endif  // KSPDG_CORE_MUTEX_H_
