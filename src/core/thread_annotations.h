// Clang Thread Safety Analysis annotations, compiled away everywhere else.
//
// These macros attach compile-time concurrency contracts to the repo's lock
// wrappers (core/mutex.h, core/epoch_lock.h) and to the state they guard:
// GUARDED_BY names the lock a member needs, REQUIRES names the lock a
// function's caller must already hold, ACQUIRE/RELEASE mark the lock
// operations themselves. Under `clang++ -Wthread-safety` a violated
// contract — touching guarded state without the lock, releasing a lock that
// is not held, double-acquiring a non-reentrant mutex — is a compile error
// (the CI `analysis` job builds with -Werror). Under gcc (and any compiler
// without the attributes) every macro expands to nothing, so annotations
// cost nothing to carry.
//
// Annotation how-to for new code is in docs/STATIC_ANALYSIS.md. The macro
// set and spellings follow the Clang TSA documentation; only annotate
// types that are themselves CAPABILITY-annotated (core::Mutex, EpochLock) —
// GUARDED_BY(some_std_mutex) is invisible to the analysis and rots.
#ifndef KSPDG_CORE_THREAD_ANNOTATIONS_H_
#define KSPDG_CORE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define KSPDG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KSPDG_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lock-like capability; `x` names it in diagnostics
/// (e.g. CAPABILITY("mutex")).
#define CAPABILITY(x) KSPDG_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (core::MutexLock, EpochWriterLock, ...).
#define SCOPED_CAPABILITY KSPDG_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define GUARDED_BY(x) KSPDG_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability (the
/// pointer itself may be read freely).
#define PT_GUARDED_BY(x) KSPDG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capability
/// exclusively (resp. shared). The function does not acquire it.
#define REQUIRES(...) KSPDG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  KSPDG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability exclusively (resp. shared) and
/// holds it past return.
#define ACQUIRE(...) KSPDG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  KSPDG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases a capability held on entry (exclusive, shared, or
/// either for the _GENERIC form — RAII guard destructors use the latter).
#define RELEASE(...) KSPDG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  KSPDG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  KSPDG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  KSPDG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  KSPDG_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function that must NOT be entered holding the capability (catches
/// self-deadlock on non-reentrant locks).
#define EXCLUDES(...) KSPDG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread holds the
/// capability — for helpers reached only under a lock taken far away.
#define ASSERT_CAPABILITY(x) KSPDG_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  KSPDG_THREAD_ANNOTATION(assert_shared_capability(x))

/// Declares which lock a getter returns, so callers can lock through it.
#define RETURN_CAPABILITY(x) KSPDG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  KSPDG_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // KSPDG_CORE_THREAD_ANNOTATIONS_H_
