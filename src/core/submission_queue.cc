#include "core/submission_queue.h"

#include <algorithm>
#include <utility>

#include "core/timer.h"

namespace kspdg {

SubmissionQueue::SubmissionQueue(size_t capacity, unsigned num_workers,
                                 SubmissionQueueMetrics metrics,
                                 AdmissionOptions admission)
    : capacity_(std::max<size_t>(1, capacity)),
      metrics_(std::move(metrics)),
      admission_(admission) {
  unsigned n = std::max(1u, num_workers);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SubmissionQueue::~SubmissionQueue() {
  Shutdown();
  for (std::thread& worker : workers_) worker.join();
}

bool SubmissionQueue::Submit(std::function<void()> job) {
  {
    MutexLock guard(mu_);
    if (!shutdown_ && TotalPendingLocked() >= capacity_) {
      // Backpressure engaged: count the stall and time it, so queue sizing
      // decisions can be made from exported metrics instead of guesswork.
      metrics_.enqueue_blocked_total.Increment();
      WallTimer stall_timer;
      while (!shutdown_ && TotalPendingLocked() >= capacity_) {
        cv_not_full_.Wait(mu_);
      }
      metrics_.enqueue_block_micros.Observe(stall_timer.ElapsedMicros());
    }
    if (shutdown_) return false;
    Entry entry;
    // The wrapper only ever sees kServed: blocking-contract entries carry
    // no deadline and are not evictable, so admission cannot shed them.
    entry.job = [job = std::move(job)](AdmissionOutcome) { job(); };
    entry.evictable = false;
    classes_[static_cast<size_t>(RequestPriority::kNormal)].push_back(
        std::move(entry));
    ++submitted_;
  }
  cv_not_empty_.NotifyOne();
  return true;
}

SubmitOutcome SubmissionQueue::Submit(const RequestContext& context,
                                      AdmissionJob job) {
  // A job shed at admission is answered on the calling thread, outside the
  // queue mutex (the callback may be arbitrarily heavy).
  AdmissionJob evicted_job;
  {
    MutexLock guard(mu_);
    if (shutdown_) return SubmitOutcome::kRefused;
    if (context.ExpiredAt(std::chrono::steady_clock::now())) {
      ++shed_deadline_;
      metrics_.shed_deadline_total.Increment();
      guard.Unlock();
      job(AdmissionOutcome::kShedDeadline);
      return SubmitOutcome::kShedDeadline;
    }
    if (admission_.per_tenant_quota > 0 && !context.tenant_id.empty()) {
      auto it = tenant_pending_.find(context.tenant_id);
      if (it != tenant_pending_.end() &&
          it->second >= admission_.per_tenant_quota) {
        ++shed_quota_;
        metrics_.shed_quota_total.Increment();
        guard.Unlock();
        job(AdmissionOutcome::kShedQuota);
        return SubmitOutcome::kShedQuota;
      }
    }
    if (TotalPendingLocked() >= capacity_) {
      // Full queue: a strictly more urgent arrival displaces the newest
      // evictable job of the least urgent class behind it; otherwise the
      // arrival itself is shed. Either way some job answers kShedQuota —
      // the queue never blocks a QoS producer.
      for (size_t cls = kNumPriorities; cls-- > 0;) {
        if (cls <= static_cast<size_t>(context.priority)) break;
        std::deque<Entry>& queue = classes_[cls];
        auto victim =
            std::find_if(queue.rbegin(), queue.rend(),
                         [](const Entry& e) { return e.evictable; });
        if (victim != queue.rend()) {
          evicted_job = std::move(victim->job);
          ReleaseTenantLocked(victim->tenant);
          queue.erase(std::next(victim).base());
          break;
        }
      }
      ++shed_quota_;
      metrics_.shed_quota_total.Increment();
      if (evicted_job == nullptr) {
        guard.Unlock();
        job(AdmissionOutcome::kShedQuota);
        return SubmitOutcome::kShedQuota;
      }
      // The victim was admitted once; its displacement completes it.
      ++completed_;
    }
    Entry entry;
    entry.job = std::move(job);
    entry.deadline = context.deadline;
    entry.tenant = context.tenant_id;
    entry.evictable = true;
    if (!entry.tenant.empty()) ++tenant_pending_[entry.tenant];
    classes_[static_cast<size_t>(context.priority)].push_back(
        std::move(entry));
    ++submitted_;
  }
  cv_not_empty_.NotifyOne();
  // Displacement kept the queue at capacity, so no cv_not_full_ signal: the
  // evicted job just answers for itself, on this thread.
  if (evicted_job != nullptr) evicted_job(AdmissionOutcome::kShedQuota);
  return SubmitOutcome::kAdmitted;
}

void SubmissionQueue::Shutdown() {
  {
    MutexLock guard(mu_);
    shutdown_ = true;
  }
  // Wake blocked producers (they return false) and idle workers (they see
  // shutdown once the backlog is drained, and exit).
  cv_not_full_.NotifyAll();
  cv_not_empty_.NotifyAll();
}

size_t SubmissionQueue::pending() const {
  MutexLock guard(mu_);
  return TotalPendingLocked();
}

size_t SubmissionQueue::pending(RequestPriority priority) const {
  MutexLock guard(mu_);
  return classes_[static_cast<size_t>(priority)].size();
}

uint64_t SubmissionQueue::submitted() const {
  MutexLock guard(mu_);
  return submitted_;
}

uint64_t SubmissionQueue::completed() const {
  MutexLock guard(mu_);
  return completed_;
}

uint64_t SubmissionQueue::shed_deadline() const {
  MutexLock guard(mu_);
  return shed_deadline_;
}

uint64_t SubmissionQueue::shed_quota() const {
  MutexLock guard(mu_);
  return shed_quota_;
}

size_t SubmissionQueue::TotalPendingLocked() const {
  size_t total = 0;
  for (const std::deque<Entry>& queue : classes_) total += queue.size();
  return total;
}

void SubmissionQueue::ReleaseTenantLocked(const std::string& tenant) {
  if (tenant.empty()) return;
  auto it = tenant_pending_.find(tenant);
  if (it == tenant_pending_.end()) return;
  if (--it->second == 0) tenant_pending_.erase(it);
}

void SubmissionQueue::WorkerLoop() {
  for (;;) {
    Entry entry;
    {
      MutexLock guard(mu_);
      while (!shutdown_ && TotalPendingLocked() == 0) {
        cv_not_empty_.Wait(mu_);
      }
      // Strict priority: drain a more urgent class to empty before
      // touching a less urgent one. FIFO within the class.
      std::deque<Entry>* queue = nullptr;
      for (std::deque<Entry>& cls : classes_) {
        if (!cls.empty()) {
          queue = &cls;
          break;
        }
      }
      if (queue == nullptr) return;  // shutdown with a drained backlog
      entry = std::move(queue->front());
      queue->pop_front();
      ReleaseTenantLocked(entry.tenant);
      if (entry.evictable &&
          entry.deadline.has_value() &&
          *entry.deadline <= std::chrono::steady_clock::now()) {
        // Expired while queued: answer immediately, never solve.
        ++shed_deadline_;
        metrics_.shed_deadline_total.Increment();
        guard.Unlock();
        cv_not_full_.NotifyOne();
        entry.job(AdmissionOutcome::kShedDeadline);
        guard.Lock();
        ++completed_;
        continue;
      }
    }
    cv_not_full_.NotifyOne();
    entry.job(AdmissionOutcome::kServed);
    {
      MutexLock guard(mu_);
      ++completed_;
    }
  }
}

}  // namespace kspdg
