#include "core/submission_queue.h"

#include <algorithm>
#include <utility>

#include "core/timer.h"

namespace kspdg {

SubmissionQueue::SubmissionQueue(size_t capacity, unsigned num_workers,
                                 SubmissionQueueMetrics metrics)
    : capacity_(std::max<size_t>(1, capacity)), metrics_(std::move(metrics)) {
  unsigned n = std::max(1u, num_workers);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SubmissionQueue::~SubmissionQueue() {
  Shutdown();
  for (std::thread& worker : workers_) worker.join();
}

bool SubmissionQueue::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> guard(mu_);
    if (!shutdown_ && jobs_.size() >= capacity_) {
      // Backpressure engaged: count the stall and time it, so queue sizing
      // decisions can be made from exported metrics instead of guesswork.
      metrics_.enqueue_blocked_total.Increment();
      WallTimer stall_timer;
      cv_not_full_.wait(
          guard, [&] { return shutdown_ || jobs_.size() < capacity_; });
      metrics_.enqueue_block_micros.Observe(stall_timer.ElapsedMicros());
    }
    if (shutdown_) return false;
    jobs_.push_back(std::move(job));
    ++submitted_;
  }
  cv_not_empty_.notify_one();
  return true;
}

void SubmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  // Wake blocked producers (they return false) and idle workers (they see
  // shutdown once the backlog is drained, and exit).
  cv_not_full_.notify_all();
  cv_not_empty_.notify_all();
}

size_t SubmissionQueue::pending() const {
  std::lock_guard<std::mutex> guard(mu_);
  return jobs_.size();
}

uint64_t SubmissionQueue::submitted() const {
  std::lock_guard<std::mutex> guard(mu_);
  return submitted_;
}

uint64_t SubmissionQueue::completed() const {
  std::lock_guard<std::mutex> guard(mu_);
  return completed_;
}

void SubmissionQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> guard(mu_);
      cv_not_empty_.wait(guard, [&] { return shutdown_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // shutdown with a drained backlog
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    cv_not_full_.notify_one();
    job();
    {
      std::lock_guard<std::mutex> guard(mu_);
      ++completed_;
    }
  }
}

}  // namespace kspdg
