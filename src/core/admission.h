// Admission-control primitives shared by the QoS request envelope and the
// admission-controlled SubmissionQueue.
//
// Every request may carry a RequestContext: a priority class, an optional
// absolute deadline, and a tenant id. The serving stack uses the three
// fields independently — priorities order the submission queue (strict
// priority, FIFO within a class), deadlines shed expired work at enqueue,
// dequeue, and solve time, and tenant ids bound how much of the queue any
// one caller may hold. An AdmissionOutcome labels what the admission layer
// decided for a piece of work; shedding is reported through statuses
// (kDeadlineExceeded / kResourceExhausted) that never fail a surrounding
// batch.
#ifndef KSPDG_CORE_ADMISSION_H_
#define KSPDG_CORE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/status.h"

namespace kspdg {

/// Priority classes, most urgent first. The submission queue serves a
/// strictly higher class to exhaustion before touching a lower one.
enum class RequestPriority : uint8_t {
  /// Latency-sensitive foreground traffic; may evict queued batch work.
  kInteractive = 0,
  /// The default class; also the class of requests with no QoS envelope.
  kNormal = 1,
  /// Throughput traffic that yields to everything else under pressure.
  kBatch = 2,
};

inline constexpr size_t kNumPriorities = 3;

/// Stable name for logs, metric labels, and bench reports.
inline const char* PriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "unknown";
}

/// What the admission layer decided for one request (or one whole batch).
enum class AdmissionOutcome : uint8_t {
  /// Admitted and answered on a weight snapshot.
  kServed = 0,
  /// Failed for a non-admission reason (validation, solver error).
  kRejected = 1,
  /// Shed because its deadline expired before it could be solved.
  kShedDeadline = 2,
  /// Shed by load control: tenant over quota, or displaced/refused by a
  /// full queue.
  kShedQuota = 3,
};

/// Stable name for logs, metric labels, and bench reports.
inline const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kServed:
      return "served";
    case AdmissionOutcome::kRejected:
      return "rejected";
    case AdmissionOutcome::kShedDeadline:
      return "shed_deadline";
    case AdmissionOutcome::kShedQuota:
      return "shed_quota";
  }
  return "unknown";
}

/// The QoS envelope a request may carry. Default-constructed contexts
/// (normal priority, no deadline, no tenant) opt OUT of admission control:
/// they keep the original blocking-backpressure submission contract.
/// Setting any field opts the request in — submission never blocks, work
/// is shed instead (see SubmissionQueue).
struct RequestContext {
  RequestPriority priority = RequestPriority::kNormal;
  /// Absolute steady-clock point after which the answer is worthless. The
  /// stack sheds expired work instead of solving it: at submit, at dequeue,
  /// and once more when an individual request reaches its solver.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Accounting identity for per-tenant pending quotas ("" = unmetered).
  std::string tenant_id;

  /// True when any envelope field is set, i.e. the request asked for
  /// admission-controlled (shedding, never blocking) submission.
  bool HasQos() const {
    return priority != RequestPriority::kNormal || deadline.has_value() ||
           !tenant_id.empty();
  }

  /// True when a deadline is set and already past at `now`.
  bool ExpiredAt(std::chrono::steady_clock::time_point now) const {
    return deadline.has_value() && *deadline <= now;
  }
};

/// Maps a per-item Status back to the admission decision it encodes:
/// kDeadlineExceeded — shed on deadline, kResourceExhausted — shed by load
/// control, OK — served, anything else — rejected. The one classification
/// every accounting site (batch tallies, admission counters, bench) shares.
inline AdmissionOutcome AdmissionOutcomeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return AdmissionOutcome::kServed;
    case StatusCode::kDeadlineExceeded:
      return AdmissionOutcome::kShedDeadline;
    case StatusCode::kResourceExhausted:
      return AdmissionOutcome::kShedQuota;
    default:
      return AdmissionOutcome::kRejected;
  }
}

}  // namespace kspdg

#endif  // KSPDG_CORE_ADMISSION_H_
