// Tiny string helpers shared by error-message formatting.
#ifndef KSPDG_CORE_STRINGS_H_
#define KSPDG_CORE_STRINGS_H_

#include <string>
#include <vector>

namespace kspdg {

/// "a, b, c" — for listing known names in error messages.
inline std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    joined += joined.empty() ? name : ", " + name;
  }
  return joined;
}

}  // namespace kspdg

#endif  // KSPDG_CORE_STRINGS_H_
