// Dijkstra single-source / point-to-point search over any SearchGraph.
//
// Designed for heavy reuse inside Yen's algorithm: internal arrays are
// invalidated with an epoch counter instead of being cleared, bans are
// expressed through cheap lookup structures, and an optional admissible
// heuristic turns the search into A*.
#ifndef KSPDG_KSP_DIJKSTRA_H_
#define KSPDG_KSP_DIJKSTRA_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/indexed_heap.h"
#include "core/types.h"
#include "ksp/path.h"
#include "ksp/search_graph.h"

namespace kspdg {

/// Ban sets for constrained searches (Yen spur computations).
struct SearchBans {
  /// Vertices that may not be visited. Entry values compare against
  /// `vertex_epoch`: banned iff banned_vertices[v] == vertex_epoch. This lets
  /// Yen re-stamp bans without clearing the array.
  const std::vector<uint32_t>* banned_vertices = nullptr;
  uint32_t vertex_epoch = 0;
  /// Edges that may not be traversed (same epoch trick).
  const std::vector<uint32_t>* banned_edges = nullptr;
  uint32_t edge_epoch = 0;

  bool VertexBanned(VertexId v) const {
    return banned_vertices != nullptr && (*banned_vertices)[v] == vertex_epoch;
  }
  bool EdgeBanned(EdgeId e) const {
    return banned_edges != nullptr && (*banned_edges)[e] == edge_epoch;
  }
};

template <typename SearchGraph>
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const SearchGraph& g)
      : g_(&g),
        heap_(g.NumVertices()),
        dist_(g.NumVertices(), kInfiniteWeight),
        parent_vertex_(g.NumVertices(), kInvalidVertex),
        epoch_of_(g.NumVertices(), 0),
        settled_(g.NumVertices(), 0) {}

  /// Point-to-point shortest path. Returns std::nullopt if t is unreachable
  /// under the bans. `heuristic` (if given) must be an admissible
  /// lower bound on the remaining distance to `t` (size NumVertices,
  /// kInfiniteWeight allowed for unreachable vertices).
  std::optional<Path> ShortestPath(VertexId s, VertexId t,
                                   const SearchBans& bans = {},
                                   const std::vector<Weight>* heuristic =
                                       nullptr) {
    if (s == t) return Path{{s}, 0};
    if (bans.VertexBanned(s) || bans.VertexBanned(t)) return std::nullopt;
    BeginSearch();
    Relax(s, 0, kInvalidVertex);
    while (!heap_.empty()) {
      VertexId u = heap_.PopMin();
      settled_[u] = epoch_;
      if (u == t) break;
      ExpandVertex(u, bans, heuristic, t);
    }
    if (!Settled(t)) return std::nullopt;
    return ExtractPath(s, t);
  }

  /// Full single-source tree under the current costs (no bans). If
  /// `reverse` is true, arc costs are taken in the direction *into* the
  /// source, producing distances suitable as A* heuristics toward `source`.
  void ComputeTree(VertexId source, bool reverse, std::vector<Weight>* dist,
                   std::vector<VertexId>* parent = nullptr) {
    BeginSearch();
    reverse_ = reverse;
    Relax(source, 0, kInvalidVertex);
    while (!heap_.empty()) {
      VertexId u = heap_.PopMin();
      settled_[u] = epoch_;
      ExpandVertex(u, SearchBans{}, nullptr, kInvalidVertex);
    }
    reverse_ = false;
    dist->assign(g_->NumVertices(), kInfiniteWeight);
    if (parent != nullptr) parent->assign(g_->NumVertices(), kInvalidVertex);
    for (VertexId v = 0; v < g_->NumVertices(); ++v) {
      if (Settled(v)) {
        (*dist)[v] = dist_[v];
        if (parent != nullptr) (*parent)[v] = parent_vertex_[v];
      }
    }
  }

  /// Distance of the last search to `v` (kInfiniteWeight if unreached).
  Weight DistanceTo(VertexId v) const {
    return Reached(v) ? dist_[v] : kInfiniteWeight;
  }

 private:
  bool Reached(VertexId v) const { return epoch_of_[v] == epoch_; }
  bool Settled(VertexId v) const { return settled_[v] == epoch_; }

  void BeginSearch() {
    ++epoch_;
    heap_.Clear();
    if (epoch_ == 0) {  // counter wrapped: hard reset
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
      std::fill(settled_.begin(), settled_.end(), 0);
      epoch_ = 1;
    }
  }

  void Relax(VertexId v, Weight d, VertexId from,
             const std::vector<Weight>* heuristic = nullptr) {
    if (!Reached(v) || d < dist_[v]) {
      epoch_of_[v] = epoch_;
      dist_[v] = d;
      parent_vertex_[v] = from;
      Weight key = d;
      if (heuristic != nullptr) {
        Weight h = (*heuristic)[v];
        if (h == kInfiniteWeight) return;  // provably cannot reach target
        key += h;
      }
      heap_.PushOrDecrease(v, key);
    }
  }

  void ExpandVertex(VertexId u, const SearchBans& bans,
                    const std::vector<Weight>* heuristic, VertexId target) {
    (void)target;
    for (const Arc& a : g_->Neighbors(u)) {
      if (bans.EdgeBanned(a.edge) || bans.VertexBanned(a.to)) continue;
      if (Settled(a.to)) continue;
      Weight w = reverse_ ? g_->CostFrom(a.edge, a.to)
                          : g_->CostFrom(a.edge, u);
      Relax(a.to, dist_[u] + w, u, heuristic);
    }
  }

  Path ExtractPath(VertexId s, VertexId t) const {
    Path p;
    p.distance = dist_[t];
    for (VertexId v = t; v != kInvalidVertex; v = parent_vertex_[v]) {
      p.vertices.push_back(v);
      if (v == s) break;
    }
    std::reverse(p.vertices.begin(), p.vertices.end());
    return p;
  }

  const SearchGraph* g_;
  IndexedMinHeap heap_;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_vertex_;
  std::vector<uint32_t> epoch_of_;
  std::vector<uint32_t> settled_;
  uint32_t epoch_ = 0;
  bool reverse_ = false;
};

/// Convenience wrapper: shortest path in `g` under current weights.
std::optional<Path> ShortestPathInGraph(const Graph& g, VertexId s, VertexId t);

}  // namespace kspdg

#endif  // KSPDG_KSP_DIJKSTRA_H_
