// The search-graph concept shared by Dijkstra/Yen and their adapters.
//
// All path-search algorithms in this library are templates over a
// `SearchGraph`: any type providing
//
//   size_t  NumVertices() const;
//   <range of Arc> Neighbors(VertexId v) const;   // Arc = {to, edge}
//   Weight  CostFrom(EdgeId e, VertexId from) const;
//
// This lets the same Dijkstra/Yen implementation run over (1) the original
// graph under current weights, (2) the original graph under vfrag counts
// (bounding-path computation, §3.4), and (3) the skeleton graph Gλ with a
// per-query source/target overlay (§5.2-5.3).
#ifndef KSPDG_KSP_SEARCH_GRAPH_H_
#define KSPDG_KSP_SEARCH_GRAPH_H_

#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

/// Which per-edge cost a search over the original graph uses.
enum class CostKind {
  kCurrentWeight,  // dynamic travel time
  kVfrags,         // static initial weight = number of virtual fragments
};

/// Adapts a Graph to the SearchGraph concept with a chosen cost.
class GraphCostView {
 public:
  GraphCostView(const Graph& g, CostKind kind) : g_(&g), kind_(kind) {}

  size_t NumVertices() const { return g_->NumVertices(); }
  size_t NumEdges() const { return g_->NumEdges(); }

  std::span<const Arc> Neighbors(VertexId v) const { return g_->Neighbors(v); }

  Weight CostFrom(EdgeId e, VertexId from) const {
    return kind_ == CostKind::kCurrentWeight
               ? g_->WeightFrom(e, from)
               : static_cast<Weight>(g_->VfragsFrom(e, from));
  }

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
  CostKind kind_;
};

}  // namespace kspdg

#endif  // KSPDG_KSP_SEARCH_GRAPH_H_
