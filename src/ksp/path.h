// Path value type (Definition 3) and helpers shared by all KSP algorithms.
#ifndef KSPDG_KSP_PATH_H_
#define KSPDG_KSP_PATH_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

/// A simple (loop-free) path with its cached distance under the weights it
/// was computed with.
struct Path {
  std::vector<VertexId> vertices;
  Weight distance = 0;

  bool empty() const { return vertices.empty(); }
  size_t NumEdges() const {
    return vertices.empty() ? 0 : vertices.size() - 1;
  }
  VertexId Source() const { return vertices.front(); }
  VertexId Target() const { return vertices.back(); }
};

/// Equality of routes (ignores cached distance).
inline bool SameRoute(const Path& a, const Path& b) {
  return a.vertices == b.vertices;
}

/// Deterministic ordering: by distance, then lexicographically by route.
inline bool PathLess(const Path& a, const Path& b) {
  if (!WeightsEqual(a.distance, b.distance)) return a.distance < b.distance;
  return a.vertices < b.vertices;
}

/// Recomputes the distance of `vertices` under the current weights of `g`.
/// Returns kInfiniteWeight if some consecutive pair is not connected.
Weight RouteDistance(const Graph& g, const std::vector<VertexId>& vertices);

/// True if the route visits no vertex twice.
bool IsSimpleRoute(const std::vector<VertexId>& vertices);

/// True if every consecutive pair is an edge of `g`.
bool IsValidRoute(const Graph& g, const std::vector<VertexId>& vertices);

/// "v0 -> v1 -> ... (d=12.5)" rendering for logs and examples.
std::string PathToString(const Path& p);

/// Inserts `p` into the list `top` kept sorted by PathLess, deduplicating by
/// route and truncating to `k` entries. Returns true if the list changed.
bool InsertTopK(std::vector<Path>& top, Path p, size_t k);

}  // namespace kspdg

#endif  // KSPDG_KSP_PATH_H_
