#include "ksp/findksp.h"

#include "ksp/dijkstra.h"
#include "ksp/search_graph.h"
#include "ksp/yen.h"

namespace kspdg {

std::vector<Path> FindKsp(const Graph& g, VertexId s, VertexId t, size_t k,
                          YenScratch* scratch) {
  GraphCostView view(g, CostKind::kCurrentWeight);
  // Reverse SPT rooted at t: exact remaining-distance heuristic.
  DijkstraSearch<GraphCostView> search(view);
  std::vector<Weight> to_target;
  search.ComputeTree(t, /*reverse=*/true, &to_target);
  if (to_target[s] == kInfiniteWeight) return {};
  return YenKsp(view, s, t, k, &to_target, scratch);
}

std::vector<Path> YenKspInGraph(const Graph& g, VertexId s, VertexId t,
                                size_t k, YenScratch* scratch) {
  GraphCostView view(g, CostKind::kCurrentWeight);
  return YenKsp(view, s, t, k, nullptr, scratch);
}

std::optional<Path> ShortestPathInGraph(const Graph& g, VertexId s,
                                        VertexId t) {
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  return search.ShortestPath(s, t);
}

}  // namespace kspdg
