// FindKSP baseline (stand-in for Liu et al., "Finding top-k shortest paths
// with diversity", TKDE 2018 — reference [21] of the paper).
//
// Like the original, it is a centralized deviation-based KSP algorithm that
// accelerates candidate generation with a Shortest Path Tree rooted at the
// destination: the reverse SPT distances are an exact (hence admissible)
// heuristic for the unconstrained graph and remain admissible once Yen's
// bans remove edges, so every spur search becomes a goal-directed A* that
// settles far fewer vertices than plain Dijkstra.
#ifndef KSPDG_KSP_FINDKSP_H_
#define KSPDG_KSP_FINDKSP_H_

#include <vector>

#include "graph/graph.h"
#include "ksp/path.h"

namespace kspdg {

struct YenScratch;

/// Computes up to k shortest loopless paths from s to t under current
/// weights, using SPT-guided deviation search. `scratch` (optional) pools
/// the deviation-search ban buffers across calls on one thread.
std::vector<Path> FindKsp(const Graph& g, VertexId s, VertexId t, size_t k,
                          YenScratch* scratch = nullptr);

}  // namespace kspdg

#endif  // KSPDG_KSP_FINDKSP_H_
