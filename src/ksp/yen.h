// Yen's k-shortest loopless paths algorithm [Yen 1971] with Lawler's
// deviation-index refinement, over any SearchGraph.
//
// Exposed as a lazy enumerator: KSP-DG pulls reference paths from the
// skeleton graph one at a time (§5.2), so paths are produced on demand and
// the candidate pool is kept across pulls.
#ifndef KSPDG_KSP_YEN_H_
#define KSPDG_KSP_YEN_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/types.h"
#include "ksp/dijkstra.h"
#include "ksp/path.h"
#include "ksp/search_graph.h"

namespace kspdg {

/// Reusable ban-stamp buffers for YenEnumerator. One scratch may serve many
/// enumerators *sequentially* (never concurrently): the epoch counters keep
/// advancing across enumerators, so as long as the graph dimensions match,
/// handing a warm scratch to the next query skips two O(V + E) allocations
/// per query. Per-worker batch execution pools one of these per worker.
struct YenScratch {
  std::vector<uint32_t> banned_vertices;
  std::vector<uint32_t> banned_edges;
  uint32_t vertex_epoch = 0;
  uint32_t edge_epoch = 0;

  /// Sizes the buffers for a graph; resets stamps only when sizes changed.
  void Prepare(size_t num_vertices, size_t num_edges) {
    if (banned_vertices.size() != num_vertices) {
      banned_vertices.assign(num_vertices, 0);
      vertex_epoch = 0;
    }
    if (banned_edges.size() != num_edges) {
      banned_edges.assign(num_edges, 0);
      edge_epoch = 0;
    }
  }

  /// Epoch bumps with wrap protection: on the (astronomically rare) uint32
  /// wrap the stale stamps are cleared so they cannot collide with epoch 0.
  uint32_t NextVertexEpoch() {
    if (++vertex_epoch == 0) {
      std::fill(banned_vertices.begin(), banned_vertices.end(), 0u);
      vertex_epoch = 1;
    }
    return vertex_epoch;
  }
  uint32_t NextEdgeEpoch() {
    if (++edge_epoch == 0) {
      std::fill(banned_edges.begin(), banned_edges.end(), 0u);
      edge_epoch = 1;
    }
    return edge_epoch;
  }
};

template <typename SearchGraph>
class YenEnumerator {
 public:
  /// `heuristic`, if provided, must be an admissible lower bound on the
  /// remaining distance to `t` under the graph's costs (see FindKSP).
  /// `scratch`, if provided, must not be in use by any other live
  /// enumerator; it is resized for this graph and reused in place.
  YenEnumerator(const SearchGraph& g, VertexId s, VertexId t,
                const std::vector<Weight>* heuristic = nullptr,
                YenScratch* scratch = nullptr)
      : g_(&g),
        s_(s),
        t_(t),
        heuristic_(heuristic),
        dijkstra_(g),
        scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
    scratch_->Prepare(g.NumVertices(), g.NumEdges());
  }

  // scratch_ may point at owned_scratch_: copying/moving would alias the
  // source object's buffers.
  YenEnumerator(const YenEnumerator&) = delete;
  YenEnumerator& operator=(const YenEnumerator&) = delete;

  /// Returns the next shortest loopless path from s to t, or std::nullopt
  /// when all simple paths have been enumerated.
  std::optional<Path> NextPath() {
    if (!started_) {
      started_ = true;
      std::optional<Path> first = dijkstra_.ShortestPath(s_, t_, {}, heuristic_);
      if (!first.has_value()) return std::nullopt;
      Accept(*first, /*deviation_index=*/0);
      return accepted_.back().path;
    }
    GenerateCandidatesFrom(accepted_.back());
    if (candidates_.empty()) return std::nullopt;
    auto it = candidates_.begin();
    Candidate best = *it;
    candidates_.erase(it);
    Accept(best.path, best.deviation_index);
    return accepted_.back().path;
  }

  /// Number of paths produced so far.
  size_t NumProduced() const { return accepted_.size(); }

 private:
  struct Accepted {
    Path path;
    size_t deviation_index;  // Lawler: spur only from here onwards
  };
  struct Candidate {
    Path path;
    size_t deviation_index;
    bool operator<(const Candidate& other) const {
      if (!WeightsEqual(path.distance, other.path.distance))
        return path.distance < other.path.distance;
      return path.vertices < other.path.vertices;
    }
  };

  void Accept(Path p, size_t deviation_index) {
    accepted_.push_back({std::move(p), deviation_index});
  }

  bool AlreadyKnownRoute(const std::vector<VertexId>& route) const {
    for (const Accepted& a : accepted_) {
      if (a.path.vertices == route) return true;
    }
    for (const Candidate& c : candidates_) {
      if (c.path.vertices == route) return true;
    }
    return false;
  }

  void GenerateCandidatesFrom(const Accepted& base) {
    const std::vector<VertexId>& verts = base.path.vertices;
    if (verts.size() < 2) return;
    for (size_t j = base.deviation_index; j + 1 < verts.size(); ++j) {
      uint32_t vertex_epoch = scratch_->NextVertexEpoch();
      scratch_->NextEdgeEpoch();
      VertexId spur = verts[j];
      // Ban the root-path vertices (so the spur path cannot loop back).
      for (size_t i = 0; i < j; ++i) {
        scratch_->banned_vertices[verts[i]] = vertex_epoch;
      }
      // Ban the next edge of every known s-t path sharing this root.
      BanMatchingPrefixEdges(verts, j);
      SearchBans bans;
      bans.banned_vertices = &scratch_->banned_vertices;
      bans.vertex_epoch = vertex_epoch;
      bans.banned_edges = &scratch_->banned_edges;
      bans.edge_epoch = scratch_->edge_epoch;
      std::optional<Path> spur_path =
          dijkstra_.ShortestPath(spur, t_, bans, heuristic_);
      if (!spur_path.has_value()) continue;
      // Assemble root + spur.
      Candidate cand;
      cand.deviation_index = j;
      cand.path.vertices.assign(verts.begin(), verts.begin() + j);
      cand.path.vertices.insert(cand.path.vertices.end(),
                                spur_path->vertices.begin(),
                                spur_path->vertices.end());
      Weight root_dist = 0;
      for (size_t i = 0; i + 1 <= j && i + 1 < verts.size(); ++i) {
        root_dist += CostBetween(verts[i], verts[i + 1]);
      }
      cand.path.distance = root_dist + spur_path->distance;
      if (!AlreadyKnownRoute(cand.path.vertices)) {
        candidates_.insert(std::move(cand));
      }
    }
  }

  /// For every accepted path (and s-t candidates already known) whose first
  /// j vertices equal verts[0..j], ban the edge it takes out of verts[j].
  void BanMatchingPrefixEdges(const std::vector<VertexId>& verts, size_t j) {
    for (const Accepted& a : accepted_) {
      BanIfPrefixMatches(a.path.vertices, verts, j);
    }
  }

  void BanIfPrefixMatches(const std::vector<VertexId>& known,
                          const std::vector<VertexId>& verts, size_t j) {
    if (known.size() <= j + 1) return;
    for (size_t i = 0; i <= j; ++i) {
      if (known[i] != verts[i]) return;
    }
    // Ban every parallel arc known[j] -> known[j+1]: paths are vertex
    // sequences here, so a deviation must leave through a different
    // *vertex*; leaving through a parallel edge would reproduce the same
    // route and dead-end the branch.
    for (const Arc& a : g_->Neighbors(known[j])) {
      if (a.to == known[j + 1]) {
        scratch_->banned_edges[a.edge] = scratch_->edge_epoch;
      }
    }
  }

  /// Cheapest arc u -> v (multigraph-safe).
  Weight CostBetween(VertexId u, VertexId v) const {
    Weight best = kInfiniteWeight;
    for (const Arc& a : g_->Neighbors(u)) {
      if (a.to == v) best = std::min(best, g_->CostFrom(a.edge, u));
    }
    return best;
  }

  const SearchGraph* g_;
  VertexId s_, t_;
  const std::vector<Weight>* heuristic_;
  DijkstraSearch<SearchGraph> dijkstra_;
  YenScratch owned_scratch_;  // fallback when no external scratch is given
  YenScratch* scratch_;
  bool started_ = false;
  std::vector<Accepted> accepted_;
  std::multiset<Candidate> candidates_;
};

/// Computes up to k shortest loopless paths from s to t in one call.
/// `scratch` (optional) pools the ban buffers across calls on one thread.
template <typename SearchGraph>
std::vector<Path> YenKsp(const SearchGraph& g, VertexId s, VertexId t,
                         size_t k,
                         const std::vector<Weight>* heuristic = nullptr,
                         YenScratch* scratch = nullptr) {
  YenEnumerator<SearchGraph> yen(g, s, t, heuristic, scratch);
  std::vector<Path> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    std::optional<Path> p = yen.NextPath();
    if (!p.has_value()) break;
    out.push_back(std::move(*p));
  }
  return out;
}

/// k shortest paths in a Graph under current dynamic weights.
std::vector<Path> YenKspInGraph(const Graph& g, VertexId s, VertexId t,
                                size_t k, YenScratch* scratch = nullptr);

}  // namespace kspdg

#endif  // KSPDG_KSP_YEN_H_
