#include "ksp/path.h"

#include <unordered_set>

namespace kspdg {

Weight RouteDistance(const Graph& g, const std::vector<VertexId>& vertices) {
  Weight total = 0;
  for (size_t i = 1; i < vertices.size(); ++i) {
    EdgeId e = g.FindEdge(vertices[i - 1], vertices[i]);
    if (e == kInvalidEdge) return kInfiniteWeight;
    total += g.WeightFrom(e, vertices[i - 1]);
  }
  return total;
}

bool IsSimpleRoute(const std::vector<VertexId>& vertices) {
  std::unordered_set<VertexId> seen;
  seen.reserve(vertices.size());
  for (VertexId v : vertices) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool IsValidRoute(const Graph& g, const std::vector<VertexId>& vertices) {
  for (size_t i = 1; i < vertices.size(); ++i) {
    if (g.FindEdge(vertices[i - 1], vertices[i]) == kInvalidEdge) return false;
  }
  return true;
}

std::string PathToString(const Path& p) {
  std::string out;
  for (size_t i = 0; i < p.vertices.size(); ++i) {
    if (i > 0) out += " -> ";
    out += 'v';
    out += std::to_string(p.vertices[i]);
  }
  out += " (d=";
  out += std::to_string(p.distance);
  out += ')';
  return out;
}

bool InsertTopK(std::vector<Path>& top, Path p, size_t k) {
  for (const Path& existing : top) {
    if (SameRoute(existing, p)) return false;
  }
  auto it = std::lower_bound(top.begin(), top.end(), p, PathLess);
  if (top.size() >= k && it == top.end()) return false;
  top.insert(it, std::move(p));
  if (top.size() > k) top.pop_back();
  return true;
}

}  // namespace kspdg
