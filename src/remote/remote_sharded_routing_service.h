// RemoteShardedRoutingService: the RoutingService contract served by N
// out-of-process shard workers — the process-boundary deployment of the
// paper's distributed Storm topology (§4), grown out of the in-process
// ShardedRoutingService by cutting at the seams PR 3 left for it.
//
// Topology: one coordinator (this class) plus num_shards `shard_worker`
// processes, each owning one shard of the DTLP partition (the same
// deterministic AssignShards split the in-process service uses). The
// coordinator spawns the workers, ships each the graph + DTLP knobs over a
// unix-socket RPC (src/rpc), and keeps a master copy of the whole state —
// flat weights, every level-1 index, the skeleton, CANDS — exactly like
// RoutingService, because the KSP-DG filter step reads per-subgraph lower
// bounds on every query. What moves across the process boundary is the
// refine step: boundary-pair partial KSP requests are routed to the worker
// owning each subgraph through the same PartialProvider seam the sharded
// service uses, and merged through the same MergeSubgraphPartials, so
// remote answers are byte-identical to the in-process services by
// construction. (Keeping the level-1 indexes on the coordinator as well is
// a deliberate deviation from the paper's pure deployment; it is what lets
// one node answer the filter step without a network hop per bound lookup.)
//
//   Query / QueryBatch / SubmitBatch
//                   identical surface and snapshot semantics to
//                   ShardedRoutingService (one EpochCoordinator::ReadPin per
//                   batch); partial requests become PartialsRequest RPCs to
//                   the owning workers, with the same per-(shard, worker)
//                   caches and cap/flush telemetry.
//   ApplyTrafficBatch
//                   two-phase cross-process epoch commit under the global
//                   exclusive lock: BeginAdvance, then EpochPrepare RPCs fan
//                   the full batch out (each worker filters to its owned
//                   subgraphs and applies its slice of Algorithm 2, then the
//                   coordinator publishes that shard), then the coordinator
//                   applies its master copy, Commits the global epoch, and
//                   sends best-effort EpochCommit acknowledgements.
//
// Fault model: every RPC has a per-attempt deadline and a bounded retry
// budget (all protocol requests are idempotent — prepares replay their
// stored reply, partials are reads), so a slow or dead worker degrades to a
// clean kUnavailable/kDeadlineExceeded per-query status, never a hang and
// never a wrong answer (a failed partial fetch poisons the query, and its
// result is discarded). The coordinator keeps the committed batch history;
// RestartDeadWorkers() (also run by ApplyTrafficBatch when auto_restart is
// set) respawns a dead worker, reloads the initial graph, and replays the
// history so the worker re-derives the exact incremental state every other
// shard has.
#ifndef KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_
#define KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/batch_ticket.h"
#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "api/routing_service.h"
#include "api/routing_service_interface.h"
#include "api/service_metrics.h"
#include "core/epoch_coordinator.h"
#include "core/epoch_lock.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_pool.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "partition/shard_assignment.h"
#include "rpc/client.h"
#include "shard/sharded_routing_service.h"

namespace kspdg {

/// Knobs for the worker fleet and its RPC transport.
struct RemoteWorkerOptions {
  /// Path of the shard_worker binary. Empty = $KSPDG_WORKER_BIN if set,
  /// else "shard_worker" next to the current executable (all build targets
  /// land in the build root).
  std::string worker_binary;
  /// Directory for the per-worker unix sockets. Empty = $TMPDIR or /tmp.
  std::string socket_dir;
  /// Per-attempt deadline for query-path RPCs (partials, pings).
  int64_t rpc_deadline_ms = 5000;
  /// Retries after the first attempt (transport failures only; a worker
  /// that answers with an error is not retried).
  uint32_t rpc_max_retries = 2;
  /// Backoff before retry r is rpc_backoff_ms << (r - 1).
  int64_t rpc_backoff_ms = 20;
  /// Per-attempt deadline for load-graph and epoch-prepare RPCs (index
  /// build / Algorithm 2 can legitimately outlast the query deadline).
  int64_t apply_deadline_ms = 120'000;
  /// Idle-accept timeout handed to each worker: a worker whose coordinator
  /// died exits on its own after this long without a connection.
  int64_t worker_idle_timeout_ms = 120'000;
  /// Respawn + replay dead workers at the start of every ApplyTrafficBatch
  /// (RestartDeadWorkers can always be called explicitly).
  bool auto_restart = true;
};

struct RemoteShardedRoutingServiceOptions {
  /// Service-wide defaults; any field can be overridden per request.
  RoutingOptions defaults;
  /// DTLP construction knobs — shipped to every worker verbatim, so both
  /// sides build the identical index.
  DtlpOptions dtlp;
  /// Coordinator-owned CANDS baseline index (same contract as the other
  /// services).
  bool enable_cands = true;
  /// Worker processes == shards of the subgraph partition (>= 1).
  uint32_t num_shards = 2;
  /// Threads fanning one ApplyTrafficBatch's prepare RPCs across workers
  /// (0 = one per worker, capped at the hardware thread count).
  unsigned apply_threads = 0;
  /// Threads answering one QueryBatch (0 = auto, capped at 16).
  unsigned batch_threads = 0;
  /// SubmitBatch queue capacity (0 is treated as 1).
  size_t submit_queue_capacity = 8;
  RemoteWorkerOptions remote;
};

/// Point-in-time view of one worker process (monitoring + tests).
struct RemoteWorkerInfo {
  ShardId shard = kInvalidShard;
  pid_t pid = -1;
  std::string socket_path;
  /// False once an RPC to this worker failed terminally (or a health check
  /// did); a dead worker fails queries fast until restarted.
  bool alive = false;
  /// Last epoch this worker acknowledged applying.
  uint64_t epoch = 0;
  /// Times this worker was respawned (0 for the original process).
  uint64_t restarts = 0;
  /// Static ownership and per-shard traffic, as in ShardInfo.
  size_t subgraphs = 0;
  size_t vertices = 0;
  uint64_t partial_requests = 0;
  uint64_t yen_runs = 0;
  uint64_t partial_cache_hits = 0;
  /// Transport counters for this worker's connection.
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_deadline_expired = 0;
};

/// Counters of the remote service: the sharded-service telemetry (the
/// remote layer reuses it wholesale) plus the transport/fleet counters.
struct RemoteServiceCounters {
  ShardedServiceCounters sharded;
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_deadline_expired = 0;
  uint64_t worker_restarts = 0;
  /// Queries that failed because a partial RPC failed (each also counts as
  /// a rejected query in `sharded.base`).
  uint64_t partial_rpc_errors = 0;
};

class RemoteShardedRoutingService : public RoutingServiceInterface {
 public:
  /// Takes ownership of `graph`, builds the coordinator's master state
  /// (DTLP, CANDS, shard assignment — exactly as the in-process services
  /// do), then spawns one shard_worker per shard and ships each the graph.
  /// Fails if the worker binary cannot be found/spawned or a worker fails
  /// to load the graph; already-spawned workers are torn down on failure.
  static Result<std::unique_ptr<RemoteShardedRoutingService>> Create(
      Graph graph, RemoteShardedRoutingServiceOptions options = {});

  RemoteShardedRoutingService(const RemoteShardedRoutingService&) = delete;
  RemoteShardedRoutingService& operator=(const RemoteShardedRoutingService&) =
      delete;

  /// Drains the async submission queue, then shuts the workers down
  /// (graceful Shutdown RPC first, SIGKILL after a grace period) and reaps
  /// every child process.
  ~RemoteShardedRoutingService() override;

  /// Answers q(source, target) — any QueryKind — on the current global
  /// snapshot. Byte-identical to ShardedRoutingService::Query over the same
  /// graph and traffic history. A query whose partials live on a dead
  /// worker returns kUnavailable/kDeadlineExceeded instead of hanging.
  Result<RouteResponse> Query(const RouteRequest& request) const override;

  /// Batch counterpart, same contract as ShardedRoutingService::QueryBatch
  /// (one multi-shard snapshot, per-item statuses, per-(shard, worker)
  /// partial caches on the batch pool).
  Result<RouteBatchResponse> QueryBatch(
      std::span<const RouteRequest> requests) const override;

  /// Asynchronous QueryBatch (same ticket contract as the other services).
  BatchTicket SubmitBatch(std::vector<RouteRequest> requests,
                          BatchCallback callback = nullptr) const override;

  /// Applies one batch of weight updates atomically across the coordinator
  /// and every worker via the two-phase epoch commit (see file comment).
  /// The batch succeeds as long as the coordinator's master state applies;
  /// a worker that fails its prepare is marked dead (its shard degrades to
  /// per-query errors until restarted) rather than failing the batch.
  Result<TrafficBatchResult> ApplyTrafficBatch(
      std::span<const WeightUpdate> updates) override;

  /// Health-checks every worker and respawns + replays the dead ones.
  /// Returns OK when every worker is alive afterwards; kUnavailable when
  /// any worker could not be revived (the others still serve).
  Status RestartDeadWorkers();

  /// Adds a custom backend (same freeze-on-first-query contract as the
  /// other services).
  Status RegisterSolver(std::unique_ptr<KspSolver> solver);

  /// Committed global epoch (0 until the first batch).
  uint64_t CurrentEpoch() const override { return epochs_->global(); }

  std::vector<std::string> BackendNames() const override {
    return registry_.Names();
  }

  /// Fleet-wide scrape: the coordinator's own registry merged with every
  /// worker's latest snapshot. Live workers are pinged (each ping carries
  /// the worker's registry back in the reply); a worker that cannot be
  /// reached contributes its last successfully fetched snapshot instead,
  /// so the export degrades to slightly stale worker data rather than
  /// dropping a shard. Worker samples are tagged {shard="<id>"}.
  MetricsSnapshot Metrics() const override;

  RemoteServiceCounters counters() const;

  /// Per-worker fleet snapshot, indexed by ShardId.
  std::vector<RemoteWorkerInfo> WorkerInfos() const;

  uint32_t num_shards() const { return assignment_.num_shards; }
  const ShardAssignment& assignment() const { return assignment_; }

  /// Read-only views of the coordinator's master state.
  const Graph& graph() const { return graph_; }
  const Dtlp& dtlp() const { return *dtlp_; }
  const CandsIndex* cands() const { return cands_.get(); }
  const RoutingOptions& defaults() const { return options_.defaults; }

 private:
  /// One worker process: transport handle, liveness, and the per-shard
  /// counters the in-process service keeps on its Shard struct. `mu`
  /// serialises calls on the single connection; `epoch`/`pid` are written
  /// only under the coordinator's global exclusive lock (or during Create)
  /// and read through atomics for monitoring.
  struct Worker {
    ShardId shard = kInvalidShard;
    std::string socket_path;
    std::atomic<pid_t> pid{-1};
    std::unique_ptr<RpcClient> client;
    /// Serialises RPCs on this worker's connection (several batch-pool
    /// threads may need the same worker).
    mutable std::mutex mu;
    /// Mutable: the const query path marks a worker dead on RPC failure.
    mutable std::atomic<bool> alive{false};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> restarts{0};
    /// Same cache-flush stamp semantics as Shard::weights_epoch.
    std::atomic<uint64_t> weights_epoch{0};
    /// Registry handles labelled {shard="<id>"}, wired at Create.
    Counter partial_requests;
    Counter yen_runs;
    Counter cache_hits;
    Counter cache_skips;
    Counter cache_flushes;
    /// Last snapshot this worker shipped back in a ping reply (the
    /// fallback when the worker is unreachable at scrape time). Guarded by
    /// metrics_mu, never by `mu` — caching must not serialise with RPCs.
    mutable std::mutex metrics_mu;
    mutable MetricsSnapshot last_metrics;
    mutable bool has_metrics = false;
  };

  class RemotePartialProvider;

  /// Persistent per-batch-pool-worker state (see ShardedRoutingService).
  struct BatchWorker {
    SolverScratchArena arena;
    std::unique_ptr<RemotePartialProvider> provider;

    BatchWorker();
    BatchWorker(BatchWorker&&) noexcept;
    BatchWorker& operator=(BatchWorker&&) noexcept;
    ~BatchWorker();
  };

  RemoteShardedRoutingService(Graph graph,
                              RemoteShardedRoutingServiceOptions options)
      : graph_(std::move(graph)), options_(std::move(options)) {}

  Status PrepareQuery(const RouteRequest& request,
                      PreparedRoute* prepared) const;

  void MarkServing() const {
    if (!serving_.load(std::memory_order_relaxed)) {
      serving_.store(true, std::memory_order_release);
    }
  }

  /// Spawns the process for `worker` (which must not have a live child) and
  /// ships it the initial graph + the committed history replay. On success
  /// the worker is alive at the current epoch.
  Status SpawnAndLoadWorker(Worker& worker) const;

  /// RestartDeadWorkers body; caller holds the global exclusive lock.
  Status RestartDeadWorkersLocked();

  /// Pings `worker`; marks it dead on failure.
  bool HealthCheckWorker(const Worker& worker) const;

  /// Marks a worker dead after a terminal RPC failure.
  void MarkWorkerDead(const Worker& worker) const {
    worker.alive.store(false, std::memory_order_release);
  }

  /// Best-effort graceful shutdown + SIGKILL + reap of one worker process.
  void StopWorker(Worker& worker);

  Graph graph_;
  RemoteShardedRoutingServiceOptions options_;
  /// Owns every metric cell the members below hold handles into. Declared
  /// before them so it is destroyed LAST — after submit_queue_, whose
  /// destructor still drains batches that bump counters.
  MetricsRegistry metrics_;
  /// Pristine copy of the graph at Create time: what a (re)spawned worker
  /// is loaded with before the committed history is replayed onto it.
  Graph initial_graph_;
  /// Committed traffic batches, in commit order — the worker-restart replay
  /// log. Grows with the batch count; guarded by the global exclusive lock.
  std::vector<std::vector<WeightUpdate>> history_;
  std::unique_ptr<Dtlp> dtlp_;
  std::unique_ptr<CandsIndex> cands_;
  SolverRegistry registry_;
  mutable std::atomic<bool> serving_{false};
  ShardAssignment assignment_;
  /// Resolved worker binary path (see RemoteWorkerOptions::worker_binary).
  std::string worker_binary_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<EpochCoordinator> epochs_;
  std::unique_ptr<ThreadPool> apply_pool_;
  std::unique_ptr<ThreadPool> batch_pool_;

  mutable std::mutex batch_mu_;
  mutable std::vector<BatchWorker> batch_workers_;
  mutable uint64_t arena_epoch_ = 0;

  /// Query/update handles into metrics_ (RemoteServiceCounters is a view
  /// over these plus the per-worker handles and the RPC client atomics).
  ServiceMetrics svc_metrics_;
  Counter single_shard_queries_;
  Counter cross_shard_queries_;
  Counter direct_partials_;
  Counter scattered_partials_;
  Counter partial_rpc_errors_;

  /// Declared last so it is destroyed FIRST (drains accepted batches).
  std::unique_ptr<SubmissionQueue> submit_queue_;
};

}  // namespace kspdg

#endif  // KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_
