// RemoteShardedRoutingService: the RoutingService contract served by N
// out-of-process shard workers — the process-boundary deployment of the
// paper's distributed Storm topology (§4), grown out of the in-process
// ShardedRoutingService by cutting at the seams PR 3 left for it.
//
// Topology: one coordinator (this class) plus num_shards `shard_worker`
// processes, each owning one shard of the DTLP partition (the same
// deterministic AssignShards split the in-process service uses). The
// coordinator spawns the workers, ships each the graph + DTLP knobs over a
// unix-socket RPC (src/rpc), and keeps a master copy of the whole state —
// flat weights, every level-1 index, the skeleton, CANDS — exactly like
// RoutingService, because the KSP-DG filter step reads per-subgraph lower
// bounds on every query. What moves across the process boundary is the
// refine step: boundary-pair partial KSP requests are routed to the worker
// owning each subgraph through the same PartialProvider seam the sharded
// service uses, and merged through the same MergeSubgraphPartials, so
// remote answers are byte-identical to the in-process services by
// construction. (Keeping the level-1 indexes on the coordinator as well is
// a deliberate deviation from the paper's pure deployment; it is what lets
// one node answer the filter step without a network hop per bound lookup.)
//
//   Query / QueryBatch / SubmitBatch
//                   identical surface and snapshot semantics to
//                   ShardedRoutingService (one EpochCoordinator::ReadPin per
//                   batch); partial requests become PartialsRequest RPCs to
//                   the owning workers, with the same per-(shard, worker)
//                   caches and cap/flush telemetry.
//   ApplyTrafficBatch
//                   two-phase cross-process epoch commit under the global
//                   exclusive lock: BeginAdvance, then EpochPrepare RPCs fan
//                   the full batch out (each worker filters to its owned
//                   subgraphs and applies its slice of Algorithm 2, then the
//                   coordinator publishes that shard), then the coordinator
//                   applies its master copy, Commits the global epoch, and
//                   sends best-effort EpochCommit acknowledgements.
//
// Replication: each shard slice runs num_replicas workers (the YTsaurus
// changelog/snapshot shape and the YugabyteDB tablet model — single writer
// = this coordinator, so no consensus round is needed; the epoch sequence
// IS the replication log). Every committed traffic batch is shipped to all
// replicas of a shard in epoch order through the same prepare/commit RPCs;
// queries load-balance partial fetches round-robin across the replicas
// that have committed the pinned epoch, failing over to siblings when a
// replica is dead or lagging. Only an all-replicas-dead shard degrades to
// per-query kUnavailable. Because every replica re-derives its state from
// the same deterministic replay, answers are byte-identical no matter
// which replica serves the fetch.
//
// Fault model: every RPC has a per-attempt deadline and a bounded retry
// budget (all protocol requests are idempotent — prepares replay their
// stored reply, partials are reads), so a slow or dead worker degrades to a
// clean kUnavailable/kDeadlineExceeded per-query status, never a hang and
// never a wrong answer (a failed partial fetch poisons the query, and its
// result is discarded). The coordinator retains the committed batch history
// back to its latest checkpoint (a full weight snapshot taken every
// max_history_batches commits, bounding replay cost and memory);
// RestartDeadWorkers() (also run by ApplyTrafficBatch when auto_restart is
// set) respawns a dead replica with the checkpoint graph, replays the
// retained history, and catches up an alive-but-lagging replica in place,
// so every revived replica re-derives the exact incremental state its
// siblings have before rejoining the read rotation.
#ifndef KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_
#define KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_

#include <sys/types.h>

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/batch_ticket.h"
#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "api/routing_service.h"
#include "api/routing_service_interface.h"
#include "api/service_metrics.h"
#include "core/epoch_coordinator.h"
#include "core/epoch_lock.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "partition/shard_assignment.h"
#include "rpc/client.h"
#include "shard/sharded_routing_service.h"

namespace kspdg {

/// Identity of one replica at a two-phase-commit fault point, handed to the
/// fault-injection hooks below so a test harness can target a named replica
/// deterministically (kill its pid, stop it, or drop the RPC).
struct ReplicaFaultPoint {
  ShardId shard = kInvalidShard;
  uint32_t replica = 0;
  pid_t pid = -1;
  uint64_t epoch = 0;
};

/// Knobs for the worker fleet and its RPC transport.
struct RemoteWorkerOptions {
  /// Path of the shard_worker binary. Empty = $KSPDG_WORKER_BIN if set,
  /// else "shard_worker" next to the current executable (all build targets
  /// land in the build root).
  std::string worker_binary;
  /// Directory for the per-worker unix sockets. Empty = $TMPDIR or /tmp.
  std::string socket_dir;
  /// Per-attempt deadline for query-path RPCs (partials, pings).
  int64_t rpc_deadline_ms = 5000;
  /// Retries after the first attempt (transport failures only; a worker
  /// that answers with an error is not retried).
  uint32_t rpc_max_retries = 2;
  /// Backoff before retry r is rpc_backoff_ms << (r - 1).
  int64_t rpc_backoff_ms = 20;
  /// Per-attempt deadline for load-graph and epoch-prepare RPCs (index
  /// build / Algorithm 2 can legitimately outlast the query deadline).
  int64_t apply_deadline_ms = 120'000;
  /// Idle-accept timeout handed to each worker: a worker whose coordinator
  /// died exits on its own after this long without a connection.
  int64_t worker_idle_timeout_ms = 120'000;
  /// Respawn + replay dead workers at the start of every ApplyTrafficBatch
  /// (RestartDeadWorkers can always be called explicitly).
  bool auto_restart = true;
  /// Test-only fault injection: called immediately before the prepare RPC
  /// (resp. the commit RPC) of each replica participating in an epoch
  /// advance. Returning false drops the RPC — the replica silently misses
  /// the epoch, exactly as a lost message would — and the hook may also
  /// kill or stop the named pid to script a mid-two-phase-commit crash.
  /// Never set in production.
  std::function<bool(const ReplicaFaultPoint&)> before_prepare_hook;
  std::function<bool(const ReplicaFaultPoint&)> before_commit_hook;
};

struct RemoteShardedRoutingServiceOptions {
  /// Service-wide defaults; any field can be overridden per request.
  RoutingOptions defaults;
  /// DTLP construction knobs — shipped to every worker verbatim, so both
  /// sides build the identical index.
  DtlpOptions dtlp;
  /// Coordinator-owned CANDS baseline index (same contract as the other
  /// services).
  bool enable_cands = true;
  /// Shards of the subgraph partition (>= 1).
  uint32_t num_shards = 2;
  /// Replica workers per shard (>= 1). The fleet runs
  /// num_shards * num_replicas worker processes; reads load-balance across
  /// a shard's replicas, writes go to all of them in epoch order.
  uint32_t num_replicas = 1;
  /// Commits retained in the replay history before the coordinator takes a
  /// checkpoint (full weight snapshot) and truncates the log. Bounds the
  /// catch-up cost of a replica restart; 0 is treated as 1.
  size_t max_history_batches = 32;
  /// Threads fanning one ApplyTrafficBatch's prepare RPCs across workers
  /// (0 = one per worker, capped at the hardware thread count).
  unsigned apply_threads = 0;
  /// Threads answering one QueryBatch (0 = auto, capped at 16).
  unsigned batch_threads = 0;
  /// SubmitBatch queue capacity (0 is treated as 1). No-envelope submits
  /// block when full (backpressure); QoS submits shed instead.
  size_t submit_queue_capacity = 8;
  /// Max pending SubmitBatch envelopes one tenant_id may hold at once;
  /// over-quota QoS submits are shed with kResourceExhausted instead of
  /// blocking (0 = unlimited, tenants with an empty id are unmetered).
  size_t per_tenant_quota = 0;
  RemoteWorkerOptions remote;
};

/// Point-in-time view of one worker process (monitoring + tests).
struct RemoteWorkerInfo {
  ShardId shard = kInvalidShard;
  /// Which replica of `shard` this worker is (0..num_replicas-1).
  uint32_t replica = 0;
  pid_t pid = -1;
  std::string socket_path;
  /// False once an RPC to this worker failed terminally (or a health check
  /// did); a dead worker fails queries fast until restarted.
  bool alive = false;
  /// Last epoch this worker acknowledged applying.
  uint64_t epoch = 0;
  /// Times this worker was respawned (0 for the original process).
  uint64_t restarts = 0;
  /// Times this worker was caught back up to the committed epoch (respawn
  /// replay or in-place replay) after missing one or more batches.
  uint64_t catchups = 0;
  /// Partial fetches this replica served (the read-rotation share).
  uint64_t reads = 0;
  /// Static ownership and per-shard traffic, as in ShardInfo.
  size_t subgraphs = 0;
  size_t vertices = 0;
  uint64_t partial_requests = 0;
  uint64_t yen_runs = 0;
  uint64_t partial_cache_hits = 0;
  /// Transport counters for this worker's connection.
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_deadline_expired = 0;
};

/// Counters of the remote service: the sharded-service telemetry (the
/// remote layer reuses it wholesale) plus the transport/fleet counters.
struct RemoteServiceCounters {
  ShardedServiceCounters sharded;
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_deadline_expired = 0;
  uint64_t worker_restarts = 0;
  /// Replicas brought back to the committed epoch by a history replay
  /// (respawn or in-place catch-up).
  uint64_t replica_catchups = 0;
  /// Queries that failed because a partial RPC failed (each also counts as
  /// a rejected query in `sharded.base`).
  uint64_t partial_rpc_errors = 0;
};

class RemoteShardedRoutingService : public RoutingServiceInterface {
 public:
  /// Takes ownership of `graph`, builds the coordinator's master state
  /// (DTLP, CANDS, shard assignment — exactly as the in-process services
  /// do), then spawns one shard_worker per shard and ships each the graph.
  /// Fails if the worker binary cannot be found/spawned or a worker fails
  /// to load the graph; already-spawned workers are torn down on failure.
  static Result<std::unique_ptr<RemoteShardedRoutingService>> Create(
      Graph graph, RemoteShardedRoutingServiceOptions options = {});

  RemoteShardedRoutingService(const RemoteShardedRoutingService&) = delete;
  RemoteShardedRoutingService& operator=(const RemoteShardedRoutingService&) =
      delete;

  /// Drains the async submission queue, then shuts the workers down
  /// (graceful Shutdown RPC first, SIGKILL after a grace period) and reaps
  /// every child process.
  ~RemoteShardedRoutingService() override;

  /// Answers q(source, target) — any QueryKind — on the current global
  /// snapshot. Byte-identical to ShardedRoutingService::Query over the same
  /// graph and traffic history, whichever replica serves each partial
  /// fetch. A fetch fails over to sibling replicas; only a query whose
  /// shard has no replica at the pinned epoch returns
  /// kUnavailable/kDeadlineExceeded instead of hanging.
  Result<RouteResponse> Query(const RouteRequest& request) const override;

  /// Batch counterpart, same contract as ShardedRoutingService::QueryBatch
  /// (one multi-shard snapshot, per-item statuses, per-(shard, worker)
  /// partial caches on the batch pool).
  Result<RouteBatchResponse> QueryBatch(
      std::span<const RouteRequest> requests) const override;

  /// Asynchronous QueryBatch (same ticket contract as the other services).
  [[nodiscard]] BatchTicket SubmitBatch(std::vector<RouteRequest> requests,
                          BatchCallback callback = nullptr) const override;

  /// Applies one batch of weight updates atomically across the coordinator
  /// and every replica via the two-phase epoch commit (see file comment).
  /// The batch succeeds as long as the coordinator's master state applies;
  /// a replica that fails its prepare is marked dead (reads fail over to
  /// its siblings until it is restarted) rather than failing the batch.
  Result<TrafficBatchResult> ApplyTrafficBatch(
      std::span<const WeightUpdate> updates) override;

  /// Health-checks every replica, respawns + replays the dead ones (from
  /// the latest checkpoint), and replays an alive-but-lagging replica back
  /// to the committed epoch in place. Returns OK when every replica is
  /// alive at the committed epoch afterwards; kUnavailable when any could
  /// not be revived (the others still serve).
  Status RestartDeadWorkers();

  /// Adds a custom backend (same freeze-on-first-query contract as the
  /// other services).
  Status RegisterSolver(std::unique_ptr<KspSolver> solver);

  /// Committed global epoch (0 until the first batch).
  uint64_t CurrentEpoch() const override { return epochs_->global(); }

  std::vector<std::string> BackendNames() const override {
    return registry_.Names();
  }

  /// Fleet-wide scrape: the coordinator's own registry merged with every
  /// worker's latest snapshot. Live workers are pinged (each ping carries
  /// the worker's registry back in the reply); a worker that cannot be
  /// reached contributes its last successfully fetched snapshot instead,
  /// so the export degrades to slightly stale worker data rather than
  /// dropping a shard. Worker samples are tagged {shard="<id>"}.
  MetricsSnapshot Metrics() const override;

  RemoteServiceCounters counters() const;

  /// Per-worker fleet snapshot, shard-major: index = shard * num_replicas
  /// + replica (at num_replicas == 1 this is indexed by ShardId, as
  /// before).
  std::vector<RemoteWorkerInfo> WorkerInfos() const;

  uint32_t num_shards() const { return assignment_.num_shards; }
  uint32_t num_replicas() const { return options_.num_replicas; }
  const ShardAssignment& assignment() const { return assignment_; }

  /// Checkpoint bookkeeping (monitoring + tests): the epoch of the latest
  /// full weight snapshot and the commits retained after it. The replay
  /// cost of a replica restart is bounded by history_size().
  uint64_t checkpoint_epoch() const;
  size_t history_size() const;

  /// Read-only views of the coordinator's master state.
  const Graph& graph() const { return graph_; }
  const Dtlp& dtlp() const { return *dtlp_; }
  const CandsIndex* cands() const { return cands_.get(); }
  const RoutingOptions& defaults() const { return options_.defaults; }

 private:
  /// One replica worker process: transport handle, liveness, and its share
  /// of the per-replica serving counters. `mu` serialises calls on the
  /// single connection; `pid` is written only under the coordinator's
  /// global exclusive lock (or during Create); `epoch` is additionally
  /// refreshed from ping replies, and both are read through atomics for
  /// monitoring and read routing.
  struct Worker {
    ShardId shard = kInvalidShard;
    uint32_t replica = 0;
    std::string socket_path;
    std::atomic<pid_t> pid{-1};
    std::unique_ptr<RpcClient> client;
    /// Serialises RPCs on this worker's connection (several batch-pool
    /// threads may need the same worker).
    mutable Mutex mu{"RemoteShardedRoutingService::Worker::mu"};
    /// Mutable: the const query path marks a worker dead on RPC failure.
    mutable std::atomic<bool> alive{false};
    /// Mutable: health checks on the const query/scrape paths refresh it
    /// from the worker's own ping report.
    mutable std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> restarts{0};
    std::atomic<uint64_t> catchups{0};
    /// Registry handles labelled {shard="<s>", replica="<r>"}.
    Counter partial_requests;
    Counter yen_runs;
    Counter reads;
    /// Last snapshot this worker shipped back in a ping reply (the
    /// fallback when the worker is unreachable at scrape time). Guarded by
    /// metrics_mu, never by `mu` — caching must not serialise with RPCs.
    mutable Mutex metrics_mu{"RemoteShardedRoutingService::Worker::metrics_mu"};
    mutable MetricsSnapshot last_metrics GUARDED_BY(metrics_mu);
    mutable bool has_metrics GUARDED_BY(metrics_mu) = false;
  };

  /// Per-shard state shared by the shard's replicas: the cache-flush stamp
  /// (same semantics as Shard::weights_epoch — all replicas serve
  /// byte-identical partials, so the caches are replica-agnostic) and the
  /// read-rotation cursor. Heap-allocated because atomics are immovable.
  struct ShardSlice {
    std::atomic<uint64_t> weights_epoch{0};
    /// Round-robin start offset for the next partial fetch of this shard.
    mutable std::atomic<uint64_t> next_replica{0};
    /// Cache telemetry labelled {shard="<s>"} (the caches are per shard).
    Counter cache_hits;
    Counter cache_skips;
    Counter cache_flushes;
  };

  class RemotePartialProvider;

  /// Persistent per-batch-pool-worker state (see ShardedRoutingService).
  struct BatchWorker {
    SolverScratchArena arena;
    std::unique_ptr<RemotePartialProvider> provider;

    BatchWorker();
    BatchWorker(BatchWorker&&) noexcept;
    BatchWorker& operator=(BatchWorker&&) noexcept;
    ~BatchWorker();
  };

  RemoteShardedRoutingService(Graph graph,
                              RemoteShardedRoutingServiceOptions options)
      : graph_(std::move(graph)), options_(std::move(options)) {}

  Status PrepareQuery(const RouteRequest& request,
                      PreparedRoute* prepared) const;

  void MarkServing() const {
    if (!serving_.load(std::memory_order_relaxed)) {
      serving_.store(true, std::memory_order_release);
    }
  }

  /// Ships the latest checkpoint graph to `worker` and cross-checks the
  /// deterministic rebuild. Caller holds the global exclusive lock (or is
  /// inside Create).
  Status LoadCheckpoint(Worker& worker) const;

  /// Replays every retained batch with epoch > `from_epoch` onto `worker`.
  Status ReplayRetainedHistory(Worker& worker, uint64_t from_epoch) const;

  /// Spawns the process for `worker` (which must not have a live child) and
  /// ships it the checkpoint graph + the retained history replay. On
  /// success the worker is alive at the current epoch.
  Status SpawnAndLoadWorker(Worker& worker) const;

  /// Replays the retained history onto an alive-but-lagging worker (or
  /// reloads it from the checkpoint when it fell behind the checkpoint
  /// epoch) so it rejoins the read rotation at the committed epoch. Caller
  /// holds the global exclusive lock.
  Status CatchUpWorker(Worker& worker) const;

  /// RestartDeadWorkers body; caller holds the global exclusive lock.
  Status RestartDeadWorkersLocked();

  Worker& WorkerAt(ShardId shard, uint32_t replica) const {
    return *workers_[static_cast<size_t>(shard) * options_.num_replicas +
                     replica];
  }

  /// Pings `worker`; marks it dead on failure.
  bool HealthCheckWorker(const Worker& worker) const;

  /// Marks a worker dead after a terminal RPC failure.
  void MarkWorkerDead(const Worker& worker) const {
    worker.alive.store(false, std::memory_order_release);
  }

  /// Best-effort graceful shutdown + SIGKILL + reap of one worker process.
  void StopWorker(Worker& worker);

  Graph graph_;
  RemoteShardedRoutingServiceOptions options_;
  /// Owns every metric cell the members below hold handles into. Declared
  /// before them so it is destroyed LAST — after submit_queue_, whose
  /// destructor still drains batches that bump counters.
  MetricsRegistry metrics_;
  /// Latest checkpoint: a full copy of the graph as of checkpoint_epoch_
  /// (the pristine Create-time graph at epoch 0 until the first checkpoint
  /// is taken). What a (re)spawned worker is loaded with before the
  /// retained history is replayed onto it. The partition is
  /// weight-independent and worker partials read only subgraph weight
  /// copies, so a checkpoint restart converges bit-identically to a
  /// full-history replay. Guarded by the global exclusive lock.
  Graph checkpoint_graph_;
  uint64_t checkpoint_epoch_ = 0;
  /// Traffic batches committed after checkpoint_epoch_, in commit order —
  /// history_[b] is the batch of epoch checkpoint_epoch_ + b + 1. Bounded
  /// by max_history_batches (a new checkpoint truncates it); guarded by
  /// the global exclusive lock.
  std::vector<std::vector<WeightUpdate>> history_;
  std::unique_ptr<Dtlp> dtlp_;
  std::unique_ptr<CandsIndex> cands_;
  SolverRegistry registry_;
  mutable std::atomic<bool> serving_{false};
  ShardAssignment assignment_;
  /// Resolved worker binary path (see RemoteWorkerOptions::worker_binary).
  std::string worker_binary_;
  /// The fleet, shard-major: workers_[shard * num_replicas + replica].
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Per-shard replica-shared state, indexed by ShardId.
  std::vector<std::unique_ptr<ShardSlice>> slices_;
  std::unique_ptr<EpochCoordinator> epochs_;
  std::unique_ptr<ThreadPool> apply_pool_;
  std::unique_ptr<ThreadPool> batch_pool_;

  mutable Mutex batch_mu_{"RemoteShardedRoutingService::batch_mu_"};
  mutable std::vector<BatchWorker> batch_workers_ GUARDED_BY(batch_mu_);
  mutable uint64_t arena_epoch_ GUARDED_BY(batch_mu_) = 0;

  /// Query/update handles into metrics_ (RemoteServiceCounters is a view
  /// over these plus the per-worker handles and the RPC client atomics).
  ServiceMetrics svc_metrics_;
  Counter single_shard_queries_;
  Counter cross_shard_queries_;
  Counter direct_partials_;
  Counter scattered_partials_;
  Counter partial_rpc_errors_;

  /// Declared last so it is destroyed FIRST (drains accepted batches).
  std::unique_ptr<SubmissionQueue> submit_queue_;
};

}  // namespace kspdg

#endif  // KSPDG_REMOTE_REMOTE_SHARDED_ROUTING_SERVICE_H_
