#include "remote/remote_sharded_routing_service.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/timer.h"
#include "kspdg/partial_provider.h"
#include "rpc/wire.h"

extern char** environ;

namespace kspdg {

namespace {

unsigned ResolveApplyThreads(unsigned requested, size_t num_workers) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<unsigned>(
      std::min<size_t>(num_workers, static_cast<size_t>(hw)));
}

uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// See RemoteWorkerOptions::worker_binary: explicit path, else the
/// KSPDG_WORKER_BIN env override, else "shard_worker" next to the current
/// executable (every CMake target lands in the build root).
std::string ResolveWorkerBinary(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv("KSPDG_WORKER_BIN");
  if (env != nullptr && env[0] != '\0') return env;
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "shard_worker";
  buf[n] = '\0';
  std::string self(buf);
  size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "shard_worker";
  return self.substr(0, slash + 1) + "shard_worker";
}

std::string ResolveSocketDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

/// Distinguishes sockets of distinct service instances within one process
/// (and, with the pid, across processes sharing a socket dir).
std::atomic<uint64_t> g_instance_counter{0};

}  // namespace

// The RPC twin of ShardedRoutingService::ShardPartialProvider: identical
// grouping, caching, and merge semantics (see that class for the depth/
// exhaustion reuse rules the parity guarantee rests on), but a fresh
// computation becomes a PartialsRequest to a worker process of the shard's
// replica set instead of an inline Yen run under the shard's lock. The
// request carries the pinned epoch, so a worker that silently missed a
// traffic batch rejects instead of contributing stale paths.
//
// Replica routing: each fetch starts at the shard's round-robin cursor and
// walks the replica set, skipping replicas that are dead or have not
// committed the pinned epoch; a transport failure marks that replica dead
// and fails over to the next sibling. Every replica replays the same epoch
// sequence, so whichever one answers, the bytes are identical. The caches
// are therefore per shard, not per replica.
//
// Failure semantics: the first failed fetch (meaning: no replica of some
// shard could serve it) poisons the query — the provider records the
// status, answers this and every later request of the query with an empty
// exhausted result (stopping the depth schedule cold), and the service
// discards the solver's output in favour of the recorded error. An
// all-replicas-dead shard therefore costs each affected query one fast
// status, never a hang and never a silently wrong answer.
class RemoteShardedRoutingService::RemotePartialProvider
    : public PartialProvider {
 public:
  explicit RemotePartialProvider(const RemoteShardedRoutingService& service)
      : service_(service),
        max_cached_pairs_(service.options_.defaults.partial_cache_pairs),
        caches_(service.assignment_.num_shards),
        shard_touched_(service.assignment_.num_shards, 0) {}

  /// Binds the multi-shard read pin whose epoch stamps every request.
  void BindPin(const EpochCoordinator::ReadPin* pin) { pin_ = pin; }

  /// Resets the per-query state (touch tracking + error; caches persist).
  void BeginQuery() {
    std::fill(shard_touched_.begin(), shard_touched_.end(), 0);
    error_ = Status::OK();
  }

  /// First RPC/protocol failure of the current query (OK if none). The
  /// caller must check this after Solve and discard the result on error.
  const Status& error() const { return error_; }

  size_t ShardsTouched() const {
    size_t n = 0;
    for (char touched : shard_touched_) n += touched != 0;
    return n;
  }

  PartialResult ComputePartials(VertexId x, VertexId y,
                                size_t depth) override {
    PartialResult failed;
    failed.exhausted = true;  // stop the depth schedule; the query is lost
    if (!error_.ok()) return failed;
    const Partition& partition = service_.dtlp_->partition();
    std::vector<std::pair<ShardId, std::vector<SubgraphId>>> groups;
    for (SubgraphId sgid : partition.SubgraphsContainingBoth(x, y)) {
      ShardId shard = service_.assignment_.shard_of_subgraph[sgid];
      auto it =
          std::find_if(groups.begin(), groups.end(),
                       [shard](const auto& g) { return g.first == shard; });
      if (it == groups.end()) {
        groups.push_back({shard, {sgid}});
      } else {
        it->second.push_back(sgid);
      }
    }
    std::vector<SubgraphPartials> gathered;
    size_t fresh_runs = 0;
    const uint64_t key = PairKey(x, y);
    for (const auto& [shard_id, owned] : groups) {
      const ShardSlice& slice = *service_.slices_[shard_id];
      shard_touched_[shard_id] = 1;
      ShardCache& cache = caches_[shard_id];
      // Flush against the shard's weights stamp (see ShardPartialProvider:
      // a batch that never touched this shard leaves its cache warm). The
      // stamp is replica-shared — every replica serves identical bytes.
      const uint64_t weights_epoch =
          slice.weights_epoch.load(std::memory_order_acquire);
      if (cache.epoch != weights_epoch) {
        if (!cache.entries.empty()) {
          slice.cache_flushes.Increment();
          cache.entries.clear();
        }
        cache.epoch = weights_epoch;
      }
      if (const CacheEntry* hit = cache.Find(key, depth)) {
        slice.cache_hits.Increment();
        gathered.insert(gathered.end(), hit->lists.begin(), hit->lists.end());
        continue;
      }
      CacheEntry entry;
      entry.depth = depth;
      Status fetched = FetchFromShard(shard_id, owned, x, y, depth, &entry);
      if (!fetched.ok()) {
        error_ = std::move(fetched);
        return failed;
      }
      fresh_runs += owned.size();
      entry.exhausted = true;
      for (const SubgraphPartials& list : entry.lists) {
        if (list.paths.size() >= depth) entry.exhausted = false;
      }
      gathered.insert(gathered.end(), entry.lists.begin(), entry.lists.end());
      if (max_cached_pairs_ != 0 &&
          (cache.entries.size() < max_cached_pairs_ ||
           cache.entries.count(key) != 0)) {
        cache.entries[key].push_back(std::move(entry));
      } else {
        slice.cache_skips.Increment();
      }
    }
    PartialResult result = MergeSubgraphPartials(std::move(gathered), depth);
    result.yen_runs = fresh_runs;
    if (groups.size() == 1) {
      service_.direct_partials_.Increment();
    } else if (groups.size() > 1) {
      service_.scattered_partials_.Increment();
    }
    return result;
  }

 private:
  struct CacheEntry {
    size_t depth = 0;
    bool exhausted = false;
    std::vector<SubgraphPartials> lists;
  };

  struct ShardCache {
    uint64_t epoch = 0;
    std::unordered_map<uint64_t, std::vector<CacheEntry>> entries;

    const CacheEntry* Find(uint64_t key, size_t depth) const {
      auto it = entries.find(key);
      if (it == entries.end()) return nullptr;
      for (const CacheEntry& entry : it->second) {
        if (entry.depth == depth ||
            (entry.exhausted && entry.depth <= depth)) {
          return &entry;
        }
      }
      return nullptr;
    }
  };

  /// Routes one fetch across the shard's replica set: round-robin start,
  /// skip replicas that are dead or lagging the pinned epoch, fail over on
  /// transport errors. Succeeds as long as ANY replica can serve.
  Status FetchFromShard(ShardId shard_id,
                        const std::vector<SubgraphId>& owned, VertexId x,
                        VertexId y, size_t depth, CacheEntry* entry) {
    const ShardSlice& slice = *service_.slices_[shard_id];
    const uint32_t replicas = service_.options_.num_replicas;
    const uint64_t pinned = pin_->epoch();
    const uint64_t start =
        slice.next_replica.fetch_add(1, std::memory_order_relaxed);
    Status last_error;  // stays OK while every replica is merely skipped
    for (uint32_t i = 0; i < replicas; ++i) {
      const Worker& worker = service_.WorkerAt(
          shard_id, static_cast<uint32_t>((start + i) % replicas));
      if (!worker.alive.load(std::memory_order_acquire)) continue;
      // A lagging replica (missed one or more epochs) is out of the read
      // rotation until it catches up; the worker-side epoch check would
      // reject the request anyway, this just skips the round trip.
      if (worker.epoch.load(std::memory_order_acquire) != pinned) continue;
      Status fetched = FetchFromWorker(worker, owned, x, y, depth, entry);
      if (fetched.ok()) {
        worker.partial_requests.Increment();
        worker.yen_runs.Increment(owned.size());
        worker.reads.Increment();
        return Status::OK();
      }
      last_error = std::move(fetched);  // fail over to the next sibling
    }
    if (last_error.ok()) {
      return Status::Unavailable(
          "all replicas of shard " + std::to_string(shard_id) +
          " are dead or lagging; the shard is unavailable until restarted");
    }
    return last_error;
  }

  /// One partials round trip to `worker`, validated. A transport or
  /// protocol failure marks the worker dead — it cannot serve its shard
  /// until restarted, and later fetches skip it on the alive flag instead
  /// of re-timing-out. An epoch-mismatch rejection only means the replica
  /// is lagging: it stays alive for catch-up while its siblings serve.
  Status FetchFromWorker(const Worker& worker,
                         const std::vector<SubgraphId>& owned, VertexId x,
                         VertexId y, size_t depth, CacheEntry* entry) {
    if (!worker.alive.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "shard worker " + std::to_string(worker.shard) + " replica " +
          std::to_string(worker.replica) + " is dead");
    }
    PartialsRequest request;
    request.epoch = pin_->epoch();
    request.x = x;
    request.y = y;
    request.depth = depth;
    request.sgids = owned;
    std::string reply_payload;
    Status called;
    {
      MutexLock lock(worker.mu);
      called = worker.client->Call(MessageType::kPartialsRequest,
                                   request.Encode(),
                                   MessageType::kPartialsReply,
                                   &reply_payload);
    }
    PartialsReply reply;
    if (called.ok()) called = PartialsReply::Decode(reply_payload, &reply);
    if (called.ok() && reply.lists.size() != owned.size()) {
      called = Status::Internal(
          "worker " + std::to_string(worker.shard) + " returned " +
          std::to_string(reply.lists.size()) + " partial lists for " +
          std::to_string(owned.size()) + " requested subgraphs");
    }
    if (called.ok()) {
      for (size_t i = 0; i < owned.size(); ++i) {
        if (reply.lists[i].sgid != owned[i]) {
          called = Status::Internal(
              "worker " + std::to_string(worker.shard) +
              " returned partials for the wrong subgraph");
          break;
        }
      }
    }
    if (!called.ok()) {
      if (called.code() != StatusCode::kFailedPrecondition) {
        service_.MarkWorkerDead(worker);
      }
      return called;
    }
    entry->lists = std::move(reply.lists);
    return Status::OK();
  }

  const RemoteShardedRoutingService& service_;
  const size_t max_cached_pairs_;
  const EpochCoordinator::ReadPin* pin_ = nullptr;
  std::vector<ShardCache> caches_;
  std::vector<char> shard_touched_;
  Status error_;
};

RemoteShardedRoutingService::BatchWorker::BatchWorker() = default;
RemoteShardedRoutingService::BatchWorker::BatchWorker(BatchWorker&&) noexcept =
    default;
RemoteShardedRoutingService::BatchWorker&
RemoteShardedRoutingService::BatchWorker::operator=(BatchWorker&&) noexcept =
    default;
RemoteShardedRoutingService::BatchWorker::~BatchWorker() = default;

Result<std::unique_ptr<RemoteShardedRoutingService>>
RemoteShardedRoutingService::Create(Graph graph,
                                    RemoteShardedRoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.num_replicas == 0) {
    return Status::InvalidArgument("num_replicas must be >= 1");
  }
  if (options.max_history_batches == 0) options.max_history_batches = 1;
  // Heap-allocate before building the DTLP: the index keeps a pointer to
  // the service-owned graph.
  std::unique_ptr<RemoteShardedRoutingService> service(
      new RemoteShardedRoutingService(std::move(graph), std::move(options)));
  // Replay source for worker (re)starts: a restarted worker must re-derive
  // the exact incrementally-maintained state of its peers, so it loads the
  // latest checkpoint and replays the retained history. Until the first
  // checkpoint that is the pristine Create-time graph at epoch 0. (Safe
  // because the partition is weight-independent and worker partials read
  // only subgraph weight copies: replaying from a checkpoint lands on the
  // same bytes as replaying from scratch.)
  service->checkpoint_graph_ = service->graph_;
  service->checkpoint_epoch_ = 0;
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  if (service->options_.enable_cands) {
    Result<std::unique_ptr<CandsIndex>> cands =
        BuildCandsIndex(service->graph_, service->options_.dtlp);
    if (!cands.ok()) return cands.status();
    service->cands_ = std::move(cands).value();
  }
  Result<ShardAssignment> assignment = AssignShards(
      service->dtlp_->partition(), service->options_.num_shards);
  if (!assignment.ok()) return assignment.status();
  service->assignment_ = std::move(assignment).value();
  service->registry_ = SolverRegistry::Default();
  service->epochs_ =
      std::make_unique<EpochCoordinator>(service->assignment_.num_shards);
  const size_t fleet_size = static_cast<size_t>(service->assignment_.num_shards) *
                            service->options_.num_replicas;
  service->apply_pool_ = std::make_unique<ThreadPool>(
      ResolveApplyThreads(service->options_.apply_threads, fleet_size));
  service->batch_pool_ = std::make_unique<ThreadPool>(
      DefaultBatchThreads(service->options_.batch_threads));

  service->worker_binary_ =
      ResolveWorkerBinary(service->options_.remote.worker_binary);
  if (access(service->worker_binary_.c_str(), X_OK) != 0) {
    return Status::InvalidArgument(
        "shard_worker binary not executable at '" + service->worker_binary_ +
        "' (set RemoteWorkerOptions::worker_binary or KSPDG_WORKER_BIN)");
  }
  const std::string socket_dir =
      ResolveSocketDir(service->options_.remote.socket_dir);
  const uint64_t instance =
      g_instance_counter.fetch_add(1, std::memory_order_relaxed);
  RpcClientOptions client_options;
  client_options.deadline_ms = service->options_.remote.rpc_deadline_ms;
  client_options.max_retries = service->options_.remote.rpc_max_retries;
  client_options.backoff_ms = service->options_.remote.rpc_backoff_ms;
  for (ShardId shard = 0; shard < service->assignment_.num_shards; ++shard) {
    // Replica-shared per-shard state: the cache telemetry keeps its
    // {shard} label (the caches are per shard), and shard_epoch exports
    // the coordinator's published per-shard epoch.
    auto slice = std::make_unique<ShardSlice>();
    const MetricLabels shard_labels = {{"shard", std::to_string(shard)}};
    slice->cache_hits =
        service->metrics_.GetCounter("partial_cache_hits_total", shard_labels);
    slice->cache_skips =
        service->metrics_.GetCounter("partial_cache_skips_total", shard_labels);
    slice->cache_flushes = service->metrics_.GetCounter(
        "partial_cache_flushes_total", shard_labels);
    service->metrics_.AddGaugeCallback(
        "shard_epoch", shard_labels,
        [epochs = service->epochs_.get(), shard] {
          return static_cast<int64_t>(epochs->shard(shard));
        });
    service->slices_.push_back(std::move(slice));
    for (uint32_t replica = 0; replica < service->options_.num_replicas;
         ++replica) {
      auto worker = std::make_unique<Worker>();
      worker->shard = shard;
      worker->replica = replica;
      worker->socket_path = socket_dir + "/kspdg-" +
                            std::to_string(static_cast<long>(getpid())) + "-" +
                            std::to_string(instance) + "-s" +
                            std::to_string(shard) + "r" +
                            std::to_string(replica) + ".sock";
      worker->client =
          std::make_unique<RpcClient>(worker->socket_path, client_options);
      // Per-replica serving counters plus callbacks over the client's
      // (monotonic, see RpcClient) transport atomics — the registry is the
      // export surface, the client stays the owner.
      const MetricLabels labels = {{"shard", std::to_string(shard)},
                                   {"replica", std::to_string(replica)}};
      worker->partial_requests =
          service->metrics_.GetCounter("partial_requests_total", labels);
      worker->yen_runs =
          service->metrics_.GetCounter("yen_runs_total", labels);
      worker->reads =
          service->metrics_.GetCounter("reads_by_replica_total", labels);
      RpcClient* client = worker->client.get();
      service->metrics_.AddCounterCallback(
          "rpc_calls_total", labels, [client] { return client->calls(); });
      service->metrics_.AddCounterCallback(
          "rpc_retries_total", labels, [client] { return client->retries(); });
      service->metrics_.AddCounterCallback(
          "rpc_deadline_expired_total", labels,
          [client] { return client->deadline_expired(); });
      service->metrics_.AddCounterCallback(
          "rpc_bytes_sent_total", labels,
          [client] { return client->bytes_sent(); });
      service->metrics_.AddCounterCallback(
          "rpc_bytes_received_total", labels,
          [client] { return client->bytes_received(); });
      Worker* raw = worker.get();
      service->metrics_.AddGaugeCallback(
          "worker_alive", labels, [raw] {
            return raw->alive.load(std::memory_order_acquire) ? 1 : 0;
          });
      service->metrics_.AddGaugeCallback(
          "replica_epoch", labels, [raw] {
            return static_cast<int64_t>(
                raw->epoch.load(std::memory_order_relaxed));
          });
      service->metrics_.AddCounterCallback(
          "replica_catchups_total", labels, [raw] {
            return raw->catchups.load(std::memory_order_relaxed);
          });
      service->workers_.push_back(std::move(worker));
    }
  }
  service->svc_metrics_.Init(service->metrics_, service->registry_.Names());
  service->single_shard_queries_ =
      service->metrics_.GetCounter("single_shard_queries_total");
  service->cross_shard_queries_ =
      service->metrics_.GetCounter("cross_shard_queries_total");
  service->direct_partials_ =
      service->metrics_.GetCounter("direct_partial_requests_total");
  service->scattered_partials_ =
      service->metrics_.GetCounter("scattered_partial_requests_total");
  service->partial_rpc_errors_ =
      service->metrics_.GetCounter("partial_rpc_errors_total");
  service->metrics_.AddCounterCallback(
      "worker_restarts_total", {}, [svc = service.get()] {
        uint64_t restarts = 0;
        for (const std::unique_ptr<Worker>& w : svc->workers_) {
          restarts += w->restarts.load(std::memory_order_relaxed);
        }
        return restarts;
      });
  service->epochs_->global_lock().InstrumentWriter(
      service->metrics_.GetCounter("epoch_writer_drains_total"),
      service->metrics_.GetHistogram("epoch_writer_wait_micros", {},
                                     LatencyBucketsMicros()));
  service->metrics_.AddGaugeCallback(
      "epoch", {}, [epochs = service->epochs_.get()] {
        return static_cast<int64_t>(epochs->global());
      });

  // Providers size their caches off workers_, so build them after the fleet.
  {
    MutexLock batch_guard(service->batch_mu_);
    service->batch_workers_.reserve(service->batch_pool_->num_threads());
    for (unsigned w = 0; w < service->batch_pool_->num_threads(); ++w) {
      BatchWorker worker;
      worker.provider = std::make_unique<RemotePartialProvider>(*service);
      service->batch_workers_.push_back(std::move(worker));
    }
  }
  SubmissionQueueMetrics queue_metrics;
  queue_metrics.enqueue_blocked_total =
      service->metrics_.GetCounter("submission_queue_enqueue_blocked_total");
  queue_metrics.enqueue_block_micros = service->metrics_.GetHistogram(
      "submission_queue_enqueue_block_micros", {}, LatencyBucketsMicros());
  queue_metrics.shed_deadline_total =
      service->metrics_.GetCounter("submission_queue_shed_deadline_total");
  queue_metrics.shed_quota_total =
      service->metrics_.GetCounter("submission_queue_shed_quota_total");
  AdmissionOptions admission;
  admission.per_tenant_quota = service->options_.per_tenant_quota;
  service->submit_queue_ = std::make_unique<SubmissionQueue>(
      service->options_.submit_queue_capacity, /*num_workers=*/1,
      std::move(queue_metrics), admission);
  service->metrics_.AddGaugeCallback(
      "submission_queue_depth", {}, [queue = service->submit_queue_.get()] {
        return static_cast<int64_t>(queue->pending());
      });
  for (RequestPriority priority :
       {RequestPriority::kInteractive, RequestPriority::kNormal,
        RequestPriority::kBatch}) {
    service->metrics_.AddGaugeCallback(
        "submission_queue_depth_by_priority",
        {{"priority", PriorityName(priority)}},
        [queue = service->submit_queue_.get(), priority] {
          return static_cast<int64_t>(queue->pending(priority));
        });
  }
  service->metrics_.AddCounterCallback(
      "submission_queue_submitted_total", {},
      [queue = service->submit_queue_.get()] { return queue->submitted(); });
  service->metrics_.AddCounterCallback(
      "submission_queue_completed_total", {},
      [queue = service->submit_queue_.get()] { return queue->completed(); });

  // Spawn last: on any failure the service destructor reaps the workers
  // already started.
  for (std::unique_ptr<Worker>& worker : service->workers_) {
    KSPDG_RETURN_NOT_OK(service->SpawnAndLoadWorker(*worker));
  }
  return service;
}

RemoteShardedRoutingService::~RemoteShardedRoutingService() {
  // Drain accepted async batches while the fleet still answers partials.
  submit_queue_.reset();
  for (std::unique_ptr<Worker>& worker : workers_) {
    if (worker != nullptr) StopWorker(*worker);
  }
}

// Ships the checkpoint graph to the worker process (which rebuilds the
// partition + index deterministically and resets to checkpoint_epoch_) and
// cross-checks the rebuilt ownership against the coordinator's.
Status RemoteShardedRoutingService::LoadCheckpoint(Worker& worker) const {
  LoadGraphRequest load = LoadGraphRequest::FromGraph(
      checkpoint_graph_, worker.shard, assignment_.num_shards, options_.dtlp);
  load.replica_id = worker.replica;
  load.base_epoch = checkpoint_epoch_;
  std::string reply_payload;
  Status called;
  {
    MutexLock lock(worker.mu);
    called = worker.client->Call(
        MessageType::kLoadGraphRequest, load.Encode(),
        MessageType::kLoadGraphReply, &reply_payload,
        options_.remote.apply_deadline_ms);
  }
  LoadGraphReply loaded;
  if (called.ok()) called = LoadGraphReply::Decode(reply_payload, &loaded);
  if (called.ok() &&
      (loaded.subgraphs_owned !=
           assignment_.subgraphs_of_shard[worker.shard].size() ||
       loaded.vertices_owned != assignment_.vertices_of_shard[worker.shard])) {
    // The worker's deterministic rebuild disagreed with ours — nothing it
    // answers can be trusted.
    called = Status::Internal(
        "worker " + std::to_string(worker.shard) +
        " rebuilt a different shard assignment than the coordinator");
  }
  return called;
}

// Replays every retained batch with epoch > from_epoch in commit order;
// prepares are idempotent, so a retry after a lost reply is safe.
Status RemoteShardedRoutingService::ReplayRetainedHistory(
    Worker& worker, uint64_t from_epoch) const {
  Status called;
  for (size_t b = 0; called.ok() && b < history_.size(); ++b) {
    const uint64_t epoch = checkpoint_epoch_ + b + 1;
    if (epoch <= from_epoch) continue;
    EpochPrepareRequest prepare;
    prepare.epoch = epoch;
    prepare.updates = history_[b];
    std::string prepare_reply;
    {
      MutexLock lock(worker.mu);
      called = worker.client->Call(
          MessageType::kEpochPrepareRequest, prepare.Encode(),
          MessageType::kEpochPrepareReply, &prepare_reply,
          options_.remote.apply_deadline_ms);
    }
    EpochPrepareReply reply;
    if (called.ok()) called = EpochPrepareReply::Decode(prepare_reply, &reply);
  }
  return called;
}

Status RemoteShardedRoutingService::SpawnAndLoadWorker(Worker& worker) const {
  std::vector<std::string> args = {
      worker_binary_, "--socket", worker.socket_path, "--idle-timeout-ms",
      std::to_string(options_.remote.worker_idle_timeout_ms)};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = posix_spawn(&pid, worker_binary_.c_str(), /*file_actions=*/nullptr,
                       /*attrp=*/nullptr, argv.data(), environ);
  if (rc != 0) {
    return Status::Internal("posix_spawn(" + worker_binary_ +
                            "): " + std::strerror(rc));
  }
  worker.pid.store(pid, std::memory_order_release);

  // Bootstrap: ship the checkpoint (EnsureConnected inside the client keeps
  // retrying the connect until the deadline, which covers startup), then
  // replay the retained history so the worker re-derives the exact
  // incremental index state every live replica has.
  Status called = LoadCheckpoint(worker);
  if (called.ok()) called = ReplayRetainedHistory(worker, checkpoint_epoch_);
  if (!called.ok()) {
    MarkWorkerDead(worker);
    return called;
  }
  worker.epoch.store(checkpoint_epoch_ + history_.size(),
                     std::memory_order_release);
  // Conservative stamp: flush any cached partials derived from the previous
  // incarnation (they would replay identically, but a flush is always safe).
  slices_[worker.shard]->weights_epoch.store(epochs_->global(),
                                             std::memory_order_release);
  worker.alive.store(true, std::memory_order_release);
  return Status::OK();
}

Status RemoteShardedRoutingService::CatchUpWorker(Worker& worker) const {
  const uint64_t target = checkpoint_epoch_ + history_.size();
  uint64_t at = worker.epoch.load(std::memory_order_acquire);
  if (at >= target) return Status::OK();
  Status called;
  if (at < checkpoint_epoch_) {
    // The replica fell behind the log truncation point: its missing epochs
    // are no longer retained individually, so reload it from the
    // checkpoint before replaying what is.
    called = LoadCheckpoint(worker);
    at = checkpoint_epoch_;
  }
  if (called.ok()) called = ReplayRetainedHistory(worker, at);
  if (!called.ok()) {
    MarkWorkerDead(worker);
    return called;
  }
  worker.epoch.store(target, std::memory_order_release);
  worker.catchups.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool RemoteShardedRoutingService::HealthCheckWorker(
    const Worker& worker) const {
  static std::atomic<uint64_t> nonce_source{1};
  PingRequest ping;
  ping.nonce = nonce_source.fetch_add(1, std::memory_order_relaxed);
  std::string reply_payload;
  Status called;
  {
    MutexLock lock(worker.mu);
    called = worker.client->Call(MessageType::kPingRequest, ping.Encode(),
                                 MessageType::kPingReply, &reply_payload);
  }
  PingReply pong;
  if (called.ok()) called = PingReply::Decode(reply_payload, &pong);
  if (called.ok() && pong.nonce != ping.nonce) {
    called = Status::Internal("ping nonce mismatch");
  }
  if (called.ok() &&
      (pong.shard_id != worker.shard || pong.replica_id != worker.replica)) {
    called = Status::Internal("ping answered by the wrong worker identity");
  }
  if (!called.ok()) {
    MarkWorkerDead(worker);
    return false;
  }
  // The pong carries the worker's own epoch — the authoritative lag signal
  // that takes a replica out of (or back into) the read rotation.
  worker.epoch.store(pong.epoch, std::memory_order_release);
  // Every successful ping refreshes the worker's cached metrics snapshot —
  // the fleet-wide export falls back to it when the worker is unreachable.
  MetricsSnapshot worker_metrics;
  if (MetricsSnapshot::DecodeWire(pong.metrics_blob, &worker_metrics).ok()) {
    MutexLock metrics_lock(worker.metrics_mu);
    worker.last_metrics = std::move(worker_metrics);
    worker.has_metrics = true;
  }
  return true;
}

MetricsSnapshot RemoteShardedRoutingService::Metrics() const {
  MetricsSnapshot fleet = metrics_.Snapshot();
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) {
      // Refreshes the cached snapshot on success; a failed ping marks the
      // worker dead and the cache below still provides its last state.
      (void)HealthCheckWorker(*worker);
    }
    MetricsSnapshot worker_metrics;
    bool have = false;
    {
      MutexLock metrics_lock(worker->metrics_mu);
      if (worker->has_metrics) {
        worker_metrics = worker->last_metrics;
        have = true;
      }
    }
    if (!have) continue;
    worker_metrics.AddLabel("shard", std::to_string(worker->shard));
    worker_metrics.AddLabel("replica", std::to_string(worker->replica));
    fleet.Merge(worker_metrics);
  }
  return fleet;
}

Status RemoteShardedRoutingService::RegisterSolver(
    std::unique_ptr<KspSolver> solver) {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "RegisterSolver must run before the first query is served");
  }
  const std::string name(solver->name());
  KSPDG_RETURN_NOT_OK(registry_.Register(std::move(solver)));
  svc_metrics_.AddBackend(metrics_, name);
  return Status::OK();
}

Status RemoteShardedRoutingService::RestartDeadWorkersLocked() {
  // A worker that crashed without a failed RPC still looks alive; a cheap
  // ping flushes silent deaths out (and refreshes each survivor's reported
  // epoch) before we decide who needs reviving or catching up.
  for (std::unique_ptr<Worker>& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) {
      (void)HealthCheckWorker(*worker);
    }
  }
  const uint64_t committed = epochs_->global();
  Status first_failure = Status::OK();
  for (std::unique_ptr<Worker>& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) {
      // Alive but lagging (it missed prepares — dropped RPCs, or revived
      // after the fact): replay it back in place, no respawn needed.
      if (worker->epoch.load(std::memory_order_acquire) < committed) {
        Status caught = CatchUpWorker(*worker);
        if (!caught.ok() && first_failure.ok()) {
          first_failure = std::move(caught);
        }
      }
      continue;
    }
    // Reap the previous incarnation (SIGKILL is a no-op if it already
    // exited; the waitpid prevents zombies either way).
    pid_t pid = worker->pid.load(std::memory_order_relaxed);
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      worker->pid.store(-1, std::memory_order_relaxed);
    }
    worker->client->Disconnect();
    Status spawned = SpawnAndLoadWorker(*worker);
    if (spawned.ok()) {
      worker->restarts.fetch_add(1, std::memory_order_relaxed);
      // A respawn past epoch 0 replayed history to rejoin the rotation —
      // that is a catch-up in the replication sense.
      if (committed > 0) {
        worker->catchups.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (first_failure.ok()) {
      first_failure = std::move(spawned);
    }
  }
  if (!first_failure.ok()) {
    return Status::Unavailable("worker restart failed: " +
                               first_failure.ToString());
  }
  return Status::OK();
}

Status RemoteShardedRoutingService::RestartDeadWorkers() {
  // Exclusive: restarting swaps worker state under queries' feet otherwise.
  EpochWriterLock lock(epochs_->global_lock());
  return RestartDeadWorkersLocked();
}

void RemoteShardedRoutingService::StopWorker(Worker& worker) {
  if (worker.client != nullptr &&
      worker.alive.load(std::memory_order_acquire)) {
    // Graceful half: ask the worker to exit. Short deadline — SIGKILL below
    // backs it up, and a dead worker should not stall teardown.
    std::string reply_payload;
    MutexLock lock(worker.mu);
    (void)worker.client->Call(MessageType::kShutdownRequest, std::string(),
                              MessageType::kShutdownReply, &reply_payload,
                              /*deadline_ms_override=*/500);
  }
  pid_t pid = worker.pid.load(std::memory_order_relaxed);
  if (pid > 0) {
    bool reaped = false;
    for (int i = 0; i < 50; ++i) {
      int wstatus = 0;
      pid_t r = waitpid(pid, &wstatus, WNOHANG);
      if (r != 0) {  // exited (or already reaped — nothing left to do)
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
    worker.pid.store(-1, std::memory_order_relaxed);
  }
  worker.alive.store(false, std::memory_order_release);
  // The worker unlinks its socket on a graceful exit, but a SIGKILLed one
  // cannot — remove it here so teardown never litters the socket dir.
  if (!worker.socket_path.empty()) ::unlink(worker.socket_path.c_str());
}

Status RemoteShardedRoutingService::PrepareQuery(const RouteRequest& request,
                                                 PreparedRoute* prepared) const {
  return PrepareRoutingQuery(registry_, options_.defaults, graph_, request,
                             prepared);
}

Result<RouteResponse> RemoteShardedRoutingService::Query(
    const RouteRequest& request) const {
  MarkServing();
  PreparedRoute prepared;
  Status status = PrepareQuery(request, &prepared);
  if (!status.ok()) {
    svc_metrics_.RecordQueryFailure(status);
    return status;
  }

  RemotePartialProvider provider(*this);
  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.partials = &provider;  // DTLP-free backends ignore it
  input.cands = cands_.get();
  input.source = request.source;
  input.target = request.target;
  input.options = std::move(prepared.merged);

  // Snapshot section: the read pin freezes the coordinator's master state
  // AND excludes traffic applies, so every worker sits exactly at the
  // pinned epoch for the pin's lifetime — the epoch stamp on each partials
  // request turns any violation of that into an explicit error.
  EpochCoordinator::ReadPin pin(*epochs_);
  provider.BindPin(&pin);
  provider.BeginQuery();
  WallTimer timer;
  Result<KspQueryResult> solved = prepared.solver->Solve(input);
  if (!provider.error().ok()) {
    // A partial fetch failed mid-solve: whatever the solver produced is
    // untrustworthy. Degrade to the transport error, never a wrong answer.
    svc_metrics_.RecordQueryFailure(provider.error());
    partial_rpc_errors_.Increment();
    return provider.error();
  }
  if (!solved.ok()) {
    svc_metrics_.RecordQueryFailure(solved.status());
    return solved.status();
  }
  RouteResponse response =
      FinishRouteResponse(prepared.kind, prepared.requested_k,
                          std::move(input.options), graph_.directed(),
                          std::move(solved).value());
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = pin.epoch();
  size_t touched = provider.ShardsTouched();
  if (touched == 1) {
    single_shard_queries_.Increment();
  } else if (touched > 1) {
    cross_shard_queries_.Increment();
  }
  svc_metrics_.RecordQuery(prepared.kind, response.backend,
                           response.stats.solve_micros);
  return response;
}

Result<RouteBatchResponse> RemoteShardedRoutingService::QueryBatch(
    std::span<const RouteRequest> requests) const {
  MarkServing();
  RouteBatchResponse batch;
  batch.items.resize(requests.size());

  // Phase 1 (outside any lock): validate every request and resolve its
  // backend; failures become per-item statuses, never a batch failure.
  struct Prepared {
    size_t index = 0;
    PreparedRoute route;
  };
  std::vector<Prepared> work;
  work.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Prepared prepared;
    prepared.index = i;
    Status status = PrepareQuery(requests[i], &prepared.route);
    if (!status.ok()) {
      batch.items[i].status = std::move(status);
      continue;
    }
    work.push_back(std::move(prepared));
  }

  // Phase 2: group by backend so contiguous chunks share a solver.
  std::stable_sort(work.begin(), work.end(),
                   [](const Prepared& a, const Prepared& b) {
                     return a.route.solver->name() < b.route.solver->name();
                   });

  // Phase 3 (snapshot section): ONE read pin covers every solve — see
  // ShardedRoutingService::QueryBatch, whose structure this mirrors
  // exactly; only the provider behind the seam differs.
  MutexLock batch_guard(batch_mu_);
  {
    EpochCoordinator::ReadPin pin(*epochs_);
    WallTimer timer;
    const uint64_t epoch = pin.epoch();
    batch.epoch = epoch;
    if (arena_epoch_ != epoch) {
      for (BatchWorker& worker : batch_workers_) worker.arena.OnSnapshotChange();
      arena_epoch_ = epoch;
    }
    for (BatchWorker& worker : batch_workers_) worker.provider->BindPin(&pin);
    // The pool threads do not hold batch_mu_ — they are handed disjoint
    // worker slots while this thread keeps the whole batch section locked,
    // which the analysis cannot see through the lambda. The raw pointer is
    // the deliberate escape hatch.
    BatchWorker* const pool_workers = batch_workers_.data();
    size_t chunk = std::max<size_t>(
        1, work.size() / (4 * size_t{batch_pool_->num_threads()}));
    batch_pool_->ParallelFor(
        work.size(), chunk, [&](unsigned worker_id, size_t j) {
          Prepared& p = work[j];
          BatchWorker& worker = pool_workers[worker_id];
          SolverInput input;
          input.graph = &graph_;
          input.dtlp = dtlp_.get();
          input.partials = worker.provider.get();
          input.cands = cands_.get();
          input.source = requests[p.index].source;
          input.target = requests[p.index].target;
          input.options = std::move(p.route.merged);
          worker.provider->BeginQuery();
          SolverScratch* scratch = p.route.solver->UsesPartialProvider()
                                       ? nullptr
                                       : worker.arena.Get(p.route.solver);
          RouteBatchItem& item = batch.items[p.index];
          WallTimer solve_timer;
          Result<KspQueryResult> solved =
              p.route.solver->Solve(input, scratch);
          if (!worker.provider->error().ok()) {
            item.status = worker.provider->error();
            partial_rpc_errors_.Increment();
            return;
          }
          if (!solved.ok()) {
            item.status = solved.status();
            return;
          }
          item.response = FinishRouteResponse(
              p.route.kind, p.route.requested_k, std::move(input.options),
              graph_.directed(), std::move(solved).value());
          item.response.stats.solve_micros = solve_timer.ElapsedMicros();
          item.response.epoch = epoch;
          size_t touched = worker.provider->ShardsTouched();
          if (touched == 1) {
            single_shard_queries_.Increment();
          } else if (touched > 1) {
            cross_shard_queries_.Increment();
          }
          svc_metrics_.RecordQuery(p.route.kind, item.response.backend,
                                   item.response.stats.solve_micros);
        });
    for (BatchWorker& worker : batch_workers_) worker.provider->BindPin(nullptr);
    batch.batch_micros = timer.ElapsedMicros();
  }

  // Accepted items were recorded per solve (kind/backend/latency); the
  // admission classification and the rejection/shed totals settle here.
  svc_metrics_.FinalizeBatchAdmission(batch);
  return batch;
}

BatchTicket RemoteShardedRoutingService::SubmitBatch(
    std::vector<RouteRequest> requests, BatchCallback callback) const {
  MarkServing();
  return BatchTicket::SubmitTo(*submit_queue_, *this, std::move(requests),
                               std::move(callback),
                               svc_metrics_.admission_view());
}

Result<TrafficBatchResult> RemoteShardedRoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking any lock (mirrors the other services).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }

  // Coordinator-side grouping: which shards the batch touches, and how many
  // updates each worker SHOULD apply — the cross-check that catches a
  // worker whose deterministic rebuild diverged from ours.
  const Partition& partition = dtlp_->partition();
  std::vector<size_t> updates_of_subgraph(dtlp_->NumSubgraphs(), 0);
  std::vector<SubgraphId> touched;
  for (const WeightUpdate& update : updates) {
    SubgraphId sgid = partition.subgraph_of_edge[update.edge];
    if (sgid == kInvalidSubgraph) continue;
    if (updates_of_subgraph[sgid] == 0) touched.push_back(sgid);
    ++updates_of_subgraph[sgid];
  }
  std::vector<char> shard_touched(assignment_.num_shards, 0);
  std::vector<uint64_t> expected_of_shard(assignment_.num_shards, 0);
  for (SubgraphId sgid : touched) {
    ShardId shard = assignment_.shard_of_subgraph[sgid];
    shard_touched[shard] = 1;
    expected_of_shard[shard] += updates_of_subgraph[sgid];
  }

  // Exclusive snapshot section: drain every read pin, then move the master
  // state and every replica to the next global epoch together.
  EpochWriterLock lock(epochs_->global_lock());
  if (options_.remote.auto_restart) {
    // Revive dead replicas and catch up lagging ones first so they
    // participate in this epoch instead of falling another batch behind.
    // Best-effort: a replica that stays dead degrades to sibling reads (or
    // per-query errors once the whole shard is dead), not this batch.
    (void)RestartDeadWorkersLocked();
  }
  const uint64_t epoch = epochs_->BeginAdvance();

  // Phase one: fan the FULL batch out to every replica that is alive at
  // the preceding epoch (each filters to its owned subgraphs with the same
  // deterministic grouping). The epoch is always published
  // coordinator-side — the master state below is the source of truth, so a
  // failed prepare marks the replica dead (its reads fail over to
  // siblings until restart) instead of failing or stalling the batch. A
  // replica already lagging is skipped — prepares apply strictly in epoch
  // order — and stays out of the read rotation until the next catch-up.
  EpochPrepareRequest prepare;
  prepare.epoch = epoch;
  prepare.updates.assign(updates.begin(), updates.end());
  const std::string prepare_payload = prepare.Encode();
  const auto& prepare_hook = options_.remote.before_prepare_hook;
  apply_pool_->ParallelFor(
      workers_.size(), /*chunk=*/1, [&](unsigned, size_t wi) {
        Worker& worker = *workers_[wi];
        if (!worker.alive.load(std::memory_order_acquire)) return;
        if (worker.epoch.load(std::memory_order_acquire) != epoch - 1) return;
        if (prepare_hook) {
          ReplicaFaultPoint point{worker.shard, worker.replica,
                                  worker.pid.load(std::memory_order_relaxed),
                                  epoch};
          // A dropped prepare models a lost RPC: the replica stays alive
          // but silently misses this epoch (and leaves the read rotation
          // via the epoch check until caught up).
          if (!prepare_hook(point)) return;
        }
        std::string reply_payload;
        Status called;
        {
          MutexLock worker_lock(worker.mu);
          called = worker.client->Call(
              MessageType::kEpochPrepareRequest, prepare_payload,
              MessageType::kEpochPrepareReply, &reply_payload,
              options_.remote.apply_deadline_ms);
        }
        EpochPrepareReply reply;
        if (called.ok()) {
          called = EpochPrepareReply::Decode(reply_payload, &reply);
        }
        if (called.ok() && reply.epoch != epoch) {
          called = Status::Internal("worker acknowledged the wrong epoch");
        }
        if (called.ok() &&
            reply.updates_applied != expected_of_shard[worker.shard]) {
          called = Status::Internal(
              "worker " + std::to_string(worker.shard) + " replica " +
              std::to_string(worker.replica) + " applied " +
              std::to_string(reply.updates_applied) + " updates where the " +
              "coordinator expected " +
              std::to_string(expected_of_shard[worker.shard]) +
              " (divergent shard state)");
        }
        if (called.ok()) {
          worker.epoch.store(epoch, std::memory_order_release);
        } else {
          MarkWorkerDead(worker);
        }
      });
  for (ShardId si = 0; si < assignment_.num_shards; ++si) {
    if (shard_touched[si] != 0) {
      slices_[si]->weights_epoch.store(epoch, std::memory_order_release);
    }
    epochs_->PublishShard(si, epoch);
  }

  // Master apply: identical to RoutingService::ApplyTrafficBatch, so the
  // filter step (bounds, skeleton, CANDS) stays answer-identical batch for
  // batch.
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);
  TrafficBatchResult result;
  result.dtlp = dtlp_->ApplyUpdates(updates);
  if (cands_ != nullptr) {
    WallTimer cands_timer;
    result.cands = cands_->ApplyUpdates(updates);
    result.cands_micros = cands_timer.ElapsedMicros();
  }
  epochs_->Commit(epoch);
  // Only committed batches enter the replay log (== the epoch sequence).
  history_.emplace_back(updates.begin(), updates.end());
  if (history_.size() >= options_.max_history_batches) {
    // Bound the retained history with a checkpoint: snapshot the committed
    // master weights and truncate the log. A replica restarting later loads
    // this snapshot and replays only the batches committed after it — the
    // partition is weight-independent, so checkpoint + replay reconstructs
    // bit-identical worker state.
    checkpoint_graph_ = graph_;
    checkpoint_epoch_ = epoch;
    history_.clear();
  }

  // Phase two: best-effort commit acknowledgements (pure bookkeeping — a
  // worker that misses one learns the epoch from its next prepare; a
  // replica that skipped the prepare is skipped here too).
  EpochCommitRequest commit;
  commit.epoch = epoch;
  const std::string commit_payload = commit.Encode();
  const auto& commit_hook = options_.remote.before_commit_hook;
  apply_pool_->ParallelFor(
      workers_.size(), /*chunk=*/1, [&](unsigned, size_t wi) {
        Worker& worker = *workers_[wi];
        if (!worker.alive.load(std::memory_order_acquire)) return;
        if (worker.epoch.load(std::memory_order_acquire) != epoch) return;
        if (commit_hook) {
          ReplicaFaultPoint point{worker.shard, worker.replica,
                                  worker.pid.load(std::memory_order_relaxed),
                                  epoch};
          if (!commit_hook(point)) return;
        }
        std::string reply_payload;
        Status called;
        {
          MutexLock worker_lock(worker.mu);
          called = worker.client->Call(
              MessageType::kEpochCommitRequest, commit_payload,
              MessageType::kEpochCommitReply, &reply_payload);
        }
        if (!called.ok()) MarkWorkerDead(worker);
      });

  result.epoch = epoch;
  svc_metrics_.RecordTrafficBatch(updates.size());
  return result;
}

uint64_t RemoteShardedRoutingService::checkpoint_epoch() const {
  // checkpoint_graph_/checkpoint_epoch_/history_ only mutate under the
  // exclusive half of the global epoch lock; a shared pin is enough here.
  EpochReaderLock pin(epochs_->global_lock());
  return checkpoint_epoch_;
}

size_t RemoteShardedRoutingService::history_size() const {
  EpochReaderLock pin(epochs_->global_lock());
  return history_.size();
}

RemoteServiceCounters RemoteShardedRoutingService::counters() const {
  RemoteServiceCounters counters;
  counters.sharded.base.queries_ok = svc_metrics_.queries_ok.value();
  counters.sharded.base.queries_rejected =
      svc_metrics_.queries_rejected.value();
  counters.sharded.base.batches_applied = svc_metrics_.traffic_batches.value();
  counters.sharded.base.updates_applied = svc_metrics_.weight_updates.value();
  counters.sharded.single_shard_queries = single_shard_queries_.value();
  counters.sharded.cross_shard_queries = cross_shard_queries_.value();
  counters.sharded.direct_partial_requests = direct_partials_.value();
  counters.sharded.scattered_partial_requests = scattered_partials_.value();
  counters.partial_rpc_errors = partial_rpc_errors_.value();
  for (const std::unique_ptr<ShardSlice>& slice : slices_) {
    counters.sharded.partial_cache_hits += slice->cache_hits.value();
    counters.sharded.partial_cache_skips += slice->cache_skips.value();
    counters.sharded.partial_cache_flushes += slice->cache_flushes.value();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    counters.rpc_calls += worker->client->calls();
    counters.rpc_retries += worker->client->retries();
    counters.rpc_deadline_expired += worker->client->deadline_expired();
    counters.worker_restarts +=
        worker->restarts.load(std::memory_order_relaxed);
    counters.replica_catchups +=
        worker->catchups.load(std::memory_order_relaxed);
  }
  return counters;
}

std::vector<RemoteWorkerInfo> RemoteShardedRoutingService::WorkerInfos()
    const {
  std::vector<RemoteWorkerInfo> infos;
  infos.reserve(workers_.size());
  for (const std::unique_ptr<Worker>& worker : workers_) {
    RemoteWorkerInfo info;
    info.shard = worker->shard;
    info.replica = worker->replica;
    info.pid = worker->pid.load(std::memory_order_relaxed);
    info.socket_path = worker->socket_path;
    info.alive = worker->alive.load(std::memory_order_acquire);
    info.epoch = worker->epoch.load(std::memory_order_relaxed);
    info.restarts = worker->restarts.load(std::memory_order_relaxed);
    info.catchups = worker->catchups.load(std::memory_order_relaxed);
    info.reads = worker->reads.value();
    info.subgraphs = assignment_.subgraphs_of_shard[worker->shard].size();
    info.vertices = assignment_.vertices_of_shard[worker->shard];
    info.partial_requests = worker->partial_requests.value();
    info.yen_runs = worker->yen_runs.value();
    info.partial_cache_hits = slices_[worker->shard]->cache_hits.value();
    info.rpc_calls = worker->client->calls();
    info.rpc_retries = worker->client->retries();
    info.rpc_deadline_expired = worker->client->deadline_expired();
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace kspdg
