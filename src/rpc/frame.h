// Length-prefixed frame codec for the shard-worker protocol, plus blocking
// file-descriptor I/O with per-call deadlines.
//
// Every message on a worker connection is one frame:
//
//   [magic u32][type u8][payload length u32][payload bytes]
//
// all integers little-endian. The magic word rejects garbage and misaligned
// streams immediately; the length field is capped (kMaxFramePayload) so a
// corrupt header can never make the receiver allocate unbounded memory. The
// codec half (EncodeFrame / DecodeFrameHeader) is pure and testable without
// sockets; the I/O half (ReadFrame / WriteFrame) drives a non-blocking fd
// with poll(2) so every call observes a hard deadline — a stalled or dead
// peer yields kDeadlineExceeded, never a hang.
#ifndef KSPDG_RPC_FRAME_H_
#define KSPDG_RPC_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace kspdg {

/// "KSPD" little-endian: the first four bytes of every valid frame.
inline constexpr uint32_t kFrameMagic = 0x4450534Bu;

/// Fixed header size: magic + type + payload length.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;

/// Hard cap on one frame's payload (a scaled road network serialises to a
/// few MiB; 256 MiB leaves room for full-size graphs while still bounding a
/// corrupt length field).
inline constexpr uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Monotonic deadline for one blocking call.
using RpcDeadline = std::chrono::steady_clock::time_point;

inline RpcDeadline DeadlineAfterMillis(int64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

/// Serialises one frame (header + payload) into a byte string.
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Validates a header (exactly kFrameHeaderBytes at `header`): checks the
/// magic word and the payload-length cap. On success fills type and length.
Status DecodeFrameHeader(const char* header, uint8_t* type, uint32_t* length);

/// Writes one whole frame to `fd` (which must be non-blocking), polling for
/// writability until done or the deadline expires.
Status WriteFrame(int fd, uint8_t type, std::string_view payload,
                  RpcDeadline deadline);

/// Reads one whole frame from `fd` (which must be non-blocking), polling for
/// readability until done or the deadline expires. A peer that closes the
/// connection mid-frame (or before one) yields kUnavailable; a header that
/// fails DecodeFrameHeader yields its error without consuming further bytes.
Status ReadFrame(int fd, uint8_t* type, std::string* payload,
                 RpcDeadline deadline);

/// Marks `fd` non-blocking (all frame I/O requires it).
Status SetNonBlocking(int fd);

}  // namespace kspdg

#endif  // KSPDG_RPC_FRAME_H_
