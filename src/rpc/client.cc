#include "rpc/client.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <thread>

namespace kspdg {

namespace {

/// One non-blocking connect attempt. ENOENT/ECONNREFUSED mean the worker is
/// not (yet) listening — the caller decides whether to wait and retry.
Result<int> TryConnect(const std::string& path) {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") + strerror(errno));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    close(fd);
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    return fd;
  }
  if (errno == EINPROGRESS || errno == EAGAIN) {
    // Unix-socket connects complete promptly once the listener exists; the
    // caller's poll-based deadline still bounds the wait via retry.
    return fd;
  }
  int err = errno;
  close(fd);
  return Status::Unavailable(std::string("connect to ") + path +
                             " failed: " + strerror(err));
}

}  // namespace

Status RpcClient::EnsureConnected(RpcDeadline deadline) {
  if (fd_ >= 0) return Status::OK();
  for (;;) {
    Result<int> fd = TryConnect(socket_path_);
    if (fd.ok()) {
      fd_ = fd.value();
      return Status::OK();
    }
    if (fd.status().code() != StatusCode::kUnavailable) return fd.status();
    // Worker not listening yet (startup) or gone (crash): wait briefly and
    // retry inside the attempt's deadline, so a booting worker is picked up
    // without a dedicated handshake.
    if (std::chrono::steady_clock::now() +
            std::chrono::milliseconds(10) >= deadline) {
      return fd.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void RpcClient::Disconnect() {
  MutexLock guard(mu_);
  DisconnectLocked();
}

void RpcClient::DisconnectLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RpcClient::Call(MessageType request_type,
                       const std::string& request_payload,
                       MessageType expected_reply_type,
                       std::string* reply_payload,
                       int64_t deadline_ms_override) {
  MutexLock guard(mu_);
  calls_.fetch_add(1, std::memory_order_relaxed);
  const int64_t deadline_ms = deadline_ms_override > 0 ? deadline_ms_override
                                                       : options_.deadline_ms;
  Status last = Status::Unavailable("rpc call never attempted");
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.backoff_ms << (attempt - 1)));
    }
    RpcDeadline deadline = DeadlineAfterMillis(deadline_ms);
    last = EnsureConnected(deadline);
    if (!last.ok()) continue;
    last = WriteFrame(fd_, static_cast<uint8_t>(request_type),
                      request_payload, deadline);
    if (!last.ok()) {
      if (last.code() == StatusCode::kDeadlineExceeded) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      }
      DisconnectLocked();
      continue;
    }
    bytes_sent_.fetch_add(kFrameHeaderBytes + request_payload.size(),
                          std::memory_order_relaxed);
    uint8_t reply_type = 0;
    last = ReadFrame(fd_, &reply_type, reply_payload, deadline);
    if (!last.ok()) {
      if (last.code() == StatusCode::kDeadlineExceeded) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      }
      DisconnectLocked();
      continue;
    }
    bytes_received_.fetch_add(kFrameHeaderBytes + reply_payload->size(),
                              std::memory_order_relaxed);
    if (reply_type == static_cast<uint8_t>(MessageType::kErrorReply)) {
      // Application-level rejection: the worker is alive and the stream is
      // in sync, so surface the carried status without retrying.
      ErrorReply error;
      Status decoded = ErrorReply::Decode(*reply_payload, &error);
      if (!decoded.ok()) {
        DisconnectLocked();
        return decoded;
      }
      return error.ToStatus();
    }
    if (reply_type != static_cast<uint8_t>(expected_reply_type)) {
      // Stream out of sync (e.g. a stale reply after a timed-out call):
      // drop the connection so the next attempt starts clean.
      last = Status::Internal("worker sent reply type " +
                              std::to_string(reply_type) + ", expected " +
                              std::to_string(static_cast<uint8_t>(
                                  expected_reply_type)));
      DisconnectLocked();
      continue;
    }
    return Status::OK();
  }
  return last;
}

}  // namespace kspdg
