// Blocking RPC client for one shard-worker connection.
//
// One client owns one unix-domain-socket connection to one worker and
// serialises calls over it (the worker's loop is single-threaded anyway):
// an internal mutex guards the connection, so concurrent Calls queue up
// rather than interleave frames — callers that need a wider critical
// section (the remote service batches several calls per worker) still hold
// their own lock around the client. Every Call
// observes a per-attempt deadline and a bounded retry budget with
// exponential backoff: a slow or dead worker degrades to a clean
// kDeadlineExceeded / kUnavailable status, never a hang. Reconnection is
// automatic per attempt, so a worker restarted under the same socket path
// is picked up transparently — which is safe because every protocol
// request is idempotent (partials and pings are reads; epoch prepare
// replays its stored reply; load-graph resets the worker).
#ifndef KSPDG_RPC_CLIENT_H_
#define KSPDG_RPC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "rpc/frame.h"
#include "rpc/wire.h"

namespace kspdg {

struct RpcClientOptions {
  /// Per-attempt deadline for one request/reply round trip.
  int64_t deadline_ms = 2000;
  /// Retries after the first attempt (0 = fail on the first error).
  uint32_t max_retries = 2;
  /// Backoff before retry r is backoff_ms << (r - 1).
  int64_t backoff_ms = 20;
};

class RpcClient {
 public:
  RpcClient(std::string socket_path, RpcClientOptions options)
      : socket_path_(std::move(socket_path)), options_(options) {}

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;
  ~RpcClient() { Disconnect(); }

  /// One request/reply round trip with reconnect + retry + backoff. An
  /// ErrorReply frame decodes to its carried Status and is returned without
  /// retrying (the worker answered; it just said no). Transport failures
  /// (connect/read/write error, deadline expiry, unexpected reply type)
  /// retry up to the budget, then return the last failure.
  /// `deadline_ms_override` > 0 replaces the per-attempt deadline (traffic
  /// applies may legitimately outlast the query deadline).
  Status Call(MessageType request_type, const std::string& request_payload,
              MessageType expected_reply_type, std::string* reply_payload,
              int64_t deadline_ms_override = 0);

  /// Drops the connection; the next Call reconnects.
  void Disconnect();


  const std::string& socket_path() const { return socket_path_; }

  // Transport counters. All of them are strictly monotonic for the lifetime
  // of the client: they live on the client object, never on the connection,
  // so Disconnect/reconnect cycles and per-attempt reconnects cannot reset
  // them. The remote service exposes them as registry counter callbacks,
  // which assume monotonicity (a scrape that ever saw a counter go
  // backwards would break rate computations downstream).
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }
  /// Payload + frame-header bytes successfully written / read.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 private:
  /// Connects (non-blocking) if not already connected, waiting for the
  /// socket to appear/accept until the deadline — covers worker startup.
  Status EnsureConnected(RpcDeadline deadline) REQUIRES(mu_);
  /// Disconnect body, for call sites already inside a Call round trip.
  void DisconnectLocked() REQUIRES(mu_);

  std::string socket_path_;
  RpcClientOptions options_;
  /// Serialises round trips and guards the connection. Strict leaf: held
  /// across socket I/O but never while acquiring another lock.
  Mutex mu_{"RpcClient::mu_"};
  int fd_ GUARDED_BY(mu_) = -1;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace kspdg

#endif  // KSPDG_RPC_CLIENT_H_
