// Single-threaded RPC server loop for the shard worker.
//
// The worker's concurrency model is the simplest that serves the protocol:
// one listening unix socket, one accepted connection at a time, one request
// in flight at a time. That serialises partials against epoch applies on
// the worker for free (the coordinator's locking already guarantees it
// globally), keeps the worker allocation-light, and makes reconnection
// after a coordinator-side timeout trivial — the stale connection is
// dropped and the next accept starts a clean stream.
#ifndef KSPDG_RPC_SERVER_H_
#define KSPDG_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/status.h"
#include "rpc/wire.h"

namespace kspdg {

class RpcServer {
 public:
  /// Handles one decoded request: fills the reply type + payload, or
  /// returns a non-OK status (sent back as an ErrorReply frame without
  /// closing the connection). Setting *shutdown ends Serve() after the
  /// reply is written.
  using Handler = std::function<Status(
      MessageType type, const std::string& payload, MessageType* reply_type,
      std::string* reply_payload, bool* shutdown)>;

  /// Binds and listens on `path` (an existing stale socket file is
  /// unlinked first). The socket file is removed on destruction.
  static Result<std::unique_ptr<RpcServer>> Listen(const std::string& path);

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;
  ~RpcServer();

  /// Accept/dispatch loop. While no client is connected, waits up to
  /// `idle_timeout_ms` for one and returns kDeadlineExceeded when none
  /// arrives — the worker's orphan guard: a worker whose coordinator died
  /// exits instead of lingering. While a client is connected the loop
  /// blocks on its requests indefinitely (an idle coordinator is normal);
  /// a closed or corrupt connection just recycles to accept. Returns OK
  /// when the handler requests shutdown.
  Status Serve(const Handler& handler, int64_t idle_timeout_ms);

  const std::string& path() const { return path_; }

  // Transport counters, monotonic for the server's lifetime. Serve() runs
  // on one thread but the worker's registry scrapes them from a Ping
  // handler on that same thread via counter callbacks — atomics keep them
  // safe for any future scraper thread too.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  RpcServer(std::string path, int listen_fd)
      : path_(std::move(path)), listen_fd_(listen_fd) {}

  std::string path_;
  int listen_fd_ = -1;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};
};

}  // namespace kspdg

#endif  // KSPDG_RPC_SERVER_H_
