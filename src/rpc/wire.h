// Explicit wire serialization for the shard-worker protocol messages.
//
// Every message is a plain struct with an Encode() producing the frame
// payload and a static Decode(payload, out) returning Status — corrupt or
// truncated payloads are rejected, never trusted. Integers are
// little-endian fixed width; doubles travel as their IEEE-754 bit pattern
// (bit-exact round-trip — the remote parity guarantee depends on it).
//
// The protocol is deliberately small: load-graph (worker bootstrap +
// restart), partial-list request/reply (the KSP-DG refine step), epoch
// prepare/commit (the cross-process half of the two-phase traffic apply),
// health ping, and shutdown. An ErrorReply carries a Status back for any
// request the worker rejects.
#ifndef KSPDG_RPC_WIRE_H_
#define KSPDG_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "ksp/path.h"
#include "kspdg/partial_provider.h"
#include "partition/shard_assignment.h"

namespace kspdg {

/// Frame type byte of every protocol message.
enum class MessageType : uint8_t {
  kLoadGraphRequest = 1,
  kLoadGraphReply = 2,
  kPartialsRequest = 3,
  kPartialsReply = 4,
  kEpochPrepareRequest = 5,
  kEpochPrepareReply = 6,
  kEpochCommitRequest = 7,
  kEpochCommitReply = 8,
  kPingRequest = 9,
  kPingReply = 10,
  kShutdownRequest = 11,
  kShutdownReply = 12,
  kErrorReply = 13,
};

/// Appends little-endian primitives to a payload string.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// IEEE-754 bit pattern, so weights round-trip bit-exactly.
  void F64(double v);
  /// Length-prefixed byte string.
  void Str(std::string_view s);

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a payload; every read fails with
/// kInvalidArgument instead of running off the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);

  /// All bytes consumed? Trailing garbage is a protocol error.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Messages --------------------------------------------------------------

/// Bootstraps (or resets) a worker: the full graph, the DTLP build knobs,
/// and which shard of the resulting partition this worker owns. The worker
/// rebuilds the partition/index deterministically from these inputs, so its
/// subgraph state is identical to the coordinator's by construction.
struct LoadGraphRequest {
  ShardId shard_id = 0;
  uint32_t num_shards = 1;
  /// Which replica of the shard this worker is (diagnostics + ping echo).
  uint32_t replica_id = 0;
  /// Epoch the shipped weights correspond to. A freshly loaded worker
  /// starts at this epoch, not zero — the coordinator ships its latest
  /// checkpoint and replays only the batches committed after it.
  uint64_t base_epoch = 0;
  DtlpOptions dtlp;
  /// The graph: topology + initial vfrag weights + current weights.
  bool directed = false;
  uint64_t num_vertices = 0;
  std::vector<VertexId> edge_u;
  std::vector<VertexId> edge_v;
  std::vector<VfragCount> vfrags_fwd;
  std::vector<VfragCount> vfrags_bwd;
  std::vector<Weight> weights_fwd;
  std::vector<Weight> weights_bwd;

  /// Captures `graph` into the request fields.
  static LoadGraphRequest FromGraph(const Graph& graph, ShardId shard_id,
                                    uint32_t num_shards,
                                    const DtlpOptions& dtlp);
  /// Reconstructs the graph (validated; rejects corrupt payloads).
  Result<Graph> BuildGraph() const;

  std::string Encode() const;
  static Status Decode(std::string_view payload, LoadGraphRequest* out);
};

struct LoadGraphReply {
  uint64_t subgraphs_owned = 0;
  uint64_t vertices_owned = 0;

  std::string Encode() const;
  static Status Decode(std::string_view payload, LoadGraphReply* out);
};

/// One boundary-pair partial-list request: up to `depth` shortest paths
/// between x and y inside each of the named subgraphs (all owned by the
/// addressed worker). `epoch` is the coordinator's committed epoch — the
/// worker rejects a mismatch, which catches a worker that silently missed a
/// traffic batch before it can contribute stale paths.
struct PartialsRequest {
  uint64_t epoch = 0;
  VertexId x = kInvalidVertex;
  VertexId y = kInvalidVertex;
  uint64_t depth = 0;
  std::vector<SubgraphId> sgids;

  std::string Encode() const;
  static Status Decode(std::string_view payload, PartialsRequest* out);
};

/// Per-subgraph partial lists, in request order; paths carry global vertex
/// ids and bit-exact distances.
struct PartialsReply {
  std::vector<SubgraphPartials> lists;

  std::string Encode() const;
  static Status Decode(std::string_view payload, PartialsReply* out);
};

/// Phase one of the cross-process traffic apply: the full update batch for
/// `epoch` (== worker's current epoch + 1). The worker filters the batch to
/// its owned subgraphs with the same deterministic grouping the coordinator
/// uses, applies Algorithm 2 to them, and replies. Re-sending the epoch the
/// worker already prepared replays the stored reply (absolute weights make
/// the apply idempotent), so a retry after a lost reply is safe.
struct EpochPrepareRequest {
  uint64_t epoch = 0;
  std::vector<WeightUpdate> updates;

  std::string Encode() const;
  static Status Decode(std::string_view payload, EpochPrepareRequest* out);
};

struct EpochPrepareReply {
  uint64_t epoch = 0;
  /// Updates that landed in subgraphs this worker owns (the coordinator
  /// cross-checks this against its own grouping to detect divergence).
  uint64_t updates_applied = 0;
  /// Owned subgraphs touched by the batch.
  uint64_t subgraphs_touched = 0;

  std::string Encode() const;
  static Status Decode(std::string_view payload, EpochPrepareReply* out);
};

/// Phase two: the coordinator committed `epoch`. Bookkeeping only — the
/// worker's state already moved during prepare; a worker that misses the
/// commit learns it implicitly from the next prepare or partials request.
struct EpochCommitRequest {
  uint64_t epoch = 0;

  std::string Encode() const;
  static Status Decode(std::string_view payload, EpochCommitRequest* out);
};

struct EpochCommitReply {
  uint64_t epoch = 0;

  std::string Encode() const;
  static Status Decode(std::string_view payload, EpochCommitReply* out);
};

struct PingRequest {
  uint64_t nonce = 0;

  std::string Encode() const;
  static Status Decode(std::string_view payload, PingRequest* out);
};

struct PingReply {
  uint64_t nonce = 0;
  uint64_t epoch = 0;
  ShardId shard_id = kInvalidShard;
  uint32_t replica_id = 0;
  /// The worker's metrics registry, encoded with
  /// MetricsSnapshot::EncodeWire (opaque at this layer — the rpc module
  /// ships it, src/obs owns the codec). Empty when the worker exports no
  /// metrics; the coordinator tags decoded snapshots with the shard id and
  /// merges them into the fleet-wide export.
  std::string metrics_blob;

  std::string Encode() const;
  static Status Decode(std::string_view payload, PingReply* out);
};

/// Status carried back for any rejected request.
struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  static ErrorReply FromStatus(const Status& status);
  Status ToStatus() const;

  std::string Encode() const;
  static Status Decode(std::string_view payload, ErrorReply* out);
};

}  // namespace kspdg

#endif  // KSPDG_RPC_WIRE_H_
