#include "rpc/wire.h"

#include <cstring>

namespace kspdg {

namespace {

/// Sanity caps on decoded element counts: each element is several bytes on
/// the wire, so any count beyond the payload cap is provably corrupt. Using
/// one generous bound keeps the checks simple.
constexpr uint64_t kMaxWireElements = 1ull << 28;

Status CheckCount(uint64_t count, const char* what) {
  if (count > kMaxWireElements) {
    return Status::InvalidArgument(std::string("corrupt payload: ") + what +
                                   " count is implausibly large");
  }
  return Status::OK();
}

void EncodePaths(WireWriter* w, const std::vector<Path>& paths) {
  w->U32(static_cast<uint32_t>(paths.size()));
  for (const Path& p : paths) {
    w->F64(p.distance);
    w->U32(static_cast<uint32_t>(p.vertices.size()));
    for (VertexId v : p.vertices) w->U32(v);
  }
}

Status DecodePaths(WireReader* r, std::vector<Path>* paths) {
  uint32_t count = 0;
  KSPDG_RETURN_NOT_OK(r->U32(&count));
  KSPDG_RETURN_NOT_OK(CheckCount(count, "path"));
  paths->clear();
  paths->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Path p;
    KSPDG_RETURN_NOT_OK(r->F64(&p.distance));
    uint32_t verts = 0;
    KSPDG_RETURN_NOT_OK(r->U32(&verts));
    KSPDG_RETURN_NOT_OK(CheckCount(verts, "vertex"));
    p.vertices.reserve(verts);
    for (uint32_t j = 0; j < verts; ++j) {
      VertexId v = kInvalidVertex;
      KSPDG_RETURN_NOT_OK(r->U32(&v));
      p.vertices.push_back(v);
    }
    paths->push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace

void WireWriter::U32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(bytes, 4);
}

void WireWriter::U64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(bytes, 8);
}

void WireWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status WireReader::U8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) {
    return Status::InvalidArgument("truncated payload (u8)");
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  if (pos_ + 4 > data_.size()) {
    return Status::InvalidArgument("truncated payload (u32)");
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  if (pos_ + 8 > data_.size()) {
    return Status::InvalidArgument("truncated payload (u64)");
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::F64(double* v) {
  uint64_t bits = 0;
  KSPDG_RETURN_NOT_OK(U64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::Str(std::string* s) {
  uint32_t len = 0;
  KSPDG_RETURN_NOT_OK(U32(&len));
  if (pos_ + len > data_.size()) {
    return Status::InvalidArgument("truncated payload (string body)");
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::InvalidArgument("payload has trailing bytes");
  }
  return Status::OK();
}

// --- LoadGraph -------------------------------------------------------------

LoadGraphRequest LoadGraphRequest::FromGraph(const Graph& graph,
                                             ShardId shard_id,
                                             uint32_t num_shards,
                                             const DtlpOptions& dtlp) {
  LoadGraphRequest req;
  req.shard_id = shard_id;
  req.num_shards = num_shards;
  req.dtlp = dtlp;
  req.directed = graph.directed();
  req.num_vertices = graph.NumVertices();
  size_t edges = graph.NumEdges();
  req.edge_u.reserve(edges);
  req.edge_v.reserve(edges);
  req.vfrags_fwd.reserve(edges);
  req.vfrags_bwd.reserve(edges);
  req.weights_fwd.reserve(edges);
  req.weights_bwd.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    req.edge_u.push_back(graph.EdgeU(e));
    req.edge_v.push_back(graph.EdgeV(e));
    req.vfrags_fwd.push_back(graph.ForwardVfrags(e));
    req.vfrags_bwd.push_back(graph.BackwardVfrags(e));
    req.weights_fwd.push_back(graph.ForwardWeight(e));
    req.weights_bwd.push_back(graph.BackwardWeight(e));
  }
  return req;
}

Result<Graph> LoadGraphRequest::BuildGraph() const {
  size_t edges = edge_u.size();
  if (edge_v.size() != edges || vfrags_fwd.size() != edges ||
      vfrags_bwd.size() != edges || weights_fwd.size() != edges ||
      weights_bwd.size() != edges) {
    return Status::InvalidArgument("graph payload arrays disagree on size");
  }
  Graph graph(num_vertices, directed);
  for (size_t e = 0; e < edges; ++e) {
    VertexId u = edge_u[e];
    VertexId v = edge_v[e];
    if (u >= num_vertices || v >= num_vertices || u == v) {
      return Status::InvalidArgument("graph payload has an invalid edge");
    }
    if (vfrags_fwd[e] == 0 || vfrags_bwd[e] == 0 ||
        (!directed && vfrags_fwd[e] != vfrags_bwd[e])) {
      return Status::InvalidArgument("graph payload has invalid vfrags");
    }
    if (!(weights_fwd[e] > 0) || !(weights_bwd[e] > 0) ||
        (!directed && weights_fwd[e] != weights_bwd[e])) {
      return Status::InvalidArgument("graph payload has invalid weights");
    }
    graph.AddEdge(u, v, vfrags_fwd[e], vfrags_bwd[e]);
    graph.SetWeight({static_cast<EdgeId>(e), weights_fwd[e], weights_bwd[e]});
  }
  return graph;
}

std::string LoadGraphRequest::Encode() const {
  WireWriter w;
  w.U32(shard_id);
  w.U32(num_shards);
  w.U32(replica_id);
  w.U64(base_epoch);
  w.U32(dtlp.partition.max_vertices);
  w.U32(dtlp.index.xi);
  w.U32(dtlp.index.max_yen_pulls);
  w.U32(dtlp.build_threads);
  w.U8(directed ? 1 : 0);
  w.U64(num_vertices);
  w.U64(edge_u.size());
  for (size_t e = 0; e < edge_u.size(); ++e) {
    w.U32(edge_u[e]);
    w.U32(edge_v[e]);
    w.U64(vfrags_fwd[e]);
    w.U64(vfrags_bwd[e]);
    w.F64(weights_fwd[e]);
    w.F64(weights_bwd[e]);
  }
  return w.Take();
}

Status LoadGraphRequest::Decode(std::string_view payload,
                                LoadGraphRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U32(&out->shard_id));
  KSPDG_RETURN_NOT_OK(r.U32(&out->num_shards));
  KSPDG_RETURN_NOT_OK(r.U32(&out->replica_id));
  KSPDG_RETURN_NOT_OK(r.U64(&out->base_epoch));
  KSPDG_RETURN_NOT_OK(r.U32(&out->dtlp.partition.max_vertices));
  KSPDG_RETURN_NOT_OK(r.U32(&out->dtlp.index.xi));
  KSPDG_RETURN_NOT_OK(r.U32(&out->dtlp.index.max_yen_pulls));
  KSPDG_RETURN_NOT_OK(r.U32(&out->dtlp.build_threads));
  uint8_t directed = 0;
  KSPDG_RETURN_NOT_OK(r.U8(&directed));
  out->directed = directed != 0;
  KSPDG_RETURN_NOT_OK(r.U64(&out->num_vertices));
  uint64_t edges = 0;
  KSPDG_RETURN_NOT_OK(r.U64(&edges));
  KSPDG_RETURN_NOT_OK(CheckCount(edges, "edge"));
  out->edge_u.resize(edges);
  out->edge_v.resize(edges);
  out->vfrags_fwd.resize(edges);
  out->vfrags_bwd.resize(edges);
  out->weights_fwd.resize(edges);
  out->weights_bwd.resize(edges);
  for (uint64_t e = 0; e < edges; ++e) {
    KSPDG_RETURN_NOT_OK(r.U32(&out->edge_u[e]));
    KSPDG_RETURN_NOT_OK(r.U32(&out->edge_v[e]));
    KSPDG_RETURN_NOT_OK(r.U64(&out->vfrags_fwd[e]));
    KSPDG_RETURN_NOT_OK(r.U64(&out->vfrags_bwd[e]));
    KSPDG_RETURN_NOT_OK(r.F64(&out->weights_fwd[e]));
    KSPDG_RETURN_NOT_OK(r.F64(&out->weights_bwd[e]));
  }
  return r.ExpectEnd();
}

std::string LoadGraphReply::Encode() const {
  WireWriter w;
  w.U64(subgraphs_owned);
  w.U64(vertices_owned);
  return w.Take();
}

Status LoadGraphReply::Decode(std::string_view payload, LoadGraphReply* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->subgraphs_owned));
  KSPDG_RETURN_NOT_OK(r.U64(&out->vertices_owned));
  return r.ExpectEnd();
}

// --- Partials --------------------------------------------------------------

std::string PartialsRequest::Encode() const {
  WireWriter w;
  w.U64(epoch);
  w.U32(x);
  w.U32(y);
  w.U64(depth);
  w.U32(static_cast<uint32_t>(sgids.size()));
  for (SubgraphId sgid : sgids) w.U32(sgid);
  return w.Take();
}

Status PartialsRequest::Decode(std::string_view payload,
                               PartialsRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  KSPDG_RETURN_NOT_OK(r.U32(&out->x));
  KSPDG_RETURN_NOT_OK(r.U32(&out->y));
  KSPDG_RETURN_NOT_OK(r.U64(&out->depth));
  uint32_t count = 0;
  KSPDG_RETURN_NOT_OK(r.U32(&count));
  KSPDG_RETURN_NOT_OK(CheckCount(count, "subgraph"));
  out->sgids.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    KSPDG_RETURN_NOT_OK(r.U32(&out->sgids[i]));
  }
  return r.ExpectEnd();
}

std::string PartialsReply::Encode() const {
  WireWriter w;
  w.U32(static_cast<uint32_t>(lists.size()));
  for (const SubgraphPartials& list : lists) {
    w.U32(list.sgid);
    EncodePaths(&w, list.paths);
  }
  return w.Take();
}

Status PartialsReply::Decode(std::string_view payload, PartialsReply* out) {
  WireReader r(payload);
  uint32_t count = 0;
  KSPDG_RETURN_NOT_OK(r.U32(&count));
  KSPDG_RETURN_NOT_OK(CheckCount(count, "partial list"));
  out->lists.clear();
  out->lists.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SubgraphPartials list;
    KSPDG_RETURN_NOT_OK(r.U32(&list.sgid));
    KSPDG_RETURN_NOT_OK(DecodePaths(&r, &list.paths));
    out->lists.push_back(std::move(list));
  }
  return r.ExpectEnd();
}

// --- Epoch advance ---------------------------------------------------------

std::string EpochPrepareRequest::Encode() const {
  WireWriter w;
  w.U64(epoch);
  w.U32(static_cast<uint32_t>(updates.size()));
  for (const WeightUpdate& u : updates) {
    w.U32(u.edge);
    w.F64(u.new_forward);
    w.F64(u.new_backward);
  }
  return w.Take();
}

Status EpochPrepareRequest::Decode(std::string_view payload,
                                   EpochPrepareRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  uint32_t count = 0;
  KSPDG_RETURN_NOT_OK(r.U32(&count));
  KSPDG_RETURN_NOT_OK(CheckCount(count, "update"));
  out->updates.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    KSPDG_RETURN_NOT_OK(r.U32(&out->updates[i].edge));
    KSPDG_RETURN_NOT_OK(r.F64(&out->updates[i].new_forward));
    KSPDG_RETURN_NOT_OK(r.F64(&out->updates[i].new_backward));
  }
  return r.ExpectEnd();
}

std::string EpochPrepareReply::Encode() const {
  WireWriter w;
  w.U64(epoch);
  w.U64(updates_applied);
  w.U64(subgraphs_touched);
  return w.Take();
}

Status EpochPrepareReply::Decode(std::string_view payload,
                                 EpochPrepareReply* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  KSPDG_RETURN_NOT_OK(r.U64(&out->updates_applied));
  KSPDG_RETURN_NOT_OK(r.U64(&out->subgraphs_touched));
  return r.ExpectEnd();
}

std::string EpochCommitRequest::Encode() const {
  WireWriter w;
  w.U64(epoch);
  return w.Take();
}

Status EpochCommitRequest::Decode(std::string_view payload,
                                  EpochCommitRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  return r.ExpectEnd();
}

std::string EpochCommitReply::Encode() const {
  WireWriter w;
  w.U64(epoch);
  return w.Take();
}

Status EpochCommitReply::Decode(std::string_view payload,
                                EpochCommitReply* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  return r.ExpectEnd();
}

// --- Ping / error ----------------------------------------------------------

std::string PingRequest::Encode() const {
  WireWriter w;
  w.U64(nonce);
  return w.Take();
}

Status PingRequest::Decode(std::string_view payload, PingRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->nonce));
  return r.ExpectEnd();
}

std::string PingReply::Encode() const {
  WireWriter w;
  w.U64(nonce);
  w.U64(epoch);
  w.U32(shard_id);
  w.U32(replica_id);
  w.Str(metrics_blob);
  return w.Take();
}

Status PingReply::Decode(std::string_view payload, PingReply* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U64(&out->nonce));
  KSPDG_RETURN_NOT_OK(r.U64(&out->epoch));
  KSPDG_RETURN_NOT_OK(r.U32(&out->shard_id));
  KSPDG_RETURN_NOT_OK(r.U32(&out->replica_id));
  KSPDG_RETURN_NOT_OK(r.Str(&out->metrics_blob));
  return r.ExpectEnd();
}

ErrorReply ErrorReply::FromStatus(const Status& status) {
  ErrorReply reply;
  reply.code = status.ok() ? StatusCode::kInternal : status.code();
  reply.message = status.message();
  return reply;
}

Status ErrorReply::ToStatus() const {
  switch (code) {
    case StatusCode::kOk:
      return Status::Internal("worker sent an error reply with an OK code");
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
  }
  return Status::Internal(message);
}

std::string ErrorReply::Encode() const {
  WireWriter w;
  w.U8(static_cast<uint8_t>(code));
  w.Str(message);
  return w.Take();
}

Status ErrorReply::Decode(std::string_view payload, ErrorReply* out) {
  WireReader r(payload);
  uint8_t code = 0;
  KSPDG_RETURN_NOT_OK(r.U8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("error reply carries an unknown code");
  }
  out->code = static_cast<StatusCode>(code);
  KSPDG_RETURN_NOT_OK(r.Str(&out->message));
  return r.ExpectEnd();
}

}  // namespace kspdg
