#include "rpc/frame.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace kspdg {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xFF);
  bytes[1] = static_cast<char>((v >> 8) & 0xFF);
  bytes[2] = static_cast<char>((v >> 16) & 0xFF);
  bytes[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

/// Milliseconds until `deadline`, clamped to [0, INT_MAX] for poll(2).
int RemainingMillis(RpcDeadline deadline) {
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (remaining.count() <= 0) return 0;
  if (remaining.count() > 0x7FFFFFFF) return 0x7FFFFFFF;
  return static_cast<int>(remaining.count());
}

Status PollFor(int fd, short events, RpcDeadline deadline) {
  for (;;) {
    int timeout = RemainingMillis(deadline);
    if (timeout == 0) {
      return Status::DeadlineExceeded("rpc call deadline expired");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, timeout);
    if (rc > 0) {
      // Readable/writable OR an error/hangup the following read/write will
      // surface precisely; either way, stop polling.
      return Status::OK();
    }
    if (rc == 0) {
      return Status::DeadlineExceeded("rpc call deadline expired");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("poll failed: ") +
                           std::strerror(errno));
  }
}

/// Reads exactly `len` bytes into `buf`. kUnavailable on EOF.
Status ReadFull(int fd, char* buf, size_t len, RpcDeadline deadline) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = recv(fd, buf + done, len - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      KSPDG_RETURN_NOT_OK(PollFor(fd, POLLIN, deadline));
      continue;
    }
    return Status::Unavailable(std::string("recv failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

/// Writes exactly `len` bytes. MSG_NOSIGNAL so a dead peer surfaces as a
/// Status instead of SIGPIPE.
Status WriteFull(int fd, const char* buf, size_t len, RpcDeadline deadline) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      KSPDG_RETURN_NOT_OK(PollFor(fd, POLLOUT, deadline));
      continue;
    }
    return Status::Unavailable(std::string("send failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Status DecodeFrameHeader(const char* header, uint8_t* type,
                         uint32_t* length) {
  uint32_t magic = GetU32(header);
  if (magic != kFrameMagic) {
    return Status::IOError("bad frame magic: stream is corrupt or not a "
                           "kspdg worker connection");
  }
  *type = static_cast<uint8_t>(header[4]);
  uint32_t len = GetU32(header + 5);
  if (len > kMaxFramePayload) {
    return Status::IOError("frame payload length " + std::to_string(len) +
                           " exceeds the " +
                           std::to_string(kMaxFramePayload) + " byte cap");
  }
  *length = len;
  return Status::OK();
}

Status WriteFrame(int fd, uint8_t type, std::string_view payload,
                  RpcDeadline deadline) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds the size cap");
  }
  std::string frame = EncodeFrame(type, payload);
  return WriteFull(fd, frame.data(), frame.size(), deadline);
}

Status ReadFrame(int fd, uint8_t* type, std::string* payload,
                 RpcDeadline deadline) {
  char header[kFrameHeaderBytes];
  KSPDG_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header), deadline));
  uint32_t length = 0;
  KSPDG_RETURN_NOT_OK(DecodeFrameHeader(header, type, &length));
  payload->resize(length);
  if (length > 0) {
    KSPDG_RETURN_NOT_OK(ReadFull(fd, payload->data(), length, deadline));
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK) failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace kspdg
