#include "rpc/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "rpc/frame.h"

namespace kspdg {

namespace {

/// Server-side write deadline: a coordinator that stops draining its socket
/// for this long is treated as gone and the connection recycled.
constexpr int64_t kWriteDeadlineMs = 60'000;

/// "No deadline" for reads on an established connection: a coordinator may
/// legitimately idle between queries for arbitrarily long.
RpcDeadline FarFuture() {
  return std::chrono::steady_clock::time_point::max();
}

}  // namespace

Result<std::unique_ptr<RpcServer>> RpcServer::Listen(const std::string& path) {
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") + strerror(errno));
  }
  unlink(path.c_str());  // stale socket from a crashed predecessor
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    close(fd);
    return Status::IOError("bind(" + path + ") failed: " + strerror(err));
  }
  if (listen(fd, /*backlog=*/4) != 0) {
    int err = errno;
    close(fd);
    return Status::IOError("listen(" + path +
                           ") failed: " + strerror(err));
  }
  return std::unique_ptr<RpcServer>(new RpcServer(path, fd));
}

RpcServer::~RpcServer() {
  if (listen_fd_ >= 0) close(listen_fd_);
  unlink(path_.c_str());
}

Status RpcServer::Serve(const Handler& handler, int64_t idle_timeout_ms) {
  for (;;) {
    // Wait for a connection, bounded by the idle timeout (orphan guard).
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int timeout = idle_timeout_ms > 0x7FFFFFFF
                      ? 0x7FFFFFFF
                      : static_cast<int>(idle_timeout_ms);
    int rc = poll(&pfd, 1, timeout);
    if (rc == 0) {
      return Status::DeadlineExceeded(
          "no coordinator connected within the idle timeout");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll failed: ") + strerror(errno));
    }
    int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IOError(std::string("accept failed: ") +
                             strerror(errno));
    }
    Status nb = SetNonBlocking(conn);
    if (!nb.ok()) {
      close(conn);
      return nb;
    }

    // Connection loop: one request at a time until the peer goes away or
    // the handler asks to shut down.
    for (;;) {
      uint8_t type = 0;
      std::string payload;
      Status read = ReadFrame(conn, &type, &payload, FarFuture());
      if (!read.ok()) {
        // EOF, a corrupt stream, or a transport error: recycle to accept —
        // the coordinator reconnects on its next attempt.
        close(conn);
        conn = -1;
        break;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(kFrameHeaderBytes + payload.size(),
                                std::memory_order_relaxed);
      MessageType reply_type = MessageType::kErrorReply;
      std::string reply_payload;
      bool shutdown = false;
      Status handled = handler(static_cast<MessageType>(type), payload,
                               &reply_type, &reply_payload, &shutdown);
      if (!handled.ok()) {
        reply_type = MessageType::kErrorReply;
        reply_payload = ErrorReply::FromStatus(handled).Encode();
      }
      Status written =
          WriteFrame(conn, static_cast<uint8_t>(reply_type), reply_payload,
                     DeadlineAfterMillis(kWriteDeadlineMs));
      if (written.ok()) {
        bytes_sent_.fetch_add(kFrameHeaderBytes + reply_payload.size(),
                              std::memory_order_relaxed);
      }
      if (shutdown) {
        close(conn);
        return Status::OK();
      }
      if (!written.ok()) {
        close(conn);
        conn = -1;
        break;
      }
    }
  }
}

}  // namespace kspdg
