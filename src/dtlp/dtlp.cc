#include "dtlp/dtlp.h"

#include <algorithm>

#include "core/parallel_for.h"

namespace kspdg {

Result<std::unique_ptr<Dtlp>> Dtlp::Build(const Graph& g,
                                          const DtlpOptions& options) {
  Result<Partition> part = PartitionGraph(g, options.partition);
  if (!part.ok()) return part.status();

  std::unique_ptr<Dtlp> dtlp(new Dtlp(g, options));
  dtlp->partition_ =
      std::make_unique<Partition>(std::move(std::move(part).value()));
  Partition& partition = *dtlp->partition_;

  dtlp->indexes_.reserve(partition.subgraphs.size());
  for (const Subgraph& sg : partition.subgraphs) {
    dtlp->indexes_.emplace_back(&sg, options.index);
  }
  // Level 1: per-subgraph bounding paths; embarrassingly parallel across
  // subgraphs (this is the distributed portion of Algorithm 1).
  ParallelFor(dtlp->indexes_.size(), options.build_threads,
              [&](size_t i) { dtlp->indexes_[i].Build(); });

  // Level 2: skeleton graph over all boundary vertices.
  dtlp->skeleton_ = SkeletonGraph(g.directed());
  dtlp->skeleton_.SetVertices(partition.boundary_vertices);
  for (SubgraphId sg = 0; sg < partition.subgraphs.size(); ++sg) {
    dtlp->PushSubgraphBoundsToSkeleton(sg);
  }
  return dtlp;
}

void Dtlp::PushSubgraphBoundsToSkeleton(SubgraphId sgid) {
  const SubgraphIndex& index = indexes_[sgid];
  const Subgraph& sg = partition_->subgraphs[sgid];
  for (const BoundaryPairEntry& pair : index.pairs()) {
    VertexId a = sg.GlobalOf(pair.src);
    VertexId b = sg.GlobalOf(pair.dst);
    skeleton_.SetContribution(sgid, a, b, pair.lbd);
  }
}

void Dtlp::ApplyUpdatesToSubgraph(SubgraphId sgid,
                                  std::span<const WeightUpdate> updates) {
  Subgraph& sg = partition_->subgraphs[sgid];
  for (const WeightUpdate& upd : updates) {
    EdgeId local = sg.LocalEdgeOf(upd.edge);
    if (local == kInvalidEdge) continue;
    Weight old_fwd = sg.local().ForwardWeight(local);
    Weight old_bwd = sg.local().BackwardWeight(local);
    sg.ApplyUpdate(upd);
    indexes_[sgid].OnWeightChange(local, old_fwd, old_bwd);
  }
}

DtlpUpdateStats Dtlp::ApplyUpdates(std::span<const WeightUpdate> updates) {
  DtlpUpdateStats stats;
  std::vector<SubgraphId> dirty;
  for (const WeightUpdate& upd : updates) {
    if (upd.edge >= partition_->subgraph_of_edge.size()) continue;
    SubgraphId sgid = partition_->subgraph_of_edge[upd.edge];
    if (sgid == kInvalidSubgraph) continue;
    Subgraph& sg = partition_->subgraphs[sgid];
    EdgeId local = sg.LocalEdgeOf(upd.edge);
    Weight old_fwd = sg.local().ForwardWeight(local);
    Weight old_bwd = sg.local().BackwardWeight(local);
    sg.ApplyUpdate(upd);
    indexes_[sgid].OnWeightChange(local, old_fwd, old_bwd);
    ++stats.updates_applied;
    if (dirty.empty() || dirty.back() != sgid) dirty.push_back(sgid);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (SubgraphId sgid : dirty) {
    if (indexes_[sgid].Refresh()) {
      PushSubgraphBoundsToSkeleton(sgid);
      stats.skeleton_pairs_refreshed += indexes_[sgid].pairs().size();
    }
  }
  stats.subgraphs_touched = dirty.size();
  return stats;
}

size_t Dtlp::EpIndexMemoryBytes() const {
  size_t bytes = 0;
  for (const SubgraphIndex& index : indexes_) bytes += index.MemoryBytes();
  return bytes;
}

}  // namespace kspdg
