#include "dtlp/subgraph_index.h"

#include <algorithm>
#include <cassert>

#include "ksp/search_graph.h"
#include "ksp/yen.h"

namespace kspdg {

namespace {

/// Materialises edge ids / traversal directions / vfrag count / current
/// distance for a route found in the local graph.
void FillPathDetails(const Graph& local, const std::vector<VertexId>& verts,
                     BoundingPath* out) {
  out->verts = verts;
  out->edges.clear();
  out->uses_forward.clear();
  out->vfrags = 0;
  out->distance = 0;
  for (size_t i = 1; i < verts.size(); ++i) {
    EdgeId e = local.FindEdge(verts[i - 1], verts[i]);
    assert(e != kInvalidEdge);
    out->edges.push_back(e);
    out->uses_forward.push_back(local.EdgeU(e) == verts[i - 1] ? 1 : 0);
    out->vfrags += local.VfragsFrom(e, verts[i - 1]);
    out->distance += local.WeightFrom(e, verts[i - 1]);
  }
}

}  // namespace

SubgraphIndex::SubgraphIndex(const Subgraph* subgraph,
                             const DtlpIndexOptions& options)
    : subgraph_(subgraph), options_(options), pool_(&subgraph->local()) {}

std::vector<uint32_t> SubgraphIndex::CollectBoundingPaths(
    VertexId src, VertexId dst, uint32_t pair_index) {
  const Graph& local = subgraph_->local();
  GraphCostView vfrag_view(local, CostKind::kVfrags);
  YenEnumerator<GraphCostView> yen(vfrag_view, src, dst);
  std::vector<uint32_t> out;
  VfragCount last_phi = 0;
  uint32_t pulls = 0;
  const uint32_t max_pulls = options_.EffectiveMaxPulls();
  while (out.size() < options_.xi && pulls++ < max_pulls) {
    std::optional<Path> p = yen.NextPath();
    if (!p.has_value()) break;
    VfragCount phi = static_cast<VfragCount>(p->distance + 0.5);
    // Paths with an already-seen vfrag count "are counted as only one path"
    // (§3.4): keep the first representative of each distinct φ.
    if (!out.empty() && phi == last_phi) continue;
    last_phi = phi;
    BoundingPath bp;
    FillPathDetails(local, p->vertices, &bp);
    bp.pair_index = pair_index;
    assert(bp.vfrags == phi);
    out.push_back(static_cast<uint32_t>(paths_.size()));
    paths_.push_back(std::move(bp));
  }
  return out;
}

void SubgraphIndex::Build() {
  const std::vector<VertexId>& boundary = subgraph_->boundary_local();
  const bool directed = subgraph_->local().directed();
  paths_.clear();
  pairs_.clear();
  for (size_t i = 0; i < boundary.size(); ++i) {
    for (size_t j = directed ? 0 : i + 1; j < boundary.size(); ++j) {
      if (i == j) continue;
      BoundaryPairEntry pair;
      pair.src = boundary[i];
      pair.dst = boundary[j];
      uint32_t pair_index = static_cast<uint32_t>(pairs_.size());
      pair.paths = CollectBoundingPaths(pair.src, pair.dst, pair_index);
      pairs_.push_back(std::move(pair));
    }
  }
  // EP-Index: edge -> bounding paths crossing it.
  ep_index_.assign(subgraph_->local().NumEdges(), {});
  for (uint32_t pid = 0; pid < paths_.size(); ++pid) {
    for (EdgeId e : paths_[pid].edges) ep_index_[e].push_back(pid);
  }
  for (BoundaryPairEntry& pair : pairs_) RecomputePairBound(pair);
  dirty_ = false;
}

void SubgraphIndex::OnWeightChange(EdgeId local_edge, Weight old_fwd,
                                   Weight old_bwd) {
  const Graph& local = subgraph_->local();
  Weight delta_fwd = local.ForwardWeight(local_edge) - old_fwd;
  Weight delta_bwd = local.BackwardWeight(local_edge) - old_bwd;
  if (delta_fwd != 0 || delta_bwd != 0) {
    for (uint32_t pid : ep_index_[local_edge]) {
      BoundingPath& p = paths_[pid];
      if (!local.directed() || delta_fwd == delta_bwd) {
        p.distance += delta_fwd;
      } else {
        // Directed with asymmetric change: find the traversal direction.
        for (size_t i = 0; i < p.edges.size(); ++i) {
          if (p.edges[i] == local_edge) {
            p.distance += p.uses_forward[i] ? delta_fwd : delta_bwd;
            break;
          }
        }
      }
    }
    pool_.MarkDirty();
    dirty_ = true;
  }
}

bool SubgraphIndex::Refresh() {
  if (!dirty_) return false;
  bool changed = false;
  for (BoundaryPairEntry& pair : pairs_) {
    Weight old = pair.lbd;
    RecomputePairBound(pair);
    if (!WeightsEqual(old, pair.lbd)) changed = true;
  }
  dirty_ = false;
  return changed;
}

void SubgraphIndex::RecomputePairBound(BoundaryPairEntry& pair) {
  if (pair.paths.empty()) {
    pair.lbd = kInfiniteWeight;
    pair.exact = false;
    return;
  }
  // Paths are sorted by φ ascending; SumOfSmallest is monotone in φ, so the
  // maximal bound distance belongs to the last path.
  Weight min_actual = kInfiniteWeight;
  for (uint32_t pid : pair.paths) {
    min_actual = std::min(min_actual, paths_[pid].distance);
  }
  VfragCount max_phi = paths_[pair.paths.back()].vfrags;
  Weight bd_max = pool_.SumOfSmallest(max_phi);
  // Theorem 1 collapses to: LBD = min(D(P'_u), BD(P'_r)). When the actual
  // minimum does not exceed the maximal bound distance, it is provably the
  // exact shortest distance within the subgraph (case 1); otherwise the
  // maximal bound distance is the lower bound (case 2). Taking the min is
  // also robust to floating-point noise: it can never overestimate.
  if (min_actual <= bd_max + kWeightEpsilon) {
    pair.lbd = min_actual;
    pair.exact = true;
  } else {
    pair.lbd = bd_max;
    pair.exact = false;
  }
}

std::vector<std::pair<VertexId, Weight>> SubgraphIndex::LowerBoundsToBoundary(
    VertexId local_vertex, bool from_vertex) const {
  std::vector<std::pair<VertexId, Weight>> out;
  for (VertexId b : subgraph_->boundary_local()) {
    if (b == local_vertex) continue;
    Weight lbd = from_vertex ? LowerBoundBetween(local_vertex, b)
                             : LowerBoundBetween(b, local_vertex);
    if (lbd != kInfiniteWeight) out.emplace_back(b, lbd);
  }
  return out;
}

Weight SubgraphIndex::LowerBoundBetween(VertexId src_local,
                                        VertexId dst_local) const {
  if (src_local == dst_local) return 0;
  const Graph& local = subgraph_->local();
  GraphCostView vfrag_view(local, CostKind::kVfrags);
  YenEnumerator<GraphCostView> yen(vfrag_view, src_local, dst_local);
  Weight min_actual = kInfiniteWeight;
  VfragCount max_phi = 0;
  VfragCount last_phi = 0;
  uint32_t distinct = 0;
  uint32_t pulls = 0;
  const uint32_t max_pulls = options_.EffectiveMaxPulls();
  while (distinct < options_.xi && pulls++ < max_pulls) {
    std::optional<Path> p = yen.NextPath();
    if (!p.has_value()) break;
    VfragCount phi = static_cast<VfragCount>(p->distance + 0.5);
    if (distinct > 0 && phi == last_phi) continue;
    last_phi = phi;
    ++distinct;
    max_phi = phi;  // φ grows monotonically across distinct values
    // Current actual distance of this route.
    Weight d = 0;
    for (size_t i = 1; i < p->vertices.size(); ++i) {
      EdgeId e = local.FindEdge(p->vertices[i - 1], p->vertices[i]);
      d += local.WeightFrom(e, p->vertices[i - 1]);
    }
    min_actual = std::min(min_actual, d);
  }
  if (distinct == 0) return kInfiniteWeight;
  Weight bd_max = pool_.SumOfSmallest(max_phi);
  return std::min(min_actual, bd_max);
}

size_t SubgraphIndex::EpIndexEntries() const {
  size_t total = 0;
  for (const auto& list : ep_index_) total += list.size();
  return total;
}

size_t SubgraphIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const BoundingPath& p : paths_) {
    bytes += sizeof(BoundingPath);
    bytes += p.verts.capacity() * sizeof(VertexId);
    bytes += p.edges.capacity() * sizeof(EdgeId);
    bytes += p.uses_forward.capacity();
  }
  for (const BoundaryPairEntry& pair : pairs_) {
    bytes += sizeof(BoundaryPairEntry);
    bytes += pair.paths.capacity() * sizeof(uint32_t);
  }
  for (const auto& list : ep_index_) {
    bytes += sizeof(list) + list.capacity() * sizeof(uint32_t);
  }
  bytes += pool_.MemoryBytes();
  return bytes;
}

}  // namespace kspdg
