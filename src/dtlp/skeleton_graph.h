// Level 2 of DTLP: the skeleton graph Gλ (§3.6).
//
// Vertices are all boundary vertices of all subgraphs; an edge connects two
// boundary vertices iff they co-occur in some subgraph, weighted by the
// minimum lower bound distance (MBD) over the contributing subgraphs. The
// weights change as traffic evolves, the topology never does.
//
// SkeletonOverlay adds the (possibly non-boundary) query endpoints with
// lower-bound edges to the boundary vertices of their subgraphs (§5.3)
// without copying the base graph, and satisfies the SearchGraph concept so
// reference paths come straight from YenEnumerator<SkeletonOverlay>.
#ifndef KSPDG_DTLP_SKELETON_GRAPH_H_
#define KSPDG_DTLP_SKELETON_GRAPH_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

/// Dense id of a vertex within the skeleton graph (or an overlay).
using SkeletonId = uint32_t;

/// Order-independent key of a skeleton vertex pair (shared by the base
/// graph's edge map and the overlay's temp-edge map).
inline uint64_t SkeletonPairKey(SkeletonId a, SkeletonId b) {
  SkeletonId lo = a < b ? a : b;
  SkeletonId hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

class SkeletonGraph {
 public:
  explicit SkeletonGraph(bool directed = false) : directed_(directed) {}

  /// Registers all boundary vertices (global ids). Must precede AddEdges.
  void SetVertices(const std::vector<VertexId>& boundary_global);

  /// Records subgraph `sg`'s lower bound for the ordered pair (a, b) of
  /// global vertex ids; creates the skeleton edge on first contribution.
  /// In undirected mode the bound applies to both directions.
  void SetContribution(SubgraphId sg, VertexId a_global, VertexId b_global,
                       Weight lbd);

  // --- SearchGraph concept -------------------------------------------------
  size_t NumVertices() const { return global_of_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  std::span<const Arc> Neighbors(SkeletonId v) const { return adjacency_[v]; }
  Weight CostFrom(EdgeId e, SkeletonId from) const {
    const EdgeRec& rec = edges_[e];
    return rec.u == from ? rec.weight_fwd : rec.weight_bwd;
  }
  // -------------------------------------------------------------------------

  bool directed() const { return directed_; }

  SkeletonId IdOfGlobal(VertexId global) const {
    auto it = id_of_global_.find(global);
    return it == id_of_global_.end() ? kInvalidVertex : it->second;
  }
  VertexId GlobalOf(SkeletonId id) const { return global_of_[id]; }
  bool ContainsGlobal(VertexId global) const {
    return id_of_global_.count(global) > 0;
  }

  size_t MemoryBytes() const;

 private:
  struct Contribution {
    SubgraphId subgraph;
    Weight fwd = kInfiniteWeight;  // bound for u -> v
    Weight bwd = kInfiniteWeight;  // bound for v -> u
  };
  struct EdgeRec {
    SkeletonId u, v;
    Weight weight_fwd = kInfiniteWeight;  // MBD(u, v)
    Weight weight_bwd = kInfiniteWeight;  // MBD(v, u)
    std::vector<Contribution> contributions;
  };

  void RecomputeEdgeWeight(EdgeRec& rec);

  bool directed_;
  std::vector<VertexId> global_of_;
  std::unordered_map<VertexId, SkeletonId> id_of_global_;
  std::vector<EdgeRec> edges_;
  std::unordered_map<uint64_t, EdgeId> edge_of_pair_;
  std::vector<std::vector<Arc>> adjacency_;
};

/// Read-only view over a SkeletonGraph plus up to a few temporary vertices
/// (query endpoints) and temporary lower-bound edges. Satisfies the
/// SearchGraph concept; temporary vertices get ids >= base.NumVertices() and
/// temporary edges ids >= base.NumEdges().
class SkeletonOverlay {
 public:
  explicit SkeletonOverlay(const SkeletonGraph& base) : base_(&base) {}

  /// Adds a temporary vertex for `global` and returns its overlay id.
  SkeletonId AddTempVertex(VertexId global);

  /// Adds a temporary edge between overlay ids a and b with per-direction
  /// lower-bound weights (a->b, b->a).
  void AddTempEdge(SkeletonId a, SkeletonId b, Weight w_ab, Weight w_ba);

  /// Overlay id of a global vertex: base skeleton id, or temp id, or
  /// kInvalidVertex.
  SkeletonId IdOfGlobal(VertexId global) const;
  VertexId GlobalOf(SkeletonId id) const;

  // --- SearchGraph concept -------------------------------------------------
  size_t NumVertices() const { return base_->NumVertices() + temp_global_.size(); }
  size_t NumEdges() const { return base_->NumEdges() + temp_edges_.size(); }

  /// Lazily materialised neighbor list: base arcs plus temp arcs.
  std::span<const Arc> Neighbors(SkeletonId v) const;

  Weight CostFrom(EdgeId e, SkeletonId from) const {
    if (e < base_->NumEdges()) return base_->CostFrom(e, from);
    const TempEdge& te = temp_edges_[e - base_->NumEdges()];
    return te.a == from ? te.w_ab : te.w_ba;
  }
  // -------------------------------------------------------------------------

 private:
  struct TempEdge {
    SkeletonId a, b;
    Weight w_ab, w_ba;
  };

  const SkeletonGraph* base_;
  std::vector<VertexId> temp_global_;
  std::unordered_map<VertexId, SkeletonId> temp_id_of_global_;
  /// Unordered overlay-id pair -> index into temp_edges_, so repeated
  /// contributions to the same pair merge in O(1).
  std::unordered_map<uint64_t, size_t> temp_edge_of_pair_;
  /// Extra arcs per overlay vertex (sparse map: only endpoints of temp
  /// edges appear).
  std::unordered_map<SkeletonId, std::vector<Arc>> extra_arcs_;
  std::vector<TempEdge> temp_edges_;
  /// Scratch buffer for Neighbors() of vertices that mix base and temp arcs.
  mutable std::vector<Arc> neighbor_scratch_;
};

}  // namespace kspdg

#endif  // KSPDG_DTLP_SKELETON_GRAPH_H_
