#include "dtlp/unit_weight_pool.h"

#include <algorithm>

namespace kspdg {

void UnitWeightPool::Rebuild() const {
  entries_.clear();
  entries_.reserve(local_->NumEdges() * (local_->directed() ? 2 : 1));
  for (EdgeId e = 0; e < local_->NumEdges(); ++e) {
    VfragCount vf = local_->ForwardVfrags(e);
    entries_.push_back(
        {local_->ForwardWeight(e) / static_cast<Weight>(vf), vf, 0, 0});
    if (local_->directed()) {
      VfragCount vb = local_->BackwardVfrags(e);
      entries_.push_back(
          {local_->BackwardWeight(e) / static_cast<Weight>(vb), vb, 0, 0});
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.unit < b.unit; });
  VfragCount cum_count = 0;
  Weight cum_weight = 0;
  for (Entry& entry : entries_) {
    cum_count += entry.count;
    cum_weight += entry.unit * static_cast<Weight>(entry.count);
    entry.cum_count = cum_count;
    entry.cum_weight = cum_weight;
  }
  dirty_ = false;
}

Weight UnitWeightPool::SumOfSmallest(VfragCount m) const {
  if (dirty_) Rebuild();
  if (m == 0 || entries_.empty()) return 0;
  // First entry whose cumulative count reaches m.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, VfragCount needed) { return e.cum_count < needed; });
  if (it == entries_.end()) return entries_.back().cum_weight;
  Weight below = it == entries_.begin() ? 0 : (it - 1)->cum_weight;
  VfragCount count_below = it == entries_.begin() ? 0 : (it - 1)->cum_count;
  return below + static_cast<Weight>(m - count_below) * it->unit;
}

VfragCount UnitWeightPool::TotalVfrags() const {
  if (dirty_) Rebuild();
  return entries_.empty() ? 0 : entries_.back().cum_count;
}

}  // namespace kspdg
