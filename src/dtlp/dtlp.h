// The Distributed Two-Level Path index (DTLP, §3): owns the partition with
// its per-subgraph weight copies, one SubgraphIndex (level 1) per subgraph,
// and the skeleton graph Gλ (level 2). Implements Algorithm 1 (build) and
// Algorithm 2 (update).
#ifndef KSPDG_DTLP_DTLP_H_
#define KSPDG_DTLP_DTLP_H_

#include <memory>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "dtlp/skeleton_graph.h"
#include "dtlp/subgraph_index.h"
#include "graph/graph.h"
#include "partition/partitioner.h"

namespace kspdg {

struct DtlpOptions {
  /// z: maximum vertices per subgraph.
  PartitionOptions partition;
  /// ξ and related level-1 knobs.
  DtlpIndexOptions index;
  /// Threads used for the per-subgraph build (1 = sequential). Models the
  /// number of servers constructing the index in parallel (Figure 42).
  unsigned build_threads = 1;
};

struct DtlpUpdateStats {
  size_t updates_applied = 0;
  size_t subgraphs_touched = 0;
  size_t skeleton_pairs_refreshed = 0;
};

class Dtlp {
 public:
  /// Partitions `g` and builds both index levels (Algorithm 1).
  static Result<std::unique_ptr<Dtlp>> Build(const Graph& g,
                                             const DtlpOptions& options);

  /// Applies a batch of weight updates (Algorithm 2): updates the subgraph
  /// weight copies, maintains bounding-path distances through the EP-Index,
  /// recomputes lower bounds of touched subgraphs, and refreshes Gλ.
  DtlpUpdateStats ApplyUpdates(std::span<const WeightUpdate> updates);

  const Graph& graph() const { return *graph_; }
  const Partition& partition() const { return *partition_; }
  const SkeletonGraph& skeleton() const { return skeleton_; }
  const DtlpOptions& options() const { return options_; }

  size_t NumSubgraphs() const { return partition_->subgraphs.size(); }
  const SubgraphIndex& index(SubgraphId sg) const { return indexes_[sg]; }
  SubgraphIndex& mutable_index(SubgraphId sg) { return indexes_[sg]; }

  /// Memory accounting for the construction-cost figures.
  size_t EpIndexMemoryBytes() const;
  size_t SkeletonMemoryBytes() const { return skeleton_.MemoryBytes(); }

  // --- Distributed-deployment building blocks ------------------------------
  // The simulated cluster applies updates per owning server in parallel;
  // these per-subgraph steps are thread-safe across *distinct* subgraphs.

  /// Applies updates that all belong to subgraph `sg` (weight copies +
  /// level-1 maintenance). Does not touch the skeleton.
  void ApplyUpdatesToSubgraph(SubgraphId sg,
                              std::span<const WeightUpdate> updates);

  /// Recomputes subgraph `sg`'s lower bounds; returns true if any changed.
  bool RefreshSubgraph(SubgraphId sg) { return indexes_[sg].Refresh(); }

  /// Re-publishes subgraph `sg`'s pair bounds into the skeleton graph.
  /// NOT thread-safe; call from a single (master) thread.
  void PushSubgraphBoundsToSkeleton(SubgraphId sg);

 private:
  Dtlp(const Graph& g, DtlpOptions options)
      : graph_(&g), options_(std::move(options)) {}

  const Graph* graph_;  // original graph (not owned; topology + vfrags only)
  DtlpOptions options_;
  std::unique_ptr<Partition> partition_;  // owns subgraph weight copies
  std::vector<SubgraphIndex> indexes_;
  SkeletonGraph skeleton_;
};

}  // namespace kspdg

#endif  // KSPDG_DTLP_DTLP_H_
