// Level 1 of the DTLP index for one subgraph (§3.4-3.5, §3.7):
//   * bounding paths between every pair of boundary vertices — the ξ paths
//     with the fewest distinct virtual-fragment counts; computed once, never
//     recomputed as weights change;
//   * the EP-Index mapping each edge to the bounding paths crossing it, used
//     to maintain path distances incrementally under weight updates;
//   * the unit-weight pool, giving bound distances (sum of the φ smallest
//     unit weights);
//   * lower bound distances per pair, via Theorem 1.
#ifndef KSPDG_DTLP_SUBGRAPH_INDEX_H_
#define KSPDG_DTLP_SUBGRAPH_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"
#include "dtlp/unit_weight_pool.h"
#include "graph/graph.h"
#include "partition/subgraph.h"

namespace kspdg {

struct DtlpIndexOptions {
  /// ξ: maximum number of bounding paths (distinct vfrag counts) per pair.
  uint32_t xi = 5;
  /// Safety cap on Yen pulls while collecting distinct vfrag counts (equal-
  /// vfrag paths count as one, and ties can be numerous on uniform graphs).
  uint32_t max_yen_pulls = 0;  // 0 = default: 8*xi + 16

  uint32_t EffectiveMaxPulls() const {
    return max_yen_pulls != 0 ? max_yen_pulls : 8 * xi + 16;
  }
};

/// One bounding path (all ids are subgraph-local).
struct BoundingPath {
  std::vector<VertexId> verts;
  std::vector<EdgeId> edges;
  /// uses_forward[i] != 0 iff edges[i] is traversed in its u->v direction;
  /// needed to apply directional weight deltas in directed mode.
  std::vector<char> uses_forward;
  VfragCount vfrags = 0;   // φ(P): static
  Weight distance = 0;     // D(P): maintained incrementally
  uint32_t pair_index = 0;
};

/// Lower-bound state for one boundary pair. In undirected mode pairs are
/// unordered (src < dst); in directed mode both orders appear.
struct BoundaryPairEntry {
  VertexId src = kInvalidVertex;  // local id
  VertexId dst = kInvalidVertex;  // local id
  std::vector<uint32_t> paths;    // indices into paths(), sorted by vfrags
  Weight lbd = kInfiniteWeight;   // LBD(src, dst) in this subgraph
  /// True when Theorem 1 case (1) applied: lbd equals the exact shortest
  /// distance between src and dst within the subgraph.
  bool exact = false;
};

class SubgraphIndex {
 public:
  SubgraphIndex(const Subgraph* subgraph, const DtlpIndexOptions& options);

  /// Computes bounding paths for all boundary pairs and the initial lower
  /// bounds. Cost dominates DTLP construction.
  void Build();

  /// Notifies the index that the local weight of `local_edge` changed from
  /// (old_fwd, old_bwd) to the subgraph's current values. Updates bounding-
  /// path distances through the EP-Index and marks bounds dirty.
  void OnWeightChange(EdgeId local_edge, Weight old_fwd, Weight old_bwd);

  bool dirty() const { return dirty_; }

  /// Recomputes bound distances and per-pair lower bounds (Theorem 1).
  /// Returns true if any pair's LBD changed.
  bool Refresh();

  const Subgraph& subgraph() const { return *subgraph_; }
  const std::vector<BoundingPath>& paths() const { return paths_; }
  const std::vector<BoundaryPairEntry>& pairs() const { return pairs_; }
  const UnitWeightPool& pool() const { return pool_; }

  /// Bounding paths crossing `local_edge` (EP-Index lookup).
  const std::vector<uint32_t>& PathsThroughEdge(EdgeId local_edge) const {
    return ep_index_[local_edge];
  }

  /// Query-time §5.3 support: lower bound distances from `local_vertex` to
  /// every boundary vertex of the subgraph. If `from_vertex` is true the
  /// direction is vertex->boundary (query source), else boundary->vertex
  /// (query target); the distinction matters only in directed mode.
  /// Returns (boundary_local_id, lbd) pairs; unreachable ones are skipped.
  std::vector<std::pair<VertexId, Weight>> LowerBoundsToBoundary(
      VertexId local_vertex, bool from_vertex) const;

  /// On-the-fly LBD between two arbitrary local vertices (used when both
  /// query endpoints fall in the same subgraph). kInfiniteWeight if
  /// disconnected within the subgraph.
  Weight LowerBoundBetween(VertexId src_local, VertexId dst_local) const;

  /// Total number of (path, edge) incidences in the EP-Index — the paper's
  /// EP-Index size measure (Nb(Nb-1)/2 * ξ * ne).
  size_t EpIndexEntries() const;

  size_t MemoryBytes() const;

 private:
  /// Collects bounding paths from src to dst and appends them to paths_,
  /// returning their indices (sorted by vfrags ascending).
  std::vector<uint32_t> CollectBoundingPaths(VertexId src, VertexId dst,
                                             uint32_t pair_index);

  /// Theorem 1: derives the LBD of a pair from its paths and the pool.
  void RecomputePairBound(BoundaryPairEntry& pair);

  const Subgraph* subgraph_;
  DtlpIndexOptions options_;
  UnitWeightPool pool_;
  std::vector<BoundingPath> paths_;
  std::vector<BoundaryPairEntry> pairs_;
  std::vector<std::vector<uint32_t>> ep_index_;  // local edge -> path ids
  bool dirty_ = false;
};

}  // namespace kspdg

#endif  // KSPDG_DTLP_SUBGRAPH_INDEX_H_
