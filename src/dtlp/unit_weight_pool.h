// Pool of virtual-fragment unit weights of one subgraph (§3.4).
//
// Every edge direction contributes `vfrags` fragments of unit weight
// `current_weight / vfrags`. The bound distance of a bounding path with φ
// vfrags is the sum of the φ smallest unit weights in its subgraph; this
// class answers that query in O(log E) after an O(E log E) rebuild, which is
// performed lazily after weight changes.
#ifndef KSPDG_DTLP_UNIT_WEIGHT_POOL_H_
#define KSPDG_DTLP_UNIT_WEIGHT_POOL_H_

#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

class UnitWeightPool {
 public:
  /// Binds the pool to a subgraph-local graph. In directed mode both
  /// directions of every edge contribute fragments; in undirected mode each
  /// edge contributes once.
  explicit UnitWeightPool(const Graph* local) : local_(local) { MarkDirty(); }

  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

  /// Sum of the m smallest unit weights (rebuilds if dirty). If m exceeds
  /// the total number of fragments, the total weight is returned.
  Weight SumOfSmallest(VfragCount m) const;

  /// Total number of virtual fragments in the pool.
  VfragCount TotalVfrags() const;

  size_t MemoryBytes() const {
    return sizeof(*this) + entries_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    Weight unit;            // weight per fragment
    VfragCount count;       // number of fragments at this unit weight
    VfragCount cum_count;   // fragments in this and all cheaper entries
    Weight cum_weight;      // total weight of this and all cheaper entries
  };

  void Rebuild() const;

  const Graph* local_;
  mutable bool dirty_ = true;
  mutable std::vector<Entry> entries_;  // sorted by unit ascending
};

}  // namespace kspdg

#endif  // KSPDG_DTLP_UNIT_WEIGHT_POOL_H_
