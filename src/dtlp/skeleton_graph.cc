#include "dtlp/skeleton_graph.h"

#include <algorithm>
#include <cassert>

namespace kspdg {

void SkeletonGraph::SetVertices(const std::vector<VertexId>& boundary_global) {
  global_of_ = boundary_global;
  id_of_global_.clear();
  id_of_global_.reserve(global_of_.size());
  for (SkeletonId i = 0; i < global_of_.size(); ++i) {
    id_of_global_.emplace(global_of_[i], i);
  }
  adjacency_.assign(global_of_.size(), {});
  edges_.clear();
  edge_of_pair_.clear();
}

void SkeletonGraph::SetContribution(SubgraphId sg, VertexId a_global,
                                    VertexId b_global, Weight lbd) {
  SkeletonId a = IdOfGlobal(a_global);
  SkeletonId b = IdOfGlobal(b_global);
  assert(a != kInvalidVertex && b != kInvalidVertex && a != b);
  uint64_t key = SkeletonPairKey(a, b);
  auto [it, inserted] = edge_of_pair_.try_emplace(
      key, static_cast<EdgeId>(edges_.size()));
  if (inserted) {
    EdgeRec rec;
    rec.u = a;
    rec.v = b;
    edges_.push_back(std::move(rec));
    adjacency_[a].push_back({b, it->second});
    adjacency_[b].push_back({a, it->second});
  }
  EdgeRec& rec = edges_[it->second];
  // Locate or create this subgraph's contribution slot.
  Contribution* slot = nullptr;
  for (Contribution& c : rec.contributions) {
    if (c.subgraph == sg) {
      slot = &c;
      break;
    }
  }
  if (slot == nullptr) {
    rec.contributions.push_back({sg, kInfiniteWeight, kInfiniteWeight});
    slot = &rec.contributions.back();
  }
  bool is_forward = (rec.u == a);
  if (directed_) {
    (is_forward ? slot->fwd : slot->bwd) = lbd;
  } else {
    slot->fwd = lbd;
    slot->bwd = lbd;
  }
  RecomputeEdgeWeight(rec);
}

void SkeletonGraph::RecomputeEdgeWeight(EdgeRec& rec) {
  rec.weight_fwd = kInfiniteWeight;
  rec.weight_bwd = kInfiniteWeight;
  for (const Contribution& c : rec.contributions) {
    rec.weight_fwd = std::min(rec.weight_fwd, c.fwd);
    rec.weight_bwd = std::min(rec.weight_bwd, c.bwd);
  }
}

size_t SkeletonGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += global_of_.capacity() * sizeof(VertexId);
  bytes += id_of_global_.size() * (sizeof(VertexId) + sizeof(SkeletonId) + 16);
  for (const EdgeRec& rec : edges_) {
    bytes += sizeof(EdgeRec) +
             rec.contributions.capacity() * sizeof(Contribution);
  }
  bytes += edge_of_pair_.size() * (sizeof(uint64_t) + sizeof(EdgeId) + 16);
  for (const auto& arcs : adjacency_) {
    bytes += sizeof(arcs) + arcs.capacity() * sizeof(Arc);
  }
  return bytes;
}

SkeletonId SkeletonOverlay::AddTempVertex(VertexId global) {
  assert(!base_->ContainsGlobal(global));
  auto it = temp_id_of_global_.find(global);
  if (it != temp_id_of_global_.end()) return it->second;
  SkeletonId id =
      static_cast<SkeletonId>(base_->NumVertices() + temp_global_.size());
  temp_global_.push_back(global);
  temp_id_of_global_.emplace(global, id);
  return id;
}

void SkeletonOverlay::AddTempEdge(SkeletonId a, SkeletonId b, Weight w_ab,
                                  Weight w_ba) {
  assert(a != b);
  // Merge parallel contributions (min per direction, matching the MBD
  // semantics of base skeleton edges). The overlay must stay a simple
  // graph: Yen's deviation bans are per-arc, and a duplicate parallel arc
  // would let the spur search rediscover a banned route and kill the
  // deviation branch.
  auto [it, inserted] =
      temp_edge_of_pair_.try_emplace(SkeletonPairKey(a, b),
                                     temp_edges_.size());
  if (!inserted) {
    TempEdge& te = temp_edges_[it->second];
    bool same_orientation = (te.a == a);
    te.w_ab = std::min(te.w_ab, same_orientation ? w_ab : w_ba);
    te.w_ba = std::min(te.w_ba, same_orientation ? w_ba : w_ab);
    return;
  }
  EdgeId id = static_cast<EdgeId>(base_->NumEdges() + temp_edges_.size());
  temp_edges_.push_back({a, b, w_ab, w_ba});
  extra_arcs_[a].push_back({b, id});
  extra_arcs_[b].push_back({a, id});
}

SkeletonId SkeletonOverlay::IdOfGlobal(VertexId global) const {
  SkeletonId base_id = base_->IdOfGlobal(global);
  if (base_id != kInvalidVertex) return base_id;
  auto it = temp_id_of_global_.find(global);
  return it == temp_id_of_global_.end() ? kInvalidVertex : it->second;
}

VertexId SkeletonOverlay::GlobalOf(SkeletonId id) const {
  if (id < base_->NumVertices()) return base_->GlobalOf(id);
  return temp_global_[id - base_->NumVertices()];
}

std::span<const Arc> SkeletonOverlay::Neighbors(SkeletonId v) const {
  auto extra = extra_arcs_.find(v);
  bool has_extra = extra != extra_arcs_.end();
  if (v >= base_->NumVertices()) {
    // Pure temp vertex: arcs live only in extra_arcs_.
    if (!has_extra) return {};
    return extra->second;
  }
  std::span<const Arc> base_arcs = base_->Neighbors(v);
  if (!has_extra) return base_arcs;
  // Mixed: materialise into the scratch buffer. Note this buffer is reused
  // across calls; callers must finish iterating one neighbor list before
  // requesting another (true for Dijkstra/Yen).
  neighbor_scratch_.assign(base_arcs.begin(), base_arcs.end());
  neighbor_scratch_.insert(neighbor_scratch_.end(), extra->second.begin(),
                           extra->second.end());
  return neighbor_scratch_;
}

}  // namespace kspdg
