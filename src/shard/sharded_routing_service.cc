#include "shard/sharded_routing_service.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/strings.h"
#include "core/timer.h"
#include "ksp/path.h"
#include "kspdg/partial_provider.h"

namespace kspdg {

namespace {

/// Threads one ApplyTrafficBatch fan-out may use when the caller does not
/// say: one per shard, capped at the hardware thread count.
unsigned ResolveApplyThreads(unsigned requested, size_t num_shards) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<unsigned>(
      std::min<size_t>(num_shards, static_cast<size_t>(hw)));
}

}  // namespace

// Routes each boundary-pair partial request to the shard(s) owning the
// subgraphs that contain the pair. A pair owned entirely by one shard is
// served directly under that shard's reader lock; a pair spanning shards
// scatters to every owner and gathers the per-subgraph lists through
// MergeSubgraphPartials — the same merge LocalPartialProvider uses — so
// the gathered result is identical to the inline computation by
// construction. One provider instance serves one query on one thread.
class ShardedRoutingService::ScatterGatherProvider : public PartialProvider {
 public:
  explicit ScatterGatherProvider(const ShardedRoutingService& service)
      : service_(service), shard_touched_(service.shards_.size(), 0) {}

  PartialResult ComputePartials(VertexId x, VertexId y,
                                size_t depth) override {
    const Partition& partition = service_.dtlp_->partition();
    // Group the owning subgraphs by shard. Boundary pairs live in at most a
    // handful of subgraphs, so linear scans beat any map.
    std::vector<std::pair<ShardId, std::vector<SubgraphId>>> groups;
    for (SubgraphId sgid : partition.SubgraphsContainingBoth(x, y)) {
      ShardId shard = service_.assignment_.shard_of_subgraph[sgid];
      auto it = std::find_if(groups.begin(), groups.end(),
                             [shard](const auto& g) { return g.first == shard; });
      if (it == groups.end()) {
        groups.push_back({shard, {sgid}});
      } else {
        it->second.push_back(sgid);
      }
    }
    // Scatter: every owning shard computes its subgraphs' partial lists
    // under its own reader lock — the in-process stand-in for shipping the
    // request to the shard's worker, with the shard's weights and indexes
    // frozen while it computes.
    std::vector<SubgraphPartials> fetched;
    for (const auto& [shard_id, owned] : groups) {
      const Shard& shard = *service_.shards_[shard_id];
      shard_touched_[shard_id] = 1;
      shard.partial_requests.fetch_add(1, std::memory_order_relaxed);
      shard.yen_runs.fetch_add(owned.size(), std::memory_order_relaxed);
      std::shared_lock<EpochLock> lock(shard.mu);
      for (SubgraphId sgid : owned) {
        const Subgraph& sg = partition.subgraphs[sgid];
        fetched.push_back(
            {sgid, LocalPartialProvider::PartialsInSubgraph(sg, x, y, depth)});
      }
    }
    // Gather: the shared merge (see MergeSubgraphPartials) replays the
    // unsharded provider's ascending-subgraph order, so the result is
    // identical to the inline computation by construction.
    PartialResult result = MergeSubgraphPartials(std::move(fetched), depth);
    if (groups.size() == 1) {
      service_.direct_partials_.fetch_add(1, std::memory_order_relaxed);
    } else if (groups.size() > 1) {
      service_.scattered_partials_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Distinct shards this query's partial requests landed on.
  size_t ShardsTouched() const {
    size_t n = 0;
    for (char touched : shard_touched_) n += touched != 0;
    return n;
  }

 private:
  const ShardedRoutingService& service_;
  std::vector<char> shard_touched_;
};

Result<std::unique_ptr<ShardedRoutingService>> ShardedRoutingService::Create(
    Graph graph, ShardedRoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Heap-allocate before building the DTLP: the index keeps a pointer to
  // the service-owned graph.
  std::unique_ptr<ShardedRoutingService> service(
      new ShardedRoutingService(std::move(graph), std::move(options)));
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  Result<ShardAssignment> assignment = AssignShards(
      service->dtlp_->partition(), service->options_.num_shards);
  if (!assignment.ok()) return assignment.status();
  service->assignment_ = std::move(assignment).value();
  service->registry_ = SolverRegistry::Default();
  service->shards_.reserve(service->assignment_.num_shards);
  for (ShardId shard = 0; shard < service->assignment_.num_shards; ++shard) {
    auto owned = std::make_unique<Shard>();
    owned->subgraphs = service->assignment_.subgraphs_of_shard[shard];
    service->shards_.push_back(std::move(owned));
  }
  service->epochs_ =
      std::make_unique<EpochCoordinator>(service->shards_.size());
  service->apply_pool_ = std::make_unique<ThreadPool>(ResolveApplyThreads(
      service->options_.apply_threads, service->shards_.size()));
  return service;
}

Status ShardedRoutingService::PrepareQuery(const KspRequest& request,
                                           RoutingOptions* merged,
                                           const KspSolver** solver) const {
  return PrepareRoutingQuery(registry_, options_.defaults, graph_, request,
                             merged, solver);
}

Result<KspResponse> ShardedRoutingService::Query(
    const KspRequest& request) const {
  RoutingOptions merged;
  const KspSolver* solver = nullptr;
  Status prepared = PrepareQuery(request, &merged, &solver);
  if (!prepared.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return prepared;
  }

  ScatterGatherProvider provider(*this);
  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.partials = &provider;  // DTLP-free backends ignore it
  input.source = request.source;
  input.target = request.target;
  input.options = merged;

  // Snapshot section: the global lock freezes the flat weights, the
  // skeleton, and the epoch; the shard locks taken inside the provider
  // freeze each shard's slice while it serves a partial request.
  std::shared_lock<EpochLock> lock(mu_);
  WallTimer timer;
  Result<KspQueryResult> solved = solver->Solve(input);
  if (!solved.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return solved.status();
  }
  KspResponse response;
  response.paths = std::move(solved.value().paths);
  response.stats.engine = solved.value().stats;
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = epochs_->global();
  response.k = merged.k;
  response.backend = merged.backend;
  size_t touched = provider.ShardsTouched();
  if (touched == 1) {
    single_shard_queries_.fetch_add(1, std::memory_order_relaxed);
  } else if (touched > 1) {
    cross_shard_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Result<TrafficBatchResult> ShardedRoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking any lock: a rejected batch must leave every
  // shard's snapshot untouched (mirrors RoutingService exactly).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }

  // Group updates by owning subgraph (every edge has exactly one owner).
  // Per-subgraph lists preserve the batch's relative order, so repeated
  // updates to one edge resolve identically to the unsharded service.
  const Partition& partition = dtlp_->partition();
  std::vector<std::vector<WeightUpdate>> per_subgraph(dtlp_->NumSubgraphs());
  std::vector<SubgraphId> touched;
  for (const WeightUpdate& update : updates) {
    SubgraphId sgid = partition.subgraph_of_edge[update.edge];
    if (sgid == kInvalidSubgraph) continue;
    if (per_subgraph[sgid].empty()) touched.push_back(sgid);
    per_subgraph[sgid].push_back(update);
  }
  std::vector<std::vector<SubgraphId>> touched_of_shard(shards_.size());
  for (SubgraphId sgid : touched) {
    touched_of_shard[assignment_.shard_of_subgraph[sgid]].push_back(sgid);
  }
  for (std::vector<SubgraphId>& list : touched_of_shard) {
    std::sort(list.begin(), list.end());
  }

  // Exclusive snapshot section: drain every query, then move all shards and
  // the master state to the next global epoch together.
  std::unique_lock<EpochLock> lock(mu_);
  const uint64_t epoch = epochs_->BeginAdvance();
  // Master: flat graph weights (the baselines' view of the snapshot).
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);

  // Shard fan-out: each shard applies its slice of Algorithm 2 under its
  // own writer lock and publishes the new epoch — the in-process analogue
  // of the paper's per-server update application.
  std::atomic<size_t> applied_total{0};
  std::vector<std::vector<SubgraphId>> refreshed_of_shard(shards_.size());
  apply_pool_->ParallelFor(
      shards_.size(), /*chunk=*/1, [&](unsigned, size_t si) {
        Shard& shard = *shards_[si];
        std::unique_lock<EpochLock> shard_lock(shard.mu);
        size_t applied = 0;
        for (SubgraphId sgid : touched_of_shard[si]) {
          dtlp_->ApplyUpdatesToSubgraph(sgid, per_subgraph[sgid]);
          applied += per_subgraph[sgid].size();
          if (dtlp_->RefreshSubgraph(sgid)) {
            refreshed_of_shard[si].push_back(sgid);
          }
        }
        applied_total.fetch_add(applied, std::memory_order_relaxed);
        epochs_->PublishShard(si, epoch);
      });

  // Master: refresh the skeleton from the shards whose bounds changed, in
  // ascending subgraph order for determinism, then commit the epoch.
  TrafficBatchResult result;
  std::vector<SubgraphId> refreshed;
  for (const std::vector<SubgraphId>& list : refreshed_of_shard) {
    refreshed.insert(refreshed.end(), list.begin(), list.end());
  }
  std::sort(refreshed.begin(), refreshed.end());
  for (SubgraphId sgid : refreshed) {
    dtlp_->PushSubgraphBoundsToSkeleton(sgid);
    result.dtlp.skeleton_pairs_refreshed += dtlp_->index(sgid).pairs().size();
  }
  epochs_->Commit(epoch);

  result.epoch = epoch;
  result.dtlp.updates_applied = applied_total.load(std::memory_order_relaxed);
  result.dtlp.subgraphs_touched = touched.size();
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  updates_applied_.fetch_add(updates.size(), std::memory_order_relaxed);
  return result;
}

ShardedServiceCounters ShardedRoutingService::counters() const {
  ShardedServiceCounters counters;
  counters.base.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  counters.base.queries_rejected =
      queries_rejected_.load(std::memory_order_relaxed);
  counters.base.batches_applied =
      batches_applied_.load(std::memory_order_relaxed);
  counters.base.updates_applied =
      updates_applied_.load(std::memory_order_relaxed);
  counters.single_shard_queries =
      single_shard_queries_.load(std::memory_order_relaxed);
  counters.cross_shard_queries =
      cross_shard_queries_.load(std::memory_order_relaxed);
  counters.direct_partial_requests =
      direct_partials_.load(std::memory_order_relaxed);
  counters.scattered_partial_requests =
      scattered_partials_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<ShardInfo> ShardedRoutingService::ShardInfos() const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (ShardId shard = 0; shard < shards_.size(); ++shard) {
    const Shard& s = *shards_[shard];
    ShardInfo info;
    info.shard = shard;
    info.subgraphs = s.subgraphs.size();
    info.vertices = assignment_.vertices_of_shard[shard];
    info.epoch = epochs_->shard(shard);
    info.partial_requests = s.partial_requests.load(std::memory_order_relaxed);
    info.yen_runs = s.yen_runs.load(std::memory_order_relaxed);
    infos.push_back(info);
  }
  return infos;
}

}  // namespace kspdg
