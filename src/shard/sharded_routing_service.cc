#include "shard/sharded_routing_service.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/strings.h"
#include "core/timer.h"
#include "ksp/path.h"
#include "kspdg/partial_provider.h"

namespace kspdg {

namespace {

/// Threads one ApplyTrafficBatch fan-out may use when the caller does not
/// say: one per shard, capped at the hardware thread count.
unsigned ResolveApplyThreads(unsigned requested, size_t num_shards) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<unsigned>(
      std::min<size_t>(num_shards, static_cast<size_t>(hw)));
}

uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

// Routes each boundary-pair partial request to the shard(s) owning the
// subgraphs that contain the pair. A pair owned entirely by one shard is
// served directly under that shard's reader lock; a pair spanning shards
// scatters to every owner and gathers the per-subgraph lists through
// MergeSubgraphPartials — the same merge LocalPartialProvider uses — so
// the gathered result is identical to the inline computation by
// construction. One provider instance serves one query at a time on one
// thread; a batch worker keeps its instance alive across queries so the
// per-shard caches stay warm.
//
// The cache is a memoisation of PartialsInSubgraph per (shard, x, y, depth):
// an entry is reused only when the requested depth matches exactly, or when
// the cached lists are complete (exhausted at a depth <= the request, so a
// fresh Yen run would return the very same lists). Either way the replay
// feeds MergeSubgraphPartials the identical inputs a fresh computation
// would, which keeps batch answers byte-identical to the unsharded
// sequential path — reusing *deeper* lists instead would not be safe, since
// InsertTopK's ordering under distance ties is sensitive to the extra
// entries. Each shard's slice of the cache is stamped with that shard's
// epoch and flushed when the shard publishes a new one.
class ShardedRoutingService::ShardPartialProvider : public PartialProvider {
 public:
  explicit ShardPartialProvider(const ShardedRoutingService& service)
      : service_(service),
        max_cached_pairs_(service.options_.defaults.partial_cache_pairs),
        caches_(service.shards_.size()),
        shard_touched_(service.shards_.size(), 0) {}

  /// Binds the multi-shard read pin this provider computes under. The pin
  /// must stay alive for every ComputePartials call until rebound.
  void BindPin(const EpochCoordinator::ReadPin* pin) { pin_ = pin; }

  /// Resets the per-query shard-touch tracking (the cache persists).
  void BeginQuery() {
    std::fill(shard_touched_.begin(), shard_touched_.end(), 0);
  }

  /// Distinct shards the current query's partial requests landed on.
  size_t ShardsTouched() const {
    size_t n = 0;
    for (char touched : shard_touched_) n += touched != 0;
    return n;
  }

  PartialResult ComputePartials(VertexId x, VertexId y,
                                size_t depth) override {
    const Partition& partition = service_.dtlp_->partition();
    // Group the owning subgraphs by shard. Boundary pairs live in at most a
    // handful of subgraphs, so linear scans beat any map.
    std::vector<std::pair<ShardId, std::vector<SubgraphId>>> groups;
    for (SubgraphId sgid : partition.SubgraphsContainingBoth(x, y)) {
      ShardId shard = service_.assignment_.shard_of_subgraph[sgid];
      auto it =
          std::find_if(groups.begin(), groups.end(),
                       [shard](const auto& g) { return g.first == shard; });
      if (it == groups.end()) {
        groups.push_back({shard, {sgid}});
      } else {
        it->second.push_back(sgid);
      }
    }
    // Scatter: every owning shard contributes its subgraphs' partial lists —
    // from its per-(shard, worker) cache when it has served this exact
    // request at this snapshot before, otherwise computed fresh under the
    // shard's reader lock (the in-process stand-in for shipping the request
    // to the shard's worker, with the shard's state frozen while it
    // computes).
    std::vector<SubgraphPartials> gathered;
    size_t fresh_runs = 0;
    const uint64_t key = PairKey(x, y);
    for (const auto& [shard_id, owned] : groups) {
      const Shard& shard = *service_.shards_[shard_id];
      shard_touched_[shard_id] = 1;
      ShardCache& cache = caches_[shard_id];
      // Flush against the shard's weights stamp, not the published epoch:
      // a traffic batch that never touched this shard's subgraphs leaves
      // its cached partials valid (and the other shards' slices are
      // independent either way). Stable under the pin — writers are
      // excluded by the global lock.
      const uint64_t weights_epoch =
          shard.weights_epoch.load(std::memory_order_acquire);
      if (cache.epoch != weights_epoch) {
        if (!cache.entries.empty()) {
          shard.cache_flushes.Increment();
          cache.entries.clear();
        }
        cache.epoch = weights_epoch;
      }
      if (const CacheEntry* hit = cache.Find(key, depth)) {
        shard.cache_hits.Increment();
        gathered.insert(gathered.end(), hit->lists.begin(), hit->lists.end());
        continue;
      }
      shard.partial_requests.Increment();
      shard.yen_runs.Increment(owned.size());
      fresh_runs += owned.size();
      CacheEntry entry;
      entry.depth = depth;
      {
        EpochReaderLock lock = pin_->LockShard(shard_id);
        for (SubgraphId sgid : owned) {
          const Subgraph& sg = partition.subgraphs[sgid];
          entry.lists.push_back(
              {sgid,
               LocalPartialProvider::PartialsInSubgraph(sg, x, y, depth)});
        }
      }
      entry.exhausted = true;
      for (const SubgraphPartials& list : entry.lists) {
        if (list.paths.size() >= depth) entry.exhausted = false;
      }
      gathered.insert(gathered.end(), entry.lists.begin(), entry.lists.end());
      // Bound the memoisation: between flushes a read-heavy workload could
      // otherwise accumulate path lists for every boundary pair it ever
      // touched. Past the cap (RoutingOptions::partial_cache_pairs), new
      // pairs are computed but not cached (the cache is an optimisation;
      // correctness never depends on a hit).
      if (max_cached_pairs_ != 0 &&
          (cache.entries.size() < max_cached_pairs_ ||
           cache.entries.count(key) != 0)) {
        cache.entries[key].push_back(std::move(entry));
      } else {
        shard.cache_skips.Increment();
      }
    }
    // Gather: the shared merge (see MergeSubgraphPartials) replays the
    // unsharded provider's ascending-subgraph order, so the result is
    // identical to the inline computation by construction.
    PartialResult result = MergeSubgraphPartials(std::move(gathered), depth);
    // Cached lists cost no Yen invocations; report only the fresh work.
    result.yen_runs = fresh_runs;
    if (groups.size() == 1) {
      service_.direct_partials_.Increment();
    } else if (groups.size() > 1) {
      service_.scattered_partials_.Increment();
    }
    return result;
  }

 private:
  struct CacheEntry {
    size_t depth = 0;
    /// Every list came back shorter than `depth`: the lists are complete,
    /// so they equal a fresh computation at ANY depth >= this one.
    bool exhausted = false;
    std::vector<SubgraphPartials> lists;
  };

  struct ShardCache {
    /// Weights stamp (Shard::weights_epoch) the entries were computed at;
    /// a change flushes them.
    uint64_t epoch = 0;
    /// (x, y) -> entries at the distinct depths requested so far (the
    /// KSP-DG depth schedule is k, 2k, 4k, ... — a handful per pair).
    std::unordered_map<uint64_t, std::vector<CacheEntry>> entries;

    const CacheEntry* Find(uint64_t key, size_t depth) const {
      auto it = entries.find(key);
      if (it == entries.end()) return nullptr;
      for (const CacheEntry& entry : it->second) {
        if (entry.depth == depth ||
            (entry.exhausted && entry.depth <= depth)) {
          return &entry;
        }
      }
      return nullptr;
    }
  };

  const ShardedRoutingService& service_;
  /// RoutingOptions::partial_cache_pairs, frozen at provider construction.
  const size_t max_cached_pairs_;
  const EpochCoordinator::ReadPin* pin_ = nullptr;
  std::vector<ShardCache> caches_;
  std::vector<char> shard_touched_;
};

ShardedRoutingService::BatchWorker::BatchWorker() = default;
ShardedRoutingService::BatchWorker::BatchWorker(BatchWorker&&) noexcept =
    default;
ShardedRoutingService::BatchWorker& ShardedRoutingService::BatchWorker::
operator=(BatchWorker&&) noexcept = default;
ShardedRoutingService::BatchWorker::~BatchWorker() = default;

Result<std::unique_ptr<ShardedRoutingService>> ShardedRoutingService::Create(
    Graph graph, ShardedRoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Heap-allocate before building the DTLP: the index keeps a pointer to
  // the service-owned graph.
  std::unique_ptr<ShardedRoutingService> service(
      new ShardedRoutingService(std::move(graph), std::move(options)));
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  if (service->options_.enable_cands) {
    Result<std::unique_ptr<CandsIndex>> cands =
        BuildCandsIndex(service->graph_, service->options_.dtlp);
    if (!cands.ok()) return cands.status();
    service->cands_ = std::move(cands).value();
  }
  Result<ShardAssignment> assignment = AssignShards(
      service->dtlp_->partition(), service->options_.num_shards);
  if (!assignment.ok()) return assignment.status();
  service->assignment_ = std::move(assignment).value();
  service->registry_ = SolverRegistry::Default();
  service->shards_.reserve(service->assignment_.num_shards);
  for (ShardId shard = 0; shard < service->assignment_.num_shards; ++shard) {
    auto owned = std::make_unique<Shard>();
    owned->subgraphs = service->assignment_.subgraphs_of_shard[shard];
    // Per-shard partial traffic, labelled so one scrape shows the split.
    const MetricLabels labels = {{"shard", std::to_string(shard)}};
    owned->partial_requests =
        service->metrics_.GetCounter("partial_requests_total", labels);
    owned->yen_runs = service->metrics_.GetCounter("yen_runs_total", labels);
    owned->cache_hits =
        service->metrics_.GetCounter("partial_cache_hits_total", labels);
    owned->cache_skips =
        service->metrics_.GetCounter("partial_cache_skips_total", labels);
    owned->cache_flushes =
        service->metrics_.GetCounter("partial_cache_flushes_total", labels);
    service->shards_.push_back(std::move(owned));
  }
  service->epochs_ =
      std::make_unique<EpochCoordinator>(service->shards_.size());
  service->apply_pool_ = std::make_unique<ThreadPool>(ResolveApplyThreads(
      service->options_.apply_threads, service->shards_.size()));
  service->batch_pool_ = std::make_unique<ThreadPool>(
      DefaultBatchThreads(service->options_.batch_threads));
  service->batch_workers_.reserve(service->batch_pool_->num_threads());
  for (unsigned w = 0; w < service->batch_pool_->num_threads(); ++w) {
    BatchWorker worker;
    worker.provider = std::make_unique<ShardPartialProvider>(*service);
    service->batch_workers_.push_back(std::move(worker));
  }
  // Wire the remaining instrumentation before any traffic: the hot path
  // only ever touches pre-resolved handles.
  service->svc_metrics_.Init(service->metrics_, service->registry_.Names());
  service->single_shard_queries_ =
      service->metrics_.GetCounter("single_shard_queries_total");
  service->cross_shard_queries_ =
      service->metrics_.GetCounter("cross_shard_queries_total");
  service->direct_partials_ =
      service->metrics_.GetCounter("direct_partial_requests_total");
  service->scattered_partials_ =
      service->metrics_.GetCounter("scattered_partial_requests_total");
  service->epochs_->global_lock().InstrumentWriter(
      service->metrics_.GetCounter("epoch_writer_drains_total"),
      service->metrics_.GetHistogram("epoch_writer_wait_micros", {},
                                     LatencyBucketsMicros()));
  service->metrics_.AddGaugeCallback(
      "epoch", {}, [epochs = service->epochs_.get()] {
        return static_cast<int64_t>(epochs->global());
      });
  for (size_t shard = 0; shard < service->shards_.size(); ++shard) {
    service->metrics_.AddGaugeCallback(
        "shard_epoch", {{"shard", std::to_string(shard)}},
        [epochs = service->epochs_.get(), shard] {
          return static_cast<int64_t>(epochs->shard(shard));
        });
  }

  SubmissionQueueMetrics queue_metrics;
  queue_metrics.enqueue_blocked_total =
      service->metrics_.GetCounter("submission_queue_enqueue_blocked_total");
  queue_metrics.enqueue_block_micros = service->metrics_.GetHistogram(
      "submission_queue_enqueue_block_micros", {}, LatencyBucketsMicros());
  queue_metrics.shed_deadline_total =
      service->metrics_.GetCounter("submission_queue_shed_deadline_total");
  queue_metrics.shed_quota_total =
      service->metrics_.GetCounter("submission_queue_shed_quota_total");
  AdmissionOptions admission;
  admission.per_tenant_quota = service->options_.per_tenant_quota;
  service->submit_queue_ = std::make_unique<SubmissionQueue>(
      service->options_.submit_queue_capacity, /*num_workers=*/1,
      std::move(queue_metrics), admission);
  service->metrics_.AddGaugeCallback(
      "submission_queue_depth", {}, [queue = service->submit_queue_.get()] {
        return static_cast<int64_t>(queue->pending());
      });
  for (RequestPriority priority :
       {RequestPriority::kInteractive, RequestPriority::kNormal,
        RequestPriority::kBatch}) {
    service->metrics_.AddGaugeCallback(
        "submission_queue_depth_by_priority",
        {{"priority", PriorityName(priority)}},
        [queue = service->submit_queue_.get(), priority] {
          return static_cast<int64_t>(queue->pending(priority));
        });
  }
  service->metrics_.AddCounterCallback(
      "submission_queue_submitted_total", {},
      [queue = service->submit_queue_.get()] { return queue->submitted(); });
  service->metrics_.AddCounterCallback(
      "submission_queue_completed_total", {},
      [queue = service->submit_queue_.get()] { return queue->completed(); });
  return service;
}

ShardedRoutingService::~ShardedRoutingService() = default;

Status ShardedRoutingService::RegisterSolver(std::unique_ptr<KspSolver> solver) {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "RegisterSolver must run before the first query is served");
  }
  const std::string name(solver->name());
  KSPDG_RETURN_NOT_OK(registry_.Register(std::move(solver)));
  svc_metrics_.AddBackend(metrics_, name);
  return Status::OK();
}

Status ShardedRoutingService::PrepareQuery(const RouteRequest& request,
                                           PreparedRoute* prepared) const {
  return PrepareRoutingQuery(registry_, options_.defaults, graph_, request,
                             prepared);
}

Result<RouteResponse> ShardedRoutingService::Query(
    const RouteRequest& request) const {
  MarkServing();
  PreparedRoute prepared;
  Status status = PrepareQuery(request, &prepared);
  if (!status.ok()) {
    svc_metrics_.RecordQueryFailure(status);
    return status;
  }

  ShardPartialProvider provider(*this);
  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.partials = &provider;  // DTLP-free backends ignore it
  input.cands = cands_.get();
  input.source = request.source;
  input.target = request.target;
  input.options = std::move(prepared.merged);

  // Snapshot section: the read pin freezes the flat weights, the skeleton,
  // and every shard's epoch; the shard locks taken inside the provider
  // freeze each shard's slice while it serves a partial request. Single
  // queries and batches thereby share one locking protocol — the
  // coordinator's.
  EpochCoordinator::ReadPin pin(*epochs_);
  provider.BindPin(&pin);
  WallTimer timer;
  Result<KspQueryResult> solved = prepared.solver->Solve(input);
  if (!solved.ok()) {
    svc_metrics_.RecordQueryFailure(solved.status());
    return solved.status();
  }
  RouteResponse response =
      FinishRouteResponse(prepared.kind, prepared.requested_k,
                          std::move(input.options), graph_.directed(),
                          std::move(solved).value());
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = pin.epoch();
  size_t touched = provider.ShardsTouched();
  if (touched == 1) {
    single_shard_queries_.Increment();
  } else if (touched > 1) {
    cross_shard_queries_.Increment();
  }
  svc_metrics_.RecordQuery(prepared.kind, response.backend,
                           response.stats.solve_micros);
  return response;
}

Result<RouteBatchResponse> ShardedRoutingService::QueryBatch(
    std::span<const RouteRequest> requests) const {
  MarkServing();
  RouteBatchResponse batch;
  batch.items.resize(requests.size());

  // Phase 1 (outside any lock): validate every request and resolve its
  // backend. Failures become per-item statuses, never a batch failure.
  struct Prepared {
    size_t index = 0;
    PreparedRoute route;
  };
  std::vector<Prepared> work;
  work.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Prepared prepared;
    prepared.index = i;
    Status status = PrepareQuery(requests[i], &prepared.route);
    if (!status.ok()) {
      batch.items[i].status = std::move(status);
      continue;
    }
    work.push_back(std::move(prepared));
  }

  // Phase 2: group by backend so the contiguous chunks a worker claims
  // mostly share a solver and its scratch stays warm across them.
  std::stable_sort(work.begin(), work.end(),
                   [](const Prepared& a, const Prepared& b) {
                     return a.route.solver->name() < b.route.solver->name();
                   });

  // Phase 3 (snapshot section): ONE read pin covers every solve, so the
  // whole batch is answered at a single coherent multi-shard snapshot — a
  // concurrent ApplyTrafficBatch waits on the global lock and can never
  // tear the batch. batch_mu_ keeps the persistent worker state
  // single-batch-at-a-time, and is taken BEFORE the pin so queued batches
  // wait outside the snapshot section — a waiting traffic writer then
  // drains at most one in-flight batch, not the whole queue.
  MutexLock batch_guard(batch_mu_);
  {
    EpochCoordinator::ReadPin pin(*epochs_);
    WallTimer timer;
    const uint64_t epoch = pin.epoch();
    batch.epoch = epoch;
    if (arena_epoch_ != epoch) {
      // Weights moved since the arenas were last warm: weight-derived
      // solver caches must not survive into this snapshot. (The per-shard
      // partial caches flush themselves per shard, inside the provider.)
      for (BatchWorker& worker : batch_workers_) worker.arena.OnSnapshotChange();
      arena_epoch_ = epoch;
    }
    for (BatchWorker& worker : batch_workers_) worker.provider->BindPin(&pin);
    // The pool threads do not hold batch_mu_ — they are handed disjoint
    // worker slots while this thread keeps the whole batch section locked,
    // which the analysis cannot see through the lambda. The raw pointer is
    // the deliberate escape hatch.
    BatchWorker* const pool_workers = batch_workers_.data();
    // Chunks large enough to amortise claiming, small enough to balance the
    // (highly skewed) per-query solve costs across workers.
    size_t chunk = std::max<size_t>(
        1, work.size() / (4 * size_t{batch_pool_->num_threads()}));
    batch_pool_->ParallelFor(
        work.size(), chunk, [&](unsigned worker_id, size_t j) {
          Prepared& p = work[j];
          BatchWorker& worker = pool_workers[worker_id];
          SolverInput input;
          input.graph = &graph_;
          input.dtlp = dtlp_.get();
          input.partials = worker.provider.get();
          input.cands = cands_.get();
          input.source = requests[p.index].source;
          input.target = requests[p.index].target;
          // Each item runs exactly once, so its merged options move
          // through the input and into the response.
          input.options = std::move(p.route.merged);
          worker.provider->BeginQuery();
          // Backends that route refine work through the provider get their
          // cross-query reuse from the per-shard caches (which flush per
          // shard); handing them a merged scratch cache on top would hide
          // requests from the shard layer. Everyone else pools scratch
          // exactly as in the unsharded batch path.
          SolverScratch* scratch = p.route.solver->UsesPartialProvider()
                                       ? nullptr
                                       : worker.arena.Get(p.route.solver);
          RouteBatchItem& item = batch.items[p.index];
          WallTimer solve_timer;
          Result<KspQueryResult> solved =
              p.route.solver->Solve(input, scratch);
          if (!solved.ok()) {
            item.status = solved.status();
            return;
          }
          item.response = FinishRouteResponse(
              p.route.kind, p.route.requested_k, std::move(input.options),
              graph_.directed(), std::move(solved).value());
          item.response.stats.solve_micros = solve_timer.ElapsedMicros();
          item.response.epoch = epoch;
          size_t touched = worker.provider->ShardsTouched();
          if (touched == 1) {
            single_shard_queries_.Increment();
          } else if (touched > 1) {
            cross_shard_queries_.Increment();
          }
          svc_metrics_.RecordQuery(p.route.kind, item.response.backend,
                                   item.response.stats.solve_micros);
        });
    // The pin dies with this scope; unbind so a stale pointer can never be
    // dereferenced by a later mis-sequenced call.
    for (BatchWorker& worker : batch_workers_) worker.provider->BindPin(nullptr);
    batch.batch_micros = timer.ElapsedMicros();
  }

  // Accepted items were recorded per solve (kind/backend/latency); the
  // admission classification and the rejection/shed totals settle here.
  svc_metrics_.FinalizeBatchAdmission(batch);
  return batch;
}

BatchTicket ShardedRoutingService::SubmitBatch(
    std::vector<RouteRequest> requests, BatchCallback callback) const {
  MarkServing();
  return BatchTicket::SubmitTo(*submit_queue_, *this, std::move(requests),
                               std::move(callback),
                               svc_metrics_.admission_view());
}

Result<TrafficBatchResult> ShardedRoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking any lock: a rejected batch must leave every
  // shard's snapshot untouched (mirrors RoutingService exactly).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }

  // Group updates by owning subgraph (every edge has exactly one owner).
  // Per-subgraph lists preserve the batch's relative order, so repeated
  // updates to one edge resolve identically to the unsharded service.
  const Partition& partition = dtlp_->partition();
  std::vector<std::vector<WeightUpdate>> per_subgraph(dtlp_->NumSubgraphs());
  std::vector<SubgraphId> touched;
  for (const WeightUpdate& update : updates) {
    SubgraphId sgid = partition.subgraph_of_edge[update.edge];
    if (sgid == kInvalidSubgraph) continue;
    if (per_subgraph[sgid].empty()) touched.push_back(sgid);
    per_subgraph[sgid].push_back(update);
  }
  std::vector<std::vector<SubgraphId>> touched_of_shard(shards_.size());
  for (SubgraphId sgid : touched) {
    touched_of_shard[assignment_.shard_of_subgraph[sgid]].push_back(sgid);
  }
  for (std::vector<SubgraphId>& list : touched_of_shard) {
    std::sort(list.begin(), list.end());
  }

  // Exclusive snapshot section: drain every read pin, then move all shards
  // and the master state to the next global epoch together — the write half
  // of the coordinator's locking protocol.
  EpochWriterLock lock(epochs_->global_lock());
  const uint64_t epoch = epochs_->BeginAdvance();
  // Master: flat graph weights (the baselines' view of the snapshot).
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);

  // Shard fan-out: each shard applies its slice of Algorithm 2 under its
  // own writer lock and publishes the new epoch — the in-process analogue
  // of the paper's per-server update application.
  std::atomic<size_t> applied_total{0};
  std::vector<std::vector<SubgraphId>> refreshed_of_shard(shards_.size());
  apply_pool_->ParallelFor(
      shards_.size(), /*chunk=*/1, [&](unsigned, size_t si) {
        EpochWriterLock shard_lock(epochs_->shard_lock(si));
        size_t applied = 0;
        for (SubgraphId sgid : touched_of_shard[si]) {
          dtlp_->ApplyUpdatesToSubgraph(sgid, per_subgraph[sgid]);
          applied += per_subgraph[sgid].size();
          if (dtlp_->RefreshSubgraph(sgid)) {
            refreshed_of_shard[si].push_back(sgid);
          }
        }
        if (!touched_of_shard[si].empty()) {
          // The slice changed: invalidate this shard's cached partials.
          // Untouched shards keep their stamp, so their caches stay warm
          // across this batch.
          shards_[si]->weights_epoch.store(epoch, std::memory_order_release);
        }
        applied_total.fetch_add(applied, std::memory_order_relaxed);
        epochs_->PublishShard(si, epoch);
      });

  // Master: refresh the skeleton from the shards whose bounds changed, in
  // ascending subgraph order for determinism, then commit the epoch.
  TrafficBatchResult result;
  std::vector<SubgraphId> refreshed;
  for (const std::vector<SubgraphId>& list : refreshed_of_shard) {
    refreshed.insert(refreshed.end(), list.begin(), list.end());
  }
  std::sort(refreshed.begin(), refreshed.end());
  for (SubgraphId sgid : refreshed) {
    dtlp_->PushSubgraphBoundsToSkeleton(sgid);
    result.dtlp.skeleton_pairs_refreshed += dtlp_->index(sgid).pairs().size();
  }
  if (cands_ != nullptr) {
    // CANDS maintenance runs on the coordinator (the index is master-owned
    // like the flat weights), still inside the exclusive window so sharded
    // and unsharded services stay answer-identical batch for batch.
    WallTimer cands_timer;
    result.cands = cands_->ApplyUpdates(updates);
    result.cands_micros = cands_timer.ElapsedMicros();
  }
  epochs_->Commit(epoch);

  result.epoch = epoch;
  result.dtlp.updates_applied = applied_total.load(std::memory_order_relaxed);
  result.dtlp.subgraphs_touched = touched.size();
  svc_metrics_.RecordTrafficBatch(updates.size());
  return result;
}

ShardedServiceCounters ShardedRoutingService::counters() const {
  ShardedServiceCounters counters;
  counters.base.queries_ok = svc_metrics_.queries_ok.value();
  counters.base.queries_rejected = svc_metrics_.queries_rejected.value();
  counters.base.batches_applied = svc_metrics_.traffic_batches.value();
  counters.base.updates_applied = svc_metrics_.weight_updates.value();
  counters.single_shard_queries = single_shard_queries_.value();
  counters.cross_shard_queries = cross_shard_queries_.value();
  counters.direct_partial_requests = direct_partials_.value();
  counters.scattered_partial_requests = scattered_partials_.value();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    counters.partial_cache_hits += shard->cache_hits.value();
    counters.partial_cache_skips += shard->cache_skips.value();
    counters.partial_cache_flushes += shard->cache_flushes.value();
  }
  return counters;
}

std::vector<ShardInfo> ShardedRoutingService::ShardInfos() const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (ShardId shard = 0; shard < shards_.size(); ++shard) {
    const Shard& s = *shards_[shard];
    ShardInfo info;
    info.shard = shard;
    info.subgraphs = s.subgraphs.size();
    info.vertices = assignment_.vertices_of_shard[shard];
    info.epoch = epochs_->shard(shard);
    info.partial_requests = s.partial_requests.value();
    info.yen_runs = s.yen_runs.value();
    info.partial_cache_hits = s.cache_hits.value();
    infos.push_back(info);
  }
  return infos;
}

}  // namespace kspdg
