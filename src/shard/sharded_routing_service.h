// ShardedRoutingService: the RoutingService contract served by N
// partition-aligned shards — the in-process prototype of the paper's
// distributed deployment (one JVM worker per subgraph set in its Storm
// topology, §4).
//
// The subgraphs of the DTLP partition are distributed over the shards
// (partition/shard_assignment.h); each shard owns its slice of mutable DTLP
// state — the subgraph weight copies and level-1 EP-indexes. The
// EpochCoordinator (core/epoch_coordinator.h) owns the complete locking
// protocol: the global snapshot lock, one lock per shard, and the epoch
// advance; every read path pins the multi-shard snapshot through one
// EpochCoordinator::ReadPin.
//
//   Query / QueryBatch
//                   ReadPin (global shared lock) freezes every shard at the
//                   committed epoch; KSP-DG boundary-pair partials are
//                   routed to the owning shard (single-shard requests go
//                   directly to that shard, cross-shard requests
//                   scatter/gather across all owners) through the
//                   PartialProvider seam — the future RPC boundary.
//                   QueryBatch executes on the service pool; each worker
//                   keeps per-(shard, worker) partial caches so a shard's
//                   slice of refine work is reused across the batch and
//                   flushed when that shard's epoch bumps.
//   SubmitBatch     async QueryBatch: bounded submission queue + ticket,
//                   so callers overlap request production with solving.
//   ApplyTrafficBatch
//                   global exclusive lock (drains every pin), then the
//                   batch fans out per shard in parallel: each shard takes
//                   its own writer lock, applies its slice of Algorithm 2,
//                   and publishes the new epoch to the EpochCoordinator; the
//                   coordinator refreshes the skeleton and commits ONE
//                   global epoch, so responses still name a single
//                   consistent snapshot.
//
// The shard boundary here is the future process boundary: replacing the
// in-process scatter/gather with RPC (and the per-shard lock with a
// per-worker one) yields the distributed-workers deployment without
// touching the algorithm layers.
#ifndef KSPDG_SHARD_SHARDED_ROUTING_SERVICE_H_
#define KSPDG_SHARD_SHARDED_ROUTING_SERVICE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "api/batch_ticket.h"
#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "api/routing_service.h"
#include "api/routing_service_interface.h"
#include "api/service_metrics.h"
#include "core/epoch_coordinator.h"
#include "core/epoch_lock.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "partition/shard_assignment.h"

namespace kspdg {

struct ShardedRoutingServiceOptions {
  /// Service-wide defaults; any field can be overridden per request.
  RoutingOptions defaults;
  /// DTLP construction knobs (partition size z, level-1 ξ, build threads).
  DtlpOptions dtlp;
  /// Build and maintain the CANDS baseline index (see
  /// RoutingServiceOptions::enable_cands — identical contract; the index is
  /// coordinator-owned, not sharded, like the flat weights).
  bool enable_cands = true;
  /// Number of shards the subgraph set is distributed over (>= 1; shards
  /// beyond the subgraph count own nothing). 1 degenerates to the unsharded
  /// topology while keeping the scatter/gather code path live.
  uint32_t num_shards = 2;
  /// Threads fanning one ApplyTrafficBatch across shards (0 = one per
  /// shard, capped at the hardware thread count; 1 = sequential fan-out).
  unsigned apply_threads = 0;
  /// Threads answering one QueryBatch (0 = one per hardware thread, capped
  /// at 16; 1 = batches execute inline on the caller).
  unsigned batch_threads = 0;
  /// Batches the async SubmitBatch queue buffers before admission engages:
  /// no-envelope submits block (backpressure), QoS submits shed or displace
  /// queued batch-class work (0 is treated as 1).
  size_t submit_queue_capacity = 8;
  /// Max pending SubmitBatch envelopes one tenant_id may hold at once;
  /// over-quota QoS submits are shed with kResourceExhausted instead of
  /// blocking (0 = unlimited, tenants with an empty id are unmetered).
  size_t per_tenant_quota = 0;
};

/// Point-in-time view of one shard, for monitoring and the bench "shard"
/// phase. Counter snapshots, not transactional.
struct ShardInfo {
  ShardId shard = kInvalidShard;
  /// Subgraphs / total subgraph vertices this shard owns (static).
  size_t subgraphs = 0;
  size_t vertices = 0;
  /// Epoch this shard last published (== the global epoch between batches).
  uint64_t epoch = 0;
  /// Boundary-pair partial requests this shard computed fresh.
  uint64_t partial_requests = 0;
  /// Per-subgraph Yen invocations performed serving those requests.
  uint64_t yen_runs = 0;
  /// Partial requests served from a per-(shard, worker) cache instead of
  /// fresh Yen runs (batch path only; single queries use cold providers).
  uint64_t partial_cache_hits = 0;
};

/// Monitoring counters of a sharded service (snapshot, not transactional).
/// Query/update totals match ServiceCounters; the shard-specific counters
/// split the KSP-DG partial traffic by how it was routed.
struct ShardedServiceCounters {
  ServiceCounters base;
  /// KSP-DG queries whose partial requests were all served by one shard
  /// (routed directly to the owning shard).
  uint64_t single_shard_queries = 0;
  /// KSP-DG queries whose partials were gathered from >= 2 shards.
  uint64_t cross_shard_queries = 0;
  /// Boundary-pair requests owned entirely by one shard (direct dispatch).
  uint64_t direct_partial_requests = 0;
  /// Boundary-pair requests spanning shards (scatter/gather dispatch).
  uint64_t scattered_partial_requests = 0;
  /// Per-shard partial-list computations avoided by the per-(shard, worker)
  /// batch caches (summed over shards).
  uint64_t partial_cache_hits = 0;
  /// Fresh computations NOT memoised because the cache already held
  /// RoutingOptions::partial_cache_pairs distinct pairs (or caching is
  /// disabled with a cap of 0).
  uint64_t partial_cache_skips = 0;
  /// Times a non-empty per-(shard, worker) cache was dropped because its
  /// shard's weights moved to a new epoch.
  uint64_t partial_cache_flushes = 0;
};

class ShardedRoutingService : public RoutingServiceInterface {
 public:
  /// Takes ownership of `graph`, builds the DTLP (Algorithm 1), and
  /// distributes its subgraphs over `options.num_shards` shards. Fails if
  /// the defaults are invalid, the partitioner rejects the graph, or
  /// num_shards == 0.
  static Result<std::unique_ptr<ShardedRoutingService>> Create(
      Graph graph, ShardedRoutingServiceOptions options = {});

  ShardedRoutingService(const ShardedRoutingService&) = delete;
  ShardedRoutingService& operator=(const ShardedRoutingService&) = delete;

  /// Drains the async submission queue (accepted batches complete) before
  /// tearing anything down.
  ~ShardedRoutingService() override;

  /// Answers q(source, target) — any QueryKind — on the current global
  /// snapshot. Identical results to RoutingService::Query over the same
  /// graph and weights (the sharding is invisible in the answer).
  /// Thread-safe; runs concurrently with other queries and serialises
  /// against ApplyTrafficBatch.
  Result<RouteResponse> Query(const RouteRequest& request) const override;

  /// Answers a whole batch of queries on ONE multi-shard snapshot: requests
  /// are validated up front, the coordinator's read pin is taken once, and
  /// the valid requests are grouped by backend and executed on the service
  /// pool. Each worker keeps a persistent arena of solver scratch plus
  /// per-(shard, worker) partial caches, so KSP-DG refine work within one
  /// shard's slice is computed once per batch neighbourhood and flushed
  /// when that shard's epoch bumps. Answers are byte-identical to issuing
  /// the requests sequentially against an unsharded service. Invalid
  /// requests receive per-item statuses without failing the batch.
  /// Thread-safe.
  Result<RouteBatchResponse> QueryBatch(
      std::span<const RouteRequest> requests) const override;

  /// Asynchronous QueryBatch: enqueues the batch on the service's bounded
  /// submission queue and returns a ticket immediately (see
  /// RoutingService::SubmitBatch — identical contract).
  [[nodiscard]] BatchTicket SubmitBatch(std::vector<RouteRequest> requests,
                          BatchCallback callback = nullptr) const override;

  /// Applies one batch of weight updates atomically across every shard: the
  /// flat weights, each shard's subgraph copies (fanned out in parallel,
  /// one writer lock per shard), and the skeleton move to the next global
  /// epoch together. Validated up front and rejected as a whole on any bad
  /// entry. Thread-safe.
  Result<TrafficBatchResult> ApplyTrafficBatch(
      std::span<const WeightUpdate> updates) override;

  /// Adds a custom backend. Must be called before serving traffic — the
  /// registry reads on the query path take no lock, so registration was
  /// never safe against in-flight queries. Once the first
  /// Query/QueryBatch/SubmitBatch has been accepted the registry is frozen
  /// and registration fails with kFailedPrecondition. (Best-effort
  /// enforcement of that lifecycle: it rejects any registration that
  /// happens-after an observed query; truly concurrent first-query vs
  /// registration remains the caller's setup bug to avoid.)
  Status RegisterSolver(std::unique_ptr<KspSolver> solver);

  /// Committed global epoch (0 until the first batch). All shards sit at
  /// this epoch whenever no ApplyTrafficBatch is in flight.
  uint64_t CurrentEpoch() const override { return epochs_->global(); }

  /// Registered backend names, sorted.
  std::vector<std::string> BackendNames() const override {
    return registry_.Names();
  }

  /// Consistent scrape of the service's registry: query totals by kind and
  /// backend, per-shard partial-cache traffic, routing split, epoch gauges.
  /// Never blocks queries or updates.
  MetricsSnapshot Metrics() const override { return metrics_.Snapshot(); }

  ShardedServiceCounters counters() const;

  /// Per-shard ownership and traffic snapshot, indexed by ShardId.
  std::vector<ShardInfo> ShardInfos() const;

  uint32_t num_shards() const { return assignment_.num_shards; }
  const ShardAssignment& assignment() const { return assignment_; }

  /// Read-only views for tooling; all writes must go through
  /// ApplyTrafficBatch.
  const Graph& graph() const { return graph_; }
  const Dtlp& dtlp() const { return *dtlp_; }
  /// nullptr when created with enable_cands = false.
  const CandsIndex* cands() const { return cands_.get(); }
  const RoutingOptions& defaults() const { return options_.defaults; }

 private:
  /// One shard: a slice of subgraph ids plus the traffic counters for the
  /// DTLP state they denote. The subgraph/index storage itself stays inside
  /// the shared Dtlp (per-subgraph operations are thread-safe across
  /// distinct subgraphs); the shard's lock — owned by the EpochCoordinator —
  /// serialises readers of this slice against its apply fan-out worker.
  struct Shard {
    std::vector<SubgraphId> subgraphs;
    /// Epoch at which this shard's slice (subgraph weight copies) last
    /// actually changed — NOT the published epoch, which advances on every
    /// traffic batch. Cached partials derive only from the slice, so the
    /// per-(shard, worker) caches flush against this stamp: a batch that
    /// never touched this shard leaves its cached partials warm and valid.
    std::atomic<uint64_t> weights_epoch{0};
    /// Registry handles labelled {shard="<id>"}, wired at Create — the
    /// single source of truth behind ShardInfo and the counters() view.
    Counter partial_requests;
    Counter yen_runs;
    Counter cache_hits;
    Counter cache_skips;
    Counter cache_flushes;
  };

  class ShardPartialProvider;

  /// Persistent state of one batch-pool worker: solver scratch (pooled Yen
  /// ban buffers etc.) plus the partial provider whose per-shard caches
  /// implement the per-(shard, worker) reuse contract. Guarded by
  /// batch_mu_.
  struct BatchWorker {
    SolverScratchArena arena;
    std::unique_ptr<ShardPartialProvider> provider;

    // Out of line: ShardPartialProvider is incomplete here.
    BatchWorker();
    BatchWorker(BatchWorker&&) noexcept;
    BatchWorker& operator=(BatchWorker&&) noexcept;
    ~BatchWorker();
  };

  ShardedRoutingService(Graph graph, ShardedRoutingServiceOptions options)
      : graph_(std::move(graph)), options_(std::move(options)) {}

  /// Delegates to PrepareRoutingQuery — the same preparation RoutingService
  /// uses, so both services reject the same requests with the same codes.
  Status PrepareQuery(const RouteRequest& request,
                      PreparedRoute* prepared) const;

  /// Marks the registry frozen. Only the first accepted query writes the
  /// flag, so the hot path stays read-only afterwards.
  void MarkServing() const {
    if (!serving_.load(std::memory_order_relaxed)) {
      serving_.store(true, std::memory_order_release);
    }
  }

  Graph graph_;
  ShardedRoutingServiceOptions options_;
  /// Owns every metric cell the members below hold handles into. Declared
  /// before them so it is destroyed LAST — in particular after
  /// submit_queue_, whose destructor still drains batches that bump
  /// counters.
  MetricsRegistry metrics_;
  std::unique_ptr<Dtlp> dtlp_;
  /// Coordinator-owned CANDS baseline index (see RoutingService::cands_);
  /// maintained under the global exclusive lock in ApplyTrafficBatch.
  std::unique_ptr<CandsIndex> cands_;
  SolverRegistry registry_;
  /// Set by the first served query; freezes the registry (see
  /// RegisterSolver).
  mutable std::atomic<bool> serving_{false};
  ShardAssignment assignment_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Owns the global + per-shard locks and the epoch advance protocol; all
  /// read paths pin the snapshot through EpochCoordinator::ReadPin.
  std::unique_ptr<EpochCoordinator> epochs_;
  /// Executes the per-shard ApplyTrafficBatch fan-out; owned so traffic
  /// batches (the streaming hot path) reuse warm threads instead of paying
  /// thread creation inside the exclusive-lock window.
  std::unique_ptr<ThreadPool> apply_pool_;
  /// Executes QueryBatch work items (separate from apply_pool_: one runs
  /// under the global shared lock, the other under the exclusive lock).
  std::unique_ptr<ThreadPool> batch_pool_;

  /// Serialises the parallel section of concurrent QueryBatch calls and
  /// guards the persistent worker state below (the pool would serialise
  /// them anyway). Taken BEFORE the read pin so queued batches wait outside
  /// the snapshot section.
  mutable Mutex batch_mu_{"ShardedRoutingService::batch_mu_"};
  mutable std::vector<BatchWorker> batch_workers_ GUARDED_BY(batch_mu_);
  /// Global epoch the worker arenas were last used at; a mismatch triggers
  /// SolverScratch::OnSnapshotChange() before the batch runs. The per-shard
  /// partial caches flush themselves per shard, against that shard's epoch.
  mutable uint64_t arena_epoch_ GUARDED_BY(batch_mu_) = 0;

  /// Query/update handles into metrics_ (shared bundle; the counters()
  /// view reads these).
  ServiceMetrics svc_metrics_;
  Counter single_shard_queries_;
  Counter cross_shard_queries_;
  Counter direct_partials_;
  Counter scattered_partials_;

  /// Async SubmitBatch queue. Declared last so it is destroyed FIRST:
  /// destruction drains the accepted batches, which still run QueryBatch
  /// against the members above.
  std::unique_ptr<SubmissionQueue> submit_queue_;
};

}  // namespace kspdg

#endif  // KSPDG_SHARD_SHARDED_ROUTING_SERVICE_H_
