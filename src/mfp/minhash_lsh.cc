#include "mfp/minhash_lsh.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/rng.h"

namespace kspdg {

namespace {

/// Disjoint-set for merging columns that collide in some band.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<std::vector<uint64_t>> ComputeMinHashSignatures(
    const std::vector<std::vector<uint32_t>>& column_sets,
    const LshOptions& options) {
  // Derive per-function salts deterministically from the seed.
  std::vector<uint64_t> salts(options.num_hashes);
  uint64_t sm = options.seed;
  for (uint64_t& salt : salts) salt = SplitMix64(sm);

  std::vector<std::vector<uint64_t>> signatures(column_sets.size());
  for (size_t c = 0; c < column_sets.size(); ++c) {
    std::vector<uint64_t>& sig = signatures[c];
    sig.assign(options.num_hashes, ~uint64_t{0});
    for (uint32_t row : column_sets[c]) {
      for (uint32_t i = 0; i < options.num_hashes; ++i) {
        uint64_t h = Mix64(salts[i] ^ (uint64_t{row} + 1));
        if (h < sig[i]) sig[i] = h;
      }
    }
  }
  return signatures;
}

std::vector<uint32_t> LshGroupColumns(
    const std::vector<std::vector<uint64_t>>& signatures,
    const LshOptions& options) {
  const size_t m = signatures.size();
  std::vector<uint32_t> groups(m, 0);
  if (m == 0) return groups;
  const uint32_t rows_per_band = options.num_hashes / options.num_bands;
  UnionFind uf(m);
  for (uint32_t band = 0; band < options.num_bands; ++band) {
    std::unordered_map<uint64_t, uint32_t> bucket_rep;
    bucket_rep.reserve(m);
    for (uint32_t c = 0; c < m; ++c) {
      uint64_t key = 0xcbf29ce484222325ULL ^ band;
      for (uint32_t r = 0; r < rows_per_band; ++r) {
        key = Mix64(key ^ signatures[c][band * rows_per_band + r]);
      }
      auto [it, inserted] = bucket_rep.try_emplace(key, c);
      if (!inserted) uf.Union(c, it->second);
    }
  }
  // Densify group ids.
  std::unordered_map<uint32_t, uint32_t> dense;
  uint32_t next = 0;
  for (uint32_t c = 0; c < m; ++c) {
    uint32_t root = uf.Find(c);
    auto [it, inserted] = dense.try_emplace(root, next);
    if (inserted) ++next;
    groups[c] = it->second;
  }
  return groups;
}

double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace kspdg
