// MinHash signatures + LSH banding over the PE-Matrix (§4.1).
//
// The EP-Index stores, per edge, the set of bounding paths crossing it; sets
// of nearby edges overlap heavily. MinHash estimates the Jaccard similarity
// of these path sets cheaply, and LSH banding groups edges that are likely
// similar; each group is then compressed with one MFP-tree (§4.2).
#ifndef KSPDG_MFP_MINHASH_LSH_H_
#define KSPDG_MFP_MINHASH_LSH_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace kspdg {

struct LshOptions {
  /// h: number of MinHash functions per column (edge).
  uint32_t num_hashes = 8;
  /// b: number of LSH bands; num_hashes must be divisible by num_bands.
  uint32_t num_bands = 4;
  uint64_t seed = 1234;
};

/// Column-major MinHash signature matrix ("Sig-Matrix", Figure 11):
/// signatures[c][i] = min over rows r in column c of hash_i(r).
std::vector<std::vector<uint64_t>> ComputeMinHashSignatures(
    const std::vector<std::vector<uint32_t>>& column_sets,
    const LshOptions& options);

/// LSH banding (§4.1): hashes each column's band slices into buckets and
/// merges columns sharing any bucket. Returns group index per column;
/// groups are numbered densely from 0.
std::vector<uint32_t> LshGroupColumns(
    const std::vector<std::vector<uint64_t>>& signatures,
    const LshOptions& options);

/// Exact Jaccard similarity of two sorted id sets (for tests / diagnostics).
double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b);

}  // namespace kspdg

#endif  // KSPDG_MFP_MINHASH_LSH_H_
