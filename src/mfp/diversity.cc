#include "mfp/diversity.h"

#include <algorithm>
#include <utility>

#include "mfp/mfp_tree.h"

namespace kspdg {

namespace {

/// Edge identity for similarity purposes: the vertex pair, ordered in
/// directed graphs and normalised in undirected ones. Parallel edges between
/// one vertex pair collapse to one element — a route is "the same" along
/// them for diversity purposes, and Path stores vertices only.
uint64_t EdgeKey(VertexId a, VertexId b, bool directed) {
  if (!directed && a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// The sorted edge-key set of one route.
std::vector<uint64_t> EdgeKeysOf(const Path& p, bool directed) {
  std::vector<uint64_t> keys;
  if (p.vertices.size() < 2) return keys;
  keys.reserve(p.vertices.size() - 1);
  for (size_t i = 0; i + 1 < p.vertices.size(); ++i) {
    keys.push_back(EdgeKey(p.vertices[i], p.vertices[i + 1], directed));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

double SortedJaccard(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Fraction of equal MinHash components — the §4.1 similarity estimate.
double SignatureSimilarity(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  if (a.empty()) return 0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) agree += a[i] == b[i];
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace

double RouteEdgeJaccard(const Path& a, const Path& b, bool directed) {
  return SortedJaccard(EdgeKeysOf(a, directed), EdgeKeysOf(b, directed));
}

DiverseStats SelectDiversePaths(const std::vector<Path>& candidates,
                                uint32_t k, bool directed,
                                const DiversityOptions& options,
                                std::vector<Path>* kept) {
  DiverseStats stats;
  stats.candidates = static_cast<uint32_t>(candidates.size());
  kept->clear();
  if (candidates.empty()) return stats;

  // Dense edge universe of the candidate set: distinct edge keys, sorted so
  // the dense ids are a pure function of the candidate list.
  std::vector<std::vector<uint64_t>> edge_keys(candidates.size());
  std::vector<uint64_t> universe;
  for (size_t c = 0; c < candidates.size(); ++c) {
    edge_keys[c] = EdgeKeysOf(candidates[c], directed);
    universe.insert(universe.end(), edge_keys[c].begin(), edge_keys[c].end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  auto dense_of = [&universe](uint64_t key) {
    return static_cast<uint32_t>(
        std::lower_bound(universe.begin(), universe.end(), key) -
        universe.begin());
  };
  // Per-path sorted dense edge sets (rows of the per-query PE-Matrix).
  std::vector<std::vector<uint32_t>> path_edges(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    path_edges[c].reserve(edge_keys[c].size());
    for (uint64_t key : edge_keys[c]) path_edges[c].push_back(dense_of(key));
    // edge_keys[c] is sorted and dense_of is monotone, so this stays sorted.
  }

  // MinHash signatures per candidate path: the cheap screen of the greedy
  // filter below.
  std::vector<std::vector<uint64_t>> signatures =
      ComputeMinHashSignatures(path_edges, options.lsh);

  // Greedy selection in KSP order: candidates arrive ascending by distance
  // (deterministically tie-broken by the solvers), so the kept set is the
  // lexicographically-first pairwise-dissimilar subset — identical on every
  // deployment that produced the identical candidate list. Exact Jaccard is
  // authoritative for every accept/reject (an estimate-only rejection could
  // deterministically drop a route whose true similarity is within θ); the
  // MinHash estimate rides along as the §4.1 telemetry — how often the
  // signature screen agrees with the exact decision.
  std::vector<size_t> kept_idx;
  for (size_t c = 0; c < candidates.size() && kept_idx.size() < k; ++c) {
    bool accept = true;
    for (size_t q : kept_idx) {
      ++stats.exact_checks;
      if (SortedJaccard(edge_keys[c], edge_keys[q]) > options.theta) {
        if (SignatureSimilarity(signatures[c], signatures[q]) >
            options.theta) {
          ++stats.signature_rejections;  // the screen flagged this pair too
        }
        accept = false;
        break;
      }
    }
    if (accept) kept_idx.push_back(c);
  }
  kept->reserve(kept_idx.size());
  for (size_t c : kept_idx) kept->push_back(candidates[c]);
  stats.kept = static_cast<uint32_t>(kept_idx.size());
  stats.filtered = stats.candidates - stats.kept;

  // Exact pairwise similarity of the kept set (the reported guarantee).
  size_t pairs = 0;
  double sum = 0;
  for (size_t i = 0; i < kept_idx.size(); ++i) {
    for (size_t j = i + 1; j < kept_idx.size(); ++j) {
      double s = SortedJaccard(edge_keys[kept_idx[i]], edge_keys[kept_idx[j]]);
      sum += s;
      stats.max_pairwise_similarity =
          std::max(stats.max_pairwise_similarity, s);
      ++pairs;
    }
  }
  if (pairs > 0) sum /= static_cast<double>(pairs);
  stats.mean_pairwise_similarity = sum;

  // Per-query EP-Index over the candidate set (§4): columns are edges, each
  // holding the candidate paths crossing it; LSH groups similar columns and
  // one MFP-tree per group compacts the duplicated lists.
  std::vector<std::vector<uint32_t>> columns(universe.size());
  std::vector<uint32_t> frequency(candidates.size(), 0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (uint32_t e : path_edges[c]) {
      columns[e].push_back(static_cast<uint32_t>(c));
      ++frequency[c];
    }
  }
  for (const std::vector<uint32_t>& column : columns) {
    stats.ep_raw_entries += column.size();
  }
  std::vector<std::vector<uint64_t>> column_signatures =
      ComputeMinHashSignatures(columns, options.lsh);
  std::vector<uint32_t> group_of_edge =
      LshGroupColumns(column_signatures, options.lsh);
  uint32_t num_groups = 0;
  for (uint32_t gid : group_of_edge) num_groups = std::max(num_groups, gid + 1);
  stats.lsh_groups = num_groups;
  std::vector<MfpTree> trees(num_groups);
  // Insert edges group by group, denser path sets first (the §4.2 insertion
  // order), path ids within a set by global frequency descending.
  std::vector<uint32_t> order(universe.size());
  for (uint32_t e = 0; e < order.size(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (group_of_edge[a] != group_of_edge[b]) {
      return group_of_edge[a] < group_of_edge[b];
    }
    if (columns[a].size() != columns[b].size()) {
      return columns[a].size() > columns[b].size();
    }
    return a < b;
  });
  for (uint32_t e : order) {
    std::vector<uint32_t> sorted = columns[e];
    std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
      if (frequency[a] != frequency[b]) return frequency[a] > frequency[b];
      return a < b;
    });
    trees[group_of_edge[e]].InsertEdge(e, sorted);
  }
  for (const MfpTree& tree : trees) stats.ep_path_nodes += tree.NumPathNodes();
  stats.mfp_compression_ratio =
      stats.ep_raw_entries > 0
          ? static_cast<double>(stats.ep_path_nodes) /
                static_cast<double>(stats.ep_raw_entries)
          : 0;
  return stats;
}

}  // namespace kspdg
