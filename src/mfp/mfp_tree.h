// MFP-tree (§4.2): a modified FP-tree that compacts the duplicated bounding-
// path lists of the EP-Index within one LSH group of edges.
//
// Each edge contributes the sequence S = {p0, ..., pl, e} where the path ids
// are sorted by global occurrence count (descending) and e is the *tail
// node* recording |P(e)|. Unlike a classic FP-tree, the longest matching
// prefix of S may start at ANY node, not just the root. Recovering the path
// set of an edge walks |P(e)| steps up from its tail node.
#ifndef KSPDG_MFP_MFP_TREE_H_
#define KSPDG_MFP_MFP_TREE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace kspdg {

class MfpTree {
 public:
  static constexpr uint32_t kRoot = 0;

  MfpTree();

  /// Inserts edge `edge_id` with its frequency-sorted path list.
  void InsertEdge(EdgeId edge_id, const std::vector<uint32_t>& sorted_paths);

  /// Recovers the path ids of `edge_id` (in insertion-sequence order:
  /// closest ancestor last). Returns empty if the edge is unknown.
  std::vector<uint32_t> PathsOfEdge(EdgeId edge_id) const;

  bool ContainsEdge(EdgeId edge_id) const {
    return tail_of_edge_.count(edge_id) > 0;
  }

  /// Number of *normal* (path) nodes — the compression metric: the raw
  /// EP-Index stores sum(|P(e)|) path references, the tree stores
  /// NumPathNodes() <= that.
  size_t NumPathNodes() const { return num_path_nodes_; }
  size_t NumNodes() const { return nodes_.size() - 1; }  // excl. root

  size_t MemoryBytes() const;

 private:
  struct Node {
    uint32_t item;       // path id, or edge id for tail nodes
    bool is_tail;
    uint32_t parent;
    uint32_t set_size;   // tails only: |P(e)|
    std::vector<uint32_t> children;
  };

  /// Finds the deepest node chain matching a prefix of `items` starting at
  /// any node; returns (last matched node or kRoot, matched length).
  std::pair<uint32_t, size_t> LongestMatchingPrefix(
      const std::vector<uint32_t>& items) const;

  uint32_t AddNode(uint32_t parent, uint32_t item, bool is_tail);

  std::vector<Node> nodes_;  // nodes_[0] is the empty root
  /// All non-tail nodes holding a given path id (prefix-match entry points).
  std::unordered_map<uint32_t, std::vector<uint32_t>> nodes_of_path_;
  std::unordered_map<EdgeId, uint32_t> tail_of_edge_;
  size_t num_path_nodes_ = 0;
};

}  // namespace kspdg

#endif  // KSPDG_MFP_MFP_TREE_H_
