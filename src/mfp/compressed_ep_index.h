// Compressed EP-Index (§4): LSH-groups the edges of one subgraph by the
// similarity of their bounding-path sets and compacts each group into an
// MFP-tree. Functionally equivalent to the raw EP-Index lookup
// (SubgraphIndex::PathsThroughEdge) at a fraction of the memory.
#ifndef KSPDG_MFP_COMPRESSED_EP_INDEX_H_
#define KSPDG_MFP_COMPRESSED_EP_INDEX_H_

#include <vector>

#include "dtlp/subgraph_index.h"
#include "mfp/mfp_tree.h"
#include "mfp/minhash_lsh.h"

namespace kspdg {

class CompressedEpIndex {
 public:
  /// Builds the compressed index from a built SubgraphIndex.
  CompressedEpIndex(const SubgraphIndex& index, const LshOptions& options);

  /// Path ids crossing `local_edge` (set-equal to the raw EP-Index entry).
  std::vector<uint32_t> PathsOfEdge(EdgeId local_edge) const;

  size_t NumGroups() const { return trees_.size(); }
  uint32_t GroupOfEdge(EdgeId local_edge) const {
    return group_of_edge_[local_edge];
  }

  /// Total (path, edge) incidences in the raw EP-Index vs. path nodes kept
  /// by the trees; ratio < 1 means compression.
  size_t RawEntries() const { return raw_entries_; }
  size_t CompressedEntries() const;

  size_t MemoryBytes() const;

 private:
  std::vector<uint32_t> group_of_edge_;
  std::vector<MfpTree> trees_;
  size_t raw_entries_ = 0;
};

}  // namespace kspdg

#endif  // KSPDG_MFP_COMPRESSED_EP_INDEX_H_
