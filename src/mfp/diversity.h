// Diversity-aware KSP selection (the kDiverseKsp query kind): the §4
// machinery — per-query EP-Index, MFP-tree compaction, MinHash/LSH — applied
// on the query path.
//
// The facade over-fetches k' = k * overfetch candidate paths through the
// normal solver path, then SelectDiversePaths greedily keeps candidates in
// KSP order, rejecting any candidate whose exact edge-set Jaccard
// similarity with an already-kept route exceeds θ — so the kept set is
// precisely the greedy pairwise-dissimilar subset (never over-filtered by
// estimation noise). MinHash signatures of the same edge sets are computed
// alongside and reported as the §4.1 screen telemetry (how often the
// signature estimate agrees with the exact rejection). The per-query
// EP-Index (edge -> candidate paths crossing it) is LSH-grouped and
// compacted into MFP-trees, yielding the §4 compression ratio per query.
//
// Everything here is a pure, deterministic function of (candidates, k,
// options): no clocks, no global state — which is what keeps sharded
// diverse answers byte-identical to unsharded ones.
#ifndef KSPDG_MFP_DIVERSITY_H_
#define KSPDG_MFP_DIVERSITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ksp/path.h"
#include "mfp/minhash_lsh.h"

namespace kspdg {

/// Knobs of the kDiverseKsp pipeline. Layered into RoutingOptions like every
/// other knob: service-wide defaults, per-request overrides for θ and the
/// over-fetch factor.
struct DiversityOptions {
  /// θ: maximum allowed pairwise Jaccard similarity (over edge sets) among
  /// the returned routes. 0 keeps only edge-disjoint routes; 1 disables
  /// filtering.
  double theta = 0.5;
  /// Over-fetch factor: the solver is asked for k' = k * overfetch
  /// candidates before filtering down to k pairwise-dissimilar ones.
  uint32_t overfetch = 4;
  /// MinHash/LSH knobs shared by the similarity screen and the per-query
  /// EP-Index grouping.
  LshOptions lsh;
};

/// Outcome of one diversity selection; the kind-specific payload of a
/// kDiverseKsp RouteResponse.
struct DiverseStats {
  /// Candidate paths the solver actually returned (<= k').
  uint32_t candidates = 0;
  /// Routes kept (== the response's path count; <= k).
  uint32_t kept = 0;
  /// candidates - kept.
  uint32_t filtered = 0;
  /// Exact Jaccard evaluations performed by the greedy filter (one per
  /// (candidate, kept) pair examined).
  uint32_t exact_checks = 0;
  /// Exact rejections the MinHash signature screen had also flagged
  /// (estimate > θ): screen-agreement telemetry, not a decision count.
  uint32_t signature_rejections = 0;
  /// Exact pairwise Jaccard over the kept set (0 when < 2 routes kept).
  /// max_pairwise_similarity <= θ by construction.
  double mean_pairwise_similarity = 0;
  double max_pairwise_similarity = 0;
  /// Per-query EP-Index: (edge, path) incidences before MFP compaction ...
  size_t ep_raw_entries = 0;
  /// ... and path nodes kept by the MFP-trees (<= ep_raw_entries).
  size_t ep_path_nodes = 0;
  /// ep_path_nodes / ep_raw_entries (< 1 means the trees compressed).
  double mfp_compression_ratio = 0;
  /// LSH groups the candidate-set edges were compacted into (one MFP-tree
  /// per group).
  uint32_t lsh_groups = 0;
};

/// Greedily selects <= k pairwise-dissimilar routes from `candidates`
/// (which must be in the deterministic KSP order the solvers produce) and
/// fills `kept`. `directed` controls edge identity: ordered vertex pairs in
/// directed graphs, normalised pairs otherwise. Pure and deterministic.
DiverseStats SelectDiversePaths(const std::vector<Path>& candidates,
                                uint32_t k, bool directed,
                                const DiversityOptions& options,
                                std::vector<Path>* kept);

/// Exact Jaccard similarity of two routes' edge sets (helper shared with
/// tests and the bench; SelectDiversePaths uses it internally).
double RouteEdgeJaccard(const Path& a, const Path& b, bool directed);

}  // namespace kspdg

#endif  // KSPDG_MFP_DIVERSITY_H_
