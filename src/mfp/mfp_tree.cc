#include "mfp/mfp_tree.h"

#include <algorithm>
#include <cassert>

namespace kspdg {

MfpTree::MfpTree() {
  nodes_.push_back(Node{0, false, kRoot, 0, {}});  // empty root
}

uint32_t MfpTree::AddNode(uint32_t parent, uint32_t item, bool is_tail) {
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{item, is_tail, parent, 0, {}});
  nodes_[parent].children.push_back(id);
  if (!is_tail) {
    nodes_of_path_[item].push_back(id);
    ++num_path_nodes_;
  }
  return id;
}

std::pair<uint32_t, size_t> MfpTree::LongestMatchingPrefix(
    const std::vector<uint32_t>& items) const {
  if (items.empty()) return {kRoot, 0};
  auto starts = nodes_of_path_.find(items[0]);
  if (starts == nodes_of_path_.end()) return {kRoot, 0};
  uint32_t best_node = kRoot;
  size_t best_len = 0;
  for (uint32_t start : starts->second) {
    uint32_t node = start;
    size_t len = 1;
    // Extend the match downwards through children.
    while (len < items.size()) {
      uint32_t next = kRoot;
      for (uint32_t child : nodes_[node].children) {
        if (!nodes_[child].is_tail && nodes_[child].item == items[len]) {
          next = child;
          break;
        }
      }
      if (next == kRoot) break;
      node = next;
      ++len;
    }
    if (len > best_len) {
      best_len = len;
      best_node = node;
      if (best_len == items.size()) break;
    }
  }
  return {best_node, best_len};
}

void MfpTree::InsertEdge(EdgeId edge_id,
                         const std::vector<uint32_t>& sorted_paths) {
  assert(tail_of_edge_.count(edge_id) == 0 && "edge inserted twice");
  auto [attach, matched] = LongestMatchingPrefix(sorted_paths);
  uint32_t node = attach;
  for (size_t i = matched; i < sorted_paths.size(); ++i) {
    node = AddNode(node, sorted_paths[i], /*is_tail=*/false);
  }
  uint32_t tail = AddNode(node, edge_id, /*is_tail=*/true);
  nodes_[tail].set_size = static_cast<uint32_t>(sorted_paths.size());
  tail_of_edge_.emplace(edge_id, tail);
}

std::vector<uint32_t> MfpTree::PathsOfEdge(EdgeId edge_id) const {
  std::vector<uint32_t> out;
  auto it = tail_of_edge_.find(edge_id);
  if (it == tail_of_edge_.end()) return out;
  const Node& tail = nodes_[it->second];
  out.reserve(tail.set_size);
  uint32_t node = tail.parent;
  for (uint32_t step = 0; step < tail.set_size; ++step) {
    assert(node != kRoot);
    out.push_back(nodes_[node].item);
    node = nodes_[node].parent;
  }
  // Walking up yields reverse insertion order; restore it.
  std::reverse(out.begin(), out.end());
  return out;
}

size_t MfpTree::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node) + n.children.capacity() * sizeof(uint32_t);
  }
  bytes += nodes_of_path_.size() * 48;
  for (const auto& [path, list] : nodes_of_path_) {
    bytes += list.capacity() * sizeof(uint32_t);
  }
  bytes += tail_of_edge_.size() * 24;
  return bytes;
}

}  // namespace kspdg
