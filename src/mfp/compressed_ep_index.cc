#include "mfp/compressed_ep_index.h"

#include <algorithm>

namespace kspdg {

CompressedEpIndex::CompressedEpIndex(const SubgraphIndex& index,
                                     const LshOptions& options) {
  const size_t num_edges = index.subgraph().local().NumEdges();
  // Column sets of the PE-Matrix: per edge, the crossing path ids.
  std::vector<std::vector<uint32_t>> columns(num_edges);
  // Global occurrence count of each path across all columns (for the
  // frequency-descending insertion order of §4.2).
  std::vector<uint32_t> frequency(index.paths().size(), 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    columns[e] = index.PathsThroughEdge(e);
    raw_entries_ += columns[e].size();
    for (uint32_t pid : columns[e]) ++frequency[pid];
  }

  std::vector<std::vector<uint64_t>> signatures =
      ComputeMinHashSignatures(columns, options);
  group_of_edge_ = LshGroupColumns(signatures, options);
  uint32_t num_groups = 0;
  for (uint32_t gid : group_of_edge_) num_groups = std::max(num_groups, gid + 1);
  trees_.resize(num_groups);

  // Insert edges group by group; within a group, denser path sets first so
  // later sets find long prefixes.
  std::vector<EdgeId> order(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (group_of_edge_[a] != group_of_edge_[b])
      return group_of_edge_[a] < group_of_edge_[b];
    if (columns[a].size() != columns[b].size())
      return columns[a].size() > columns[b].size();
    return a < b;
  });
  for (EdgeId e : order) {
    std::vector<uint32_t> sorted = columns[e];
    std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
      if (frequency[a] != frequency[b]) return frequency[a] > frequency[b];
      return a < b;
    });
    trees_[group_of_edge_[e]].InsertEdge(e, sorted);
  }
}

std::vector<uint32_t> CompressedEpIndex::PathsOfEdge(EdgeId local_edge) const {
  return trees_[group_of_edge_[local_edge]].PathsOfEdge(local_edge);
}

size_t CompressedEpIndex::CompressedEntries() const {
  size_t total = 0;
  for (const MfpTree& tree : trees_) total += tree.NumPathNodes();
  return total;
}

size_t CompressedEpIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += group_of_edge_.capacity() * sizeof(uint32_t);
  for (const MfpTree& tree : trees_) bytes += tree.MemoryBytes();
  return bytes;
}

}  // namespace kspdg
