#include "cands/cands.h"

#include <algorithm>

#include "core/parallel_for.h"
#include "ksp/dijkstra.h"
#include "ksp/search_graph.h"

namespace kspdg {

Result<std::unique_ptr<CandsIndex>> CandsIndex::Build(
    const Graph& g, const CandsOptions& options) {
  Result<Partition> part = PartitionGraph(g, options.partition);
  if (!part.ok()) return part.status();
  std::unique_ptr<CandsIndex> index(new CandsIndex(g, options));
  index->partition_ = std::make_unique<Partition>(std::move(part).value());
  index->tables_.resize(index->partition_->subgraphs.size());
  index->overlay_base_ = SkeletonGraph(g.directed());
  index->overlay_base_.SetVertices(index->partition_->boundary_vertices);
  ParallelFor(index->tables_.size(), options.build_threads,
              [&](size_t i) {
                index->RebuildSubgraph(static_cast<SubgraphId>(i));
              });
  for (SubgraphId sgid = 0; sgid < index->tables_.size(); ++sgid) {
    index->PushSubgraphToOverlay(sgid);
  }
  return index;
}

void CandsIndex::RebuildSubgraph(SubgraphId sgid) {
  const Subgraph& sg = partition_->subgraphs[sgid];
  SubgraphTable& table = tables_[sgid];
  table.pair_paths.clear();
  const std::vector<VertexId>& boundary = sg.boundary_local();
  GraphCostView view(sg.local(), CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::vector<Weight> dist;
  std::vector<VertexId> parent;
  for (VertexId src : boundary) {
    search.ComputeTree(src, /*reverse=*/false, &dist, &parent);
    for (VertexId dst : boundary) {
      if (dst == src || dist[dst] == kInfiniteWeight) continue;
      Path p;
      p.distance = dist[dst];
      for (VertexId v = dst; v != kInvalidVertex; v = parent[v]) {
        p.vertices.push_back(v);
        if (v == src) break;
      }
      std::reverse(p.vertices.begin(), p.vertices.end());
      table.pair_paths.emplace(LocalPairKey(src, dst), std::move(p));
    }
  }
}

void CandsIndex::PushSubgraphToOverlay(SubgraphId sgid) {
  const Subgraph& sg = partition_->subgraphs[sgid];
  const SubgraphTable& table = tables_[sgid];
  const std::vector<VertexId>& boundary = sg.boundary_local();
  for (VertexId a : boundary) {
    for (VertexId b : boundary) {
      if (a == b) continue;
      auto it = table.pair_paths.find(LocalPairKey(a, b));
      Weight d = it == table.pair_paths.end() ? kInfiniteWeight
                                              : it->second.distance;
      if (!overlay_base_.directed() && a > b) continue;  // set once
      overlay_base_.SetContribution(sgid, sg.GlobalOf(a), sg.GlobalOf(b), d);
      if (overlay_base_.directed()) continue;
    }
  }
}

CandsUpdateStats CandsIndex::ApplyUpdates(
    std::span<const WeightUpdate> updates) {
  CandsUpdateStats stats;
  std::vector<SubgraphId> dirty;
  for (const WeightUpdate& upd : updates) {
    SubgraphId sgid = partition_->subgraph_of_edge[upd.edge];
    if (sgid == kInvalidSubgraph) continue;
    partition_->subgraphs[sgid].ApplyUpdate(upd);
    ++stats.updates_applied;
    dirty.push_back(sgid);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  ParallelFor(dirty.size(), options_.build_threads, [&](size_t i) {
    RebuildSubgraph(dirty[i]);
  });
  for (SubgraphId sgid : dirty) {
    PushSubgraphToOverlay(sgid);
    stats.pair_paths_recomputed += tables_[sgid].pair_paths.size();
  }
  stats.subgraphs_rebuilt = dirty.size();
  return stats;
}

std::optional<Path> CandsIndex::BoundaryPairRoute(VertexId a_global,
                                                  VertexId b_global) const {
  std::optional<Path> best;
  for (SubgraphId sgid :
       partition_->SubgraphsContainingBoth(a_global, b_global)) {
    const Subgraph& sg = partition_->subgraphs[sgid];
    auto it = tables_[sgid].pair_paths.find(
        LocalPairKey(sg.LocalOf(a_global), sg.LocalOf(b_global)));
    if (it == tables_[sgid].pair_paths.end()) continue;
    if (!best.has_value() || it->second.distance < best->distance) {
      best = it->second;
      for (VertexId& v : best->vertices) v = sg.GlobalOf(v);
    }
  }
  return best;
}

void CandsIndex::AttachEndpoint(VertexId v, bool is_source,
                                SkeletonOverlay* overlay,
                                EndpointAttachment* out) const {
  if (overlay_base_.ContainsGlobal(v)) {
    out->overlay_id = overlay_base_.IdOfGlobal(v);
    return;
  }
  out->overlay_id = overlay->AddTempVertex(v);
  std::vector<Weight> dist;
  std::vector<VertexId> parent;
  for (SubgraphId sgid : partition_->subgraphs_of_vertex[v]) {
    const Subgraph& sg = partition_->subgraphs[sgid];
    GraphCostView view(sg.local(), CostKind::kCurrentWeight);
    DijkstraSearch<GraphCostView> search(view);
    VertexId local = sg.LocalOf(v);
    // For the target endpoint, run a reverse search so directed weights are
    // taken *toward* v.
    search.ComputeTree(local, /*reverse=*/!is_source, &dist, &parent);
    for (VertexId b : sg.boundary_local()) {
      if (b == local || dist[b] == kInfiniteWeight) continue;
      VertexId b_global = sg.GlobalOf(b);
      SkeletonId bid = overlay->IdOfGlobal(b_global);
      if (bid == kInvalidVertex) continue;
      // Reconstruct the in-subgraph route (global ids), oriented s->b or
      // b->t.
      Path route;
      route.distance = dist[b];
      for (VertexId x = b; x != kInvalidVertex; x = parent[x]) {
        route.vertices.push_back(sg.GlobalOf(x));
        if (x == local) break;
      }
      if (is_source) {
        std::reverse(route.vertices.begin(), route.vertices.end());
        overlay->AddTempEdge(out->overlay_id, bid, dist[b], kInfiniteWeight);
      } else {
        overlay->AddTempEdge(bid, out->overlay_id, dist[b], kInfiniteWeight);
      }
      auto existing = out->routes.find(b_global);
      if (existing == out->routes.end() ||
          existing->second.distance > route.distance) {
        out->routes[b_global] = std::move(route);
      }
    }
  }
}

std::optional<Path> CandsIndex::ShortestPath(VertexId s, VertexId t) const {
  if (s == t) return Path{{s}, 0};
  SkeletonOverlay overlay(overlay_base_);
  EndpointAttachment sa, ta;
  AttachEndpoint(s, /*is_source=*/true, &overlay, &sa);
  AttachEndpoint(t, /*is_source=*/false, &overlay, &ta);
  // Direct in-subgraph route if s and t share a subgraph.
  std::optional<Path> direct;
  for (SubgraphId sgid : partition_->SubgraphsContainingBoth(s, t)) {
    const Subgraph& sg = partition_->subgraphs[sgid];
    GraphCostView view(sg.local(), CostKind::kCurrentWeight);
    DijkstraSearch<GraphCostView> search(view);
    std::optional<Path> p =
        search.ShortestPath(sg.LocalOf(s), sg.LocalOf(t));
    if (p.has_value()) {
      for (VertexId& v : p->vertices) v = sg.GlobalOf(v);
      if (!direct.has_value() || p->distance < direct->distance) {
        direct = std::move(p);
      }
    }
  }
  if (direct.has_value()) {
    overlay.AddTempEdge(sa.overlay_id, ta.overlay_id, direct->distance,
                        kInfiniteWeight);
  }
  DijkstraSearch<SkeletonOverlay> search(overlay);
  std::optional<Path> overlay_path =
      search.ShortestPath(sa.overlay_id, ta.overlay_id);
  if (!overlay_path.has_value()) return std::nullopt;

  // Reconstruct the concrete route by stitching stored segments.
  Path result;
  result.distance = overlay_path->distance;
  const std::vector<VertexId>& seq = overlay_path->vertices;
  auto append = [&result](const Path& segment) {
    size_t start = result.vertices.empty() ? 0 : 1;
    result.vertices.insert(result.vertices.end(),
                           segment.vertices.begin() + start,
                           segment.vertices.end());
  };
  if (seq.size() == 2 && direct.has_value() &&
      WeightsEqual(overlay_path->distance, direct->distance)) {
    return direct;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    VertexId a = seq[i], b = seq[i + 1];
    std::optional<Path> segment;
    if (i == 0 && a == sa.overlay_id && sa.routes.size() > 0 &&
        a >= overlay_base_.NumVertices()) {
      segment = sa.routes.at(overlay.GlobalOf(b));
    } else if (i + 2 == seq.size() && b == ta.overlay_id &&
               b >= overlay_base_.NumVertices()) {
      segment = ta.routes.at(overlay.GlobalOf(a));
    } else if (a == sa.overlay_id && b == ta.overlay_id) {
      segment = direct;
    } else {
      segment = BoundaryPairRoute(overlay.GlobalOf(a), overlay.GlobalOf(b));
    }
    if (!segment.has_value()) return std::nullopt;  // inconsistent index
    append(*segment);
  }
  return result;
}

size_t CandsIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this) + overlay_base_.MemoryBytes();
  for (const SubgraphTable& table : tables_) {
    for (const auto& [key, path] : table.pair_paths) {
      bytes += sizeof(key) + sizeof(Path) +
               path.vertices.capacity() * sizeof(VertexId) + 16;
    }
  }
  return bytes;
}

}  // namespace kspdg
