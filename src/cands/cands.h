// CANDS baseline (Yang et al., VLDB 2014 — reference [26] of the paper):
// distributed single-shortest-path over a dynamic partitioned graph.
//
// Like the original, it indexes the *exact* shortest path between every pair
// of boundary vertices within each subgraph. Queries are fast (the overlay
// search runs on exact distances, no filter/refine iterations), but
// maintenance is expensive: a weight change invalidates the exact paths of
// its subgraph, which must be recomputed — the contrast the paper measures
// in Figures 40-41.
#ifndef KSPDG_CANDS_CANDS_H_
#define KSPDG_CANDS_CANDS_H_

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "dtlp/skeleton_graph.h"
#include "graph/graph.h"
#include "ksp/path.h"
#include "partition/partitioner.h"

namespace kspdg {

struct CandsOptions {
  PartitionOptions partition;
  /// Threads for (re)building per-subgraph tables.
  unsigned build_threads = 1;
};

struct CandsUpdateStats {
  size_t updates_applied = 0;
  size_t subgraphs_rebuilt = 0;
  size_t pair_paths_recomputed = 0;
};

class CandsIndex {
 public:
  static Result<std::unique_ptr<CandsIndex>> Build(const Graph& g,
                                                   const CandsOptions& options);

  /// Applies weight updates; every touched subgraph's exact boundary-pair
  /// shortest paths are recomputed (the costly part of CANDS maintenance).
  CandsUpdateStats ApplyUpdates(std::span<const WeightUpdate> updates);

  /// Exact single shortest path from s to t under current weights, or
  /// std::nullopt if disconnected.
  std::optional<Path> ShortestPath(VertexId s, VertexId t) const;

  const Partition& partition() const { return *partition_; }
  size_t MemoryBytes() const;

 private:
  CandsIndex(const Graph& g, CandsOptions options)
      : graph_(&g), options_(std::move(options)) {}

  /// Recomputes the exact boundary-pair paths of one subgraph and refreshes
  /// its contributions to the overlay graph.
  void RebuildSubgraph(SubgraphId sgid);
  void PushSubgraphToOverlay(SubgraphId sgid);

  static uint64_t LocalPairKey(VertexId a, VertexId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  /// Exact shortest paths within each subgraph between ordered boundary
  /// pairs (local ids). Paths are stored in local ids.
  struct SubgraphTable {
    std::unordered_map<uint64_t, Path> pair_paths;
  };

  /// Attaches a query endpoint to the overlay: exact in-subgraph distances
  /// to/from the boundary vertices, plus the local paths for
  /// reconstruction.
  struct EndpointAttachment {
    SkeletonId overlay_id;
    // (subgraph, local endpoint) paths to each boundary vertex.
    std::unordered_map<VertexId /*boundary global*/, Path /*global route*/>
        routes;
  };
  void AttachEndpoint(VertexId v, bool is_source, SkeletonOverlay* overlay,
                      EndpointAttachment* out) const;

  /// Global route of the stored exact path between two boundary vertices.
  std::optional<Path> BoundaryPairRoute(VertexId a_global,
                                        VertexId b_global) const;

  const Graph* graph_;
  CandsOptions options_;
  std::unique_ptr<Partition> partition_;
  std::vector<SubgraphTable> tables_;
  SkeletonGraph overlay_base_;  // boundary graph with *exact* distances
};

}  // namespace kspdg

#endif  // KSPDG_CANDS_CANDS_H_
