#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace kspdg {
namespace {

constexpr uint32_t kMaxWireSamples = 1u << 20;
constexpr uint32_t kMaxWireLabels = 64;
constexpr uint32_t kMaxWireBounds = 1024;
constexpr uint32_t kMaxWireString = 1u << 16;

void SortLabels(MetricLabels& labels) {
  std::sort(labels.begin(), labels.end());
}

bool SameKey(std::string_view name, const MetricLabels& labels,
             const std::string& entry_name, const MetricLabels& entry_labels) {
  return name == entry_name && labels == entry_labels;
}

template <typename Sample>
bool SampleKeyLess(const Sample& a, const Sample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  // Shortest round-trippable form that is still valid JSON (no bare "inf").
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  // Ensure integral doubles keep a marker so strict parsers see a number
  // that round-trips as floating point; plain "5" is fine JSON though, so
  // only guard against non-finite values (callers must not pass them).
  return s;
}

void AppendLabelsText(std::ostringstream& os, const MetricLabels& labels,
                      const char* extra_key = nullptr,
                      const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << v << '"';
  }
  if (extra_key != nullptr) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_value << '"';
  }
  os << '}';
}

void AppendLabelsJson(std::ostringstream& os, const MetricLabels& labels) {
  os << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << '"' << EscapeJson(k) << "\":\"" << EscapeJson(v) << '"';
  }
  os << '}';
}

// --- Minimal little-endian wire helpers (self-contained so src/obs does
// not depend on src/rpc; the rpc layer ships these blobs opaquely). ---

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

class WireCursor {
 public:
  explicit WireCursor(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return Fail();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool U64(uint64_t* v) {
    if (data_.size() - pos_ < 8) return Fail();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || len > kMaxWireString) return Fail();
    if (data_.size() - pos_ < len) return Fail();
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool ReadLabels(WireCursor& cur, MetricLabels* labels) {
  uint32_t n = 0;
  if (!cur.U32(&n) || n > kMaxWireLabels) return false;
  labels->clear();
  labels->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string k, v;
    if (!cur.Str(&k) || !cur.Str(&v)) return false;
    labels->emplace_back(std::move(k), std::move(v));
  }
  return true;
}

void PutLabels(std::string& out, const MetricLabels& labels) {
  PutU32(out, static_cast<uint32_t>(labels.size()));
  for (const auto& [k, v] : labels) {
    PutStr(out, k);
    PutStr(out, v);
  }
}

}  // namespace

const std::vector<double>& LatencyBucketsMicros() {
  static const std::vector<double> kBounds = {
      50,     100,    250,     500,     1000,    2500,   5000,
      10000,  25000,  50000,   100000,  250000,  1000000};
  return kBounds;
}

// --- MetricsSnapshot ---

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& sample : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const CounterSample& mine) {
                             return SameKey(sample.name, sample.labels,
                                            mine.name, mine.labels);
                           });
    if (it != counters.end()) {
      it->value += sample.value;
    } else {
      counters.push_back(sample);
    }
  }
  for (const auto& sample : other.gauges) {
    auto it = std::find_if(gauges.begin(), gauges.end(),
                           [&](const GaugeSample& mine) {
                             return SameKey(sample.name, sample.labels,
                                            mine.name, mine.labels);
                           });
    if (it != gauges.end()) {
      it->value = sample.value;
    } else {
      gauges.push_back(sample);
    }
  }
  for (const auto& sample : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const HistogramSample& mine) {
                             return SameKey(sample.name, sample.labels,
                                            mine.name, mine.labels) &&
                                    sample.bounds == mine.bounds;
                           });
    if (it != histograms.end()) {
      for (size_t i = 0; i < it->buckets.size() && i < sample.buckets.size();
           ++i) {
        it->buckets[i] += sample.buckets[i];
      }
      it->count += sample.count;
      it->sum += sample.sum;
    } else {
      histograms.push_back(sample);
    }
  }
  std::sort(counters.begin(), counters.end(), SampleKeyLess<CounterSample>);
  std::sort(gauges.begin(), gauges.end(), SampleKeyLess<GaugeSample>);
  std::sort(histograms.begin(), histograms.end(),
            SampleKeyLess<HistogramSample>);
}

void MetricsSnapshot::AddLabel(const std::string& key,
                               const std::string& value) {
  auto apply = [&](MetricLabels& labels) {
    for (auto& [k, v] : labels) {
      if (k == key) {
        v = value;
        return;
      }
    }
    labels.emplace_back(key, value);
    SortLabels(labels);
  };
  for (auto& s : counters) apply(s.labels);
  for (auto& s : gauges) apply(s.labels);
  for (auto& s : histograms) apply(s.labels);
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const auto& s : counters) {
    if (s.name == name) total += s.value;
  }
  return total;
}

size_t MetricsSnapshot::GaugeSampleCount(std::string_view name) const {
  size_t n = 0;
  for (const auto& s : gauges) {
    if (s.name == name) ++n;
  }
  return n;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const auto& s : counters) {
    os << s.name;
    AppendLabelsText(os, s.labels);
    os << ' ' << s.value << '\n';
  }
  for (const auto& s : gauges) {
    os << s.name;
    AppendLabelsText(os, s.labels);
    os << ' ' << s.value << '\n';
  }
  for (const auto& s : histograms) {
    uint64_t cumulative = 0;
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      const std::string le =
          i < s.bounds.size() ? FormatDouble(s.bounds[i]) : "+Inf";
      os << s.name << "_bucket";
      AppendLabelsText(os, s.labels, "le", le);
      os << ' ' << cumulative << '\n';
    }
    os << s.name << "_sum";
    AppendLabelsText(os, s.labels);
    os << ' ' << FormatDouble(s.sum) << '\n';
    os << s.name << "_count";
    AppendLabelsText(os, s.labels);
    os << ' ' << s.count << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": [";
  for (size_t i = 0; i < counters.size(); ++i) {
    const auto& s = counters[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\":\"" << EscapeJson(s.name)
       << "\",";
    AppendLabelsJson(os, s.labels);
    os << ",\"value\":" << s.value << '}';
  }
  os << (counters.empty() ? "]" : "\n  ]") << ",\n  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    const auto& s = gauges[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\":\"" << EscapeJson(s.name)
       << "\",";
    AppendLabelsJson(os, s.labels);
    os << ",\"value\":" << s.value << '}';
  }
  os << (gauges.empty() ? "]" : "\n  ]") << ",\n  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& s = histograms[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\":\"" << EscapeJson(s.name)
       << "\",";
    AppendLabelsJson(os, s.labels);
    os << ",\"count\":" << s.count << ",\"sum\":" << FormatDouble(s.sum)
       << ",\"buckets\":[";
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      os << (b == 0 ? "" : ",") << "{\"le\":";
      if (b < s.bounds.size()) {
        os << FormatDouble(s.bounds[b]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << s.buckets[b] << '}';
    }
    os << "]}";
  }
  os << (histograms.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string MetricsSnapshot::EncodeWire() const {
  std::string out;
  PutU32(out, static_cast<uint32_t>(counters.size()));
  for (const auto& s : counters) {
    PutStr(out, s.name);
    PutLabels(out, s.labels);
    PutU64(out, s.value);
  }
  PutU32(out, static_cast<uint32_t>(gauges.size()));
  for (const auto& s : gauges) {
    PutStr(out, s.name);
    PutLabels(out, s.labels);
    PutU64(out, static_cast<uint64_t>(s.value));
  }
  PutU32(out, static_cast<uint32_t>(histograms.size()));
  for (const auto& s : histograms) {
    PutStr(out, s.name);
    PutLabels(out, s.labels);
    PutU32(out, static_cast<uint32_t>(s.bounds.size()));
    for (double b : s.bounds) PutF64(out, b);
    for (uint64_t b : s.buckets) PutU64(out, b);
    PutF64(out, s.sum);
  }
  return out;
}

Status MetricsSnapshot::DecodeWire(std::string_view payload,
                                   MetricsSnapshot* out) {
  MetricsSnapshot decoded;
  WireCursor cur(payload);
  auto malformed = [] {
    return Status::InvalidArgument("malformed metrics snapshot payload");
  };

  uint32_t n = 0;
  if (!cur.U32(&n) || n > kMaxWireSamples) return malformed();
  decoded.counters.resize(n);
  for (auto& s : decoded.counters) {
    if (!cur.Str(&s.name) || !ReadLabels(cur, &s.labels) || !cur.U64(&s.value))
      return malformed();
  }

  if (!cur.U32(&n) || n > kMaxWireSamples) return malformed();
  decoded.gauges.resize(n);
  for (auto& s : decoded.gauges) {
    uint64_t bits = 0;
    if (!cur.Str(&s.name) || !ReadLabels(cur, &s.labels) || !cur.U64(&bits))
      return malformed();
    s.value = static_cast<int64_t>(bits);
  }

  if (!cur.U32(&n) || n > kMaxWireSamples) return malformed();
  decoded.histograms.resize(n);
  for (auto& s : decoded.histograms) {
    uint32_t num_bounds = 0;
    if (!cur.Str(&s.name) || !ReadLabels(cur, &s.labels) ||
        !cur.U32(&num_bounds) || num_bounds > kMaxWireBounds) {
      return malformed();
    }
    s.bounds.resize(num_bounds);
    for (auto& b : s.bounds) {
      if (!cur.F64(&b)) return malformed();
    }
    s.buckets.resize(num_bounds + 1);
    s.count = 0;
    for (auto& b : s.buckets) {
      if (!cur.U64(&b)) return malformed();
      s.count += b;
    }
    if (!cur.F64(&s.sum)) return malformed();
  }

  if (!cur.AtEnd()) return malformed();
  *out = std::move(decoded);
  return Status::OK();
}

// --- MetricsRegistry ---

Counter MetricsRegistry::GetCounter(std::string_view name,
                                    MetricLabels labels) {
  SortLabels(labels);
  MutexLock lock(mu_);
  for (auto& entry : counters_) {
    if (SameKey(name, labels, entry.name, entry.labels)) {
      return Counter(&entry.cell);
    }
  }
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  counters_.back().labels = std::move(labels);
  return Counter(&counters_.back().cell);
}

Gauge MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  SortLabels(labels);
  MutexLock lock(mu_);
  for (auto& entry : gauges_) {
    if (SameKey(name, labels, entry.name, entry.labels)) {
      return Gauge(&entry.cell);
    }
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  gauges_.back().labels = std::move(labels);
  return Gauge(&gauges_.back().cell);
}

Histogram MetricsRegistry::GetHistogram(std::string_view name,
                                        MetricLabels labels,
                                        std::vector<double> bounds) {
  SortLabels(labels);
  MutexLock lock(mu_);
  for (auto& entry : histograms_) {
    if (SameKey(name, labels, entry.name, entry.labels)) {
      return Histogram(&entry.cell);
    }
  }
  histograms_.emplace_back();
  auto& entry = histograms_.back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.cell.bounds = std::move(bounds);
  entry.cell.buckets = std::make_unique<std::atomic<uint64_t>[]>(
      entry.cell.bounds.size() + 1);
  for (size_t i = 0; i <= entry.cell.bounds.size(); ++i) {
    entry.cell.buckets[i].store(0, std::memory_order_relaxed);
  }
  return Histogram(&entry.cell);
}

void MetricsRegistry::AddCounterCallback(std::string_view name,
                                         MetricLabels labels,
                                         std::function<uint64_t()> fn) {
  SortLabels(labels);
  MutexLock lock(mu_);
  counter_callbacks_.push_back(
      {std::string(name), std::move(labels), std::move(fn)});
}

void MetricsRegistry::AddGaugeCallback(std::string_view name,
                                       MetricLabels labels,
                                       std::function<int64_t()> fn) {
  SortLabels(labels);
  MutexLock lock(mu_);
  gauge_callbacks_.push_back(
      {std::string(name), std::move(labels), std::move(fn)});
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size() + counter_callbacks_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back(
        {entry.name, entry.labels,
         entry.cell.value.load(std::memory_order_relaxed)});
  }
  for (const auto& cb : counter_callbacks_) {
    snap.counters.push_back({cb.name, cb.labels, cb.fn()});
  }
  snap.gauges.reserve(gauges_.size() + gauge_callbacks_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.labels,
                           entry.cell.value.load(std::memory_order_relaxed)});
  }
  for (const auto& cb : gauge_callbacks_) {
    snap.gauges.push_back({cb.name, cb.labels, cb.fn()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    HistogramSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.bounds = entry.cell.bounds;
    s.buckets.resize(s.bounds.size() + 1);
    s.count = 0;
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      s.buckets[i] = entry.cell.buckets[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum = entry.cell.sum.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(s));
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            SampleKeyLess<CounterSample>);
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            SampleKeyLess<GaugeSample>);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            SampleKeyLess<HistogramSample>);
  return snap;
}

}  // namespace kspdg
