// Lock-free metrics registry for the serving path.
//
// The design splits registration (cold, mutex-guarded, interned by
// name + sorted labels) from updates (hot, one relaxed fetch_add per
// event through a pre-resolved handle). A Counter/Gauge/Histogram handle
// is a raw pointer into registry-owned storage with stable addresses;
// default-constructed handles are valid no-ops, so instrumented code
// never branches on "is telemetry wired up".
//
// Scrapes are wait-free for writers: MetricsRegistry::Snapshot() reads
// every cell with relaxed loads (plus the registration mutex, which the
// update path never takes) and returns a MetricsSnapshot value — a plain
// struct that can be merged across processes (the shard-worker fleet
// ships snapshots back in Ping replies), tagged with extra labels, and
// exported as human text or strict JSON. A histogram's count is derived
// from its bucket sums at snapshot time, so a snapshot can never show a
// count that disagrees with its own buckets.
#ifndef KSPDG_OBS_METRICS_H_
#define KSPDG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"

namespace kspdg {

/// Key/value metric labels, e.g. {{"kind", "ksp"}, {"backend", "yen"}}.
/// The registry sorts them by key at registration, so two label sets that
/// differ only in order intern to the same cell.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace obs_internal {

struct CounterCell {
  std::atomic<uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<int64_t> value{0};
};

/// fetch_add for atomic<double> via CAS, portable across the toolchains CI
/// builds with (atomic<double>::fetch_add is C++20 but arrived late in
/// standard libraries).
inline void AtomicAddDouble(std::atomic<double>& cell, double v) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

struct HistogramCell {
  /// Ascending upper bounds; observations > bounds.back() land in the
  /// implicit overflow bucket, so there are bounds.size() + 1 buckets.
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  std::atomic<double> sum{0};
};

}  // namespace obs_internal

/// Monotonic event counter handle. Copyable; default-constructed handles
/// drop updates and read 0. One relaxed fetch_add per Increment.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }

  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(obs_internal::CounterCell* cell) : cell_(cell) {}
  obs_internal::CounterCell* cell_ = nullptr;
};

/// Point-in-time value handle (queue depth, epoch). Same no-op contract as
/// Counter.
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t v) const {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }

  void Add(int64_t delta) const {
    if (cell_ != nullptr)
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }

  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(obs_internal::GaugeCell* cell) : cell_(cell) {}
  obs_internal::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket distribution handle. Observe is two relaxed atomic adds
/// (bucket count + sum); the bucket is found by a linear scan over the
/// bounds, which beats binary search at the dozen-bucket sizes used here.
class Histogram {
 public:
  Histogram() = default;

  void Observe(double v) const {
    if (cell_ == nullptr) return;
    size_t bucket = 0;
    while (bucket < cell_->bounds.size() && v > cell_->bounds[bucket]) {
      ++bucket;
    }
    cell_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    obs_internal::AtomicAddDouble(cell_->sum, v);
  }

  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(obs_internal::HistogramCell* cell) : cell_(cell) {}
  obs_internal::HistogramCell* cell_ = nullptr;
};

/// Default bucket bounds (microseconds) for latency histograms: solve
/// latency, epoch writer-drain waits, enqueue-block time. Shared so every
/// latency distribution in an export is bucket-compatible and mergeable.
const std::vector<double>& LatencyBucketsMicros();

struct CounterSample {
  std::string name;
  MetricLabels labels;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  MetricLabels labels;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  MetricLabels labels;
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> buckets;
  /// Always == sum of `buckets` (derived at snapshot, never stored
  /// separately — a snapshot cannot contradict its own buckets).
  uint64_t count = 0;
  double sum = 0;
};

/// A consistent point-in-time copy of a registry (or a merge of several).
/// Plain data: copy it, ship it over the wire, diff two of them.
class MetricsSnapshot {
 public:
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Folds `other` in: counters with an identical (name, labels) key sum,
  /// gauges take the incoming value, histograms with identical keys and
  /// bounds add bucket-wise; everything else appends. Used by the remote
  /// coordinator to build the fleet-wide view from worker snapshots.
  void Merge(const MetricsSnapshot& other);

  /// Adds (or overwrites) one label on every sample — e.g. tagging a
  /// worker's snapshot with its shard id before merging fleet-wide.
  void AddLabel(const std::string& key, const std::string& value);

  /// Sum of the named counter across all label sets (0 when absent).
  uint64_t CounterTotal(std::string_view name) const;

  /// Samples of the named gauge across label sets (fleet cardinality
  /// probes, e.g. how many workers reported an epoch).
  size_t GaugeSampleCount(std::string_view name) const;

  /// Prometheus-style text: `name{k="v"} value` lines, histograms expanded
  /// into cumulative _bucket/_sum/_count series.
  std::string ToText() const;

  /// Strict JSON document with "counters" / "gauges" / "histograms" arrays
  /// (stable ordering; the overflow bucket's bound serialises as "+Inf").
  std::string ToJson() const;

  /// Compact length-checked binary encoding for the Ping-reply transport.
  /// Corrupt or truncated payloads are rejected, never trusted.
  std::string EncodeWire() const;
  static Status DecodeWire(std::string_view payload, MetricsSnapshot* out);
};

/// Handle factory + scrape surface. Registration interns by
/// (name, sorted labels): asking twice returns a handle to the same cell.
/// Callback metrics expose values that already live elsewhere as atomics
/// (RPC client counters, queue depth, epochs) without double bookkeeping —
/// the callback runs at snapshot time and must be thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge GetGauge(std::string_view name, MetricLabels labels = {});
  /// `bounds` must ascend; the bounds of the first registration win for a
  /// given (name, labels) key.
  Histogram GetHistogram(std::string_view name, MetricLabels labels,
                         std::vector<double> bounds);

  void AddCounterCallback(std::string_view name, MetricLabels labels,
                          std::function<uint64_t()> fn);
  void AddGaugeCallback(std::string_view name, MetricLabels labels,
                        std::function<int64_t()> fn);

  /// Consistent scrape: every cell read once (relaxed), callbacks
  /// evaluated, samples sorted by (name, labels). Never blocks writers.
  MetricsSnapshot Snapshot() const;

  std::string ExportText() const { return Snapshot().ToText(); }
  std::string ExportJson() const { return Snapshot().ToJson(); }

 private:
  struct CounterEntry {
    std::string name;
    MetricLabels labels;
    obs_internal::CounterCell cell;
  };
  struct GaugeEntry {
    std::string name;
    MetricLabels labels;
    obs_internal::GaugeCell cell;
  };
  struct HistogramEntry {
    std::string name;
    MetricLabels labels;
    obs_internal::HistogramCell cell;
  };
  struct CounterCallback {
    std::string name;
    MetricLabels labels;
    std::function<uint64_t()> fn;
  };
  struct GaugeCallback {
    std::string name;
    MetricLabels labels;
    std::function<int64_t()> fn;
  };

  /// Guards registration and snapshot only; Increment/Observe never take
  /// it. Deques keep cell addresses stable as entries are appended.
  /// Snapshot() invokes the registered callbacks under mu_, so callbacks
  /// must not register metrics (lock order: MetricsRegistry::mu_ before
  /// whatever the callback reads, e.g. SubmissionQueue::mu_).
  mutable Mutex mu_{"MetricsRegistry::mu_"};
  std::deque<CounterEntry> counters_ GUARDED_BY(mu_);
  std::deque<GaugeEntry> gauges_ GUARDED_BY(mu_);
  std::deque<HistogramEntry> histograms_ GUARDED_BY(mu_);
  std::vector<CounterCallback> counter_callbacks_ GUARDED_BY(mu_);
  std::vector<GaugeCallback> gauge_callbacks_ GUARDED_BY(mu_);
};

}  // namespace kspdg

#endif  // KSPDG_OBS_METRICS_H_
