// Dynamic weighted graph (Definition 1 of the paper).
//
// Topology is a fixed set of *roads* (vertex pairs); each road carries two
// dynamic weights, one per traversal direction. An *undirected* graph keeps
// the two directions equal at all times; a *directed* graph lets them evolve
// independently (§5.3 "Finding KSPs in directed graphs"). This representation
// gives all algorithms a single code path: traversing edge e out of vertex u
// costs WeightFrom(e, u).
//
// The *initial* integer weight of each direction is its virtual-fragment
// (vfrag) count (§3.4); it never changes after construction.
#ifndef KSPDG_GRAPH_GRAPH_H_
#define KSPDG_GRAPH_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace kspdg {

/// One directed weight-change event, the unit of dynamism in the system.
struct WeightUpdate {
  EdgeId edge = kInvalidEdge;
  Weight new_forward = 0;   // weight for u -> v
  Weight new_backward = 0;  // weight for v -> u (== new_forward if undirected)
};

/// Adjacency entry: the neighbouring vertex and the connecting edge.
struct Arc {
  VertexId to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
};

class Graph {
 public:
  /// Creates an empty graph with `num_vertices` vertices and no edges.
  explicit Graph(size_t num_vertices = 0, bool directed = false)
      : directed_(directed), adjacency_(num_vertices) {}

  static Graph Undirected(size_t num_vertices) {
    return Graph(num_vertices, /*directed=*/false);
  }
  static Graph Directed(size_t num_vertices) {
    return Graph(num_vertices, /*directed=*/true);
  }

  bool directed() const { return directed_; }
  size_t NumVertices() const { return adjacency_.size(); }
  size_t NumEdges() const { return edge_u_.size(); }

  /// Adds a road between u and v. `w0_fwd` / `w0_bwd` are the initial integer
  /// weights (== vfrag counts) of the two directions; for undirected graphs
  /// they must match. Returns the new edge id. Self loops and zero weights
  /// are rejected with kInvalidEdge (callers validate via HasVertex first).
  EdgeId AddEdge(VertexId u, VertexId v, VfragCount w0_fwd,
                 VfragCount w0_bwd) {
    assert(u < NumVertices() && v < NumVertices());
    assert(u != v && "self loops are not allowed in road networks");
    assert(w0_fwd > 0 && w0_bwd > 0);
    if (!directed_) assert(w0_fwd == w0_bwd);
    EdgeId id = static_cast<EdgeId>(edge_u_.size());
    edge_u_.push_back(u);
    edge_v_.push_back(v);
    vfrags_fwd_.push_back(w0_fwd);
    vfrags_bwd_.push_back(w0_bwd);
    weight_fwd_.push_back(static_cast<Weight>(w0_fwd));
    weight_bwd_.push_back(static_cast<Weight>(w0_bwd));
    adjacency_[u].push_back({v, id});
    adjacency_[v].push_back({u, id});
    return id;
  }

  /// Convenience overload for symmetric initial weights.
  EdgeId AddEdge(VertexId u, VertexId v, VfragCount w0) {
    return AddEdge(u, v, w0, w0);
  }

  std::span<const Arc> Neighbors(VertexId v) const {
    assert(v < NumVertices());
    return adjacency_[v];
  }

  size_t Degree(VertexId v) const { return adjacency_[v].size(); }

  VertexId EdgeU(EdgeId e) const { return edge_u_[e]; }
  VertexId EdgeV(EdgeId e) const { return edge_v_[e]; }

  /// The endpoint of `e` that is not `from`.
  VertexId OtherEndpoint(EdgeId e, VertexId from) const {
    return edge_u_[e] == from ? edge_v_[e] : edge_u_[e];
  }

  /// Current weight for traversing `e` out of vertex `from`.
  Weight WeightFrom(EdgeId e, VertexId from) const {
    return edge_u_[e] == from ? weight_fwd_[e] : weight_bwd_[e];
  }

  /// Vfrag count for traversing `e` out of vertex `from` (static).
  VfragCount VfragsFrom(EdgeId e, VertexId from) const {
    return edge_u_[e] == from ? vfrags_fwd_[e] : vfrags_bwd_[e];
  }

  Weight ForwardWeight(EdgeId e) const { return weight_fwd_[e]; }
  Weight BackwardWeight(EdgeId e) const { return weight_bwd_[e]; }
  VfragCount ForwardVfrags(EdgeId e) const { return vfrags_fwd_[e]; }
  VfragCount BackwardVfrags(EdgeId e) const { return vfrags_bwd_[e]; }

  /// Applies one weight update. Undirected graphs force both directions to
  /// `new_forward`.
  void SetWeight(const WeightUpdate& upd) {
    assert(upd.edge < NumEdges());
    assert(upd.new_forward > 0 && upd.new_backward > 0);
    weight_fwd_[upd.edge] = upd.new_forward;
    weight_bwd_[upd.edge] = directed_ ? upd.new_backward : upd.new_forward;
  }

  void SetWeight(EdgeId e, Weight w) { SetWeight({e, w, w}); }

  /// Unit weight (weight per vfrag, §3.4) of direction u->v of edge `e`.
  Weight UnitWeightFrom(EdgeId e, VertexId from) const {
    return WeightFrom(e, from) / static_cast<Weight>(VfragsFrom(e, from));
  }

  /// Looks up the edge between u and v, or kInvalidEdge if absent.
  /// Linear in Degree(u); road networks have tiny degrees.
  EdgeId FindEdge(VertexId u, VertexId v) const {
    for (const Arc& a : adjacency_[u]) {
      if (a.to == v) return a.edge;
    }
    return kInvalidEdge;
  }

  /// Resets all weights to their initial (vfrag) values.
  void ResetWeights() {
    for (size_t e = 0; e < NumEdges(); ++e) {
      weight_fwd_[e] = static_cast<Weight>(vfrags_fwd_[e]);
      weight_bwd_[e] = static_cast<Weight>(vfrags_bwd_[e]);
    }
  }

  /// Snapshot of the two weight arrays; used to implement the Gcurr buffer.
  struct WeightVector {
    std::vector<Weight> forward;
    std::vector<Weight> backward;
    uint64_t version = 0;
  };

  WeightVector SnapshotWeights(uint64_t version = 0) const {
    return WeightVector{weight_fwd_, weight_bwd_, version};
  }

  /// Restores a previously captured snapshot (sizes must match).
  Status RestoreWeights(const WeightVector& snap) {
    if (snap.forward.size() != NumEdges() ||
        snap.backward.size() != NumEdges()) {
      return Status::InvalidArgument("weight snapshot size mismatch");
    }
    weight_fwd_ = snap.forward;
    weight_bwd_ = snap.backward;
    return Status::OK();
  }

  /// Approximate heap footprint in bytes (for the memory-cost figures).
  size_t MemoryBytes() const;

  /// True if every vertex can reach every other (ignoring direction).
  bool IsConnected() const;

 private:
  bool directed_;
  std::vector<std::vector<Arc>> adjacency_;
  // Struct-of-arrays edge storage: better locality for the weight scans the
  // index-maintenance path performs.
  std::vector<VertexId> edge_u_;
  std::vector<VertexId> edge_v_;
  std::vector<VfragCount> vfrags_fwd_;
  std::vector<VfragCount> vfrags_bwd_;
  std::vector<Weight> weight_fwd_;
  std::vector<Weight> weight_bwd_;
};

}  // namespace kspdg

#endif  // KSPDG_GRAPH_GRAPH_H_
