#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "core/rng.h"

namespace kspdg {

namespace {

/// Disjoint-set forest used to keep thinning connectivity-safe.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct CandidateEdge {
  VertexId u, v;
};

}  // namespace

Graph MakeRoadNetwork(const RoadNetworkOptions& options) {
  assert(options.rows >= 2 && options.cols >= 2);
  assert(options.min_weight >= 1 && options.max_weight >= options.min_weight);
  Rng rng(options.seed);
  const uint32_t rows = options.rows;
  const uint32_t cols = options.cols;
  const size_t n = static_cast<size_t>(rows) * cols;
  auto vertex_at = [cols](uint32_t r, uint32_t c) -> VertexId {
    return static_cast<VertexId>(r) * cols + c;
  };

  // 1. Enumerate the grid edges (plus optional diagonals), shuffled.
  std::vector<CandidateEdge> candidates;
  candidates.reserve(2 * n);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) candidates.push_back({vertex_at(r, c), vertex_at(r, c + 1)});
      if (r + 1 < rows) candidates.push_back({vertex_at(r, c), vertex_at(r + 1, c)});
      if (r + 1 < rows && c + 1 < cols && rng.NextBool(options.diagonal_prob)) {
        candidates.push_back({vertex_at(r, c), vertex_at(r + 1, c + 1)});
      }
    }
  }
  for (size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.NextBounded(i)]);
  }

  // 2. Pick a random spanning tree first (guaranteed connectivity), then
  //    keep each remaining edge with probability (1 - thinning).
  UnionFind uf(n);
  std::vector<CandidateEdge> kept;
  std::vector<CandidateEdge> extras;
  kept.reserve(candidates.size());
  for (const CandidateEdge& e : candidates) {
    if (uf.Union(e.u, e.v)) {
      kept.push_back(e);
    } else {
      extras.push_back(e);
    }
  }
  for (const CandidateEdge& e : extras) {
    if (!rng.NextBool(options.thinning)) kept.push_back(e);
  }

  // 3. Materialise the graph with random integer travel times.
  Graph g(n, options.directed);
  const uint64_t weight_span =
      options.max_weight - options.min_weight + uint64_t{1};
  for (const CandidateEdge& e : kept) {
    VfragCount w_fwd = options.min_weight + rng.NextBounded(weight_span);
    VfragCount w_bwd = w_fwd;
    if (options.directed && rng.NextBool(options.asymmetric_prob)) {
      w_bwd = options.min_weight + rng.NextBounded(weight_span);
    }
    g.AddEdge(e.u, e.v, w_fwd, w_bwd);
  }
  return g;
}

Graph MakeRandomConnected(size_t num_vertices, size_t extra_edges,
                          uint32_t min_w, uint32_t max_w, uint64_t seed,
                          bool directed) {
  assert(num_vertices >= 2);
  assert(min_w >= 1 && max_w >= min_w);
  Rng rng(seed);
  Graph g(num_vertices, directed);
  const uint64_t span = max_w - min_w + uint64_t{1};
  auto random_weight = [&] {
    return static_cast<VfragCount>(min_w + rng.NextBounded(span));
  };
  // Random attachment tree: connect vertex i to a random earlier vertex.
  for (VertexId v = 1; v < num_vertices; ++v) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(v));
    VfragCount w = random_weight();
    g.AddEdge(u, v, w,
              directed ? random_weight() : w);
  }
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = 20 * (extra_edges + 1);
  while (added < extra_edges && attempts++ < max_attempts) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v || g.FindEdge(u, v) != kInvalidEdge) continue;
    VfragCount w = random_weight();
    g.AddEdge(u, v, w, directed ? random_weight() : w);
    ++added;
  }
  return g;
}

Graph MakePaperFigure3Graph() {
  // Reconstruction of Figure 3 consistent with the per-subgraph edge-weight
  // lists of Figure 4 and (approximately) Example 8. The figure has no v15;
  // internal ids: v1..v14 -> 0..13, v16..v19 -> 14..17.
  Graph g(18, /*directed=*/false);
  auto v = [](int paper_id) -> VertexId {
    assert(paper_id >= 1 && paper_id <= 19 && paper_id != 15);
    return static_cast<VertexId>(paper_id <= 14 ? paper_id - 1 : paper_id - 2);
  };
  // SG1: v1..v6 (weights 3 3 6 3 2 4 4).
  g.AddEdge(v(1), v(2), 3);
  g.AddEdge(v(1), v(3), 3);
  g.AddEdge(v(2), v(3), 6);
  g.AddEdge(v(2), v(4), 3);
  g.AddEdge(v(3), v(5), 2);
  g.AddEdge(v(4), v(5), 4);
  g.AddEdge(v(5), v(6), 4);
  // SG2: v4, v6, v7, v8, v9, v10.
  g.AddEdge(v(4), v(7), 3);
  g.AddEdge(v(7), v(8), 3);
  g.AddEdge(v(8), v(9), 5);
  g.AddEdge(v(6), v(9), 4);
  g.AddEdge(v(4), v(6), 6);
  g.AddEdge(v(9), v(10), 6);
  // SG3: v9, v10, v11, v12, v13, v14 (weights 5 7 5 3 3 6).
  g.AddEdge(v(9), v(11), 5);
  g.AddEdge(v(11), v(12), 3);
  g.AddEdge(v(12), v(13), 3);
  g.AddEdge(v(10), v(11), 7);
  g.AddEdge(v(10), v(14), 5);
  g.AddEdge(v(13), v(14), 6);
  // SG4: v13, v14, v16, v17, v18, v19 (weights 3 5 2 2 3 3).
  g.AddEdge(v(13), v(16), 5);
  g.AddEdge(v(16), v(14), 3);
  g.AddEdge(v(13), v(18), 3);
  g.AddEdge(v(18), v(17), 2);
  g.AddEdge(v(17), v(16), 2);
  g.AddEdge(v(17), v(19), 3);
  return g;
}

}  // namespace kspdg
