// Synthetic road-network generators.
//
// The paper evaluates on DIMACS road networks (NY, COL, FLA, CUSA). Those
// public files are not bundled here, so the benchmarks run on synthetic
// networks with the structural properties that drive the experiments: near-
// planar topology, small average degree (~2.5-3), positive integer travel
// times, and strong locality. `RoadNetwork` builds a jittered grid, thins it
// toward road-like degree while preserving connectivity, and adds a few
// diagonal "highway" shortcuts. `RandomConnected` provides small arbitrary
// graphs for tests.
#ifndef KSPDG_GRAPH_GENERATORS_H_
#define KSPDG_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace kspdg {

struct RoadNetworkOptions {
  uint32_t rows = 32;
  uint32_t cols = 32;
  /// Fraction of non-tree grid edges removed to thin degree toward road-like
  /// values. 0 keeps the full grid (avg degree ~4); 0.45 yields ~2.2-2.8.
  double thinning = 0.35;
  /// Probability of adding a diagonal shortcut at a grid cell.
  double diagonal_prob = 0.05;
  /// Initial integer weights drawn uniformly from [min_weight, max_weight].
  uint32_t min_weight = 3;
  uint32_t max_weight = 20;
  bool directed = false;
  /// In directed mode, probability that the two directions get independently
  /// drawn initial weights (otherwise symmetric).
  double asymmetric_prob = 0.0;
  uint64_t seed = 42;
};

/// Generates a connected synthetic road network of rows*cols vertices.
Graph MakeRoadNetwork(const RoadNetworkOptions& options);

/// Generates a connected random graph: a random spanning tree plus
/// `extra_edges` random non-parallel edges, weights in [min_w, max_w].
Graph MakeRandomConnected(size_t num_vertices, size_t extra_edges,
                          uint32_t min_w, uint32_t max_w, uint64_t seed,
                          bool directed = false);

/// Builds the example graph G of Figure 3 in the paper (19 vertices,
/// 24 edges); vertex ids are the paper's v1..v19 minus one.
Graph MakePaperFigure3Graph();

}  // namespace kspdg

#endif  // KSPDG_GRAPH_GENERATORS_H_
