#include "graph/graph.h"

#include <vector>

namespace kspdg {

size_t Graph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += adjacency_.capacity() * sizeof(adjacency_[0]);
  for (const auto& arcs : adjacency_) bytes += arcs.capacity() * sizeof(Arc);
  bytes += edge_u_.capacity() * sizeof(VertexId) * 2;
  bytes += vfrags_fwd_.capacity() * sizeof(VfragCount) * 2;
  bytes += weight_fwd_.capacity() * sizeof(Weight) * 2;
  return bytes;
}

bool Graph::IsConnected() const {
  if (NumVertices() == 0) return true;
  std::vector<char> seen(NumVertices(), 0);
  std::vector<VertexId> stack = {0};
  seen[0] = 1;
  size_t count = 1;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    for (const Arc& a : Neighbors(u)) {
      if (!seen[a.to]) {
        seen[a.to] = 1;
        ++count;
        stack.push_back(a.to);
      }
    }
  }
  return count == NumVertices();
}

}  // namespace kspdg
