// Reader/writer for the 9th DIMACS Implementation Challenge shortest-path
// format (`.gr`), the format of the NY/COL/FLA/CUSA road networks the paper
// evaluates on. When the real files are available they can be loaded
// directly; otherwise the synthetic generators in generators.h stand in.
#ifndef KSPDG_GRAPH_DIMACS_IO_H_
#define KSPDG_GRAPH_DIMACS_IO_H_

#include <iosfwd>
#include <string>

#include "core/status.h"
#include "graph/graph.h"

namespace kspdg {

/// Parses a DIMACS `.gr` stream:
///   c <comment>
///   p sp <num_vertices> <num_arcs>
///   a <u> <v> <weight>        (1-based vertex ids, integer weights)
/// DIMACS lists each road as two arcs. With `directed == false`, arc pairs
/// (u,v)/(v,u) are merged into one undirected edge (the first weight seen
/// wins; road travel times are symmetric in these files). With
/// `directed == true`, pairs are merged into one road with per-direction
/// weights, and one-way arcs get both directions set to the single weight.
Result<Graph> ReadDimacs(std::istream& in, bool directed);

/// Convenience file wrapper around ReadDimacs.
Result<Graph> ReadDimacsFile(const std::string& path, bool directed);

/// Writes `g` in DIMACS `.gr` format (current weights, rounded to integers).
Status WriteDimacs(const Graph& g, std::ostream& out);

}  // namespace kspdg

#endif  // KSPDG_GRAPH_DIMACS_IO_H_
