#include "graph/traffic_model.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace kspdg {

TrafficModel::TrafficModel(const Graph& graph,
                           const TrafficModelOptions& options)
    : graph_(&graph), options_(options), rng_(options.seed) {
  assert(options_.alpha >= 0.0 && options_.alpha <= 1.0);
  assert(options_.tau >= 0.0);
  shuffle_.resize(graph.NumEdges());
  std::iota(shuffle_.begin(), shuffle_.end(), 0);
}

WeightUpdate TrafficModel::MakeUpdate(EdgeId e) {
  auto vary = [&](VfragCount w0) {
    double factor = 1.0 + rng_.NextDouble(-options_.tau, options_.tau);
    double floor = options_.min_factor * static_cast<double>(w0);
    double w = factor * static_cast<double>(w0);
    if (w < floor) w = floor;
    if (w <= 0.0) w = 1e-6;
    return w;
  };
  WeightUpdate upd;
  upd.edge = e;
  upd.new_forward = vary(graph_->ForwardVfrags(e));
  if (graph_->directed() && options_.independent_directions) {
    upd.new_backward = vary(graph_->BackwardVfrags(e));
  } else {
    // Mirror the forward variation factor onto the backward direction so the
    // two directions change identically (the paper's undirected simulation).
    double factor = upd.new_forward / static_cast<double>(graph_->ForwardVfrags(e));
    upd.new_backward = factor * static_cast<double>(graph_->BackwardVfrags(e));
  }
  return upd;
}

std::vector<WeightUpdate> TrafficModel::NextBatch() {
  size_t count = static_cast<size_t>(options_.alpha *
                                     static_cast<double>(graph_->NumEdges()));
  return NextBatchOfSize(count);
}

std::vector<WeightUpdate> TrafficModel::NextBatchOfSize(size_t count) {
  count = std::min(count, graph_->NumEdges());
  // Partial Fisher-Yates: the first `count` entries of shuffle_ become a
  // uniform random sample of distinct edges.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng_.NextBounded(shuffle_.size() - i);
    std::swap(shuffle_[i], shuffle_[j]);
  }
  std::vector<WeightUpdate> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(MakeUpdate(shuffle_[i]));
  return batch;
}

std::vector<WeightUpdate> TrafficModel::Step(Graph& graph) {
  assert(graph.NumEdges() == graph_->NumEdges());
  std::vector<WeightUpdate> batch = NextBatch();
  for (const WeightUpdate& upd : batch) graph.SetWeight(upd);
  return batch;
}

}  // namespace kspdg
