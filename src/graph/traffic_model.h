// Dynamic travel-time evolution (§6.2).
//
// The paper varies travel times with the time-varying model of Fleischmann
// et al. [5], parameterised by α (fraction of edges whose weight changes per
// snapshot) and τ (relative variation range). We reproduce exactly that
// parameterisation: at each step, α·|E| distinct random edges receive a new
// weight w0·(1 + u), u ~ Uniform[−τ, τ], anchored to the initial weight so
// traffic oscillates around the free-flow travel time instead of drifting.
#ifndef KSPDG_GRAPH_TRAFFIC_MODEL_H_
#define KSPDG_GRAPH_TRAFFIC_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "graph/graph.h"

namespace kspdg {

struct TrafficModelOptions {
  /// Fraction of edges changing weight at each snapshot (default α = 35%).
  double alpha = 0.35;
  /// Relative variation range (default τ = 30%): new = w0 * (1 + U[-τ, τ]).
  double tau = 0.30;
  /// If true (and the graph is directed), the two directions of an edge
  /// receive independently drawn variations; otherwise they change
  /// identically, which is how the paper simulates "varying undirected
  /// graphs" on directed datasets.
  bool independent_directions = false;
  /// Weights never drop below this fraction of the initial weight.
  double min_factor = 0.05;
  uint64_t seed = 7;
};

/// Generates batches of WeightUpdate events against a fixed graph topology.
class TrafficModel {
 public:
  TrafficModel(const Graph& graph, const TrafficModelOptions& options);

  /// Produces the next snapshot's updates without applying them.
  std::vector<WeightUpdate> NextBatch();

  /// Produces a batch of exactly `count` updates (used by throughput tests).
  std::vector<WeightUpdate> NextBatchOfSize(size_t count);

  /// Convenience: generate a batch and apply it to `graph` (which must share
  /// the topology of the construction-time graph).
  std::vector<WeightUpdate> Step(Graph& graph);

  const TrafficModelOptions& options() const { return options_; }

 private:
  WeightUpdate MakeUpdate(EdgeId e);

  const Graph* graph_;  // topology + initial weights (not owned)
  TrafficModelOptions options_;
  Rng rng_;
  std::vector<EdgeId> shuffle_;  // reusable edge permutation buffer
};

}  // namespace kspdg

#endif  // KSPDG_GRAPH_TRAFFIC_MODEL_H_
