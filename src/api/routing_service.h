// RoutingService: the single public facade over the KSP machinery.
//
// One instance owns the dynamic graph, the DTLP index built over it, and the
// registry of solver backends, and serves the paper's workload (§1, §5):
// KSP queries streaming in *while* traffic updates stream in. Concurrency is
// epoch-based snapshotting on a reader/writer lock:
//
//   Query(request)            shared lock   — any number run concurrently
//   QueryBatch(requests)      shared lock   — one acquisition for the whole
//                                             batch, answered in parallel on
//                                             the service-owned thread pool
//   ApplyTrafficBatch(batch)  unique lock   — drains readers, applies
//                                             Algorithm 2, bumps the epoch
//
// Every response carries the epoch it was answered at, so clients can detect
// staleness and tests can assert that no query ever observed a half-applied
// batch. This turns the old "safe to share across query threads as long as
// no update is applied concurrently" comment on the engine into an enforced
// invariant.
#ifndef KSPDG_API_ROUTING_SERVICE_H_
#define KSPDG_API_ROUTING_SERVICE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "api/batch_ticket.h"
#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "api/routing_service_interface.h"
#include "api/service_metrics.h"
#include "cands/cands.h"
#include "core/epoch_lock.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace kspdg {

struct RoutingServiceOptions {
  /// Service-wide defaults; any field can be overridden per request.
  RoutingOptions defaults;
  /// DTLP construction knobs (partition size z, level-1 ξ, build threads).
  DtlpOptions dtlp;
  /// Build and maintain the CANDS baseline index (exact boundary-pair
  /// shortest paths per subgraph) so the kShortestPath kind's "cands"
  /// backend is servable. Its rebuild-on-update maintenance runs inside
  /// every ApplyTrafficBatch — the paper's Figures 40-41 cost contrast —
  /// and is reported in TrafficBatchResult. Disable to skip both costs.
  bool enable_cands = true;
  /// Threads answering one QueryBatch (0 = one per hardware thread, capped
  /// at 16; 1 = batches execute inline on the caller). The pool is owned by
  /// the service and shared by all batches.
  unsigned batch_threads = 0;
  /// Batches the async SubmitBatch queue buffers before admission engages:
  /// no-envelope submits block (backpressure), QoS submits shed or displace
  /// queued batch-class work (0 is treated as 1).
  size_t submit_queue_capacity = 8;
  /// Max pending SubmitBatch envelopes one tenant_id may hold at once;
  /// over-quota QoS submits are shed with kResourceExhausted instead of
  /// blocking (0 = unlimited, tenants with an empty id are unmetered).
  size_t per_tenant_quota = 0;
};

/// Running totals for monitoring — a *view* computed from the service's
/// metrics registry (snapshot, not transactional).
struct ServiceCounters {
  uint64_t queries_ok = 0;
  uint64_t queries_rejected = 0;
  uint64_t batches_applied = 0;
  uint64_t updates_applied = 0;
};

class RoutingService : public RoutingServiceInterface {
 public:
  /// Takes ownership of `graph`, partitions it and builds the DTLP
  /// (Algorithm 1), and loads the default backends. Fails if the service
  /// defaults are invalid or the partitioner rejects the graph.
  static Result<std::unique_ptr<RoutingService>> Create(
      Graph graph, RoutingServiceOptions options = {});

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Answers q(source, target) — any QueryKind — on the current weight
  /// snapshot with the backend named by the merged options. Thread-safe;
  /// runs concurrently with other queries and serialises against
  /// ApplyTrafficBatch.
  Result<RouteResponse> Query(const RouteRequest& request) const override;

  /// Answers a whole batch of queries on ONE weight snapshot: requests are
  /// validated up front, the reader lock is acquired once, and the valid
  /// requests are grouped by backend and executed on the service's thread
  /// pool. Each worker draws solver scratch (pooled candidate heaps /
  /// partial caches) from a persistent per-worker arena that stays warm
  /// across batches until a traffic batch moves the epoch. Invalid requests
  /// receive per-item statuses without failing the batch. Thread-safe;
  /// concurrent batches and single queries run under the same reader lock
  /// and serialise against ApplyTrafficBatch.
  Result<RouteBatchResponse> QueryBatch(
      std::span<const RouteRequest> requests) const override;

  /// Asynchronous QueryBatch: enqueues the batch on the service's bounded
  /// submission queue and returns a ticket immediately, so the caller can
  /// produce the next batch while this one solves. Blocks only when the
  /// queue is full (backpressure). The optional callback fires on the
  /// submission worker thread once the ticket is fulfilled. Thread-safe;
  /// batches execute in submission order and every accepted batch completes
  /// before the service finishes destruction.
  [[nodiscard]] BatchTicket SubmitBatch(std::vector<RouteRequest> requests,
                          BatchCallback callback = nullptr) const override;

  /// Applies one batch of weight updates atomically: the graph's current
  /// weights and the DTLP (Algorithm 2) move to the next epoch together,
  /// with all concurrent queries drained. The batch is validated up front
  /// and rejected as a whole on any bad entry. Thread-safe.
  Result<TrafficBatchResult> ApplyTrafficBatch(
      std::span<const WeightUpdate> updates) override;

  /// Adds a custom backend. Must be called before serving traffic — the
  /// registry reads on the query path take no lock, so registration was
  /// never safe against in-flight queries. Once the first
  /// Query/QueryBatch/SubmitBatch has been accepted the registry is frozen
  /// and registration fails with kFailedPrecondition. (Best-effort
  /// enforcement of that lifecycle: it rejects any registration that
  /// happens-after an observed query; truly concurrent first-query vs
  /// registration remains the caller's setup bug to avoid.)
  Status RegisterSolver(std::unique_ptr<KspSolver> solver);

  /// Epoch of the current weight snapshot (0 until the first batch).
  uint64_t CurrentEpoch() const override;

  /// Registered backend names, sorted.
  std::vector<std::string> BackendNames() const override {
    return registry_.Names();
  }

  /// Consistent scrape of the service's metrics registry: query totals by
  /// kind/backend, solve-latency histograms, queue depth, epoch-drain
  /// telemetry. Never blocks queries or updates.
  MetricsSnapshot Metrics() const override { return metrics_.Snapshot(); }

  ServiceCounters counters() const;

  /// Read-only views for tooling; do not mutate through aliases while the
  /// service is live, all writes must go through ApplyTrafficBatch.
  const Graph& graph() const { return graph_; }
  const Dtlp& dtlp() const { return *dtlp_; }
  /// nullptr when created with enable_cands = false.
  const CandsIndex* cands() const { return cands_.get(); }
  const RoutingOptions& defaults() const { return options_.defaults; }

 private:
  RoutingService(Graph graph, RoutingServiceOptions options)
      : graph_(std::move(graph)), options_(std::move(options)) {}

  /// Delegates to PrepareRoutingQuery (shared with ShardedRoutingService).
  /// Fills `prepared` on success. Does not touch counters; callers account
  /// rejections themselves.
  Status PrepareQuery(const RouteRequest& request,
                      PreparedRoute* prepared) const;

  /// Marks the registry frozen. Only the first accepted query writes the
  /// flag, so the hot path stays read-only afterwards.
  void MarkServing() const {
    if (!serving_.load(std::memory_order_relaxed)) {
      serving_.store(true, std::memory_order_release);
    }
  }

  Graph graph_;
  RoutingServiceOptions options_;
  /// Owns every metric cell the members below hold handles into. Declared
  /// before them so it is destroyed LAST — in particular after
  /// submit_queue_, whose destructor still drains batches that bump
  /// counters.
  MetricsRegistry metrics_;
  std::unique_ptr<Dtlp> dtlp_;
  /// The CANDS baseline index behind the "cands" backend; rebuilt-on-update
  /// inside ApplyTrafficBatch. Null when enable_cands is false.
  std::unique_ptr<CandsIndex> cands_;
  SolverRegistry registry_;
  /// Set by the first served query; freezes the registry (see
  /// RegisterSolver).
  mutable std::atomic<bool> serving_{false};
  /// Executes QueryBatch work items; owned so batches reuse warm threads
  /// instead of paying thread creation per call.
  std::unique_ptr<ThreadPool> pool_;
  /// Per-worker scratch arenas, persistent across batches so caches stay
  /// warm while the epoch holds still. Guarded by batch_mu_, which also
  /// serialises the parallel section of concurrent QueryBatch calls (the
  /// pool would serialise them anyway).
  mutable Mutex batch_mu_{"RoutingService::batch_mu_"};
  mutable std::vector<SolverScratchArena> arenas_ GUARDED_BY(batch_mu_);
  /// Epoch the arenas were last used at; a mismatch triggers
  /// SolverScratch::OnSnapshotChange() before the batch runs.
  mutable uint64_t arena_epoch_ GUARDED_BY(batch_mu_) = 0;

  /// Guards graph_ weights, the DTLP, and epoch_ (readers shared, updates
  /// exclusive; write-preferring so traffic batches cannot starve).
  mutable EpochLock mu_{"RoutingService::mu_"};
  /// Written under the exclusive lock, read under the shared lock; atomic
  /// so the registry's epoch gauge callback can sample it during a scrape
  /// without joining the lock protocol.
  std::atomic<uint64_t> epoch_{0};

  /// Query/update handles into metrics_ (shared bundle; ServiceCounters is
  /// a view over these).
  ServiceMetrics svc_metrics_;

  /// Async SubmitBatch queue. Declared last so it is destroyed FIRST:
  /// destruction drains the accepted batches, which still run QueryBatch
  /// against the members above.
  std::unique_ptr<SubmissionQueue> submit_queue_;
};

}  // namespace kspdg

#endif  // KSPDG_API_ROUTING_SERVICE_H_
