// The pluggable solver interface behind RoutingService.
//
// A KspSolver answers one query against an immutable weight snapshot: the
// service holds its reader lock for the whole Solve() call, so backends may
// freely read the graph and the DTLP without further synchronisation, and
// must not retain pointers past the call. All backends produce the same
// KspQueryResult shape (paths ascending by distance, plus engine stats), so
// callers can switch backends per request without changing response handling.
#ifndef KSPDG_API_KSP_SOLVER_H_
#define KSPDG_API_KSP_SOLVER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "core/status.h"
#include "core/types.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "kspdg/ksp_dg_options.h"

namespace kspdg {

class PartialProvider;
class CandsIndex;

/// Everything a backend may look at while solving. `options` has been merged
/// with the service defaults and validated; `graph` and `dtlp` stay frozen
/// for the duration of Solve().
struct SolverInput {
  const Graph* graph = nullptr;
  const Dtlp* dtlp = nullptr;
  /// Where the KSP-DG refine step computes boundary-pair partial paths.
  /// nullptr (the default) means inline on the calling thread
  /// (LocalPartialProvider); a sharded or distributed deployment injects a
  /// provider that ships the request to the owning shard/worker instead.
  /// Ignored by backends that do not use the DTLP. Must stay valid for the
  /// duration of Solve().
  PartialProvider* partials = nullptr;
  /// The CANDS baseline index (service-owned, maintained by
  /// ApplyTrafficBatch). nullptr when the service was created with
  /// enable_cands = false; the "cands" backend then rejects queries with
  /// kFailedPrecondition. Ignored by every other backend.
  const CandsIndex* cands = nullptr;
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  RoutingOptions options;
};

/// Opaque per-worker scratch state for a solver backend. The service keeps
/// one scratch per (worker, backend) pair in an arena that outlives any
/// single batch and hands it back on every Solve call that worker makes, so
/// per-query allocations — Yen's ban buffers, KSP-DG partial-path caches —
/// are pooled instead of rebuilt per request. A scratch is never used by
/// two threads at once. Weight-dependent cached state is dropped through
/// OnSnapshotChange() whenever the epoch moved since the arena's last use.
class SolverScratch {
 public:
  virtual ~SolverScratch() = default;

  /// The weight snapshot changed since this scratch was last used: discard
  /// any cached state derived from edge weights. Buffers whose contents are
  /// weight-independent (e.g. epoch-stamped ban arrays) may be kept.
  virtual void OnSnapshotChange() {}
};

class KspSolver {
 public:
  virtual ~KspSolver() = default;

  /// Registry key, e.g. "kspdg". Must be stable for the solver's lifetime.
  virtual std::string_view name() const = 0;

  /// Creates scratch state reusable across consecutive Solve calls on one
  /// worker thread at a fixed weight snapshot. nullptr (the default) means
  /// this backend keeps no reusable state.
  virtual std::unique_ptr<SolverScratch> NewScratch() const { return nullptr; }

  /// True when Solve routes boundary-pair partial computations through
  /// SolverInput::partials (the KSP-DG refine step). A sharded service uses
  /// this to substitute its own per-shard partial caching for the backend's
  /// merged scratch cache, so cached state lives with the shard that owns
  /// it and flushes on that shard's epoch bump.
  virtual bool UsesPartialProvider() const { return false; }

  /// Computes up to options.k shortest loopless paths source -> target.
  /// Returning fewer (or zero) paths is not an error; Status is reserved for
  /// requests the backend cannot serve (e.g. unsupported k). `scratch` is
  /// either nullptr or an object this solver returned from NewScratch().
  virtual Result<KspQueryResult> Solve(const SolverInput& input,
                                       SolverScratch* scratch = nullptr)
      const = 0;
};

/// Lazily populated solver scratch, one slot per backend — the per-worker
/// arena both service front-ends keep warm across batches (see SolverScratch
/// for the reuse contract). A handful of backends at most: linear scan beats
/// hashing. Not thread-safe; each pool worker owns one arena.
struct SolverScratchArena {
  std::vector<std::pair<const KspSolver*, std::unique_ptr<SolverScratch>>>
      by_solver;

  SolverScratch* Get(const KspSolver* solver) {
    for (auto& [known, scratch] : by_solver) {
      if (known == solver) return scratch.get();
    }
    by_solver.emplace_back(solver, solver->NewScratch());
    return by_solver.back().second.get();
  }

  /// The weight snapshot moved: drop weight-derived cached state from every
  /// pooled scratch before the arena is used at the new epoch.
  void OnSnapshotChange() {
    for (auto& [solver, scratch] : by_solver) {
      if (scratch != nullptr) scratch->OnSnapshotChange();
    }
  }
};

class SolverRegistry;

/// A validated, kind-resolved request ready to hand to a solver: what
/// PrepareRoutingQuery produces and FinishRouteResponse consumes.
struct PreparedRoute {
  QueryKind kind = QueryKind::kKsp;
  /// The k the client asked for (what the response reports). For
  /// kDiverseKsp, `merged.k` has been raised to k' = requested_k *
  /// overfetch; for every other kind the two are equal.
  uint32_t requested_k = 0;
  /// Options the solver sees (merged, kind-adjusted, validated).
  RoutingOptions merged;
  const KspSolver* solver = nullptr;
};

/// Shared request preparation for every service front-end (unsharded and
/// sharded): merges `defaults` with the request's overrides, applies the
/// kind's semantics (kShortestPath forces k = 1 and defaults to the "cands"
/// backend; kDiverseKsp over-fetches k' = k * overfetch), validates the
/// result, resolves the backend in `registry`, and range-checks the
/// endpoints against `graph`. Every front-end must route through this one
/// function so they all reject the same requests with the same status
/// codes.
Status PrepareRoutingQuery(const SolverRegistry& registry,
                           const RoutingOptions& defaults, const Graph& graph,
                           const RouteRequest& request, PreparedRoute* out);

/// Builds the CANDS baseline index a service front-end owns when its
/// enable_cands option is set: the partition/build-thread knobs are derived
/// from the DTLP options in ONE place, so the sharded and unsharded
/// services build identical indexes by construction (the shard-parity
/// guarantee for the "cands" backend depends on it).
Result<std::unique_ptr<CandsIndex>> BuildCandsIndex(const Graph& graph,
                                                    const DtlpOptions& dtlp);

/// Shared response shaping for every service front-end: turns a solver
/// result into the kind-tagged payload. For kDiverseKsp this runs the §4
/// diversity pipeline (per-query EP-Index + MFP compaction + MinHash/LSH
/// filter, src/mfp/diversity.h) over the k' candidates — a pure function of
/// the candidate list, so sharded answers stay byte-identical to unsharded
/// ones. `options` is the merged options the solve ran with (moved into the
/// response; passed explicitly because batch workers move it through
/// SolverInput first); the caller stamps epoch and solve_micros afterwards.
RouteResponse FinishRouteResponse(QueryKind kind, uint32_t requested_k,
                                  RoutingOptions options, bool directed,
                                  KspQueryResult solved);

/// Name -> solver map owned by the service. Not thread-safe for writes;
/// register all backends before serving queries.
class SolverRegistry {
 public:
  /// Registry preloaded with the four standard backends: "kspdg" (DTLP
  /// filter-and-refine), "yen", "findksp", and "dijkstra" (k=1 degenerate
  /// case).
  static SolverRegistry Default();

  /// Fails with kInvalidArgument on empty names and kFailedPrecondition on
  /// duplicates.
  Status Register(std::unique_ptr<KspSolver> solver);

  /// nullptr when no solver has the name.
  const KspSolver* Find(std::string_view name) const;

  /// Registered names, sorted ascending (for error messages and tooling).
  std::vector<std::string> Names() const;

  size_t size() const { return solvers_.size(); }

 private:
  std::vector<std::unique_ptr<KspSolver>> solvers_;
};

}  // namespace kspdg

#endif  // KSPDG_API_KSP_SOLVER_H_
