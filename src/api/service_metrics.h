// ServiceMetrics: the instrumentation bundle every serving front-end owns.
//
// All three RoutingServiceInterface implementations record the same
// query-path events — accepted/rejected totals, queries_total{kind,backend},
// per-kind solve-latency histograms, traffic-batch totals. This bundle
// pre-registers every handle at service construction (registration takes
// the registry mutex; the registry is frozen against new backends once the
// first query is served), so the hot path is pure handle increments: no
// lock, no string building, one relaxed fetch_add per counter touched.
//
// The legacy ServiceCounters / ShardedServiceCounters structs are now
// *views* computed from these handles — the registry is the single source
// of truth.
#ifndef KSPDG_API_SERVICE_METRICS_H_
#define KSPDG_API_SERVICE_METRICS_H_

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/routing_options.h"
#include "obs/metrics.h"

namespace kspdg {

struct ServiceMetrics {
  /// Registers the service-wide handles plus a queries_total{kind,backend}
  /// counter matrix for every backend name. Call once at Create, before
  /// any query is served.
  void Init(MetricsRegistry& registry,
            const std::vector<std::string>& backends);

  /// Extends the matrix for a backend registered after Init (custom
  /// solvers). Must be called before the first query, like RegisterSolver.
  void AddBackend(MetricsRegistry& registry, std::string_view backend);

  /// One accepted query: bumps queries_ok_total,
  /// queries_total{kind,backend}, and the kind's latency histogram.
  /// Lock-free; safe from any number of threads.
  void RecordQuery(QueryKind kind, std::string_view backend,
                   double solve_micros) const;

  /// `n` rejected queries (validation or solve failures).
  void RecordRejected(uint64_t n = 1) const { queries_rejected.Increment(n); }

  /// One applied traffic batch of `updates` weight updates.
  void RecordTrafficBatch(uint64_t updates) const {
    traffic_batches.Increment();
    weight_updates.Increment(updates);
  }

  Counter queries_ok;
  Counter queries_rejected;
  Counter traffic_batches;
  Counter weight_updates;
  /// Indexed by static_cast<size_t>(QueryKind).
  std::array<Histogram, 3> solve_latency;
  /// queries_total{kind,backend}: one pre-registered counter per cell.
  /// Read-only while serving (std::less<> enables string_view lookups
  /// without a temporary string).
  std::map<std::string, std::array<Counter, 3>, std::less<>> per_backend;
};

}  // namespace kspdg

#endif  // KSPDG_API_SERVICE_METRICS_H_
