// ServiceMetrics: the instrumentation bundle every serving front-end owns.
//
// All three RoutingServiceInterface implementations record the same
// query-path events — accepted/rejected totals, queries_total{kind,backend},
// per-kind solve-latency histograms, traffic-batch totals. This bundle
// pre-registers every handle at service construction (registration takes
// the registry mutex; the registry is frozen against new backends once the
// first query is served), so the hot path is pure handle increments: no
// lock, no string building, one relaxed fetch_add per counter touched.
//
// The legacy ServiceCounters / ShardedServiceCounters structs are now
// *views* computed from these handles — the registry is the single source
// of truth.
#ifndef KSPDG_API_SERVICE_METRICS_H_
#define KSPDG_API_SERVICE_METRICS_H_

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/routing_options.h"
#include "obs/metrics.h"

namespace kspdg {

/// Admission-decision totals every RoutingServiceInterface implementation
/// exports under the SAME series names — admission_admitted_total,
/// admission_shed_deadline_total, admission_shed_quota_total — so fleet
/// dashboards and the overload bench read any service identically. The
/// invariant: admitted + shed_deadline + shed_quota + rejected
/// (queries_rejected_total minus the shed counters) accounts for every
/// issued request.
struct AdmissionCounters {
  uint64_t admitted = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_quota = 0;
};

/// Reads the admission series out of any service's Metrics() snapshot.
AdmissionCounters AdmissionCountersFrom(const MetricsSnapshot& snapshot);

/// The counter-handle subset BatchTicket::SubmitTo needs so batches shed at
/// the queue (never solved) settle the same series as solved batches.
/// Default-constructed handles are no-ops.
struct AdmissionMetricsView {
  Counter shed_deadline;
  Counter shed_quota;
  /// queries_rejected_total: shed items also count here, so the coarse
  /// ok/rejected accounting stays exact ("every issued item is ok or not").
  Counter rejected;
};

struct ServiceMetrics {
  /// Registers the service-wide handles plus a queries_total{kind,backend}
  /// counter matrix for every backend name. Call once at Create, before
  /// any query is served.
  void Init(MetricsRegistry& registry,
            const std::vector<std::string>& backends);

  /// Extends the matrix for a backend registered after Init (custom
  /// solvers). Must be called before the first query, like RegisterSolver.
  void AddBackend(MetricsRegistry& registry, std::string_view backend);

  /// One accepted query: bumps queries_ok_total,
  /// queries_total{kind,backend}, and the kind's latency histogram.
  /// Lock-free; safe from any number of threads.
  void RecordQuery(QueryKind kind, std::string_view backend,
                   double solve_micros) const;

  /// `n` rejected queries (validation or solve failures).
  void RecordRejected(uint64_t n = 1) const { queries_rejected.Increment(n); }

  /// One failed sync Query: bumps queries_rejected_total always, plus the
  /// admission shed counter the status encodes (kDeadlineExceeded /
  /// kResourceExhausted), so shed work is visible as shed, not just failed.
  void RecordQueryFailure(const Status& status) const;

  /// The one post-solve accounting step all three QueryBatch
  /// implementations share: classifies every item (RouteBatchItem::
  /// admission), tallies num_ok / num_rejected / num_shed, and settles the
  /// admission + rejection counters. Served items were already recorded per
  /// solve via RecordQuery.
  void FinalizeBatchAdmission(RouteBatchResponse& batch) const;

  /// Queue-level view for BatchTicket::SubmitTo.
  AdmissionMetricsView admission_view() const {
    AdmissionMetricsView view;
    view.shed_deadline = admission_shed_deadline;
    view.shed_quota = admission_shed_quota;
    view.rejected = queries_rejected;
    return view;
  }

  /// One applied traffic batch of `updates` weight updates.
  void RecordTrafficBatch(uint64_t updates) const {
    traffic_batches.Increment();
    weight_updates.Increment(updates);
  }

  Counter queries_ok;
  Counter queries_rejected;
  Counter traffic_batches;
  Counter weight_updates;
  /// Admission decisions (see AdmissionCounters). admission_admitted tracks
  /// queries_ok one-for-one; the shed counters are a refinement of
  /// queries_rejected by admission reason.
  Counter admission_admitted;
  Counter admission_shed_deadline;
  Counter admission_shed_quota;
  /// Indexed by static_cast<size_t>(QueryKind).
  std::array<Histogram, 3> solve_latency;
  /// queries_total{kind,backend}: one pre-registered counter per cell.
  /// Read-only while serving (std::less<> enables string_view lookups
  /// without a temporary string).
  std::map<std::string, std::array<Counter, 3>, std::less<>> per_backend;
};

}  // namespace kspdg

#endif  // KSPDG_API_SERVICE_METRICS_H_
