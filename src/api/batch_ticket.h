// BatchTicket: the handle returned by the asynchronous SubmitBatch APIs.
//
// SubmitBatch enqueues a batch of requests on the service's bounded
// submission queue (core/submission_queue.h) and returns immediately, so a
// caller can keep producing requests while earlier batches solve. The
// ticket is the future half of that contract: Wait() blocks until the batch
// has completed and yields the same Result<RouteBatchResponse> a synchronous
// QueryBatch call would have returned; Ready() polls. An optional
// BatchCallback passed to SubmitBatch fires on the submission worker thread
// after the ticket is fulfilled, for callers that prefer push over pull.
//
// Tickets are cheap shareable handles (shared state under the hood): they
// may be copied, stored, and waited on from any thread, and stay valid
// after the owning service is destroyed (destruction drains the queue, so
// every accepted batch is answered first).
#ifndef KSPDG_API_BATCH_TICKET_H_
#define KSPDG_API_BATCH_TICKET_H_

#include <cassert>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "core/status.h"
#include "core/submission_queue.h"

namespace kspdg {

class RoutingServiceInterface;

/// Completion callback for SubmitBatch: receives the batch outcome on the
/// submission worker thread, after the ticket is fulfilled (so Wait()
/// inside the callback would not deadlock — it returns immediately).
using BatchCallback = std::function<void(const Result<RouteBatchResponse>&)>;

/// Completion handle for one asynchronously submitted batch (see file
/// comment). Default-constructed tickets are invalid placeholders.
class BatchTicket {
 public:
  using Solve =
      std::function<Result<RouteBatchResponse>(std::span<const RouteRequest>)>;

  BatchTicket() = default;

  /// The one SubmitBatch implementation both services share: enqueues
  /// `solve(requests)` on `queue` and returns the ticket for it. The job
  /// owns its request list, so the caller may reuse its buffers the moment
  /// this returns. A refused submission (queue shut down) still fulfils
  /// the ticket — with FailedPrecondition — and still fires the callback
  /// (on the calling thread), so no waiter can hang on a dropped batch.
  static BatchTicket SubmitTo(SubmissionQueue& queue,
                              std::vector<RouteRequest> requests,
                              BatchCallback callback, Solve solve) {
    auto state = std::make_shared<State>();
    BatchTicket ticket(state);
    bool accepted = queue.Submit(
        [state, requests = std::move(requests), callback,
         solve = std::move(solve)] {
          state->Fulfill(solve(requests));
          if (callback) callback(*state->outcome);
        });
    if (!accepted) {
      state->Fulfill(Status::FailedPrecondition(
          "service is shutting down; batch was not accepted"));
      if (callback) callback(*state->outcome);
    }
    return ticket;
  }

  /// Interface-typed convenience: enqueues `service.QueryBatch(requests)`.
  /// This is the one SubmitBatch body every implementation shares — the
  /// service passes its own queue and itself. Defined out of line (in
  /// routing_service_interface.cc) because the interface is incomplete
  /// here. `service` must outlive the queue it hands in, which every
  /// implementation guarantees by owning the queue as its last member.
  static BatchTicket SubmitTo(SubmissionQueue& queue,
                              const RoutingServiceInterface& service,
                              std::vector<RouteRequest> requests,
                              BatchCallback callback);

  /// False only for default-constructed (placeholder) tickets; SubmitBatch
  /// always returns a valid ticket, even when the submission was refused.
  bool valid() const { return state_ != nullptr; }

  /// True once the batch has completed (non-blocking). Invalid tickets are
  /// never ready.
  bool Ready() const {
    if (state_ == nullptr) return false;
    std::lock_guard<std::mutex> guard(state_->mu);
    return state_->outcome.has_value();
  }

  /// Blocks until the batch completes and returns its outcome — exactly
  /// what the equivalent synchronous QueryBatch call would have returned,
  /// or a FailedPrecondition status if the service refused the submission
  /// (shutting down). The reference stays valid while any copy of this
  /// ticket is alive. May be called repeatedly and from several threads.
  const Result<RouteBatchResponse>& Wait() const {
    assert(valid() && "Wait() on an invalid BatchTicket");
    std::unique_lock<std::mutex> guard(state_->mu);
    state_->cv.wait(guard, [&] { return state_->outcome.has_value(); });
    return *state_->outcome;
  }

 private:
  /// Shared promise half; SubmitTo fulfils it exactly once.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<RouteBatchResponse>> outcome;

    void Fulfill(Result<RouteBatchResponse> result) {
      {
        std::lock_guard<std::mutex> guard(mu);
        assert(!outcome.has_value() && "BatchTicket fulfilled twice");
        outcome.emplace(std::move(result));
      }
      cv.notify_all();
    }
  };

  explicit BatchTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace kspdg

#endif  // KSPDG_API_BATCH_TICKET_H_
