// BatchTicket: the handle returned by the asynchronous SubmitBatch APIs.
//
// SubmitBatch enqueues a batch of requests on the service's admission-
// controlled submission queue (core/submission_queue.h) and returns
// immediately. The ticket is the future half of that contract: Wait()
// blocks until the batch has completed and yields the same
// Result<RouteBatchResponse> a synchronous QueryBatch call would have
// returned; Ready() polls. An optional BatchCallback passed to SubmitBatch
// fires on the submission worker thread after the ticket is fulfilled, for
// callers that prefer push over pull.
//
// Admission semantics live HERE, once, for all three services: the first
// request's RequestContext is the batch's queue envelope. A batch with no
// QoS envelope keeps the original blocking-backpressure submission; a batch
// with one never blocks — if admission sheds it (deadline expired at submit
// or dequeue time, tenant over quota, displaced by a more urgent arrival)
// the ticket is still fulfilled with an OK RouteBatchResponse whose every
// item carries the shed status (kDeadlineExceeded / kResourceExhausted) and
// AdmissionOutcome. Shedding never fails the surrounding batch; only a
// shut-down service fails the ticket (FailedPrecondition).
//
// Tickets are cheap shareable handles (shared state under the hood): they
// may be copied, stored, and waited on from any thread, and stay valid
// after the owning service is destroyed (destruction drains the queue, so
// every accepted batch is answered first).
#ifndef KSPDG_API_BATCH_TICKET_H_
#define KSPDG_API_BATCH_TICKET_H_

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "api/service_metrics.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_annotations.h"

namespace kspdg {

class RoutingServiceInterface;

/// Completion callback for SubmitBatch: receives the batch outcome on the
/// submission worker thread, after the ticket is fulfilled (so Wait()
/// inside the callback would not deadlock — it returns immediately).
using BatchCallback = std::function<void(const Result<RouteBatchResponse>&)>;

/// The answer a queue-shed batch is fulfilled with: OK envelope, every item
/// carrying the shed status + outcome. `epoch` stays 0 — no snapshot was
/// read.
inline RouteBatchResponse MakeShedBatchResponse(size_t num_items,
                                                AdmissionOutcome outcome) {
  Status status =
      outcome == AdmissionOutcome::kShedDeadline
          ? Status::DeadlineExceeded(
                "deadline expired in the submission queue; shed")
          : Status::ResourceExhausted(
                "shed by admission control (tenant quota or full queue)");
  RouteBatchResponse batch;
  batch.items.resize(num_items);
  for (RouteBatchItem& item : batch.items) {
    item.status = status;
    item.admission = outcome;
  }
  batch.num_shed = num_items;
  return batch;
}

/// Completion handle for one asynchronously submitted batch (see file
/// comment). Default-constructed tickets are invalid placeholders.
class BatchTicket {
 public:
  using Solve =
      std::function<Result<RouteBatchResponse>(std::span<const RouteRequest>)>;

  BatchTicket() = default;

  /// The one SubmitBatch implementation every service shares: enqueues
  /// `solve(requests)` on `queue` under the first request's RequestContext
  /// and returns the ticket for it. The job owns its request list, so the
  /// caller may reuse its buffers the moment this returns. A shed batch
  /// fulfils the ticket with MakeShedBatchResponse (and settles `metrics`);
  /// a refused submission (queue shut down) fulfils it with
  /// FailedPrecondition. Either way the callback still fires (on the
  /// shedding thread), so no waiter can hang on a dropped batch.
  [[nodiscard]] static BatchTicket SubmitTo(
      SubmissionQueue& queue, std::vector<RouteRequest> requests,
      BatchCallback callback, Solve solve,
      const AdmissionMetricsView& metrics = {}) {
    auto state = std::make_shared<State>();
    BatchTicket ticket(state);
    const RequestContext envelope =
        requests.empty() ? RequestContext{} : requests.front().context;
    if (!envelope.HasQos()) {
      // No QoS envelope: the original contract — blocking backpressure,
      // never shed.
      bool accepted = queue.Submit(
          [state, requests = std::move(requests), callback,
           solve = std::move(solve)] {
            state->Fulfill(solve(requests));
            if (callback) callback(state->Get());
          });
      if (!accepted) {
        state->Fulfill(Status::FailedPrecondition(
            "service is shutting down; batch was not accepted"));
        if (callback) callback(state->Get());
      }
      return ticket;
    }
    const size_t num_items = requests.size();
    SubmitOutcome submitted = queue.Submit(
        envelope,
        [state, requests = std::move(requests), callback,
         solve = std::move(solve), metrics,
         num_items](AdmissionOutcome outcome) {
          if (outcome == AdmissionOutcome::kServed) {
            state->Fulfill(solve(requests));
          } else {
            // Shed at the queue: the batch never reached QueryBatch, so its
            // accounting is settled here — same series a solved batch's
            // shed items land in.
            (outcome == AdmissionOutcome::kShedDeadline ? metrics.shed_deadline
                                                        : metrics.shed_quota)
                .Increment(num_items);
            metrics.rejected.Increment(num_items);
            state->Fulfill(MakeShedBatchResponse(num_items, outcome));
          }
          if (callback) callback(state->Get());
        });
    if (submitted == SubmitOutcome::kRefused) {
      state->Fulfill(Status::FailedPrecondition(
          "service is shutting down; batch was not accepted"));
      if (callback) callback(state->Get());
    }
    return ticket;
  }

  /// Interface-typed convenience: enqueues `service.QueryBatch(requests)`.
  /// This is the one SubmitBatch body every implementation shares — the
  /// service passes its own queue, itself, and its admission counter
  /// handles. Defined out of line (in routing_service_interface.cc) because
  /// the interface is incomplete here. `service` must outlive the queue it
  /// hands in, which every implementation guarantees by owning the queue as
  /// its last member.
  [[nodiscard]] static BatchTicket SubmitTo(
      SubmissionQueue& queue, const RoutingServiceInterface& service,
      std::vector<RouteRequest> requests, BatchCallback callback,
      const AdmissionMetricsView& metrics = {});

  /// False only for default-constructed (placeholder) tickets; SubmitBatch
  /// always returns a valid ticket, even when the submission was refused.
  bool valid() const { return state_ != nullptr; }

  /// True once the batch has completed (non-blocking). Invalid tickets are
  /// never ready.
  bool Ready() const {
    if (state_ == nullptr) return false;
    MutexLock guard(state_->mu);
    return state_->outcome.has_value();
  }

  /// Blocks until the batch completes and returns its outcome — exactly
  /// what the equivalent synchronous QueryBatch call would have returned, a
  /// shed response (every item kDeadlineExceeded / kResourceExhausted) if
  /// admission answered without solving, or a FailedPrecondition status if
  /// the service refused the submission (shutting down). The reference
  /// stays valid while any copy of this ticket is alive. May be called
  /// repeatedly and from several threads.
  const Result<RouteBatchResponse>& Wait() const {
    assert(valid() && "Wait() on an invalid BatchTicket");
    MutexLock guard(state_->mu);
    while (!state_->outcome.has_value()) state_->cv.Wait(state_->mu);
    return *state_->outcome;
  }

 private:
  /// Shared promise half; SubmitTo fulfils it exactly once.
  struct State {
    Mutex mu{"BatchTicket::State::mu"};
    CondVar cv;
    std::optional<Result<RouteBatchResponse>> outcome GUARDED_BY(mu);

    void Fulfill(Result<RouteBatchResponse> result) {
      {
        MutexLock guard(mu);
        assert(!outcome.has_value() && "BatchTicket fulfilled twice");
        outcome.emplace(std::move(result));
      }
      cv.NotifyAll();
    }

    /// The fulfilled outcome; callable only after Fulfill (the completion
    /// paths call it on the fulfilling thread). Once set, the outcome is
    /// immutable, so the returned reference outlives the internal lock.
    const Result<RouteBatchResponse>& Get() {
      MutexLock guard(mu);
      assert(outcome.has_value() && "Get() before Fulfill()");
      return *outcome;
    }
  };

  explicit BatchTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace kspdg

#endif  // KSPDG_API_BATCH_TICKET_H_
