#include "api/routing_service.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/strings.h"
#include "core/timer.h"

namespace kspdg {

Result<std::unique_ptr<RoutingService>> RoutingService::Create(
    Graph graph, RoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  // The service must be heap-allocated before the DTLP is built: the index
  // keeps a pointer to the service-owned graph.
  std::unique_ptr<RoutingService> service(
      new RoutingService(std::move(graph), std::move(options)));
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  if (service->options_.enable_cands) {
    Result<std::unique_ptr<CandsIndex>> cands =
        BuildCandsIndex(service->graph_, service->options_.dtlp);
    if (!cands.ok()) return cands.status();
    service->cands_ = std::move(cands).value();
  }
  service->registry_ = SolverRegistry::Default();
  service->pool_ = std::make_unique<ThreadPool>(
      DefaultBatchThreads(service->options_.batch_threads));
  service->arenas_.resize(service->pool_->num_threads());
  service->submit_queue_ = std::make_unique<SubmissionQueue>(
      service->options_.submit_queue_capacity, /*num_workers=*/1);
  return service;
}

Status RoutingService::PrepareQuery(const RouteRequest& request,
                                    PreparedRoute* prepared) const {
  return PrepareRoutingQuery(registry_, options_.defaults, graph_, request,
                             prepared);
}

Result<RouteResponse> RoutingService::Query(const RouteRequest& request) const {
  MarkServing();
  PreparedRoute prepared;
  Status status = PrepareQuery(request, &prepared);
  if (!status.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }

  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.cands = cands_.get();
  input.source = request.source;
  input.target = request.target;
  input.options = std::move(prepared.merged);

  // Snapshot section: weights and DTLP are frozen until the lock drops, so
  // the whole solve (including the kDiverseKsp filter, which is a pure
  // function of the candidate list) sees one consistent epoch.
  std::shared_lock<EpochLock> lock(mu_);
  WallTimer timer;
  Result<KspQueryResult> solved = prepared.solver->Solve(input);
  if (!solved.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return solved.status();
  }
  RouteResponse response =
      FinishRouteResponse(prepared.kind, prepared.requested_k,
                          std::move(input.options), graph_.directed(),
                          std::move(solved).value());
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = epoch_;
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Result<RouteBatchResponse> RoutingService::QueryBatch(
    std::span<const RouteRequest> requests) const {
  MarkServing();
  RouteBatchResponse batch;
  batch.items.resize(requests.size());

  // Phase 1 (outside the lock): validate every request and resolve its
  // backend. Failures become per-item statuses, never a batch failure.
  struct Prepared {
    size_t index = 0;
    PreparedRoute route;
  };
  std::vector<Prepared> work;
  work.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Prepared prepared;
    prepared.index = i;
    Status status = PrepareQuery(requests[i], &prepared.route);
    if (!status.ok()) {
      batch.items[i].status = std::move(status);
      continue;
    }
    work.push_back(std::move(prepared));
  }

  // Phase 2: group by backend so the contiguous chunks a worker claims
  // mostly share a solver and its scratch stays warm across them.
  std::stable_sort(work.begin(), work.end(),
                   [](const Prepared& a, const Prepared& b) {
                     return a.route.solver->name() < b.route.solver->name();
                   });

  // Phase 3 (snapshot section): ONE reader-lock acquisition covers every
  // solve, so the whole batch is answered at a single epoch. Each work item
  // writes only its own response slot; no synchronisation needed. batch_mu_
  // keeps the persistent arenas single-batch-at-a-time, and is taken BEFORE
  // the reader lock so queued batches wait outside the snapshot section — a
  // waiting traffic writer then drains at most one in-flight batch, not the
  // whole queue.
  std::lock_guard<std::mutex> batch_guard(batch_mu_);
  std::shared_lock<EpochLock> lock(mu_);
  WallTimer timer;
  const uint64_t epoch = epoch_;
  batch.epoch = epoch;
  if (arena_epoch_ != epoch) {
    // Weights moved since the arenas were last warm: weight-derived caches
    // (KSP-DG partials) must not survive into this snapshot.
    for (SolverScratchArena& arena : arenas_) arena.OnSnapshotChange();
    arena_epoch_ = epoch;
  }
  // Chunks large enough to amortise claiming, small enough to balance the
  // (highly skewed) per-query solve costs across workers.
  size_t chunk =
      std::max<size_t>(1, work.size() / (4 * size_t{pool_->num_threads()}));
  pool_->ParallelFor(
      work.size(), chunk, [&](unsigned worker, size_t j) {
        Prepared& p = work[j];
        SolverInput input;
        input.graph = &graph_;
        input.dtlp = dtlp_.get();
        input.cands = cands_.get();
        input.source = requests[p.index].source;
        input.target = requests[p.index].target;
        // Each item runs exactly once, so its merged options move through
        // the input and into the response.
        input.options = std::move(p.route.merged);
        RouteBatchItem& item = batch.items[p.index];
        WallTimer solve_timer;
        Result<KspQueryResult> solved =
            p.route.solver->Solve(input, arenas_[worker].Get(p.route.solver));
        if (!solved.ok()) {
          item.status = solved.status();
          return;
        }
        item.response = FinishRouteResponse(
            p.route.kind, p.route.requested_k, std::move(input.options),
            graph_.directed(), std::move(solved).value());
        item.response.stats.solve_micros = solve_timer.ElapsedMicros();
        item.response.epoch = epoch;
      });
  lock.unlock();
  batch.batch_micros = timer.ElapsedMicros();

  for (const KspBatchItem& item : batch.items) {
    if (item.status.ok()) {
      ++batch.num_ok;
    } else {
      ++batch.num_rejected;
    }
  }
  queries_ok_.fetch_add(batch.num_ok, std::memory_order_relaxed);
  queries_rejected_.fetch_add(batch.num_rejected, std::memory_order_relaxed);
  return batch;
}

BatchTicket RoutingService::SubmitBatch(std::vector<RouteRequest> requests,
                                        BatchCallback callback) const {
  MarkServing();
  return BatchTicket::SubmitTo(
      *submit_queue_, std::move(requests), std::move(callback),
      [this](std::span<const KspRequest> batch) { return QueryBatch(batch); });
}

Result<TrafficBatchResult> RoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking the writer lock: a rejected batch must leave the
  // snapshot untouched (and NumEdges is immutable, so no lock is needed).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }
  std::unique_lock<EpochLock> lock(mu_);
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);
  TrafficBatchResult result;
  result.dtlp = dtlp_->ApplyUpdates(updates);
  if (cands_ != nullptr) {
    // CANDS maintenance: every touched subgraph's exact boundary-pair
    // shortest paths are recomputed — deliberately inside the exclusive
    // window so the bench measures the paper's rebuild-vs-incremental
    // contrast on the same serving path.
    WallTimer cands_timer;
    result.cands = cands_->ApplyUpdates(updates);
    result.cands_micros = cands_timer.ElapsedMicros();
  }
  result.epoch = ++epoch_;
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  updates_applied_.fetch_add(updates.size(), std::memory_order_relaxed);
  return result;
}

uint64_t RoutingService::CurrentEpoch() const {
  std::shared_lock<EpochLock> lock(mu_);
  return epoch_;
}

ServiceCounters RoutingService::counters() const {
  ServiceCounters counters;
  counters.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  counters.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  counters.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  counters.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace kspdg
