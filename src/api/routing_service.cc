#include "api/routing_service.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/strings.h"
#include "core/timer.h"

namespace kspdg {

Result<std::unique_ptr<RoutingService>> RoutingService::Create(
    Graph graph, RoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  // The service must be heap-allocated before the DTLP is built: the index
  // keeps a pointer to the service-owned graph.
  std::unique_ptr<RoutingService> service(
      new RoutingService(std::move(graph), std::move(options)));
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  if (service->options_.enable_cands) {
    Result<std::unique_ptr<CandsIndex>> cands =
        BuildCandsIndex(service->graph_, service->options_.dtlp);
    if (!cands.ok()) return cands.status();
    service->cands_ = std::move(cands).value();
  }
  service->registry_ = SolverRegistry::Default();
  service->pool_ = std::make_unique<ThreadPool>(
      DefaultBatchThreads(service->options_.batch_threads));
  service->arenas_.resize(service->pool_->num_threads());

  // Wire instrumentation before any traffic: every hot-path handle is
  // resolved here, so serving pays one relaxed fetch_add per event and
  // never touches the registry mutex.
  service->svc_metrics_.Init(service->metrics_, service->registry_.Names());
  service->mu_.InstrumentWriter(
      service->metrics_.GetCounter("epoch_writer_drains_total"),
      service->metrics_.GetHistogram("epoch_writer_wait_micros", {},
                                     LatencyBucketsMicros()));
  service->metrics_.AddGaugeCallback(
      "epoch", {}, [svc = service.get()] {
        return static_cast<int64_t>(
            svc->epoch_.load(std::memory_order_relaxed));
      });

  SubmissionQueueMetrics queue_metrics;
  queue_metrics.enqueue_blocked_total =
      service->metrics_.GetCounter("submission_queue_enqueue_blocked_total");
  queue_metrics.enqueue_block_micros = service->metrics_.GetHistogram(
      "submission_queue_enqueue_block_micros", {}, LatencyBucketsMicros());
  queue_metrics.shed_deadline_total =
      service->metrics_.GetCounter("submission_queue_shed_deadline_total");
  queue_metrics.shed_quota_total =
      service->metrics_.GetCounter("submission_queue_shed_quota_total");
  AdmissionOptions admission;
  admission.per_tenant_quota = service->options_.per_tenant_quota;
  service->submit_queue_ = std::make_unique<SubmissionQueue>(
      service->options_.submit_queue_capacity, /*num_workers=*/1,
      std::move(queue_metrics), admission);
  service->metrics_.AddGaugeCallback(
      "submission_queue_depth", {}, [queue = service->submit_queue_.get()] {
        return static_cast<int64_t>(queue->pending());
      });
  for (RequestPriority priority :
       {RequestPriority::kInteractive, RequestPriority::kNormal,
        RequestPriority::kBatch}) {
    service->metrics_.AddGaugeCallback(
        "submission_queue_depth_by_priority",
        {{"priority", PriorityName(priority)}},
        [queue = service->submit_queue_.get(), priority] {
          return static_cast<int64_t>(queue->pending(priority));
        });
  }
  service->metrics_.AddCounterCallback(
      "submission_queue_submitted_total", {},
      [queue = service->submit_queue_.get()] { return queue->submitted(); });
  service->metrics_.AddCounterCallback(
      "submission_queue_completed_total", {},
      [queue = service->submit_queue_.get()] { return queue->completed(); });
  return service;
}

Status RoutingService::RegisterSolver(std::unique_ptr<KspSolver> solver) {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "RegisterSolver must run before the first query is served");
  }
  const std::string name(solver->name());
  KSPDG_RETURN_NOT_OK(registry_.Register(std::move(solver)));
  // Pre-register the backend's queries_total{kind,backend} cells so the
  // query hot path stays registration-free.
  svc_metrics_.AddBackend(metrics_, name);
  return Status::OK();
}

Status RoutingService::PrepareQuery(const RouteRequest& request,
                                    PreparedRoute* prepared) const {
  return PrepareRoutingQuery(registry_, options_.defaults, graph_, request,
                             prepared);
}

Result<RouteResponse> RoutingService::Query(const RouteRequest& request) const {
  MarkServing();
  PreparedRoute prepared;
  Status status = PrepareQuery(request, &prepared);
  if (!status.ok()) {
    svc_metrics_.RecordQueryFailure(status);
    return status;
  }

  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.cands = cands_.get();
  input.source = request.source;
  input.target = request.target;
  input.options = std::move(prepared.merged);

  // Snapshot section: weights and DTLP are frozen until the lock drops, so
  // the whole solve (including the kDiverseKsp filter, which is a pure
  // function of the candidate list) sees one consistent epoch.
  EpochReaderLock lock(mu_);
  WallTimer timer;
  Result<KspQueryResult> solved = prepared.solver->Solve(input);
  if (!solved.ok()) {
    svc_metrics_.RecordQueryFailure(solved.status());
    return solved.status();
  }
  RouteResponse response =
      FinishRouteResponse(prepared.kind, prepared.requested_k,
                          std::move(input.options), graph_.directed(),
                          std::move(solved).value());
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = epoch_.load(std::memory_order_relaxed);
  svc_metrics_.RecordQuery(prepared.kind, response.backend,
                           response.stats.solve_micros);
  return response;
}

Result<RouteBatchResponse> RoutingService::QueryBatch(
    std::span<const RouteRequest> requests) const {
  MarkServing();
  RouteBatchResponse batch;
  batch.items.resize(requests.size());

  // Phase 1 (outside the lock): validate every request and resolve its
  // backend. Failures become per-item statuses, never a batch failure.
  struct Prepared {
    size_t index = 0;
    PreparedRoute route;
  };
  std::vector<Prepared> work;
  work.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Prepared prepared;
    prepared.index = i;
    Status status = PrepareQuery(requests[i], &prepared.route);
    if (!status.ok()) {
      batch.items[i].status = std::move(status);
      continue;
    }
    work.push_back(std::move(prepared));
  }

  // Phase 2: group by backend so the contiguous chunks a worker claims
  // mostly share a solver and its scratch stays warm across them.
  std::stable_sort(work.begin(), work.end(),
                   [](const Prepared& a, const Prepared& b) {
                     return a.route.solver->name() < b.route.solver->name();
                   });

  // Phase 3 (snapshot section): ONE reader-lock acquisition covers every
  // solve, so the whole batch is answered at a single epoch. Each work item
  // writes only its own response slot; no synchronisation needed. batch_mu_
  // keeps the persistent arenas single-batch-at-a-time, and is taken BEFORE
  // the reader lock so queued batches wait outside the snapshot section — a
  // waiting traffic writer then drains at most one in-flight batch, not the
  // whole queue.
  MutexLock batch_guard(batch_mu_);
  EpochReaderLock lock(mu_);
  WallTimer timer;
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  batch.epoch = epoch;
  if (arena_epoch_ != epoch) {
    // Weights moved since the arenas were last warm: weight-derived caches
    // (KSP-DG partials) must not survive into this snapshot.
    for (SolverScratchArena& arena : arenas_) arena.OnSnapshotChange();
    arena_epoch_ = epoch;
  }
  // The pool threads do not hold batch_mu_ — they are handed disjoint
  // arena slots while this thread keeps the whole batch section locked,
  // which the analysis cannot see through the lambda. The raw pointer is
  // the deliberate escape hatch.
  SolverScratchArena* const pool_arenas = arenas_.data();
  // Chunks large enough to amortise claiming, small enough to balance the
  // (highly skewed) per-query solve costs across workers.
  size_t chunk =
      std::max<size_t>(1, work.size() / (4 * size_t{pool_->num_threads()}));
  pool_->ParallelFor(
      work.size(), chunk, [&](unsigned worker, size_t j) {
        Prepared& p = work[j];
        SolverInput input;
        input.graph = &graph_;
        input.dtlp = dtlp_.get();
        input.cands = cands_.get();
        input.source = requests[p.index].source;
        input.target = requests[p.index].target;
        // Each item runs exactly once, so its merged options move through
        // the input and into the response.
        input.options = std::move(p.route.merged);
        RouteBatchItem& item = batch.items[p.index];
        WallTimer solve_timer;
        Result<KspQueryResult> solved = p.route.solver->Solve(
            input, pool_arenas[worker].Get(p.route.solver));
        if (!solved.ok()) {
          item.status = solved.status();
          return;
        }
        item.response = FinishRouteResponse(
            p.route.kind, p.route.requested_k, std::move(input.options),
            graph_.directed(), std::move(solved).value());
        item.response.stats.solve_micros = solve_timer.ElapsedMicros();
        item.response.epoch = epoch;
        svc_metrics_.RecordQuery(p.route.kind, item.response.backend,
                                 item.response.stats.solve_micros);
      });
  lock.Unlock();
  batch.batch_micros = timer.ElapsedMicros();

  // Accepted items were recorded per solve (kind/backend/latency); the
  // admission classification and the rejection/shed totals settle here.
  svc_metrics_.FinalizeBatchAdmission(batch);
  return batch;
}

BatchTicket RoutingService::SubmitBatch(std::vector<RouteRequest> requests,
                                        BatchCallback callback) const {
  MarkServing();
  return BatchTicket::SubmitTo(*submit_queue_, *this, std::move(requests),
                               std::move(callback),
                               svc_metrics_.admission_view());
}

Result<TrafficBatchResult> RoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking the writer lock: a rejected batch must leave the
  // snapshot untouched (and NumEdges is immutable, so no lock is needed).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }
  EpochWriterLock lock(mu_);
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);
  TrafficBatchResult result;
  result.dtlp = dtlp_->ApplyUpdates(updates);
  if (cands_ != nullptr) {
    // CANDS maintenance: every touched subgraph's exact boundary-pair
    // shortest paths are recomputed — deliberately inside the exclusive
    // window so the bench measures the paper's rebuild-vs-incremental
    // contrast on the same serving path.
    WallTimer cands_timer;
    result.cands = cands_->ApplyUpdates(updates);
    result.cands_micros = cands_timer.ElapsedMicros();
  }
  result.epoch = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(result.epoch, std::memory_order_relaxed);
  svc_metrics_.RecordTrafficBatch(updates.size());
  return result;
}

uint64_t RoutingService::CurrentEpoch() const {
  EpochReaderLock lock(mu_);
  return epoch_.load(std::memory_order_relaxed);
}

ServiceCounters RoutingService::counters() const {
  ServiceCounters counters;
  counters.queries_ok = svc_metrics_.queries_ok.value();
  counters.queries_rejected = svc_metrics_.queries_rejected.value();
  counters.batches_applied = svc_metrics_.traffic_batches.value();
  counters.updates_applied = svc_metrics_.weight_updates.value();
  return counters;
}

}  // namespace kspdg
