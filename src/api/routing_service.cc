#include "api/routing_service.h"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "core/strings.h"
#include "core/timer.h"

namespace kspdg {

Result<std::unique_ptr<RoutingService>> RoutingService::Create(
    Graph graph, RoutingServiceOptions options) {
  KSPDG_RETURN_NOT_OK(options.defaults.Validate());
  // The service must be heap-allocated before the DTLP is built: the index
  // keeps a pointer to the service-owned graph.
  std::unique_ptr<RoutingService> service(
      new RoutingService(std::move(graph), std::move(options)));
  Result<std::unique_ptr<Dtlp>> dtlp =
      Dtlp::Build(service->graph_, service->options_.dtlp);
  if (!dtlp.ok()) return dtlp.status();
  service->dtlp_ = std::move(dtlp).value();
  service->registry_ = SolverRegistry::Default();
  return service;
}

Result<KspResponse> RoutingService::Query(const KspRequest& request) const {
  RoutingOptions merged = MergeOptions(options_.defaults, request.options);
  Status valid = merged.Validate();
  if (!valid.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }
  const KspSolver* solver = registry_.Find(merged.backend);
  if (solver == nullptr) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("unknown backend '" + merged.backend +
                            "' (registered: " + JoinNames(registry_.Names()) +
                            ")");
  }
  if (request.source >= graph_.NumVertices() ||
      request.target >= graph_.NumVertices()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("query vertex out of range");
  }
  if (request.source == request.target) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("source equals target");
  }

  SolverInput input;
  input.graph = &graph_;
  input.dtlp = dtlp_.get();
  input.source = request.source;
  input.target = request.target;
  input.options = merged;

  // Snapshot section: weights and DTLP are frozen until the lock drops, so
  // the whole solve sees one consistent epoch.
  std::shared_lock<EpochLock> lock(mu_);
  WallTimer timer;
  Result<KspQueryResult> solved = solver->Solve(input);
  if (!solved.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return solved.status();
  }
  KspResponse response;
  response.paths = std::move(solved.value().paths);
  response.stats.engine = solved.value().stats;
  response.stats.solve_micros = timer.ElapsedMicros();
  response.epoch = epoch_;
  response.k = merged.k;
  response.backend = merged.backend;
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Result<TrafficBatchResult> RoutingService::ApplyTrafficBatch(
    std::span<const WeightUpdate> updates) {
  // Validate before taking the writer lock: a rejected batch must leave the
  // snapshot untouched (and NumEdges is immutable, so no lock is needed).
  for (const WeightUpdate& update : updates) {
    if (update.edge >= graph_.NumEdges()) {
      return Status::InvalidArgument(
          "update references edge " + std::to_string(update.edge) +
          " out of range (graph has " + std::to_string(graph_.NumEdges()) +
          " edges)");
    }
    if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
      return Status::InvalidArgument("updated weights must be positive");
    }
  }
  std::unique_lock<EpochLock> lock(mu_);
  for (const WeightUpdate& update : updates) graph_.SetWeight(update);
  TrafficBatchResult result;
  result.dtlp = dtlp_->ApplyUpdates(updates);
  result.epoch = ++epoch_;
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  updates_applied_.fetch_add(updates.size(), std::memory_order_relaxed);
  return result;
}

uint64_t RoutingService::CurrentEpoch() const {
  std::shared_lock<EpochLock> lock(mu_);
  return epoch_;
}

ServiceCounters RoutingService::counters() const {
  ServiceCounters counters;
  counters.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  counters.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  counters.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  counters.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace kspdg
