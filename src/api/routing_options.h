// Request/response value types and the layered option model of the routing
// API (the only public surface for k-shortest-path queries).
//
// Options come in two layers: a RoutingService is created with a
// RoutingOptions holding the service-wide defaults, and every KspRequest may
// override any subset of those knobs through RoutingOverrides. The merged
// result is validated once per request; solver backends receive an options
// struct that is guaranteed well-formed.
#ifndef KSPDG_API_ROUTING_OPTIONS_H_
#define KSPDG_API_ROUTING_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "ksp/path.h"
#include "kspdg/ksp_dg_options.h"

namespace kspdg {

/// Well-known backend names registered by SolverRegistry::Default().
inline constexpr const char* kBackendKspDg = "kspdg";
inline constexpr const char* kBackendYen = "yen";
inline constexpr const char* kBackendFindKsp = "findksp";
inline constexpr const char* kBackendDijkstra = "dijkstra";

/// Service-level option set; every knob can be overridden per request.
/// Folds the former KspDgOptions engine knobs into the public API surface.
struct RoutingOptions {
  /// Number of shortest loopless paths to return.
  uint32_t k = 2;
  /// Solver backend answering the query (a SolverRegistry name).
  std::string backend = kBackendKspDg;
  /// Hard cap on KSP-DG filter/refine iterations (safety valve; §5.5 argues
  /// ~k iterations in practice). Ignored by the baseline backends.
  uint32_t max_iterations = 1000;
  /// §5.2 optimisation: cache partial k-shortest paths across iterations of
  /// one query. Ignored by the baseline backends.
  bool reuse_partials = true;
  /// When joins reject non-simple combinations and the candidate list comes
  /// up short, partial lists are re-fetched with doubled depth up to this
  /// many times (0 reproduces the paper's plain Algorithm 4).
  uint32_t join_refetch_rounds = 2;

  /// Checks the invariants every solver relies on.
  Status Validate() const;

  /// Projection onto the internal KSP-DG engine knobs.
  KspDgOptions ToEngineOptions() const;
};

/// Per-request overrides; unset fields fall back to the service defaults.
/// Each field shadows the RoutingOptions knob of the same name.
struct RoutingOverrides {
  std::optional<uint32_t> k;
  std::optional<std::string> backend;
  std::optional<uint32_t> max_iterations;
  std::optional<bool> reuse_partials;
  std::optional<uint32_t> join_refetch_rounds;
};

/// Layers `overrides` on top of `defaults` (no validation).
RoutingOptions MergeOptions(const RoutingOptions& defaults,
                            const RoutingOverrides& overrides);

/// One k-shortest-paths query q(s, t). Endpoints must be distinct,
/// in-range vertex ids; the service rejects anything else with
/// kInvalidArgument before touching a solver.
struct KspRequest {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  /// Per-request knobs layered over the service defaults.
  RoutingOverrides options;
};

/// Per-query measurements, filled by every backend.
struct QueryStats {
  /// Wall time spent inside the solver (excludes lock wait).
  double solve_micros = 0;
  /// KSP-DG internals; zero for the baseline backends.
  KspDgQueryStats engine;
};

struct KspResponse {
  /// Ascending by distance; fewer than k entries when the graph does not
  /// contain k simple s-t paths.
  std::vector<Path> paths;
  /// Weight-snapshot epoch this answer was computed at. The service bumps
  /// the epoch on every applied traffic batch, so two responses with equal
  /// epochs saw identical weights.
  uint64_t epoch = 0;
  /// Effective k after merging overrides.
  uint32_t k = 0;
  /// Name of the backend that produced the answer.
  std::string backend;
  QueryStats stats;
};

/// Outcome of one request inside a batch. A bad request never fails its
/// batch: it gets a non-OK status here while its neighbours are answered.
struct KspBatchItem {
  Status status;        // OK iff `response` holds an answer
  KspResponse response; // meaningful only when status.ok()
};

/// Answer to RoutingService::QueryBatch. Items correspond 1:1 (same order)
/// to the request span.
struct KspBatchResponse {
  std::vector<KspBatchItem> items;
  /// Weight-snapshot epoch shared by *every* answered item: the service
  /// holds its reader lock once across the whole batch, so no item can see
  /// a different snapshot than its neighbours.
  uint64_t epoch = 0;
  size_t num_ok = 0;
  size_t num_rejected = 0;
  /// Wall time of the snapshot section (validation excluded).
  double batch_micros = 0;
};

}  // namespace kspdg

#endif  // KSPDG_API_ROUTING_OPTIONS_H_
