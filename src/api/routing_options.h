// Request/response value types and the layered option model of the routing
// API (the only public surface for route queries).
//
// The surface is a typed multi-kind query model: a RouteRequest names a
// QueryKind (k shortest paths, single shortest path, diversity-aware KSP)
// plus kind-specific parameters, and a RouteResponse carries a kind-tagged
// payload — new scenarios plug in as kinds behind this one surface, not as
// parallel APIs beside it.
//
// Options come in two layers: a RoutingService is created with a
// RoutingOptions holding the service-wide defaults, and every RouteRequest
// may override any subset of those knobs through RoutingOverrides. The
// merged result is validated once per request; solver backends receive an
// options struct that is guaranteed well-formed.
#ifndef KSPDG_API_ROUTING_OPTIONS_H_
#define KSPDG_API_ROUTING_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/status.h"
#include "core/types.h"
#include "ksp/path.h"
#include "kspdg/ksp_dg_options.h"
#include "mfp/diversity.h"

namespace kspdg {

/// Well-known backend names registered by SolverRegistry::Default().
inline constexpr const char* kBackendKspDg = "kspdg";
inline constexpr const char* kBackendYen = "yen";
inline constexpr const char* kBackendFindKsp = "findksp";
inline constexpr const char* kBackendDijkstra = "dijkstra";
inline constexpr const char* kBackendCands = "cands";

/// What a RouteRequest asks for. Every kind is answered through the same
/// facade (Query/QueryBatch/SubmitBatch on either service).
enum class QueryKind : uint8_t {
  /// k shortest loopless paths (the paper's KSP-DG workload).
  kKsp = 0,
  /// Single exact shortest path. Forces k = 1; defaults to the "cands"
  /// backend (the CANDS baseline index, Yang et al. VLDB'14 — the paper's
  /// reference [26]) unless the request overrides the backend.
  kShortestPath = 1,
  /// Diversity-aware KSP: over-fetch k' = k * overfetch candidates through
  /// the chosen backend, then keep <= k routes whose pairwise edge-set
  /// similarity stays <= θ (src/mfp/diversity.h).
  kDiverseKsp = 2,
};

/// Stable name for logs and error messages.
const char* QueryKindName(QueryKind kind);

/// Service-level option set; every knob can be overridden per request.
/// Folds the former KspDgOptions engine knobs into the public API surface.
struct RoutingOptions {
  /// Number of shortest loopless paths to return.
  uint32_t k = 2;
  /// Solver backend answering the query (a SolverRegistry name).
  std::string backend = kBackendKspDg;
  /// Hard cap on KSP-DG filter/refine iterations (safety valve; §5.5 argues
  /// ~k iterations in practice). Ignored by the baseline backends.
  uint32_t max_iterations = 1000;
  /// §5.2 optimisation: cache partial k-shortest paths across iterations of
  /// one query. Ignored by the baseline backends.
  bool reuse_partials = true;
  /// When joins reject non-simple combinations and the candidate list comes
  /// up short, partial lists are re-fetched with doubled depth up to this
  /// many times (0 reproduces the paper's plain Algorithm 4).
  uint32_t join_refetch_rounds = 2;
  /// kDiverseKsp knobs: θ, the over-fetch factor, and the MinHash/LSH
  /// parameters of the per-query §4 pipeline. Ignored by the other kinds.
  DiversityOptions diversity;
  /// Distinct boundary pairs each per-(shard, worker) partial cache may
  /// memoise between flushes (sharded/remote batch path only; 0 disables
  /// the caches entirely). Past the cap, requests still compute but stop
  /// caching — correctness never depends on a hit. A service-level sizing
  /// knob: read from the service defaults, not overridable per request.
  size_t partial_cache_pairs = 4096;

  /// Checks the invariants every solver relies on.
  Status Validate() const;

  /// Projection onto the internal KSP-DG engine knobs.
  KspDgOptions ToEngineOptions() const;
};

/// Per-request overrides; unset fields fall back to the service defaults.
/// Each field shadows the RoutingOptions knob of the same name.
struct RoutingOverrides {
  std::optional<uint32_t> k;
  std::optional<std::string> backend;
  std::optional<uint32_t> max_iterations;
  std::optional<bool> reuse_partials;
  std::optional<uint32_t> join_refetch_rounds;
  /// kDiverseKsp: shadows RoutingOptions::diversity.theta / .overfetch.
  std::optional<double> diversity_theta;
  std::optional<uint32_t> diversity_overfetch;
};

/// Layers `overrides` on top of `defaults` (no validation).
RoutingOptions MergeOptions(const RoutingOptions& defaults,
                            const RoutingOverrides& overrides);

/// One route query q(s, t) of some QueryKind. Endpoints must be distinct,
/// in-range vertex ids; the service rejects anything else with
/// kInvalidArgument before touching a solver.
struct RouteRequest {
  /// What is being asked; kind-specific knobs live in `options`
  /// (diversity_theta / diversity_overfetch for kDiverseKsp).
  QueryKind kind = QueryKind::kKsp;
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  /// Per-request knobs layered over the service defaults.
  RoutingOverrides options;
  /// QoS envelope: priority class, optional absolute deadline, tenant id
  /// (core/admission.h). A request whose deadline has already passed is
  /// answered kDeadlineExceeded without being solved — at submission, at
  /// dequeue, and once more when it reaches its solver. Default-constructed
  /// contexts keep the original behaviour everywhere (including blocking
  /// SubmitBatch backpressure); setting any field opts the request into
  /// admission control, where submission sheds instead of blocking. For
  /// SubmitBatch the first request's context is the batch's queue envelope
  /// (see RoutingServiceInterface::SubmitBatch).
  RequestContext context;
};

/// Compatibility shim for the pre-multi-kind surface: a KspRequest IS a
/// RouteRequest whose kind defaults to kKsp. Scheduled for removal; every
/// in-tree call site now uses RouteRequest.
using KspRequest [[deprecated("use RouteRequest")]] = RouteRequest;

/// Per-query measurements, filled by every backend.
struct QueryStats {
  /// Wall time spent inside the solver (excludes lock wait).
  double solve_micros = 0;
  /// KSP-DG internals; zero for the baseline backends.
  KspDgQueryStats engine;
};

/// Kind-tagged answer to one RouteRequest.
struct RouteResponse {
  /// Which kind produced the payload below (mirrors the request's kind).
  QueryKind kind = QueryKind::kKsp;
  /// The route payload of every kind: ascending by distance. kKsp returns
  /// up to k entries (fewer when the graph does not contain k simple s-t
  /// paths), kShortestPath at most one, kDiverseKsp up to k pairwise-
  /// dissimilar routes filtered from the k' candidates.
  std::vector<Path> paths;
  /// Weight-snapshot epoch this answer was computed at. The service bumps
  /// the epoch on every applied traffic batch, so two responses with equal
  /// epochs saw identical weights.
  uint64_t epoch = 0;
  /// Effective k after merging overrides — the *requested* k for
  /// kDiverseKsp (the over-fetched k' is reported in `diverse`).
  uint32_t k = 0;
  /// Name of the backend that produced the answer.
  std::string backend;
  QueryStats stats;
  /// Kind-specific payload: engaged iff kind == kDiverseKsp.
  std::optional<DiverseStats> diverse;
};

/// Compatibility shim (see KspRequest). Scheduled for removal.
using KspResponse [[deprecated("use RouteResponse")]] = RouteResponse;

/// Outcome of one request inside a batch. A bad or shed request never
/// fails its batch: it gets a non-OK status here while its neighbours are
/// answered.
struct RouteBatchItem {
  Status status;          // OK iff `response` holds an answer
  RouteResponse response; // meaningful only when status.ok()
  /// What admission decided for this item (derived from `status`): served,
  /// rejected (validation/solver error), shed on deadline
  /// (kDeadlineExceeded), or shed by load control (kResourceExhausted).
  AdmissionOutcome admission = AdmissionOutcome::kServed;
};
using KspBatchItem [[deprecated("use RouteBatchItem")]] = RouteBatchItem;

/// Answer to RoutingService::QueryBatch. Items correspond 1:1 (same order)
/// to the request span.
struct RouteBatchResponse {
  std::vector<RouteBatchItem> items;
  /// Weight-snapshot epoch shared by *every* answered item: the service
  /// holds its reader lock once across the whole batch, so no item can see
  /// a different snapshot than its neighbours.
  uint64_t epoch = 0;
  size_t num_ok = 0;
  /// Items that failed for a non-admission reason (validation or solver
  /// errors). Shed items are tallied separately in num_shed.
  size_t num_rejected = 0;
  /// Items admission answered without solving (deadline expired or load
  /// control) — see RouteBatchItem::admission for the per-item reason.
  size_t num_shed = 0;
  /// Wall time of the snapshot section (validation excluded).
  double batch_micros = 0;
};

/// Compatibility shim (see KspRequest). Scheduled for removal.
using KspBatchResponse [[deprecated("use RouteBatchResponse")]] =
    RouteBatchResponse;

}  // namespace kspdg

#endif  // KSPDG_API_ROUTING_OPTIONS_H_
