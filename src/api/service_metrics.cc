#include "api/service_metrics.h"

namespace kspdg {
namespace {

constexpr std::array<QueryKind, 3> kAllKinds = {
    QueryKind::kKsp, QueryKind::kShortestPath, QueryKind::kDiverseKsp};

}  // namespace

void ServiceMetrics::Init(MetricsRegistry& registry,
                          const std::vector<std::string>& backends) {
  queries_ok = registry.GetCounter("queries_ok_total");
  queries_rejected = registry.GetCounter("queries_rejected_total");
  traffic_batches = registry.GetCounter("traffic_batches_total");
  weight_updates = registry.GetCounter("weight_updates_total");
  for (QueryKind kind : kAllKinds) {
    solve_latency[static_cast<size_t>(kind)] = registry.GetHistogram(
        "solve_latency_micros", {{"kind", QueryKindName(kind)}},
        LatencyBucketsMicros());
  }
  for (const std::string& backend : backends) AddBackend(registry, backend);
}

void ServiceMetrics::AddBackend(MetricsRegistry& registry,
                                std::string_view backend) {
  auto [it, inserted] =
      per_backend.try_emplace(std::string(backend));
  if (!inserted) return;
  for (QueryKind kind : kAllKinds) {
    it->second[static_cast<size_t>(kind)] = registry.GetCounter(
        "queries_total", {{"kind", QueryKindName(kind)},
                          {"backend", std::string(backend)}});
  }
}

void ServiceMetrics::RecordQuery(QueryKind kind, std::string_view backend,
                                 double solve_micros) const {
  queries_ok.Increment();
  solve_latency[static_cast<size_t>(kind)].Observe(solve_micros);
  auto it = per_backend.find(backend);
  if (it != per_backend.end()) {
    it->second[static_cast<size_t>(kind)].Increment();
  }
}

}  // namespace kspdg
