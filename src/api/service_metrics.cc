#include "api/service_metrics.h"

namespace kspdg {
namespace {

constexpr std::array<QueryKind, 3> kAllKinds = {
    QueryKind::kKsp, QueryKind::kShortestPath, QueryKind::kDiverseKsp};

}  // namespace

AdmissionCounters AdmissionCountersFrom(const MetricsSnapshot& snapshot) {
  AdmissionCounters counters;
  counters.admitted = snapshot.CounterTotal("admission_admitted_total");
  counters.shed_deadline =
      snapshot.CounterTotal("admission_shed_deadline_total");
  counters.shed_quota = snapshot.CounterTotal("admission_shed_quota_total");
  return counters;
}

void ServiceMetrics::Init(MetricsRegistry& registry,
                          const std::vector<std::string>& backends) {
  queries_ok = registry.GetCounter("queries_ok_total");
  queries_rejected = registry.GetCounter("queries_rejected_total");
  traffic_batches = registry.GetCounter("traffic_batches_total");
  weight_updates = registry.GetCounter("weight_updates_total");
  admission_admitted = registry.GetCounter("admission_admitted_total");
  admission_shed_deadline =
      registry.GetCounter("admission_shed_deadline_total");
  admission_shed_quota = registry.GetCounter("admission_shed_quota_total");
  for (QueryKind kind : kAllKinds) {
    solve_latency[static_cast<size_t>(kind)] = registry.GetHistogram(
        "solve_latency_micros", {{"kind", QueryKindName(kind)}},
        LatencyBucketsMicros());
  }
  for (const std::string& backend : backends) AddBackend(registry, backend);
}

void ServiceMetrics::AddBackend(MetricsRegistry& registry,
                                std::string_view backend) {
  auto [it, inserted] =
      per_backend.try_emplace(std::string(backend));
  if (!inserted) return;
  for (QueryKind kind : kAllKinds) {
    it->second[static_cast<size_t>(kind)] = registry.GetCounter(
        "queries_total", {{"kind", QueryKindName(kind)},
                          {"backend", std::string(backend)}});
  }
}

void ServiceMetrics::RecordQueryFailure(const Status& status) const {
  queries_rejected.Increment();
  switch (AdmissionOutcomeFromStatus(status)) {
    case AdmissionOutcome::kShedDeadline:
      admission_shed_deadline.Increment();
      break;
    case AdmissionOutcome::kShedQuota:
      admission_shed_quota.Increment();
      break;
    default:
      break;
  }
}

void ServiceMetrics::FinalizeBatchAdmission(RouteBatchResponse& batch) const {
  batch.num_ok = 0;
  batch.num_rejected = 0;
  batch.num_shed = 0;
  for (RouteBatchItem& item : batch.items) {
    item.admission = AdmissionOutcomeFromStatus(item.status);
    switch (item.admission) {
      case AdmissionOutcome::kServed:
        // admission_admitted moved with queries_ok inside RecordQuery when
        // the item solved; only the tally is settled here.
        ++batch.num_ok;
        break;
      case AdmissionOutcome::kShedDeadline:
        ++batch.num_shed;
        admission_shed_deadline.Increment();
        queries_rejected.Increment();
        break;
      case AdmissionOutcome::kShedQuota:
        ++batch.num_shed;
        admission_shed_quota.Increment();
        queries_rejected.Increment();
        break;
      case AdmissionOutcome::kRejected:
        ++batch.num_rejected;
        queries_rejected.Increment();
        break;
    }
  }
}

void ServiceMetrics::RecordQuery(QueryKind kind, std::string_view backend,
                                 double solve_micros) const {
  queries_ok.Increment();
  admission_admitted.Increment();
  solve_latency[static_cast<size_t>(kind)].Observe(solve_micros);
  auto it = per_backend.find(backend);
  if (it != per_backend.end()) {
    it->second[static_cast<size_t>(kind)].Increment();
  }
}

}  // namespace kspdg
