// RoutingServiceInterface: the one serving contract every implementation
// answers to.
//
// Three services serve the same workload from different topologies — the
// in-process RoutingService, the N-shard ShardedRoutingService, and the
// out-of-process RemoteShardedRoutingService. Their public surfaces were
// grown to be call-compatible; this interface makes that an enforced
// contract instead of a convention, so harnesses that only care about the
// contract (the bench runner, the parity tests, the async ticket plumbing)
// are written once against the abstract type and run unchanged over any
// implementation or any pair of them.
//
// The contract is the serving surface plus observability:
//
//   Query / QueryBatch / SubmitBatch   answer traffic on one epoch snapshot
//   ApplyTrafficBatch                  move every replica of the weights to
//                                      the next epoch atomically
//   CurrentEpoch / BackendNames        introspection used by harnesses
//   Metrics                            a consistent MetricsSnapshot of the
//                                      implementation's registry (for the
//                                      remote service: master + the fleet
//                                      of worker registries, shard-tagged)
//
// Admission control is part of the contract and identical on every
// implementation, because it lives in two shared seams rather than per
// service: requests carry a RequestContext (priority / deadline /
// tenant_id, core/admission.h); expired work is answered with
// kDeadlineExceeded instead of being solved (PrepareRoutingQuery);
// SubmitBatch routes through BatchTicket::SubmitTo, where a QoS envelope
// sheds instead of blocking (see batch_ticket.h). Every implementation
// exports the same admission series — admission_admitted_total,
// admission_shed_deadline_total, admission_shed_quota_total — readable
// from Metrics() via AdmissionCountersFrom (api/service_metrics.h).
#ifndef KSPDG_API_ROUTING_SERVICE_INTERFACE_H_
#define KSPDG_API_ROUTING_SERVICE_INTERFACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/batch_ticket.h"
#include "api/routing_options.h"
#include "cands/cands.h"
#include "core/status.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace kspdg {

/// Result of one applied traffic batch (identical across implementations).
struct TrafficBatchResult {
  /// Epoch the service entered by applying this batch; responses computed
  /// after this batch carry an epoch >= this value.
  uint64_t epoch = 0;
  /// Algorithm 2 maintenance counters.
  DtlpUpdateStats dtlp;
  /// CANDS rebuild-on-update maintenance (all-zero when enable_cands is
  /// false): the expensive side of the Figures 40-41 contrast.
  CandsUpdateStats cands;
  /// Wall time of the CANDS rebuild within this batch.
  double cands_micros = 0;
};

/// Abstract serving surface (see file comment). All methods are
/// thread-safe on every implementation; queries run concurrently with each
/// other and serialise against ApplyTrafficBatch.
class RoutingServiceInterface {
 public:
  virtual ~RoutingServiceInterface() = default;

  /// Answers q(source, target) — any QueryKind — on the current weight
  /// snapshot.
  virtual Result<RouteResponse> Query(const RouteRequest& request) const = 0;

  /// Answers a whole batch of queries on ONE weight snapshot; invalid
  /// requests receive per-item statuses without failing the batch.
  virtual Result<RouteBatchResponse> QueryBatch(
      std::span<const RouteRequest> requests) const = 0;

  /// Asynchronous QueryBatch: enqueues on the implementation's admission-
  /// controlled submission queue and returns a ticket immediately. The
  /// first request's RequestContext is the batch's queue envelope. A batch
  /// with no QoS envelope keeps the original contract — blocks only when
  /// the queue is full (backpressure), never shed. A batch with one never
  /// blocks: under pressure it is shed instead (ticket fulfilled with an
  /// OK response whose items carry kDeadlineExceeded / kResourceExhausted
  /// statuses and AdmissionOutcomes — shedding never fails the batch).
  /// Identical on every implementation by construction: all three route
  /// through BatchTicket::SubmitTo.
  [[nodiscard]] virtual BatchTicket SubmitBatch(
      std::vector<RouteRequest> requests,
      BatchCallback callback = nullptr) const = 0;

  /// Applies one batch of weight updates atomically; validated up front
  /// and rejected as a whole on any bad entry.
  virtual Result<TrafficBatchResult> ApplyTrafficBatch(
      std::span<const WeightUpdate> updates) = 0;

  /// Epoch of the current committed weight snapshot (0 until the first
  /// applied batch).
  virtual uint64_t CurrentEpoch() const = 0;

  /// Registered backend names, sorted.
  virtual std::vector<std::string> BackendNames() const = 0;

  /// Consistent snapshot of the implementation's metrics registry. Safe to
  /// call while serving: scrapes never block queries or updates.
  virtual MetricsSnapshot Metrics() const = 0;
};

}  // namespace kspdg

#endif  // KSPDG_API_ROUTING_SERVICE_INTERFACE_H_
