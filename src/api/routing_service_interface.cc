#include "api/routing_service_interface.h"

#include <utility>

namespace kspdg {

BatchTicket BatchTicket::SubmitTo(SubmissionQueue& queue,
                                  const RoutingServiceInterface& service,
                                  std::vector<RouteRequest> requests,
                                  BatchCallback callback,
                                  const AdmissionMetricsView& metrics) {
  return SubmitTo(queue, std::move(requests), std::move(callback),
                  [&service](std::span<const RouteRequest> batch) {
                    return service.QueryBatch(batch);
                  },
                  metrics);
}

}  // namespace kspdg
