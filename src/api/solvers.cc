// The four standard KspSolver backends and the default registry, plus
// option merging/validation. Everything here is an internal adapter: the
// algorithms themselves live in src/kspdg and src/ksp.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "cands/cands.h"
#include "core/strings.h"
#include "ksp/dijkstra.h"
#include "ksp/findksp.h"
#include "ksp/yen.h"
#include "kspdg/partial_provider.h"
#include "kspdg/query_context.h"
#include "mfp/diversity.h"

namespace kspdg {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKsp:
      return "ksp";
    case QueryKind::kShortestPath:
      return "shortest_path";
    case QueryKind::kDiverseKsp:
      return "diverse_ksp";
  }
  return "unknown";
}

Status RoutingOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (backend.empty()) return Status::InvalidArgument("backend must be named");
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!(diversity.theta >= 0.0) || !(diversity.theta <= 1.0)) {
    return Status::InvalidArgument("diversity theta must lie in [0, 1]");
  }
  if (diversity.overfetch == 0) {
    return Status::InvalidArgument("diversity overfetch must be >= 1");
  }
  if (diversity.lsh.num_hashes == 0 || diversity.lsh.num_bands == 0 ||
      diversity.lsh.num_hashes % diversity.lsh.num_bands != 0) {
    return Status::InvalidArgument(
        "diversity LSH needs num_hashes >= 1 divisible by num_bands >= 1");
  }
  return Status::OK();
}

KspDgOptions RoutingOptions::ToEngineOptions() const {
  KspDgOptions engine;
  engine.k = k;
  engine.max_iterations = max_iterations;
  engine.reuse_partials = reuse_partials;
  engine.join_refetch_rounds = join_refetch_rounds;
  return engine;
}

Status PrepareRoutingQuery(const SolverRegistry& registry,
                           const RoutingOptions& defaults, const Graph& graph,
                           const RouteRequest& request, PreparedRoute* out) {
  // Admission: expired work is answered, never solved. This is the last of
  // the three deadline checks (submit, dequeue, solve) and the one that
  // covers the sync Query/QueryBatch paths and per-item deadlines inside an
  // admitted batch — all three services share this seam.
  if (request.context.ExpiredAt(std::chrono::steady_clock::now())) {
    return Status::DeadlineExceeded("deadline expired before solve; shed");
  }
  out->kind = request.kind;
  out->merged = MergeOptions(defaults, request.options);
  // Kind semantics are applied before validation so kind-driven adjustments
  // (k = 1, k' over-fetch) are themselves validated.
  switch (request.kind) {
    case QueryKind::kKsp:
      break;
    case QueryKind::kShortestPath:
      if (request.options.k.has_value() && *request.options.k != 1) {
        return Status::InvalidArgument(
            std::string(QueryKindName(request.kind)) +
            " queries serve exactly k=1 (got k=" +
            std::to_string(*request.options.k) + ")");
      }
      out->merged.k = 1;
      // The kind's home backend is the CANDS baseline; an explicit override
      // (dijkstra, kspdg, ...) is respected.
      if (!request.options.backend.has_value()) {
        out->merged.backend = kBackendCands;
      }
      break;
    case QueryKind::kDiverseKsp: {
      uint64_t k_prime = static_cast<uint64_t>(out->merged.k) *
                         static_cast<uint64_t>(out->merged.diversity.overfetch);
      // 2^20 candidates is far past any sensible diversity over-fetch and
      // keeps k' in uint32 range.
      if (k_prime > (uint64_t{1} << 20)) {
        return Status::InvalidArgument(
            std::string(QueryKindName(request.kind)) +
            " over-fetch k * overfetch = " + std::to_string(k_prime) +
            " exceeds the 2^20 cap");
      }
      out->requested_k = out->merged.k;
      out->merged.k = static_cast<uint32_t>(k_prime);
      break;
    }
    default:
      return Status::InvalidArgument("unknown query kind");
  }
  if (request.kind != QueryKind::kDiverseKsp) {
    out->requested_k = out->merged.k;
  }
  KSPDG_RETURN_NOT_OK(out->merged.Validate());
  out->solver = registry.Find(out->merged.backend);
  if (out->solver == nullptr) {
    return Status::NotFound("unknown backend '" + out->merged.backend +
                            "' (registered: " + JoinNames(registry.Names()) +
                            ")");
  }
  if (request.source >= graph.NumVertices() ||
      request.target >= graph.NumVertices()) {
    return Status::InvalidArgument("query vertex out of range");
  }
  if (request.source == request.target) {
    return Status::InvalidArgument("source equals target");
  }
  return Status::OK();
}

Result<std::unique_ptr<CandsIndex>> BuildCandsIndex(const Graph& graph,
                                                    const DtlpOptions& dtlp) {
  CandsOptions options;
  options.partition = dtlp.partition;
  options.build_threads = dtlp.build_threads;
  return CandsIndex::Build(graph, options);
}

RouteResponse FinishRouteResponse(QueryKind kind, uint32_t requested_k,
                                  RoutingOptions options, bool directed,
                                  KspQueryResult solved) {
  RouteResponse response;
  response.kind = kind;
  response.k = requested_k;
  response.stats.engine = solved.stats;
  if (kind == QueryKind::kDiverseKsp) {
    std::vector<Path> kept;
    response.diverse = SelectDiversePaths(solved.paths, requested_k, directed,
                                          options.diversity, &kept);
    response.paths = std::move(kept);
  } else {
    response.paths = std::move(solved.paths);
  }
  response.backend = std::move(options.backend);
  return response;
}

RoutingOptions MergeOptions(const RoutingOptions& defaults,
                            const RoutingOverrides& overrides) {
  RoutingOptions merged = defaults;
  if (overrides.k.has_value()) merged.k = *overrides.k;
  if (overrides.backend.has_value()) merged.backend = *overrides.backend;
  if (overrides.max_iterations.has_value()) {
    merged.max_iterations = *overrides.max_iterations;
  }
  if (overrides.reuse_partials.has_value()) {
    merged.reuse_partials = *overrides.reuse_partials;
  }
  if (overrides.join_refetch_rounds.has_value()) {
    merged.join_refetch_rounds = *overrides.join_refetch_rounds;
  }
  if (overrides.diversity_theta.has_value()) {
    merged.diversity.theta = *overrides.diversity_theta;
  }
  if (overrides.diversity_overfetch.has_value()) {
    merged.diversity.overfetch = *overrides.diversity_overfetch;
  }
  return merged;
}

namespace {

/// Scratch shared by the deviation-search backends: pooled Yen ban buffers.
struct YenBackendScratch : SolverScratch {
  YenScratch yen;
};

/// KSP-DG scratch: a partial-path cache that stays warm across the queries
/// one batch worker answers at a single snapshot — different (s, t) pairs
/// share boundary-pair partials, so batch neighbours skip whole Yen runs.
/// The cache is weight-derived, so it empties when the snapshot moves.
struct KspDgScratch : SolverScratch {
  PartialCacheStore partials;

  void OnSnapshotChange() override { partials.entries.clear(); }
};

/// DTLP filter-and-refine (Algorithms 3 + 4); the paper's KSP-DG.
class KspDgSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendKspDg; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<KspDgScratch>();
  }

  bool UsesPartialProvider() const override { return true; }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    if (input.dtlp == nullptr) {
      return Status::FailedPrecondition("kspdg backend requires a DTLP index");
    }
    // The shared cache honours reuse_partials: when a request opts out of
    // partial reuse it must not see (or pollute) warm cross-query entries.
    PartialCacheStore* cache = nullptr;
    if (scratch != nullptr && input.options.reuse_partials) {
      cache = &static_cast<KspDgScratch*>(scratch)->partials;
    }
    // Inline partial computation unless the caller injected a provider (the
    // sharded service routes partials to the shard owning each subgraph).
    LocalPartialProvider local_provider(*input.dtlp);
    PartialProvider* provider =
        input.partials != nullptr ? input.partials : &local_provider;
    return RunKspDgQuery(*input.dtlp, provider, input.source, input.target,
                         input.options.ToEngineOptions(), cache);
  }
};

/// Yen/Lawler over the flat graph under current weights.
class YenSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendYen; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<YenBackendScratch>();
  }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    YenScratch* yen_scratch =
        scratch != nullptr ? &static_cast<YenBackendScratch*>(scratch)->yen
                           : nullptr;
    KspQueryResult result;
    result.paths = YenKspInGraph(*input.graph, input.source, input.target,
                                 input.options.k, yen_scratch);
    return result;
  }
};

/// SPT-guided deviation search (FindKSP baseline, reference [21]).
class FindKspSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendFindKsp; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<YenBackendScratch>();
  }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    YenScratch* yen_scratch =
        scratch != nullptr ? &static_cast<YenBackendScratch*>(scratch)->yen
                           : nullptr;
    KspQueryResult result;
    result.paths = FindKsp(*input.graph, input.source, input.target,
                           input.options.k, yen_scratch);
    return result;
  }
};

/// Plain point-to-point Dijkstra; serves only the k=1 degenerate case so a
/// mistaken k>1 request fails loudly instead of silently truncating.
class DijkstraSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendDijkstra; }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch*) const override {
    if (input.options.k != 1) {
      return Status::InvalidArgument(
          "dijkstra backend serves only k=1 (got k=" +
          std::to_string(input.options.k) + ")");
    }
    KspQueryResult result;
    std::optional<Path> p =
        ShortestPathInGraph(*input.graph, input.source, input.target);
    if (p.has_value()) result.paths.push_back(std::move(*p));
    return result;
  }
};

/// CANDS baseline (reference [26]): exact single shortest path over the
/// service-owned CandsIndex, whose expensive rebuild-on-update maintenance
/// runs inside ApplyTrafficBatch — the Figures 40-41 contrast to KSP-DG's
/// incremental DTLP maintenance. The kShortestPath kind routes here by
/// default.
class CandsSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendCands; }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch*) const override {
    if (input.options.k != 1) {
      return Status::InvalidArgument(
          "cands backend serves only k=1 (got k=" +
          std::to_string(input.options.k) + ")");
    }
    if (input.cands == nullptr) {
      return Status::FailedPrecondition(
          "cands backend requires the CANDS index (service created with "
          "enable_cands = false)");
    }
    KspQueryResult result;
    std::optional<Path> p =
        input.cands->ShortestPath(input.source, input.target);
    if (p.has_value()) result.paths.push_back(std::move(*p));
    return result;
  }
};

}  // namespace

SolverRegistry SolverRegistry::Default() {
  SolverRegistry registry;
  Status st = registry.Register(std::make_unique<KspDgSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<YenSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<FindKspSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<DijkstraSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<CandsSolver>());
  assert(st.ok() && "default backends must register cleanly");
  (void)st;
  return registry;
}

Status SolverRegistry::Register(std::unique_ptr<KspSolver> solver) {
  if (solver == nullptr || solver->name().empty()) {
    return Status::InvalidArgument("solver must have a non-empty name");
  }
  if (Find(solver->name()) != nullptr) {
    return Status::FailedPrecondition("backend '" +
                                      std::string(solver->name()) +
                                      "' is already registered");
  }
  solvers_.push_back(std::move(solver));
  return Status::OK();
}

const KspSolver* SolverRegistry::Find(std::string_view name) const {
  for (const std::unique_ptr<KspSolver>& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const std::unique_ptr<KspSolver>& solver : solvers_) {
    names.emplace_back(solver->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kspdg
