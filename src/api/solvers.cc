// The four standard KspSolver backends and the default registry, plus
// option merging/validation. Everything here is an internal adapter: the
// algorithms themselves live in src/kspdg and src/ksp.
#include <algorithm>
#include <cassert>
#include <utility>

#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "core/strings.h"
#include "ksp/dijkstra.h"
#include "ksp/findksp.h"
#include "ksp/yen.h"
#include "kspdg/partial_provider.h"
#include "kspdg/query_context.h"

namespace kspdg {

Status RoutingOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (backend.empty()) return Status::InvalidArgument("backend must be named");
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return Status::OK();
}

KspDgOptions RoutingOptions::ToEngineOptions() const {
  KspDgOptions engine;
  engine.k = k;
  engine.max_iterations = max_iterations;
  engine.reuse_partials = reuse_partials;
  engine.join_refetch_rounds = join_refetch_rounds;
  return engine;
}

Status PrepareRoutingQuery(const SolverRegistry& registry,
                           const RoutingOptions& defaults, const Graph& graph,
                           const KspRequest& request, RoutingOptions* merged,
                           const KspSolver** solver) {
  *merged = MergeOptions(defaults, request.options);
  KSPDG_RETURN_NOT_OK(merged->Validate());
  *solver = registry.Find(merged->backend);
  if (*solver == nullptr) {
    return Status::NotFound("unknown backend '" + merged->backend +
                            "' (registered: " + JoinNames(registry.Names()) +
                            ")");
  }
  if (request.source >= graph.NumVertices() ||
      request.target >= graph.NumVertices()) {
    return Status::InvalidArgument("query vertex out of range");
  }
  if (request.source == request.target) {
    return Status::InvalidArgument("source equals target");
  }
  return Status::OK();
}

RoutingOptions MergeOptions(const RoutingOptions& defaults,
                            const RoutingOverrides& overrides) {
  RoutingOptions merged = defaults;
  if (overrides.k.has_value()) merged.k = *overrides.k;
  if (overrides.backend.has_value()) merged.backend = *overrides.backend;
  if (overrides.max_iterations.has_value()) {
    merged.max_iterations = *overrides.max_iterations;
  }
  if (overrides.reuse_partials.has_value()) {
    merged.reuse_partials = *overrides.reuse_partials;
  }
  if (overrides.join_refetch_rounds.has_value()) {
    merged.join_refetch_rounds = *overrides.join_refetch_rounds;
  }
  return merged;
}

namespace {

/// Scratch shared by the deviation-search backends: pooled Yen ban buffers.
struct YenBackendScratch : SolverScratch {
  YenScratch yen;
};

/// KSP-DG scratch: a partial-path cache that stays warm across the queries
/// one batch worker answers at a single snapshot — different (s, t) pairs
/// share boundary-pair partials, so batch neighbours skip whole Yen runs.
/// The cache is weight-derived, so it empties when the snapshot moves.
struct KspDgScratch : SolverScratch {
  PartialCacheStore partials;

  void OnSnapshotChange() override { partials.entries.clear(); }
};

/// DTLP filter-and-refine (Algorithms 3 + 4); the paper's KSP-DG.
class KspDgSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendKspDg; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<KspDgScratch>();
  }

  bool UsesPartialProvider() const override { return true; }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    if (input.dtlp == nullptr) {
      return Status::FailedPrecondition("kspdg backend requires a DTLP index");
    }
    // The shared cache honours reuse_partials: when a request opts out of
    // partial reuse it must not see (or pollute) warm cross-query entries.
    PartialCacheStore* cache = nullptr;
    if (scratch != nullptr && input.options.reuse_partials) {
      cache = &static_cast<KspDgScratch*>(scratch)->partials;
    }
    // Inline partial computation unless the caller injected a provider (the
    // sharded service routes partials to the shard owning each subgraph).
    LocalPartialProvider local_provider(*input.dtlp);
    PartialProvider* provider =
        input.partials != nullptr ? input.partials : &local_provider;
    return RunKspDgQuery(*input.dtlp, provider, input.source, input.target,
                         input.options.ToEngineOptions(), cache);
  }
};

/// Yen/Lawler over the flat graph under current weights.
class YenSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendYen; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<YenBackendScratch>();
  }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    YenScratch* yen_scratch =
        scratch != nullptr ? &static_cast<YenBackendScratch*>(scratch)->yen
                           : nullptr;
    KspQueryResult result;
    result.paths = YenKspInGraph(*input.graph, input.source, input.target,
                                 input.options.k, yen_scratch);
    return result;
  }
};

/// SPT-guided deviation search (FindKSP baseline, reference [21]).
class FindKspSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendFindKsp; }

  std::unique_ptr<SolverScratch> NewScratch() const override {
    return std::make_unique<YenBackendScratch>();
  }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch* scratch) const override {
    YenScratch* yen_scratch =
        scratch != nullptr ? &static_cast<YenBackendScratch*>(scratch)->yen
                           : nullptr;
    KspQueryResult result;
    result.paths = FindKsp(*input.graph, input.source, input.target,
                           input.options.k, yen_scratch);
    return result;
  }
};

/// Plain point-to-point Dijkstra; serves only the k=1 degenerate case so a
/// mistaken k>1 request fails loudly instead of silently truncating.
class DijkstraSolver : public KspSolver {
 public:
  std::string_view name() const override { return kBackendDijkstra; }

  Result<KspQueryResult> Solve(const SolverInput& input,
                               SolverScratch*) const override {
    if (input.options.k != 1) {
      return Status::InvalidArgument(
          "dijkstra backend serves only k=1 (got k=" +
          std::to_string(input.options.k) + ")");
    }
    KspQueryResult result;
    std::optional<Path> p =
        ShortestPathInGraph(*input.graph, input.source, input.target);
    if (p.has_value()) result.paths.push_back(std::move(*p));
    return result;
  }
};

}  // namespace

SolverRegistry SolverRegistry::Default() {
  SolverRegistry registry;
  Status st = registry.Register(std::make_unique<KspDgSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<YenSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<FindKspSolver>());
  if (st.ok()) st = registry.Register(std::make_unique<DijkstraSolver>());
  assert(st.ok() && "default backends must register cleanly");
  (void)st;
  return registry;
}

Status SolverRegistry::Register(std::unique_ptr<KspSolver> solver) {
  if (solver == nullptr || solver->name().empty()) {
    return Status::InvalidArgument("solver must have a non-empty name");
  }
  if (Find(solver->name()) != nullptr) {
    return Status::FailedPrecondition("backend '" +
                                      std::string(solver->name()) +
                                      "' is already registered");
  }
  solvers_.push_back(std::move(solver));
  return Status::OK();
}

const KspSolver* SolverRegistry::Find(std::string_view name) const {
  for (const std::unique_ptr<KspSolver>& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const std::unique_ptr<KspSolver>& solver : solvers_) {
    names.emplace_back(solver->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kspdg
