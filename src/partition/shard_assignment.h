// Partition-aligned shard assignment: maps every subgraph of a Partition to
// one of N shards so a sharded service (or, later, a worker process) owns a
// disjoint slice of the DTLP state. Subgraphs — not vertices — are the unit
// of ownership because every edge lives in exactly one subgraph, so a weight
// update has exactly one owning shard; boundary vertices may be visible from
// several shards, which is what the scatter/gather partial path handles.
#ifndef KSPDG_PARTITION_SHARD_ASSIGNMENT_H_
#define KSPDG_PARTITION_SHARD_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "partition/partitioner.h"

namespace kspdg {

/// Shard index within a ShardAssignment (dense, [0, num_shards)).
using ShardId = uint32_t;

inline constexpr ShardId kInvalidShard = static_cast<ShardId>(-1);

/// The subgraph -> shard mapping plus its inverse. Immutable after
/// AssignShards; safe to share between threads.
struct ShardAssignment {
  /// Number of shards actually used (== the requested count; some shards may
  /// own zero subgraphs when the partition is smaller than the shard count).
  uint32_t num_shards = 0;
  /// Owning shard of each subgraph (indexed by SubgraphId).
  std::vector<ShardId> shard_of_subgraph;
  /// Subgraph ids owned by each shard, sorted ascending (indexed by ShardId).
  std::vector<std::vector<SubgraphId>> subgraphs_of_shard;
  /// Total vertices of the subgraphs owned by each shard (the balance
  /// metric; boundary vertices count once per containing subgraph).
  std::vector<size_t> vertices_of_shard;
};

/// Distributes the subgraphs of `partition` over `num_shards` shards,
/// balancing total vertex count per shard (greedy longest-processing-time:
/// subgraphs descending by size, each to the currently lightest shard).
/// Deterministic for a fixed partition and shard count. Fails on
/// num_shards == 0; num_shards may exceed the subgraph count (the surplus
/// shards own nothing).
Result<ShardAssignment> AssignShards(const Partition& partition,
                                     uint32_t num_shards);

}  // namespace kspdg

#endif  // KSPDG_PARTITION_SHARD_ASSIGNMENT_H_
