#include "partition/partitioner.h"

#include <algorithm>
#include <deque>

namespace kspdg {

std::vector<SubgraphId> Partition::SubgraphsContainingBoth(
    VertexId a, VertexId b) const {
  const std::vector<SubgraphId>& la = subgraphs_of_vertex[a];
  const std::vector<SubgraphId>& lb = subgraphs_of_vertex[b];
  std::vector<SubgraphId> out;
  std::set_intersection(la.begin(), la.end(), lb.begin(), lb.end(),
                        std::back_inserter(out));
  return out;
}

size_t Partition::CountSubgraphsWithBoundaryAbove(size_t threshold) const {
  size_t count = 0;
  for (const Subgraph& sg : subgraphs) {
    if (sg.boundary_local().size() > threshold) ++count;
  }
  return count;
}

Result<Partition> PartitionGraph(const Graph& g,
                                 const PartitionOptions& options) {
  if (options.max_vertices < 2) {
    return Status::InvalidArgument("max_vertices (z) must be >= 2");
  }
  const size_t n = g.NumVertices();
  const uint32_t z = options.max_vertices;

  Partition part;
  part.subgraphs_of_vertex.assign(n, {});
  part.subgraph_of_edge.assign(g.NumEdges(), kInvalidSubgraph);
  part.is_boundary.assign(n, 0);

  std::vector<char> edge_assigned(g.NumEdges(), 0);
  // Per-vertex count of incident unassigned edges, so the seed loop can skip
  // exhausted vertices in O(1).
  std::vector<uint32_t> unassigned_degree(n, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ++unassigned_degree[g.EdgeU(e)];
    ++unassigned_degree[g.EdgeV(e)];
  }

  std::vector<uint32_t> in_component(n, 0);  // epoch-stamped membership
  uint32_t epoch = 0;
  std::vector<VertexId> component;
  std::deque<VertexId> queue;

  auto grow_from = [&](VertexId seed) {
    ++epoch;
    component.clear();
    queue.clear();
    queue.push_back(seed);
    in_component[seed] = epoch;
    // BFS over *unassigned* edges only, capped at z vertices.
    while (!queue.empty() && component.size() < z) {
      VertexId u = queue.front();
      queue.pop_front();
      component.push_back(u);
      if (component.size() == z) break;
      for (const Arc& a : g.Neighbors(u)) {
        if (edge_assigned[a.edge]) continue;
        if (in_component[a.to] == epoch) continue;
        if (component.size() + queue.size() >= z) break;
        in_component[a.to] = epoch;
        queue.push_back(a.to);
      }
    }
    // Queue leftovers were stamped but not admitted; un-stamp them.
    for (VertexId v : queue) in_component[v] = 0;

    SubgraphId sid = static_cast<SubgraphId>(part.subgraphs.size());
    Subgraph sg(sid, g.directed());
    for (VertexId v : component) sg.AddVertex(v);
    sg.FreezeVertices();
    size_t edges_added = 0;
    for (VertexId u : component) {
      for (const Arc& a : g.Neighbors(u)) {
        if (edge_assigned[a.edge]) continue;
        if (in_component[a.to] != epoch || a.to < u) continue;  // visit once
        edge_assigned[a.edge] = 1;
        part.subgraph_of_edge[a.edge] = sid;
        --unassigned_degree[g.EdgeU(a.edge)];
        --unassigned_degree[g.EdgeV(a.edge)];
        sg.AddGlobalEdge(g, a.edge);
        ++edges_added;
      }
    }
    if (edges_added == 0) {
      // Can happen only for an isolated seed; keep the singleton so the
      // vertex-coverage invariant (V1 u ... u Vn = V) holds.
      part.subgraphs.push_back(std::move(sg));
      for (VertexId v : component) part.subgraphs_of_vertex[v].push_back(sid);
      return;
    }
    // Drop vertices that ended up with no incident edge in this subgraph?
    // They were reachable only through edges assigned here, so every
    // non-seed component vertex has at least one (see partitioner notes);
    // keep the full component for simplicity and correctness.
    part.subgraphs.push_back(std::move(sg));
    for (VertexId v : component) part.subgraphs_of_vertex[v].push_back(sid);
  };

  for (VertexId seed = 0; seed < n; ++seed) {
    while (unassigned_degree[seed] > 0) grow_from(seed);
  }
  // Isolated vertices (degree 0) that are in no subgraph yet.
  for (VertexId v = 0; v < n; ++v) {
    if (part.subgraphs_of_vertex[v].empty()) grow_from(v);
  }

  // Boundary detection + per-subgraph boundary lists.
  for (VertexId v = 0; v < n; ++v) {
    std::vector<SubgraphId>& list = part.subgraphs_of_vertex[v];
    std::sort(list.begin(), list.end());
    if (list.size() >= 2) {
      part.is_boundary[v] = 1;
      part.boundary_vertices.push_back(v);
    }
  }
  for (Subgraph& sg : part.subgraphs) {
    std::vector<VertexId> boundary;
    for (VertexId local = 0; local < sg.NumVertices(); ++local) {
      if (part.is_boundary[sg.GlobalOf(local)]) boundary.push_back(local);
    }
    sg.SetBoundaryLocal(std::move(boundary));
  }
  return part;
}

}  // namespace kspdg
