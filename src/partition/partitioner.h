// BFS graph partitioning (§3.3): the graph is cut into subgraphs of at most
// z vertices that cover every vertex and every edge; subgraphs may share
// vertices (the *boundary vertices*) but never edges.
#ifndef KSPDG_PARTITION_PARTITIONER_H_
#define KSPDG_PARTITION_PARTITIONER_H_

#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "graph/graph.h"
#include "partition/subgraph.h"

namespace kspdg {

struct PartitionOptions {
  /// z: maximum number of vertices per subgraph (must be >= 2).
  uint32_t max_vertices = 200;
};

/// The partition of a graph plus the derived boundary-vertex structures.
struct Partition {
  std::vector<Subgraph> subgraphs;
  /// For each global vertex, the (sorted) ids of subgraphs containing it.
  std::vector<std::vector<SubgraphId>> subgraphs_of_vertex;
  /// Owner subgraph of each global edge.
  std::vector<SubgraphId> subgraph_of_edge;
  /// All boundary vertices (global ids, sorted ascending).
  std::vector<VertexId> boundary_vertices;
  /// is_boundary[v] != 0 iff v appears in >= 2 subgraphs.
  std::vector<char> is_boundary;

  /// Subgraphs containing both a and b (intersection of membership lists).
  std::vector<SubgraphId> SubgraphsContainingBoth(VertexId a,
                                                  VertexId b) const;

  /// Number of subgraphs with more than `threshold` boundary vertices
  /// (the "(nb > 5)" column of Table 1).
  size_t CountSubgraphsWithBoundaryAbove(size_t threshold) const;
};

/// Partitions `g`. Requires options.max_vertices >= 2. Every vertex of `g`
/// (including isolated ones) lands in at least one subgraph and every edge
/// in exactly one.
Result<Partition> PartitionGraph(const Graph& g,
                                 const PartitionOptions& options);

}  // namespace kspdg

#endif  // KSPDG_PARTITION_PARTITIONER_H_
