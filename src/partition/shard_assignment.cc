#include "partition/shard_assignment.h"

#include <algorithm>
#include <numeric>

namespace kspdg {

Result<ShardAssignment> AssignShards(const Partition& partition,
                                     uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardAssignment assignment;
  assignment.num_shards = num_shards;
  assignment.shard_of_subgraph.assign(partition.subgraphs.size(),
                                      kInvalidShard);
  assignment.subgraphs_of_shard.resize(num_shards);
  assignment.vertices_of_shard.assign(num_shards, 0);

  // LPT greedy: place subgraphs in descending vertex-count order onto the
  // currently lightest shard. Ties break towards the smaller subgraph id /
  // smaller shard id, so the assignment is deterministic.
  std::vector<SubgraphId> order(partition.subgraphs.size());
  std::iota(order.begin(), order.end(), SubgraphId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](SubgraphId a, SubgraphId b) {
                     return partition.subgraphs[a].NumVertices() >
                            partition.subgraphs[b].NumVertices();
                   });
  for (SubgraphId sgid : order) {
    ShardId lightest = 0;
    for (ShardId shard = 1; shard < num_shards; ++shard) {
      if (assignment.vertices_of_shard[shard] <
          assignment.vertices_of_shard[lightest]) {
        lightest = shard;
      }
    }
    assignment.shard_of_subgraph[sgid] = lightest;
    assignment.subgraphs_of_shard[lightest].push_back(sgid);
    assignment.vertices_of_shard[lightest] +=
        partition.subgraphs[sgid].NumVertices();
  }
  for (std::vector<SubgraphId>& owned : assignment.subgraphs_of_shard) {
    std::sort(owned.begin(), owned.end());
  }
  return assignment;
}

}  // namespace kspdg
