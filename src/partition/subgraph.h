// A subgraph produced by the BFS partitioner (§3.3): its own Graph over
// dense local vertex ids, plus the local<->global mappings and the list of
// boundary vertices. Subgraphs of a partition share vertices but never edges
// (Definition 2 + partitioning invariants).
//
// Construction protocol: AddVertex() all vertices, then FreezeVertices(),
// then AddGlobalEdge() the subgraph's edges.
#ifndef KSPDG_PARTITION_SUBGRAPH_H_
#define KSPDG_PARTITION_SUBGRAPH_H_

#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace kspdg {

class Subgraph {
 public:
  Subgraph(SubgraphId id, bool directed)
      : id_(id), directed_(directed), local_(0, directed) {}

  SubgraphId id() const { return id_; }
  const Graph& local() const { return local_; }
  Graph& mutable_local() { return local_; }

  size_t NumVertices() const { return global_of_.size(); }
  size_t NumEdges() const { return local_.NumEdges(); }

  /// Registers `global` as a vertex of this subgraph (idempotent); returns
  /// its local id. Must precede FreezeVertices().
  VertexId AddVertex(VertexId global);

  /// Creates the local graph over all registered vertices.
  void FreezeVertices();

  /// Adds the global edge `e` of `g` (both endpoints must be registered,
  /// FreezeVertices() must have been called). Local edge orientation matches
  /// the global edge (EdgeU -> EdgeV), so forward/backward weights carry
  /// over directly.
  EdgeId AddGlobalEdge(const Graph& g, EdgeId e);

  VertexId GlobalOf(VertexId local) const { return global_of_[local]; }
  VertexId LocalOf(VertexId global) const {
    auto it = local_of_.find(global);
    return it == local_of_.end() ? kInvalidVertex : it->second;
  }
  bool ContainsGlobal(VertexId global) const {
    return local_of_.count(global) > 0;
  }

  EdgeId GlobalEdgeOf(EdgeId local) const { return global_edge_of_[local]; }
  EdgeId LocalEdgeOf(EdgeId global) const {
    auto it = local_edge_of_.find(global);
    return it == local_edge_of_.end() ? kInvalidEdge : it->second;
  }

  /// Boundary vertices in local ids, sorted.
  const std::vector<VertexId>& boundary_local() const {
    return boundary_local_;
  }
  void SetBoundaryLocal(std::vector<VertexId> b) {
    boundary_local_ = std::move(b);
  }

  /// Applies a global-graph weight update to the local copy. Returns true if
  /// the edge belongs to this subgraph.
  bool ApplyUpdate(const WeightUpdate& global_update) {
    EdgeId local = LocalEdgeOf(global_update.edge);
    if (local == kInvalidEdge) return false;
    local_.SetWeight(
        {local, global_update.new_forward, global_update.new_backward});
    return true;
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  SubgraphId id_;
  bool directed_;
  Graph local_;
  std::vector<VertexId> global_of_;
  std::unordered_map<VertexId, VertexId> local_of_;
  std::vector<EdgeId> global_edge_of_;
  std::unordered_map<EdgeId, EdgeId> local_edge_of_;
  std::vector<VertexId> boundary_local_;
};

}  // namespace kspdg

#endif  // KSPDG_PARTITION_SUBGRAPH_H_
