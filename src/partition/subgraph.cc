#include "partition/subgraph.h"

#include <cassert>

namespace kspdg {

VertexId Subgraph::AddVertex(VertexId global) {
  auto it = local_of_.find(global);
  if (it != local_of_.end()) return it->second;
  assert(local_.NumVertices() == 0 && "AddVertex after FreezeVertices");
  VertexId local = static_cast<VertexId>(global_of_.size());
  global_of_.push_back(global);
  local_of_.emplace(global, local);
  return local;
}

void Subgraph::FreezeVertices() {
  assert(local_.NumEdges() == 0);
  local_ = Graph(global_of_.size(), directed_);
}

EdgeId Subgraph::AddGlobalEdge(const Graph& g, EdgeId e) {
  assert(local_.NumVertices() == global_of_.size() &&
         "FreezeVertices must run before AddGlobalEdge");
  VertexId lu = LocalOf(g.EdgeU(e));
  VertexId lv = LocalOf(g.EdgeV(e));
  assert(lu != kInvalidVertex && lv != kInvalidVertex);
  EdgeId local =
      local_.AddEdge(lu, lv, g.ForwardVfrags(e), g.BackwardVfrags(e));
  local_.SetWeight({local, g.ForwardWeight(e), g.BackwardWeight(e)});
  global_edge_of_.push_back(e);
  local_edge_of_.emplace(e, local);
  return local;
}

size_t Subgraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += local_.MemoryBytes();
  bytes += global_of_.capacity() * sizeof(VertexId);
  bytes += global_edge_of_.capacity() * sizeof(EdgeId);
  bytes += local_of_.size() * (sizeof(VertexId) * 2 + 16);
  bytes += local_edge_of_.size() * (sizeof(EdgeId) * 2 + 16);
  bytes += boundary_local_.capacity() * sizeof(VertexId);
  return bytes;
}

}  // namespace kspdg
