// Abstraction over *where* partial k-shortest paths are computed.
//
// The refine step of KSP-DG (Algorithm 4) asks, for an adjacent boundary
// pair (x, y) of the reference path, for the k shortest paths between x and
// y inside every subgraph containing both. In the single-node engine this
// runs inline; in the simulated cluster it is shipped to the workers owning
// those subgraphs (SubgraphBolts). QueryContext is written against this
// interface so both deployments share the exact same algorithm.
#ifndef KSPDG_KSPDG_PARTIAL_PROVIDER_H_
#define KSPDG_KSPDG_PARTIAL_PROVIDER_H_

#include <vector>

#include "core/types.h"
#include "dtlp/dtlp.h"
#include "ksp/path.h"

namespace kspdg {

struct PartialResult {
  /// Merged k-best partial paths in *global* vertex ids.
  std::vector<Path> paths;
  /// True if every contributing subgraph returned fewer than `depth` paths,
  /// i.e. deeper requests cannot produce more.
  bool exhausted = false;
  /// Number of subgraph Yen invocations performed.
  size_t yen_runs = 0;
};

/// One subgraph's partial-path list, tagged with its subgraph id so merges
/// can be ordered deterministically.
struct SubgraphPartials {
  SubgraphId sgid = kInvalidSubgraph;
  std::vector<Path> paths;
};

/// Merges per-subgraph partial lists into one top-`depth` PartialResult.
/// The merge runs in ascending subgraph order and that order is part of the
/// contract: InsertTopK keeps the FIRST copy of a duplicate route, which is
/// observable when parallel edges split a route across subgraphs. Every
/// deployment (inline, sharded, future RPC) must merge through this one
/// function so their answers cannot drift. Sets `exhausted` iff every list
/// came back shorter than `depth`, and `yen_runs` to the list count.
PartialResult MergeSubgraphPartials(std::vector<SubgraphPartials> lists,
                                    size_t depth);

class PartialProvider {
 public:
  virtual ~PartialProvider() = default;

  /// Up to `depth` shortest paths from x to y confined to single subgraphs
  /// containing both endpoints.
  virtual PartialResult ComputePartials(VertexId x, VertexId y,
                                        size_t depth) = 0;
};

/// Computes partials inline on the calling thread (single-node deployment).
class LocalPartialProvider : public PartialProvider {
 public:
  explicit LocalPartialProvider(const Dtlp& dtlp) : dtlp_(&dtlp) {}

  PartialResult ComputePartials(VertexId x, VertexId y,
                                size_t depth) override;

  /// Shared by the distributed SubgraphBolt: k-best paths between two global
  /// vertices within one specific subgraph, translated to global ids.
  static std::vector<Path> PartialsInSubgraph(const Subgraph& sg, VertexId x,
                                              VertexId y, size_t depth);

 private:
  const Dtlp* dtlp_;
};

}  // namespace kspdg

#endif  // KSPDG_KSPDG_PARTIAL_PROVIDER_H_
