// KSP-DG (§5): iterative filter-and-refine identification of the k shortest
// loopless paths over a DTLP-indexed dynamic graph.
//
// Each iteration draws the next-shortest *reference path* from the skeleton
// graph (filter), computes partial k-shortest paths between every adjacent
// boundary pair of the reference path inside the subgraphs containing the
// pair (refine, Algorithm 4), joins the partials into candidate paths, and
// folds them into the running top-k list L. The loop ends when the k-th
// distance in L no longer exceeds the distance of the next unseen reference
// path (Theorem 3), which guarantees exactness.
//
// This class is the single-node computational core; src/dist wraps the same
// driver (RunKspDgQuery) in the Storm-style master/worker runtime.
#ifndef KSPDG_KSPDG_KSP_DG_H_
#define KSPDG_KSPDG_KSP_DG_H_

#include "core/status.h"
#include "core/types.h"
#include "dtlp/dtlp.h"
#include "kspdg/ksp_dg_options.h"

namespace kspdg {

class KspDgEngine {
 public:
  /// The engine reads (and never writes) the DTLP: subgraph weight copies,
  /// level-1 indexes and the skeleton graph. Safe to share across query
  /// threads as long as no update is applied concurrently.
  explicit KspDgEngine(const Dtlp& dtlp) : dtlp_(&dtlp) {}

  /// Answers q(s, t) with the current snapshot of weights.
  Result<KspQueryResult> Query(VertexId s, VertexId t,
                               const KspDgOptions& options) const;

  const Dtlp& dtlp() const { return *dtlp_; }

 private:
  const Dtlp* dtlp_;
};

}  // namespace kspdg

#endif  // KSPDG_KSPDG_KSP_DG_H_
