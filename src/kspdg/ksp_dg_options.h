// Internal option and result types of the KSP-DG algorithm. Public callers
// configure queries through api/routing_options.h (RoutingOptions folds
// these knobs); this struct is what RunKspDgQuery consumes after the API
// layer merges and validates.
#ifndef KSPDG_KSPDG_KSP_DG_OPTIONS_H_
#define KSPDG_KSPDG_KSP_DG_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "ksp/path.h"

namespace kspdg {

struct KspDgOptions {
  uint32_t k = 2;
  /// Hard cap on filter/refine iterations (safety valve; §5.5 argues ~k
  /// iterations in practice).
  uint32_t max_iterations = 1000;
  /// §5.2 optimisation: cache partial k-shortest paths across iterations of
  /// one query.
  bool reuse_partials = true;
  /// When joins reject non-simple combinations and the candidate list comes
  /// up short, partial lists are re-fetched with doubled depth up to this
  /// many times (0 reproduces the paper's plain Algorithm 4).
  uint32_t join_refetch_rounds = 2;
};

struct KspDgQueryStats {
  uint32_t iterations = 0;
  size_t partial_ksp_computations = 0;  // Yen runs on subgraphs
  size_t partial_cache_hits = 0;
  size_t subgraphs_examined = 0;
  size_t candidates_generated = 0;
};

struct KspQueryResult {
  std::vector<Path> paths;  // ascending distance; at most k
  KspDgQueryStats stats;
};

}  // namespace kspdg

#endif  // KSPDG_KSPDG_KSP_DG_OPTIONS_H_
