#include "kspdg/query_context.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "ksp/yen.h"

namespace kspdg {

namespace {
uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

QueryContext::QueryContext(const Dtlp& dtlp, PartialProvider* provider,
                           VertexId s, VertexId t,
                           const KspDgOptions& options,
                           PartialCacheStore* shared_cache)
    : dtlp_(dtlp),
      provider_(provider),
      options_(options),
      s_(s),
      t_(t),
      overlay_(dtlp.skeleton()),
      cache_(shared_cache != nullptr ? shared_cache : &owned_cache_) {}

void QueryContext::AttachEndpoint(VertexId v, bool is_source,
                                  SkeletonId* id_out) {
  const SkeletonGraph& skeleton = dtlp_.skeleton();
  if (skeleton.ContainsGlobal(v)) {
    *id_out = skeleton.IdOfGlobal(v);
    return;
  }
  SkeletonId temp = overlay_.AddTempVertex(v);
  const Partition& partition = dtlp_.partition();
  for (SubgraphId sgid : partition.subgraphs_of_vertex[v]) {
    const Subgraph& sg = partition.subgraphs[sgid];
    const SubgraphIndex& index = dtlp_.index(sgid);
    VertexId local = sg.LocalOf(v);
    for (const auto& [boundary_local, lbd] :
         index.LowerBoundsToBoundary(local, /*from_vertex=*/is_source)) {
      VertexId boundary_global = sg.GlobalOf(boundary_local);
      SkeletonId bid = overlay_.IdOfGlobal(boundary_global);
      if (bid == kInvalidVertex) continue;
      // Direction: source overlays use v -> boundary, target overlays
      // boundary -> v; the unused direction is impassable so reference paths
      // cannot route *through* an endpoint.
      if (is_source) {
        overlay_.AddTempEdge(temp, bid, lbd, kInfiniteWeight);
      } else {
        overlay_.AddTempEdge(bid, temp, lbd, kInfiniteWeight);
      }
    }
  }
  *id_out = temp;
}

bool QueryContext::BuildOverlay() {
  AttachEndpoint(s_, /*is_source=*/true, &sid_);
  AttachEndpoint(t_, /*is_source=*/false, &tid_);
  if (sid_ == kInvalidVertex || tid_ == kInvalidVertex) return false;
  // If s and t share a subgraph, the KSPs may never touch a boundary
  // vertex: connect them directly with the in-subgraph lower bound.
  const Partition& partition = dtlp_.partition();
  bool both_base = sid_ < dtlp_.skeleton().NumVertices() &&
                   tid_ < dtlp_.skeleton().NumVertices();
  bool base_edge_exists = false;
  if (both_base) {
    for (const Arc& a : dtlp_.skeleton().Neighbors(sid_)) {
      if (a.to == tid_) {
        base_edge_exists = true;
        break;
      }
    }
  }
  if (!base_edge_exists) {
    Weight best = kInfiniteWeight;
    for (SubgraphId sgid : partition.SubgraphsContainingBoth(s_, t_)) {
      const Subgraph& sg = partition.subgraphs[sgid];
      Weight lbd = dtlp_.index(sgid).LowerBoundBetween(sg.LocalOf(s_),
                                                       sg.LocalOf(t_));
      best = std::min(best, lbd);
    }
    if (best != kInfiniteWeight) {
      overlay_.AddTempEdge(sid_, tid_, best, kInfiniteWeight);
    }
  }
  return true;
}

const std::vector<Path>& QueryContext::Partials(VertexId x, VertexId y,
                                                size_t depth,
                                                bool* exhausted) {
  uint64_t key = PairKey(x, y);
  PartialCacheStore::Entry& entry = cache_->entries[key];
  // A cached entry is reusable if it was computed at least as deep, or if
  // the subgraphs were already exhausted (deeper fetches cannot add paths).
  if (entry.depth >= depth || (entry.depth > 0 && entry.exhausted)) {
    ++stats_.partial_cache_hits;
    *exhausted = entry.exhausted;
    return entry.paths;
  }
  PartialResult result = provider_->ComputePartials(x, y, depth);
  stats_.partial_ksp_computations += result.yen_runs;
  stats_.subgraphs_examined += result.yen_runs;
  entry.paths = std::move(result.paths);
  entry.depth = depth;
  entry.exhausted = result.exhausted;
  *exhausted = entry.exhausted;
  return entry.paths;
}

std::vector<Path> QueryContext::Join(const std::vector<Path>& prefixes,
                                     const std::vector<Path>& segments,
                                     size_t limit, size_t* rejected) {
  std::vector<Path> out;
  std::unordered_set<VertexId> used;
  for (const Path& prefix : prefixes) {
    for (const Path& segment : segments) {
      if (prefix.vertices.back() != segment.vertices.front()) continue;
      // Simplicity check: the segment may not revisit prefix vertices.
      used.clear();
      used.insert(prefix.vertices.begin(), prefix.vertices.end());
      bool simple = true;
      for (size_t i = 1; i < segment.vertices.size(); ++i) {
        if (used.count(segment.vertices[i])) {
          simple = false;
          break;
        }
      }
      if (!simple) {
        ++*rejected;
        continue;
      }
      Path joined;
      joined.vertices = prefix.vertices;
      joined.vertices.insert(joined.vertices.end(),
                             segment.vertices.begin() + 1,
                             segment.vertices.end());
      joined.distance = prefix.distance + segment.distance;
      InsertTopK(out, std::move(joined), limit);
    }
  }
  return out;
}

std::vector<Path> QueryContext::CandidateKsp(
    const std::vector<SkeletonId>& reference) {
  if (!options_.reuse_partials) cache_->entries.clear();
  const size_t k = options_.k;
  // Translate the reference path to global vertex ids.
  std::vector<VertexId> refs;
  refs.reserve(reference.size());
  for (SkeletonId id : reference) refs.push_back(overlay_.GlobalOf(id));

  size_t depth = k;
  for (uint32_t round = 0;; ++round) {
    std::vector<Path> c;
    size_t rejected = 0;
    bool any_exhaustible = false;
    for (size_t j = 0; j + 1 < refs.size(); ++j) {
      bool exhausted = false;
      const std::vector<Path>& y =
          Partials(refs[j], refs[j + 1], depth, &exhausted);
      if (y.empty()) return {};  // no path follows this reference sequence
      if (!exhausted) any_exhaustible = true;
      if (j == 0) {
        c = y;
        if (c.size() > depth) c.resize(depth);
      } else {
        // Keep up to `depth` prefixes alive: when joins reject non-simple
        // combinations, prefixes beyond the k-th may still complete.
        c = Join(c, y, depth, &rejected);
        if (c.empty()) break;
      }
    }
    bool short_due_to_rejection = c.size() < k && rejected > 0;
    if (!short_due_to_rejection || !any_exhaustible ||
        round >= options_.join_refetch_rounds) {
      if (c.size() > k) c.resize(k);
      stats_.candidates_generated += c.size();
      return c;
    }
    // Joins rejected non-simple combinations and some partial list was
    // truncated at `depth`: deepen and retry so a feasible combination
    // hiding below the truncation horizon is not missed.
    depth *= 2;
  }
}

KspQueryResult RunKspDgQuery(const Dtlp& dtlp, PartialProvider* provider,
                             VertexId s, VertexId t,
                             const KspDgOptions& options,
                             PartialCacheStore* cache) {
  KspQueryResult result;
  if (s == t) {
    result.paths.push_back(Path{{s}, 0});
    return result;
  }
  QueryContext ctx(dtlp, provider, s, t, options, cache);
  if (!ctx.BuildOverlay()) return result;  // isolated endpoint: no paths

  YenEnumerator<SkeletonOverlay> reference_paths(ctx.overlay(),
                                                 ctx.overlay_s(),
                                                 ctx.overlay_t());
  std::optional<Path> ref = reference_paths.NextPath();
  std::vector<Path>& top = result.paths;
  while (ref.has_value() && ctx.stats().iterations < options.max_iterations) {
    ++ctx.stats().iterations;
    std::vector<Path> candidates = ctx.CandidateKsp(ref->vertices);
    for (Path& c : candidates) InsertTopK(top, std::move(c), options.k);
    std::optional<Path> next = reference_paths.NextPath();
    bool done = top.size() == options.k &&
                (!next.has_value() ||
                 top.back().distance <= next->distance + kWeightEpsilon);
    if (done || !next.has_value()) break;
    ref = std::move(next);
  }
  result.stats = ctx.stats();
  return result;
}

}  // namespace kspdg
