// Per-query working state of KSP-DG: the skeleton overlay for the endpoints
// (§5.3), the partial-KSP cache (§5.2 optimisation), and Algorithm 4.
// Shared by the single-node engine and the distributed QueryBolt.
#ifndef KSPDG_KSPDG_QUERY_CONTEXT_H_
#define KSPDG_KSPDG_QUERY_CONTEXT_H_

#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "dtlp/dtlp.h"
#include "dtlp/skeleton_graph.h"
#include "ksp/path.h"
#include "kspdg/ksp_dg_options.h"
#include "kspdg/partial_provider.h"

namespace kspdg {

/// Cache of partial k-shortest paths between boundary pairs (§5.2), keyed by
/// (x, y). Entries depend only on the weight snapshot, not on the query, so
/// a store may be shared by many queries *at one frozen snapshot* — e.g. all
/// requests a batch worker answers under a single service reader-lock hold.
/// Never reuse a store across ApplyTrafficBatch calls, and never share one
/// between threads.
struct PartialCacheStore {
  struct Entry {
    std::vector<Path> paths;
    size_t depth = 0;
    bool exhausted = false;
  };
  std::unordered_map<uint64_t, Entry> entries;
};

class QueryContext {
 public:
  /// `shared_cache` (optional) substitutes an external partial-path cache
  /// for the context-owned one, carrying warm entries across queries.
  QueryContext(const Dtlp& dtlp, PartialProvider* provider, VertexId s,
               VertexId t, const KspDgOptions& options,
               PartialCacheStore* shared_cache = nullptr);

  // cache_ may point at owned_cache_: copying/moving would alias the source
  // object's cache.
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Builds the endpoint overlay. Returns false if an endpoint cannot be
  /// attached (isolated vertex with no incident edges).
  bool BuildOverlay();

  SkeletonId overlay_s() const { return sid_; }
  SkeletonId overlay_t() const { return tid_; }
  const SkeletonOverlay& overlay() const { return overlay_; }

  /// Algorithm 4: candidate k shortest paths following the boundary-vertex
  /// sequence of `reference` (overlay ids).
  std::vector<Path> CandidateKsp(const std::vector<SkeletonId>& reference);

  KspDgQueryStats& stats() { return stats_; }

 private:
  const std::vector<Path>& Partials(VertexId x, VertexId y, size_t depth,
                                    bool* exhausted);

  static std::vector<Path> Join(const std::vector<Path>& prefixes,
                                const std::vector<Path>& segments,
                                size_t limit, size_t* rejected);

  void AttachEndpoint(VertexId v, bool is_source, SkeletonId* id_out);

  const Dtlp& dtlp_;
  PartialProvider* provider_;
  const KspDgOptions options_;
  VertexId s_, t_;
  SkeletonOverlay overlay_;
  SkeletonId sid_ = kInvalidVertex;
  SkeletonId tid_ = kInvalidVertex;

  PartialCacheStore owned_cache_;  // fallback when no shared cache is given
  PartialCacheStore* cache_;
  KspDgQueryStats stats_;
};

/// The shared Algorithm 3 driver: iterates reference paths over the overlay
/// until the top-k list provably contains the KSPs. `cache` (optional) lets
/// consecutive queries at one weight snapshot reuse partial-path results
/// (see PartialCacheStore for the sharing rules).
KspQueryResult RunKspDgQuery(const Dtlp& dtlp, PartialProvider* provider,
                             VertexId s, VertexId t,
                             const KspDgOptions& options,
                             PartialCacheStore* cache = nullptr);

}  // namespace kspdg

#endif  // KSPDG_KSPDG_QUERY_CONTEXT_H_
