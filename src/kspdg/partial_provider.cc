#include "kspdg/partial_provider.h"

#include "ksp/yen.h"

namespace kspdg {

std::vector<Path> LocalPartialProvider::PartialsInSubgraph(const Subgraph& sg,
                                                           VertexId x,
                                                           VertexId y,
                                                           size_t depth) {
  VertexId lx = sg.LocalOf(x);
  VertexId ly = sg.LocalOf(y);
  std::vector<Path> paths = YenKspInGraph(sg.local(), lx, ly, depth);
  for (Path& p : paths) {
    for (VertexId& v : p.vertices) v = sg.GlobalOf(v);
  }
  return paths;
}

PartialResult LocalPartialProvider::ComputePartials(VertexId x, VertexId y,
                                                    size_t depth) {
  PartialResult result;
  size_t max_fetched = 0;
  const Partition& partition = dtlp_->partition();
  for (SubgraphId sgid : partition.SubgraphsContainingBoth(x, y)) {
    const Subgraph& sg = partition.subgraphs[sgid];
    ++result.yen_runs;
    std::vector<Path> local = PartialsInSubgraph(sg, x, y, depth);
    max_fetched = std::max(max_fetched, local.size());
    for (Path& p : local) InsertTopK(result.paths, std::move(p), depth);
  }
  result.exhausted = max_fetched < depth;
  return result;
}

}  // namespace kspdg
