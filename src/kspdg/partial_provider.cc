#include "kspdg/partial_provider.h"

#include <algorithm>
#include <utility>

#include "ksp/yen.h"

namespace kspdg {

PartialResult MergeSubgraphPartials(std::vector<SubgraphPartials> lists,
                                    size_t depth) {
  std::sort(lists.begin(), lists.end(),
            [](const SubgraphPartials& a, const SubgraphPartials& b) {
              return a.sgid < b.sgid;
            });
  PartialResult result;
  result.yen_runs = lists.size();
  size_t max_fetched = 0;
  for (SubgraphPartials& list : lists) {
    max_fetched = std::max(max_fetched, list.paths.size());
    for (Path& p : list.paths) {
      InsertTopK(result.paths, std::move(p), depth);
    }
  }
  result.exhausted = max_fetched < depth;
  return result;
}

std::vector<Path> LocalPartialProvider::PartialsInSubgraph(const Subgraph& sg,
                                                           VertexId x,
                                                           VertexId y,
                                                           size_t depth) {
  VertexId lx = sg.LocalOf(x);
  VertexId ly = sg.LocalOf(y);
  std::vector<Path> paths = YenKspInGraph(sg.local(), lx, ly, depth);
  for (Path& p : paths) {
    for (VertexId& v : p.vertices) v = sg.GlobalOf(v);
  }
  return paths;
}

PartialResult LocalPartialProvider::ComputePartials(VertexId x, VertexId y,
                                                    size_t depth) {
  const Partition& partition = dtlp_->partition();
  std::vector<SubgraphPartials> lists;
  for (SubgraphId sgid : partition.SubgraphsContainingBoth(x, y)) {
    const Subgraph& sg = partition.subgraphs[sgid];
    lists.push_back({sgid, PartialsInSubgraph(sg, x, y, depth)});
  }
  return MergeSubgraphPartials(std::move(lists), depth);
}

}  // namespace kspdg
