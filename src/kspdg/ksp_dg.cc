#include "kspdg/ksp_dg.h"

#include "kspdg/partial_provider.h"
#include "kspdg/query_context.h"

namespace kspdg {

Result<KspQueryResult> KspDgEngine::Query(VertexId s, VertexId t,
                                          const KspDgOptions& options) const {
  const Graph& g = dtlp_->graph();
  if (s >= g.NumVertices() || t >= g.NumVertices()) {
    return Status::InvalidArgument("query vertex out of range");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  LocalPartialProvider provider(*dtlp_);
  return RunKspDgQuery(*dtlp_, &provider, s, t, options);
}

}  // namespace kspdg
