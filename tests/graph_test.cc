// Unit tests for src/graph: Graph storage, DIMACS IO, generators, traffic
// model.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/dimacs_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/traffic_model.h"

namespace kspdg {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g = Graph::Undirected(3);
  EdgeId e = g.AddEdge(0, 1, 5);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeU(e), 0u);
  EXPECT_EQ(g.EdgeV(e), 1u);
  EXPECT_EQ(g.OtherEndpoint(e, 0), 1u);
  EXPECT_EQ(g.OtherEndpoint(e, 1), 0u);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 1), 5.0);
  EXPECT_EQ(g.VfragsFrom(e, 0), 5u);
}

TEST(GraphTest, AdjacencyBothDirections) {
  Graph g = Graph::Undirected(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 3);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
}

TEST(GraphTest, SetWeightUndirectedForcesSymmetry) {
  Graph g = Graph::Undirected(2);
  EdgeId e = g.AddEdge(0, 1, 4);
  g.SetWeight({e, 7.5, 9.0});  // backward ignored for undirected
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 0), 7.5);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 1), 7.5);
}

TEST(GraphTest, DirectedWeightsIndependent) {
  Graph g = Graph::Directed(2);
  EdgeId e = g.AddEdge(0, 1, 4, 6);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 1), 6.0);
  g.SetWeight({e, 1.5, 2.5});
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 1), 2.5);
  EXPECT_EQ(g.VfragsFrom(e, 0), 4u);
  EXPECT_EQ(g.VfragsFrom(e, 1), 6u);
}

TEST(GraphTest, UnitWeights) {
  Graph g = Graph::Undirected(2);
  EdgeId e = g.AddEdge(0, 1, 4);
  g.SetWeight(e, 2.0);
  EXPECT_DOUBLE_EQ(g.UnitWeightFrom(e, 0), 0.5);
}

TEST(GraphTest, FindEdge) {
  Graph g = Graph::Undirected(4);
  EdgeId e = g.AddEdge(1, 3, 2);
  EXPECT_EQ(g.FindEdge(1, 3), e);
  EXPECT_EQ(g.FindEdge(3, 1), e);
  EXPECT_EQ(g.FindEdge(0, 2), kInvalidEdge);
}

TEST(GraphTest, ResetWeights) {
  Graph g = Graph::Undirected(2);
  EdgeId e = g.AddEdge(0, 1, 8);
  g.SetWeight(e, 3.25);
  g.ResetWeights();
  EXPECT_DOUBLE_EQ(g.WeightFrom(e, 0), 8.0);
}

TEST(GraphTest, SnapshotRestore) {
  Graph g = Graph::Undirected(3);
  EdgeId e0 = g.AddEdge(0, 1, 5);
  EdgeId e1 = g.AddEdge(1, 2, 7);
  Graph::WeightVector snap = g.SnapshotWeights(42);
  EXPECT_EQ(snap.version, 42u);
  g.SetWeight(e0, 1.0);
  g.SetWeight(e1, 2.0);
  ASSERT_TRUE(g.RestoreWeights(snap).ok());
  EXPECT_DOUBLE_EQ(g.WeightFrom(e0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightFrom(e1, 1), 7.0);
}

TEST(GraphTest, SnapshotSizeMismatchRejected) {
  Graph g = Graph::Undirected(2);
  g.AddEdge(0, 1, 1);
  Graph::WeightVector bad;
  EXPECT_FALSE(g.RestoreWeights(bad).ok());
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(1, 2, 1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, MemoryBytesPositive) {
  Graph g = MakeRandomConnected(50, 30, 1, 9, 3);
  EXPECT_GT(g.MemoryBytes(), 50 * sizeof(VertexId));
}

TEST(DimacsIoTest, RoundTrip) {
  Graph g = MakeRandomConnected(20, 15, 1, 9, 7);
  std::stringstream ss;
  ASSERT_TRUE(WriteDimacs(g, ss).ok());
  Result<Graph> back = ReadDimacs(ss, /*directed=*/false);
  ASSERT_TRUE(back.ok());
  const Graph& h = back.value();
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  // Edge multiset must match.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EdgeId he = h.FindEdge(g.EdgeU(e), g.EdgeV(e));
    ASSERT_NE(he, kInvalidEdge);
    EXPECT_DOUBLE_EQ(h.WeightFrom(he, g.EdgeU(e)), g.WeightFrom(e, g.EdgeU(e)));
  }
}

TEST(DimacsIoTest, ParsesHandWrittenFile) {
  std::stringstream ss(
      "c tiny example\n"
      "p sp 3 4\n"
      "a 1 2 10\n"
      "a 2 1 10\n"
      "a 2 3 20\n"
      "a 3 2 20\n");
  Result<Graph> g = ReadDimacs(ss, /*directed=*/false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumVertices(), 3u);
  EXPECT_EQ(g.value().NumEdges(), 2u);
}

TEST(DimacsIoTest, DirectedAsymmetricArcs) {
  std::stringstream ss(
      "p sp 2 2\n"
      "a 1 2 10\n"
      "a 2 1 30\n");
  Result<Graph> g = ReadDimacs(ss, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  const Graph& h = g.value();
  ASSERT_EQ(h.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(h.WeightFrom(0, h.EdgeU(0)), 10.0);
  EXPECT_DOUBLE_EQ(h.WeightFrom(0, h.EdgeV(0)), 30.0);
}

TEST(DimacsIoTest, RejectsMalformedHeader) {
  std::stringstream ss("p xx 3 4\n");
  EXPECT_FALSE(ReadDimacs(ss, false).ok());
}

TEST(DimacsIoTest, RejectsArcBeforeHeader) {
  std::stringstream ss("a 1 2 3\n");
  EXPECT_FALSE(ReadDimacs(ss, false).ok());
}

TEST(DimacsIoTest, RejectsUnknownTag) {
  std::stringstream ss("p sp 2 2\nz 1 2\n");
  EXPECT_FALSE(ReadDimacs(ss, false).ok());
}

TEST(GeneratorsTest, RoadNetworkConnected) {
  RoadNetworkOptions opt;
  opt.rows = 20;
  opt.cols = 25;
  opt.seed = 5;
  Graph g = MakeRoadNetwork(opt);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GeneratorsTest, RoadNetworkWeightRange) {
  RoadNetworkOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.min_weight = 4;
  opt.max_weight = 9;
  Graph g = MakeRoadNetwork(opt);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_GE(g.ForwardVfrags(e), 4u);
    EXPECT_LE(g.ForwardVfrags(e), 9u);
  }
}

TEST(GeneratorsTest, RoadNetworkDeterministicPerSeed) {
  RoadNetworkOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  opt.seed = 77;
  Graph a = MakeRoadNetwork(opt);
  Graph b = MakeRoadNetwork(opt);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeU(e), b.EdgeU(e));
    EXPECT_EQ(a.EdgeV(e), b.EdgeV(e));
    EXPECT_EQ(a.ForwardVfrags(e), b.ForwardVfrags(e));
  }
}

TEST(GeneratorsTest, ThinningReducesEdges) {
  RoadNetworkOptions dense;
  dense.rows = 30;
  dense.cols = 30;
  dense.thinning = 0.0;
  RoadNetworkOptions thin = dense;
  thin.thinning = 0.8;
  EXPECT_GT(MakeRoadNetwork(dense).NumEdges(),
            MakeRoadNetwork(thin).NumEdges());
  EXPECT_TRUE(MakeRoadNetwork(thin).IsConnected());
}

TEST(GeneratorsTest, DirectedAsymmetricWeights) {
  RoadNetworkOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.directed = true;
  opt.asymmetric_prob = 1.0;
  Graph g = MakeRoadNetwork(opt);
  bool any_asym = false;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.ForwardVfrags(e) != g.BackwardVfrags(e)) any_asym = true;
  }
  EXPECT_TRUE(any_asym);
}

TEST(GeneratorsTest, RandomConnectedIsConnected) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = MakeRandomConnected(40, 30, 1, 10, seed);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.NumEdges(), 39u);
  }
}

TEST(GeneratorsTest, PaperFigure3GraphShape) {
  Graph g = MakePaperFigure3Graph();
  EXPECT_EQ(g.NumVertices(), 18u);
  EXPECT_EQ(g.NumEdges(), 25u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(TrafficModelTest, BatchSizeMatchesAlpha) {
  Graph g = MakeRandomConnected(100, 100, 2, 20, 1);
  TrafficModelOptions opt;
  opt.alpha = 0.25;
  TrafficModel model(g, opt);
  std::vector<WeightUpdate> batch = model.NextBatch();
  EXPECT_EQ(batch.size(), static_cast<size_t>(0.25 * g.NumEdges()));
}

TEST(TrafficModelTest, DistinctEdgesWithinBatch) {
  Graph g = MakeRandomConnected(60, 60, 2, 20, 2);
  TrafficModelOptions opt;
  opt.alpha = 0.5;
  TrafficModel model(g, opt);
  std::vector<WeightUpdate> batch = model.NextBatch();
  std::set<EdgeId> seen;
  for (const WeightUpdate& u : batch) EXPECT_TRUE(seen.insert(u.edge).second);
}

TEST(TrafficModelTest, WeightsWithinTauOfInitial) {
  Graph g = MakeRandomConnected(80, 60, 5, 20, 3);
  TrafficModelOptions opt;
  opt.alpha = 1.0;
  opt.tau = 0.3;
  TrafficModel model(g, opt);
  for (int step = 0; step < 5; ++step) {
    for (const WeightUpdate& u : model.NextBatch()) {
      double w0 = static_cast<double>(g.ForwardVfrags(u.edge));
      EXPECT_GE(u.new_forward, 0.7 * w0 - 1e-9);
      EXPECT_LE(u.new_forward, 1.3 * w0 + 1e-9);
      EXPECT_GT(u.new_forward, 0.0);
    }
  }
}

TEST(TrafficModelTest, MirroredDirectionsByDefault) {
  Graph g = MakeRoadNetwork({.rows = 8,
                             .cols = 8,
                             .thinning = 0.2,
                             .diagonal_prob = 0,
                             .min_weight = 2,
                             .max_weight = 9,
                             .directed = true,
                             .asymmetric_prob = 0.0,
                             .seed = 4});
  TrafficModelOptions opt;
  opt.alpha = 1.0;
  TrafficModel model(g, opt);
  for (const WeightUpdate& u : model.NextBatch()) {
    EXPECT_DOUBLE_EQ(u.new_forward, u.new_backward);
  }
}

TEST(TrafficModelTest, IndependentDirectionsWhenRequested) {
  Graph g = MakeRoadNetwork({.rows = 8,
                             .cols = 8,
                             .thinning = 0.2,
                             .diagonal_prob = 0,
                             .min_weight = 2,
                             .max_weight = 9,
                             .directed = true,
                             .asymmetric_prob = 0.0,
                             .seed = 4});
  TrafficModelOptions opt;
  opt.alpha = 1.0;
  opt.independent_directions = true;
  TrafficModel model(g, opt);
  bool any_diff = false;
  for (const WeightUpdate& u : model.NextBatch()) {
    if (u.new_forward != u.new_backward) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TrafficModelTest, StepAppliesToGraph) {
  Graph g = MakeRandomConnected(30, 20, 2, 9, 6);
  TrafficModelOptions opt;
  opt.alpha = 1.0;
  TrafficModel model(g, opt);
  std::vector<WeightUpdate> batch = model.Step(g);
  for (const WeightUpdate& u : batch) {
    EXPECT_DOUBLE_EQ(g.ForwardWeight(u.edge), u.new_forward);
  }
}

}  // namespace
}  // namespace kspdg
