// Tests for the src/obs metrics registry: handle interning, histogram
// bucketing, snapshot consistency, wire/JSON export, and scrape-under-load
// safety (the *Concurrent* test is the one CI runs under tsan).
#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kspdg {
namespace {

TEST(MetricsRegistryTest, CounterInternsByNameAndLabels) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("requests_total", {{"kind", "ksp"}});
  // Same key, labels given in a different order: must intern to one cell.
  Counter b = registry.GetCounter("requests_total", {{"kind", "ksp"}});
  Counter other = registry.GetCounter("requests_total", {{"kind", "sp"}});
  a.Increment();
  b.Increment(4);
  other.Increment(100);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(other.value(), 100u);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.CounterTotal("requests_total"), 105u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitCells) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("queries_total",
                                  {{"kind", "ksp"}, {"backend", "yen"}});
  Counter b = registry.GetCounter("queries_total",
                                  {{"backend", "yen"}, {"kind", "ksp"}});
  a.Increment();
  b.Increment();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(registry.Snapshot().counters.size(), 1u);
}

TEST(MetricsRegistryTest, DefaultHandlesAreValidNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.valid());
  EXPECT_FALSE(gauge.valid());
  EXPECT_FALSE(histogram.valid());
  counter.Increment();
  gauge.Set(7);
  gauge.Add(2);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge depth = registry.GetGauge("queue_depth");
  depth.Set(10);
  depth.Add(-3);
  EXPECT_EQ(depth.value(), 7);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(MetricsRegistryTest, HistogramBucketsObservations) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("latency", {}, {10.0, 100.0, 1000.0});
  h.Observe(5);      // bucket 0 (<= 10)
  h.Observe(10);     // bucket 0 (boundary lands in its bucket)
  h.Observe(50);     // bucket 1
  h.Observe(999);    // bucket 2
  h.Observe(5000);   // overflow bucket
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& sample = snap.histograms[0];
  ASSERT_EQ(sample.buckets.size(), 4u);
  EXPECT_EQ(sample.buckets[0], 2u);
  EXPECT_EQ(sample.buckets[1], 1u);
  EXPECT_EQ(sample.buckets[2], 1u);
  EXPECT_EQ(sample.buckets[3], 1u);
  EXPECT_EQ(sample.count, 5u);
  EXPECT_DOUBLE_EQ(sample.sum, 5 + 10 + 50 + 999 + 5000);
}

TEST(MetricsRegistryTest, HistogramCountAlwaysMatchesBucketSum) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("latency", {}, LatencyBucketsMicros());
  for (int i = 0; i < 1000; ++i) h.Observe(i * 37 % 200000);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.histograms[0].buckets) bucket_sum += b;
  EXPECT_EQ(snap.histograms[0].count, bucket_sum);
  EXPECT_EQ(bucket_sum, 1000u);
}

TEST(MetricsRegistryTest, CallbacksEvaluateAtSnapshotTime) {
  MetricsRegistry registry;
  std::atomic<uint64_t> external{41};
  std::atomic<int64_t> depth{3};
  registry.AddCounterCallback("external_total", {}, [&] {
    return external.load(std::memory_order_relaxed);
  });
  registry.AddGaugeCallback("external_depth", {}, [&] {
    return depth.load(std::memory_order_relaxed);
  });
  external.store(42);
  depth.store(9);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterTotal("external_total"), 42u);
  ASSERT_EQ(snap.GaugeSampleCount("external_depth"), 1u);
  EXPECT_EQ(snap.gauges[0].value, 9);
}

TEST(MetricsRegistryTest, SnapshotSamplesAreSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zzz").Increment();
  registry.GetCounter("aaa", {{"x", "2"}}).Increment();
  registry.GetCounter("aaa", {{"x", "1"}}).Increment();
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aaa");
  EXPECT_EQ(snap.counters[0].labels[0].second, "1");
  EXPECT_EQ(snap.counters[1].labels[0].second, "2");
  EXPECT_EQ(snap.counters[2].name, "zzz");
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndAppendsNewKeys) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("shared_total").Increment(3);
  b.GetCounter("shared_total").Increment(4);
  b.GetCounter("only_b_total").Increment(1);
  a.GetGauge("epoch").Set(5);
  b.GetGauge("epoch").Set(9);
  Histogram ha = a.GetHistogram("lat", {}, {1.0, 2.0});
  Histogram hb = b.GetHistogram("lat", {}, {1.0, 2.0});
  ha.Observe(0.5);
  hb.Observe(1.5);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.CounterTotal("shared_total"), 7u);
  EXPECT_EQ(merged.CounterTotal("only_b_total"), 1u);
  // Gauges take the incoming value.
  ASSERT_EQ(merged.GaugeSampleCount("epoch"), 1u);
  EXPECT_EQ(merged.gauges[0].value, 9);
  // Same bounds: histograms add bucket-wise.
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].buckets[0], 1u);
  EXPECT_EQ(merged.histograms[0].buckets[1], 1u);
}

TEST(MetricsSnapshotTest, AddLabelKeepsSamplesDistinctAcrossWorkers) {
  MetricsRegistry w0;
  MetricsRegistry w1;
  w0.GetCounter("worker_pings_total").Increment(2);
  w1.GetCounter("worker_pings_total").Increment(5);
  MetricsSnapshot s0 = w0.Snapshot();
  MetricsSnapshot s1 = w1.Snapshot();
  s0.AddLabel("shard", "0");
  s1.AddLabel("shard", "1");
  MetricsSnapshot fleet;
  fleet.Merge(s0);
  fleet.Merge(s1);
  // Different shard labels: two samples, but the total still sums.
  ASSERT_EQ(fleet.counters.size(), 2u);
  EXPECT_EQ(fleet.CounterTotal("worker_pings_total"), 7u);
}

TEST(MetricsSnapshotTest, WireRoundTripPreservesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("queries_total", {{"kind", "ksp"}, {"backend", "yen"}})
      .Increment(12);
  registry.GetGauge("epoch").Set(-3);
  Histogram h = registry.GetHistogram("lat", {}, {10.0, 100.0});
  h.Observe(7);
  h.Observe(70);
  h.Observe(700);
  MetricsSnapshot original = registry.Snapshot();

  std::string wire = original.EncodeWire();
  MetricsSnapshot decoded;
  ASSERT_TRUE(MetricsSnapshot::DecodeWire(wire, &decoded).ok());
  ASSERT_EQ(decoded.counters.size(), 1u);
  EXPECT_EQ(decoded.counters[0].name, "queries_total");
  ASSERT_EQ(decoded.counters[0].labels.size(), 2u);
  EXPECT_EQ(decoded.counters[0].value, 12u);
  ASSERT_EQ(decoded.gauges.size(), 1u);
  EXPECT_EQ(decoded.gauges[0].value, -3);
  ASSERT_EQ(decoded.histograms.size(), 1u);
  EXPECT_EQ(decoded.histograms[0].count, 3u);
  EXPECT_EQ(decoded.histograms[0].buckets,
            (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(decoded.histograms[0].sum, 777.0);
}

TEST(MetricsSnapshotTest, WireDecodeRejectsCorruptPayloads) {
  MetricsRegistry registry;
  registry.GetCounter("a_total").Increment();
  std::string wire = registry.Snapshot().EncodeWire();
  MetricsSnapshot out;
  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        MetricsSnapshot::DecodeWire(std::string_view(wire).substr(0, len), &out)
            .ok());
  }
  // Flipping the sample-count header to a huge value must be rejected.
  std::string corrupt = wire;
  corrupt[0] = '\xff';
  corrupt[1] = '\xff';
  corrupt[2] = '\xff';
  corrupt[3] = '\xff';
  EXPECT_FALSE(MetricsSnapshot::DecodeWire(corrupt, &out).ok());
}

TEST(MetricsSnapshotTest, TextExportUsesPrometheusShape) {
  MetricsRegistry registry;
  registry.GetCounter("queries_total", {{"kind", "ksp"}}).Increment(3);
  Histogram h = registry.GetHistogram("lat", {}, {10.0});
  h.Observe(5);
  h.Observe(50);
  std::string text = registry.ExportText();
  EXPECT_NE(text.find("queries_total{kind=\"ksp\"} 3"), std::string::npos);
  // Cumulative buckets: le="10" holds 1, le="+Inf" holds both.
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonExportIsStrict) {
  MetricsRegistry registry;
  registry.GetCounter("queries_total", {{"kind", "k\"sp"}}).Increment(1);
  registry.GetGauge("epoch").Set(4);
  registry.GetHistogram("lat", {}, {10.0}).Observe(3);
  std::string json = registry.ExportJson();
  // Quotes in label values must be escaped, the overflow bound must be the
  // string "+Inf", and the three top-level arrays must be present.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("k\\\"sp"), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

// Scrape-under-load: writers hammer counters/histograms from several threads
// while a scraper snapshots in a loop. Run under tsan in CI; also asserts
// that no snapshot ever shows a histogram count that disagrees with its own
// buckets, and that the final totals balance.
TEST(MetricsRegistryTest, ConcurrentScrapeWhileServing) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::vector<Counter> counters;
  std::vector<Histogram> histograms;
  for (int w = 0; w < kWriters; ++w) {
    counters.push_back(
        registry.GetCounter("events_total", {{"writer", std::to_string(w)}}));
    histograms.push_back(
        registry.GetHistogram("work_micros", {}, {10.0, 100.0, 1000.0}));
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counters[w].Increment();
        histograms[w].Observe(static_cast<double>(i % 2000));
      }
    });
  }
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = registry.Snapshot();
      for (const HistogramSample& h : snap.histograms) {
        uint64_t bucket_sum = 0;
        for (uint64_t b : h.buckets) bucket_sum += b;
        ASSERT_EQ(h.count, bucket_sum);
      }
      ASSERT_LE(snap.CounterTotal("events_total"), kWriters * kPerWriter);
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.CounterTotal("events_total"), kWriters * kPerWriter);
  ASSERT_EQ(final_snap.histograms.size(), 1u);
  EXPECT_EQ(final_snap.histograms[0].count, kWriters * kPerWriter);
}

}  // namespace
}  // namespace kspdg
