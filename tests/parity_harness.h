// Shared parity harness for the service test suites. Every concrete
// service implements RoutingServiceInterface, so parity — "moving work
// between threads, shards, or processes may never change an answer" — is
// one reusable check: build two services from the same graph, issue the
// same request to both, require byte-identical paths. The factories
// return nullptr after ADD_FAILURE on construction errors so callers can
// ASSERT once and proceed.
#ifndef KSPDG_TESTS_PARITY_HARNESS_H_
#define KSPDG_TESTS_PARITY_HARNESS_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/routing_service.h"
#include "api/routing_service_interface.h"
#include "graph/graph.h"
#include "ksp/path.h"
#include "remote/remote_sharded_routing_service.h"
#include "shard/sharded_routing_service.h"

namespace kspdg {

inline std::unique_ptr<RoutingService> MustCreatePlain(Graph g, uint32_t z) {
  RoutingServiceOptions options;
  options.dtlp.partition.max_vertices = z;
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

inline std::unique_ptr<ShardedRoutingService> MustCreateSharded(
    Graph g, uint32_t z, uint32_t num_shards, unsigned apply_threads = 0,
    unsigned batch_threads = 0) {
  ShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = z;
  options.num_shards = num_shards;
  options.apply_threads = apply_threads;
  options.batch_threads = batch_threads;
  Result<std::unique_ptr<ShardedRoutingService>> service =
      ShardedRoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

// Short RPC deadlines: dead-worker detection costs up to
// deadline_ms * (1 + retries) per first-failing call, so the fault tests
// keep the budget tight. The apply deadline stays generous — load-graph
// rebuilds the DTLP index on the worker.
inline std::unique_ptr<RemoteShardedRoutingService> MustCreateRemote(
    Graph g, uint32_t z, uint32_t num_shards, uint32_t num_replicas = 1) {
  RemoteShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = z;
  options.num_shards = num_shards;
  options.num_replicas = num_replicas;
  options.remote.rpc_deadline_ms = 2000;
  options.remote.rpc_max_retries = 1;
  options.remote.rpc_backoff_ms = 5;
  Result<std::unique_ptr<RemoteShardedRoutingService>> service =
      RemoteShardedRoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

inline RouteRequest MakeRequest(VertexId s, VertexId t,
                                const std::string& backend, uint32_t k) {
  RouteRequest request;
  request.source = s;
  request.target = t;
  request.options.backend = backend;
  request.options.k = k;
  return request;
}

/// Byte-level parity: same number of paths, same routes, same distances
/// (exact doubles — both services run the identical arithmetic on the
/// identical weights, so not even the last bit may differ).
inline void ExpectIdenticalPaths(const std::vector<Path>& got,
                                 const std::vector<Path>& want,
                                 const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].vertices, want[i].vertices) << label << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << label << " rank " << i;
  }
}

/// Issues the same request to both services through the shared interface
/// and requires both to succeed with the same epoch and identical paths.
inline void ExpectQueryParity(RoutingServiceInterface& got_service,
                              RoutingServiceInterface& want_service,
                              const RouteRequest& request,
                              const std::string& label) {
  Result<RouteResponse> got = got_service.Query(request);
  Result<RouteResponse> want = want_service.Query(request);
  ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
  ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
  EXPECT_EQ(got.value().epoch, want.value().epoch) << label;
  ExpectIdenticalPaths(got.value().paths, want.value().paths, label);
}

}  // namespace kspdg

#endif  // KSPDG_TESTS_PARITY_HARNESS_H_
