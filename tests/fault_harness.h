// Fault-injection harness for the replicated remote suite, building on
// parity_harness.h. Three fault families, all deterministic:
//
//   KillReplica / PauseReplica / ResumeReplica
//       act on a NAMED (shard, replica) worker process by pid — SIGKILL
//       for a crash, SIGSTOP/SIGCONT for a process whose socket stops
//       answering (the deadline path, not the connection-reset path).
//   FaultPlan + MakePrepareHook / MakeCommitHook
//       script the coordinator's two-phase commit: drop the next N
//       prepare (or commit) RPCs of the named replica — it silently
//       misses those epochs exactly as a lost message would — or kill
//       the replica at the instant its prepare would be sent, which is
//       the deterministic "died mid-two-phase-commit" drill.
//
// The plan lives behind a shared_ptr captured by the hooks, so a test
// arms and re-arms faults AFTER the service is built, and the hook state
// (atomics) is safe to flip while an apply is in flight on the pool.
#ifndef KSPDG_TESTS_FAULT_HARNESS_H_
#define KSPDG_TESTS_FAULT_HARNESS_H_

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>

#include <atomic>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "parity_harness.h"
#include "remote/remote_sharded_routing_service.h"

namespace kspdg {

/// The (shard, replica) worker's snapshot, or nullptr + test failure.
inline const RemoteWorkerInfo* FindReplica(
    const std::vector<RemoteWorkerInfo>& infos, ShardId shard,
    uint32_t replica) {
  for (const RemoteWorkerInfo& info : infos) {
    if (info.shard == shard && info.replica == replica) return &info;
  }
  ADD_FAILURE() << "no worker for shard " << shard << " replica " << replica;
  return nullptr;
}

/// Deleted: the returned pointer aims into `infos`, so passing a temporary
/// (e.g. FindReplica(service.WorkerInfos(), ...)) would dangle the moment
/// the statement ends. Bind the snapshot to a local first.
const RemoteWorkerInfo* FindReplica(std::vector<RemoteWorkerInfo>&&, ShardId,
                                    uint32_t) = delete;

inline void SignalReplica(const RemoteShardedRoutingService& service,
                          ShardId shard, uint32_t replica, int signum) {
  const std::vector<RemoteWorkerInfo> infos = service.WorkerInfos();
  const RemoteWorkerInfo* info = FindReplica(infos, shard, replica);
  ASSERT_NE(info, nullptr);
  ASSERT_GT(info->pid, 0) << "shard " << shard << " replica " << replica;
  ASSERT_EQ(kill(info->pid, signum), 0);
}

/// Crash: the process dies immediately; the coordinator discovers it on
/// the next RPC (connection reset) or health check.
inline void KillReplica(const RemoteShardedRoutingService& service,
                        ShardId shard, uint32_t replica) {
  SignalReplica(service, shard, replica, SIGKILL);
}

/// Delay-its-socket: a stopped process keeps its listener open but never
/// answers, so RPCs to it run into the per-attempt deadline instead of a
/// connection error. Pair with ResumeReplica before teardown.
inline void PauseReplica(const RemoteShardedRoutingService& service,
                         ShardId shard, uint32_t replica) {
  SignalReplica(service, shard, replica, SIGSTOP);
}

inline void ResumeReplica(const RemoteShardedRoutingService& service,
                          ShardId shard, uint32_t replica) {
  SignalReplica(service, shard, replica, SIGCONT);
}

/// Scripted faults against one named replica. All counters are armed by
/// the test and consumed by the hooks; `prepares_seen` counts the fault
/// points that targeted the replica (armed or not), so a test can assert
/// the scripted point was actually reached.
struct FaultPlan {
  ShardId shard = kInvalidShard;
  uint32_t replica = 0;
  /// Drop the next N prepare RPCs of the replica (it silently lags).
  std::atomic<int> drop_prepares{0};
  /// Drop the next N commit RPCs (bookkeeping loss; state already moved).
  std::atomic<int> drop_commits{0};
  /// SIGKILL the replica at its next prepare fault point — the
  /// deterministic mid-two-phase-commit crash. One-shot.
  std::atomic<bool> kill_at_prepare{false};
  std::atomic<int> prepares_seen{0};
};

inline std::function<bool(const ReplicaFaultPoint&)> MakePrepareHook(
    std::shared_ptr<FaultPlan> plan) {
  return [plan](const ReplicaFaultPoint& point) {
    if (point.shard != plan->shard || point.replica != plan->replica) {
      return true;
    }
    plan->prepares_seen.fetch_add(1, std::memory_order_relaxed);
    if (plan->kill_at_prepare.exchange(false, std::memory_order_acq_rel)) {
      // Crash exactly between BeginAdvance and this replica's prepare:
      // the RPC then fails on the dead process and the coordinator marks
      // the replica dead mid-batch, deterministically.
      EXPECT_GT(point.pid, 0);
      EXPECT_EQ(kill(point.pid, SIGKILL), 0);
      return true;
    }
    int armed = plan->drop_prepares.load(std::memory_order_relaxed);
    while (armed > 0) {
      if (plan->drop_prepares.compare_exchange_weak(
              armed, armed - 1, std::memory_order_acq_rel)) {
        return false;  // lost message: the replica misses this epoch
      }
    }
    return true;
  };
}

inline std::function<bool(const ReplicaFaultPoint&)> MakeCommitHook(
    std::shared_ptr<FaultPlan> plan) {
  return [plan](const ReplicaFaultPoint& point) {
    if (point.shard != plan->shard || point.replica != plan->replica) {
      return true;
    }
    int armed = plan->drop_commits.load(std::memory_order_relaxed);
    while (armed > 0) {
      if (plan->drop_commits.compare_exchange_weak(
              armed, armed - 1, std::memory_order_acq_rel)) {
        return false;
      }
    }
    return true;
  };
}

/// Replicated fleet with fault-suite deadlines (a dead worker is detected
/// in well under a second) and the plan's hooks installed. `auto_restart`
/// off by default so tests control exactly when revival happens.
inline std::unique_ptr<RemoteShardedRoutingService> MustCreateReplicated(
    Graph g, uint32_t z, uint32_t num_shards, uint32_t num_replicas,
    std::shared_ptr<FaultPlan> plan = nullptr, bool auto_restart = false,
    size_t max_history_batches = 32) {
  RemoteShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = z;
  options.num_shards = num_shards;
  options.num_replicas = num_replicas;
  options.max_history_batches = max_history_batches;
  options.remote.rpc_deadline_ms = 300;
  options.remote.rpc_max_retries = 0;
  options.remote.rpc_backoff_ms = 1;
  options.remote.auto_restart = auto_restart;
  if (plan != nullptr) {
    options.remote.before_prepare_hook = MakePrepareHook(plan);
    options.remote.before_commit_hook = MakeCommitHook(plan);
  }
  Result<std::unique_ptr<RemoteShardedRoutingService>> service =
      RemoteShardedRoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

}  // namespace kspdg

#endif  // KSPDG_TESTS_FAULT_HARNESS_H_
