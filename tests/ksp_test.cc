// Unit + property tests for src/ksp: Dijkstra, Yen, FindKSP, Path helpers.
//
// The Dijkstra and YenEnumerator sections exercise the low-level search
// primitives directly (they are the internals KSP-DG builds on); every
// one-shot k-shortest-paths computation goes through the RoutingService
// facade, selecting the backend under test per request.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "api/routing_service.h"
#include "graph/generators.h"
#include "ksp/dijkstra.h"
#include "ksp/path.h"
#include "ksp/search_graph.h"
#include "ksp/yen.h"

namespace kspdg {
namespace {

/// Builds a throwaway service around `g` and solves q(s, t) with `backend`.
std::vector<Path> SolveViaService(Graph g, VertexId s, VertexId t, size_t k,
                                  const std::string& backend) {
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return {};
  }
  RouteRequest request;
  request.source = s;
  request.target = t;
  request.options.k = static_cast<uint32_t>(k);
  request.options.backend = backend;
  Result<RouteResponse> response = service.value()->Query(request);
  if (!response.ok()) {
    ADD_FAILURE() << response.status().ToString();
    return {};
  }
  return std::move(response).value().paths;
}

/// Reference implementation: enumerate ALL simple paths s->t by DFS and keep
/// the k shortest. Exponential; only for tiny graphs.
std::vector<Path> BruteForceKsp(const Graph& g, VertexId s, VertexId t,
                                size_t k) {
  std::vector<Path> all;
  std::vector<VertexId> current = {s};
  std::vector<char> used(g.NumVertices(), 0);
  used[s] = 1;
  Weight dist = 0;
  std::function<void(VertexId)> dfs = [&](VertexId u) {
    if (u == t) {
      all.push_back({current, dist});
      return;
    }
    for (const Arc& a : g.Neighbors(u)) {
      if (used[a.to]) continue;
      used[a.to] = 1;
      current.push_back(a.to);
      Weight w = g.WeightFrom(a.edge, u);
      dist += w;
      dfs(a.to);
      dist -= w;
      current.pop_back();
      used[a.to] = 0;
    }
  };
  dfs(s);
  std::sort(all.begin(), all.end(), PathLess);
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectSameDistances(const std::vector<Path>& got,
                         const std::vector<Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-7)
        << "rank " << i << ": " << PathToString(got[i]) << " vs "
        << PathToString(want[i]);
  }
}

TEST(PathTest, RouteDistance) {
  Graph g = Graph::Undirected(3);
  g.AddEdge(0, 1, 4);
  g.AddEdge(1, 2, 6);
  EXPECT_DOUBLE_EQ(RouteDistance(g, {0, 1, 2}), 10.0);
  EXPECT_EQ(RouteDistance(g, {0, 2}), kInfiniteWeight);
}

TEST(PathTest, SimpleRouteCheck) {
  EXPECT_TRUE(IsSimpleRoute({0, 1, 2}));
  EXPECT_FALSE(IsSimpleRoute({0, 1, 0}));
  EXPECT_TRUE(IsSimpleRoute({}));
}

TEST(PathTest, InsertTopKKeepsSortedUnique) {
  std::vector<Path> top;
  EXPECT_TRUE(InsertTopK(top, {{0, 1}, 5.0}, 2));
  EXPECT_TRUE(InsertTopK(top, {{0, 2, 1}, 3.0}, 2));
  EXPECT_FALSE(InsertTopK(top, {{0, 2, 1}, 3.0}, 2));  // duplicate route
  EXPECT_TRUE(InsertTopK(top, {{0, 3, 1}, 4.0}, 2));   // evicts 5.0
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].distance, 3.0);
  EXPECT_DOUBLE_EQ(top[1].distance, 4.0);
  EXPECT_FALSE(InsertTopK(top, {{0, 4, 1}, 9.0}, 2));  // too long, full list
}

TEST(DijkstraTest, SimpleShortestPath) {
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 3, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(2, 3, 5);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::optional<Path> p = search.ShortestPath(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->distance, 2.0);
  EXPECT_EQ(p->vertices, (std::vector<VertexId>{0, 1, 3}));
}

TEST(DijkstraTest, UnreachableReturnsNullopt) {
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  EXPECT_FALSE(search.ShortestPath(0, 3).has_value());
}

TEST(DijkstraTest, SourceEqualsTarget) {
  Graph g = Graph::Undirected(2);
  g.AddEdge(0, 1, 1);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::optional<Path> p = search.ShortestPath(1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->distance, 0.0);
  EXPECT_EQ(p->vertices.size(), 1u);
}

TEST(DijkstraTest, RespectsDynamicWeights) {
  Graph g = Graph::Undirected(3);
  EdgeId direct = g.AddEdge(0, 2, 3);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  EXPECT_DOUBLE_EQ(search.ShortestPath(0, 2)->distance, 2.0);
  g.SetWeight(direct, 1.5);
  EXPECT_DOUBLE_EQ(search.ShortestPath(0, 2)->distance, 1.5);
}

TEST(DijkstraTest, VfragCostIgnoresDynamicWeights) {
  Graph g = Graph::Undirected(3);
  EdgeId direct = g.AddEdge(0, 2, 3);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.SetWeight(direct, 0.5);  // current weight cheap, vfrags still 3
  GraphCostView view(g, CostKind::kVfrags);
  DijkstraSearch<GraphCostView> search(view);
  std::optional<Path> p = search.ShortestPath(0, 2);
  EXPECT_DOUBLE_EQ(p->distance, 2.0);  // via vertex 1
}

TEST(DijkstraTest, DirectedWeights) {
  Graph g = Graph::Directed(2);
  g.AddEdge(0, 1, 2, 7);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  EXPECT_DOUBLE_EQ(search.ShortestPath(0, 1)->distance, 2.0);
  EXPECT_DOUBLE_EQ(search.ShortestPath(1, 0)->distance, 7.0);
}

TEST(DijkstraTest, BannedVertexForcesDetour) {
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 3, 1);
  g.AddEdge(0, 2, 2);
  g.AddEdge(2, 3, 2);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::vector<uint32_t> banned(4, 0);
  banned[1] = 1;
  SearchBans bans;
  bans.banned_vertices = &banned;
  bans.vertex_epoch = 1;
  std::optional<Path> p = search.ShortestPath(0, 3, bans);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->distance, 4.0);
}

TEST(DijkstraTest, BannedEdgeForcesDetour) {
  Graph g = Graph::Undirected(3);
  EdgeId fast = g.AddEdge(0, 2, 1);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::vector<uint32_t> banned(g.NumEdges(), 0);
  banned[fast] = 3;
  SearchBans bans;
  bans.banned_edges = &banned;
  bans.edge_epoch = 3;
  EXPECT_DOUBLE_EQ(search.ShortestPath(0, 2, bans)->distance, 2.0);
}

TEST(DijkstraTest, ReverseTreeOnDirectedGraph) {
  Graph g = Graph::Directed(3);
  g.AddEdge(0, 1, 2, 10);
  g.AddEdge(1, 2, 3, 20);
  GraphCostView view(g, CostKind::kCurrentWeight);
  DijkstraSearch<GraphCostView> search(view);
  std::vector<Weight> dist;
  search.ComputeTree(2, /*reverse=*/true, &dist);
  // dist[v] = shortest distance from v TO vertex 2.
  EXPECT_DOUBLE_EQ(dist[2], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
  EXPECT_DOUBLE_EQ(dist[0], 5.0);
}

TEST(DijkstraTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = MakeRandomConnected(12, 10, 1, 9, seed);
    GraphCostView view(g, CostKind::kCurrentWeight);
    DijkstraSearch<GraphCostView> search(view);
    for (VertexId t = 1; t < 6; ++t) {
      std::optional<Path> p = search.ShortestPath(0, t);
      std::vector<Path> brute = BruteForceKsp(g, 0, t, 1);
      ASSERT_TRUE(p.has_value());
      ASSERT_FALSE(brute.empty());
      EXPECT_NEAR(p->distance, brute[0].distance, 1e-9);
    }
  }
}

TEST(YenTest, PaperExampleSmall) {
  // Classic diamond: two disjoint routes plus a mixed one.
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 3, 1);
  g.AddEdge(0, 2, 2);
  g.AddEdge(2, 3, 2);
  g.AddEdge(1, 2, 1);
  std::vector<Path> ksp = SolveViaService(std::move(g), 0, 3, 4, kBackendYen);
  ASSERT_EQ(ksp.size(), 4u);
  EXPECT_DOUBLE_EQ(ksp[0].distance, 2.0);  // 0-1-3
  EXPECT_DOUBLE_EQ(ksp[1].distance, 4.0);  // 0-1-2-3, 0-2-3, 0-2-1-3
  EXPECT_DOUBLE_EQ(ksp[2].distance, 4.0);
  EXPECT_DOUBLE_EQ(ksp[3].distance, 4.0);
}

TEST(YenTest, PathsAreSimpleSortedDistinct) {
  Graph g = MakeRandomConnected(25, 35, 1, 9, 21);
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RouteRequest request;
  request.source = 0;
  request.target = 24;
  request.options.k = 12;
  request.options.backend = kBackendYen;
  Result<RouteResponse> response = service.value()->Query(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Graph& graph = service.value()->graph();
  const std::vector<Path>& ksp = response.value().paths;
  for (size_t i = 0; i < ksp.size(); ++i) {
    EXPECT_TRUE(IsSimpleRoute(ksp[i].vertices));
    EXPECT_TRUE(IsValidRoute(graph, ksp[i].vertices));
    EXPECT_NEAR(RouteDistance(graph, ksp[i].vertices), ksp[i].distance, 1e-9);
    if (i > 0) {
      EXPECT_GE(ksp[i].distance, ksp[i - 1].distance - 1e-9);
    }
    for (size_t j = 0; j < i; ++j) {
      EXPECT_FALSE(SameRoute(ksp[i], ksp[j]));
    }
  }
}

TEST(YenTest, ExhaustsAllSimplePaths) {
  Graph g = Graph::Undirected(3);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(0, 2, 3);
  // Exactly 2 simple paths 0->2.
  std::vector<Path> ksp = SolveViaService(std::move(g), 0, 2, 10, kBackendYen);
  EXPECT_EQ(ksp.size(), 2u);
}

TEST(YenTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph g = MakeRandomConnected(10, 8, 1, 9, seed * 31 + 1);
    std::vector<Path> want = BruteForceKsp(g, 0, 9, 6);
    std::vector<Path> got = SolveViaService(std::move(g), 0, 9, 6, kBackendYen);
    ExpectSameDistances(got, want);
  }
}

TEST(YenTest, DirectedMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = MakeRandomConnected(9, 8, 1, 9, seed + 100, /*directed=*/true);
    std::vector<Path> want = BruteForceKsp(g, 0, 8, 5);
    std::vector<Path> got = SolveViaService(std::move(g), 0, 8, 5, kBackendYen);
    ExpectSameDistances(got, want);
  }
}

TEST(YenTest, LazyEnumeratorProducesAscendingStream) {
  Graph g = MakeRandomConnected(20, 25, 1, 9, 77);
  GraphCostView view(g, CostKind::kCurrentWeight);
  YenEnumerator<GraphCostView> yen(view, 0, 19);
  Weight prev = 0;
  for (int i = 0; i < 8; ++i) {
    std::optional<Path> p = yen.NextPath();
    if (!p.has_value()) break;
    EXPECT_GE(p->distance, prev - 1e-9);
    prev = p->distance;
  }
}

TEST(FindKspTest, MatchesYenDistances) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = MakeRandomConnected(30, 40, 1, 15, seed * 7 + 3);
    Result<std::unique_ptr<RoutingService>> service =
        RoutingService::Create(std::move(g));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    RouteRequest request;
    request.source = 2;
    request.target = 27;
    request.options.k = 8;
    request.options.backend = kBackendYen;
    Result<RouteResponse> yen = service.value()->Query(request);
    request.options.backend = kBackendFindKsp;
    Result<RouteResponse> fks = service.value()->Query(request);
    ASSERT_TRUE(yen.ok() && fks.ok());
    ExpectSameDistances(fks.value().paths, yen.value().paths);
  }
}

TEST(FindKspTest, DisconnectedReturnsEmpty) {
  Graph g = Graph::Undirected(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);
  EXPECT_TRUE(SolveViaService(std::move(g), 0, 3, 4, kBackendFindKsp).empty());
}

TEST(FindKspTest, WorksAfterWeightChanges) {
  Graph g = MakeRandomConnected(25, 30, 2, 12, 55);
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // Reweight a third of the edges through the facade's writer path.
  const Graph& graph = service.value()->graph();
  std::vector<WeightUpdate> updates;
  for (EdgeId e = 0; e < graph.NumEdges(); e += 3) {
    Weight w = graph.ForwardWeight(e) * 0.4;
    updates.push_back({e, w, w});
  }
  Result<TrafficBatchResult> applied =
      service.value()->ApplyTrafficBatch(updates);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  RouteRequest request;
  request.source = 1;
  request.target = 20;
  request.options.k = 6;
  request.options.backend = kBackendYen;
  Result<RouteResponse> yen = service.value()->Query(request);
  request.options.backend = kBackendFindKsp;
  Result<RouteResponse> fks = service.value()->Query(request);
  ASSERT_TRUE(yen.ok() && fks.ok());
  EXPECT_EQ(yen.value().epoch, 1u);
  EXPECT_EQ(fks.value().epoch, 1u);
  ExpectSameDistances(fks.value().paths, yen.value().paths);
}

}  // namespace
}  // namespace kspdg
