// Tests for the RPC layer (src/rpc): the frame codec (round trips,
// garbage/truncated/oversized frames rejected with Status, never crashes),
// explicit wire serialization of every protocol message, the server loop's
// handler dispatch, and the client's deadline behaviour against a peer that
// accepts but never answers.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/wire.h"

namespace kspdg {
namespace {

std::string TestSocketPath(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  return dir + "/kspdg-rpc-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, HeaderRoundTrips) {
  std::string frame = EncodeFrame(7, "hello");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 5);
  uint8_t type = 0;
  uint32_t length = 0;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &type, &length).ok());
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(length, 5u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "hello");
}

TEST(FrameCodecTest, EmptyPayloadRoundTrips) {
  std::string frame = EncodeFrame(1, "");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  uint8_t type = 0;
  uint32_t length = 0;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &type, &length).ok());
  EXPECT_EQ(type, 1u);
  EXPECT_EQ(length, 0u);
}

TEST(FrameCodecTest, RejectsBadMagic) {
  std::string frame = EncodeFrame(3, "x");
  frame[0] ^= 0x5A;  // corrupt the magic word
  uint8_t type = 0;
  uint32_t length = 0;
  Status status = DecodeFrameHeader(frame.data(), &type, &length);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(FrameCodecTest, RejectsOversizedLength) {
  // Hand-build a header whose length field exceeds the payload cap: the
  // decoder must reject it instead of letting the receiver allocate it.
  std::string frame = EncodeFrame(3, "x");
  uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 5, &huge, sizeof(huge));
  uint8_t type = 0;
  uint32_t length = 0;
  Status status = DecodeFrameHeader(frame.data(), &type, &length);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// A peer that closes mid-frame (truncated header or truncated payload)
// yields a clean kUnavailable from ReadFrame, never a hang or a crash.
TEST(FrameCodecTest, TruncatedFramesYieldUnavailable) {
  for (size_t cut : {size_t{0}, size_t{3}, kFrameHeaderBytes,
                     kFrameHeaderBytes + 2}) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(SetNonBlocking(fds[0]).ok());
    std::string frame = EncodeFrame(9, "payload");
    ASSERT_LT(cut, frame.size());
    ASSERT_EQ(send(fds[1], frame.data(), cut, 0),
              static_cast<ssize_t>(cut));
    close(fds[1]);  // truncate: the rest of the frame never arrives
    uint8_t type = 0;
    std::string payload;
    Status status =
        ReadFrame(fds[0], &type, &payload, DeadlineAfterMillis(2000));
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << "cut=" << cut;
    close(fds[0]);
  }
}

TEST(FrameCodecTest, GarbageStreamIsRejectedNotTrusted) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(SetNonBlocking(fds[0]).ok());
  const char garbage[] = "this is not a kspdg frame at all............";
  ASSERT_GT(send(fds[1], garbage, sizeof(garbage), 0), 0);
  uint8_t type = 0;
  std::string payload;
  Status status =
      ReadFrame(fds[0], &type, &payload, DeadlineAfterMillis(2000));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  close(fds[0]);
  close(fds[1]);
}

TEST(FrameCodecTest, WriteThenReadAcrossSocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(SetNonBlocking(fds[0]).ok());
  ASSERT_TRUE(SetNonBlocking(fds[1]).ok());
  std::string payload(100000, 'x');  // larger than one pipe buffer
  std::thread writer([&] {
    Status written = WriteFrame(fds[1], 5, payload, DeadlineAfterMillis(5000));
    EXPECT_TRUE(written.ok()) << written.ToString();
  });
  uint8_t type = 0;
  std::string got;
  Status read = ReadFrame(fds[0], &type, &got, DeadlineAfterMillis(5000));
  writer.join();
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(type, 5u);
  EXPECT_EQ(got, payload);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Wire serialization: every message round-trips; corrupt payloads reject.
// ---------------------------------------------------------------------------

TEST(WireTest, ReaderRejectsTruncationAndTrailingGarbage) {
  WireWriter writer;
  writer.U32(7);
  writer.U64(1234567890123ull);
  writer.F64(3.5);
  writer.Str("abc");
  std::string payload = writer.Take();

  // Full payload reads back exactly.
  {
    WireReader reader(payload);
    uint32_t a = 0;
    uint64_t b = 0;
    double c = 0;
    std::string d;
    ASSERT_TRUE(reader.U32(&a).ok());
    ASSERT_TRUE(reader.U64(&b).ok());
    ASSERT_TRUE(reader.F64(&c).ok());
    ASSERT_TRUE(reader.Str(&d).ok());
    ASSERT_TRUE(reader.ExpectEnd().ok());
    EXPECT_EQ(a, 7u);
    EXPECT_EQ(b, 1234567890123ull);
    EXPECT_EQ(c, 3.5);
    EXPECT_EQ(d, "abc");
  }
  // Every truncation point fails with a Status, never reads out of bounds.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader reader(std::string_view(payload.data(), cut));
    uint32_t a = 0;
    uint64_t b = 0;
    double c = 0;
    std::string d;
    Status status = reader.U32(&a);
    if (status.ok()) status = reader.U64(&b);
    if (status.ok()) status = reader.F64(&c);
    if (status.ok()) status = reader.Str(&d);
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
  }
  // Trailing garbage is a protocol error.
  {
    std::string longer = payload + "!";
    WireReader reader(longer);
    uint32_t a = 0;
    uint64_t b = 0;
    double c = 0;
    std::string d;
    ASSERT_TRUE(reader.U32(&a).ok() && reader.U64(&b).ok() &&
                reader.F64(&c).ok() && reader.Str(&d).ok());
    EXPECT_FALSE(reader.ExpectEnd().ok());
  }
}

TEST(WireTest, LoadGraphRequestRoundTripsTheGraph) {
  Graph graph = MakeRandomConnected(24, 30, 1, 9, 7);
  DtlpOptions dtlp;
  dtlp.partition.max_vertices = 8;
  dtlp.index.xi = 3;
  LoadGraphRequest request =
      LoadGraphRequest::FromGraph(graph, /*shard_id=*/1, /*num_shards=*/3,
                                  dtlp);
  // Checkpoint shipping: the weights above belong to epoch 4, and the new
  // worker is replica 2 of its shard.
  request.replica_id = 2;
  request.base_epoch = 4;
  std::string payload = request.Encode();

  LoadGraphRequest decoded;
  ASSERT_TRUE(LoadGraphRequest::Decode(payload, &decoded).ok());
  EXPECT_EQ(decoded.shard_id, 1u);
  EXPECT_EQ(decoded.num_shards, 3u);
  EXPECT_EQ(decoded.replica_id, 2u);
  EXPECT_EQ(decoded.base_epoch, 4u);
  EXPECT_EQ(decoded.dtlp.partition.max_vertices, 8u);
  EXPECT_EQ(decoded.dtlp.index.xi, 3u);
  Result<Graph> rebuilt = decoded.BuildGraph();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  const Graph& got = rebuilt.value();
  ASSERT_EQ(got.NumVertices(), graph.NumVertices());
  ASSERT_EQ(got.NumEdges(), graph.NumEdges());
  EXPECT_EQ(got.directed(), graph.directed());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    EXPECT_EQ(got.EdgeU(e), graph.EdgeU(e));
    EXPECT_EQ(got.EdgeV(e), graph.EdgeV(e));
    EXPECT_EQ(got.ForwardVfrags(e), graph.ForwardVfrags(e));
    EXPECT_EQ(got.BackwardVfrags(e), graph.BackwardVfrags(e));
    // Bit-exact: the remote parity guarantee depends on it.
    EXPECT_EQ(got.ForwardWeight(e), graph.ForwardWeight(e));
    EXPECT_EQ(got.BackwardWeight(e), graph.BackwardWeight(e));
  }

  // Corrupt payloads reject at every truncation point (spot-check a few).
  for (size_t cut : {size_t{0}, payload.size() / 3, payload.size() - 1}) {
    LoadGraphRequest reject;
    EXPECT_FALSE(
        LoadGraphRequest::Decode(payload.substr(0, cut), &reject).ok());
  }
}

TEST(WireTest, BuildGraphValidatesStructure) {
  Graph graph = MakeRandomConnected(10, 12, 1, 9, 11);
  LoadGraphRequest request =
      LoadGraphRequest::FromGraph(graph, 0, 1, DtlpOptions{});
  // Vertex id out of range must be rejected, not trusted.
  request.edge_u[0] = 99;
  EXPECT_FALSE(request.BuildGraph().ok());
}

TEST(WireTest, PartialsMessagesRoundTripBitExactDistances) {
  PartialsRequest request;
  request.epoch = 42;
  request.x = 7;
  request.y = 19;
  request.depth = 5;
  request.sgids = {2, 3, 11};
  PartialsRequest got_request;
  ASSERT_TRUE(PartialsRequest::Decode(request.Encode(), &got_request).ok());
  EXPECT_EQ(got_request.epoch, 42u);
  EXPECT_EQ(got_request.x, 7u);
  EXPECT_EQ(got_request.y, 19u);
  EXPECT_EQ(got_request.depth, 5u);
  EXPECT_EQ(got_request.sgids, request.sgids);

  PartialsReply reply;
  SubgraphPartials list;
  list.sgid = 3;
  Path p1;
  p1.vertices = {7, 9, 19};
  p1.distance = 0.1 + 0.2;  // famously not 0.3: must survive bit-exactly
  Path p2;
  p2.vertices = {7, 19};
  p2.distance = 1.0 / 3.0;
  list.paths = {p1, p2};
  reply.lists = {list, {11, {}}};
  PartialsReply got_reply;
  ASSERT_TRUE(PartialsReply::Decode(reply.Encode(), &got_reply).ok());
  ASSERT_EQ(got_reply.lists.size(), 2u);
  EXPECT_EQ(got_reply.lists[0].sgid, 3u);
  ASSERT_EQ(got_reply.lists[0].paths.size(), 2u);
  EXPECT_EQ(got_reply.lists[0].paths[0].vertices, p1.vertices);
  EXPECT_EQ(got_reply.lists[0].paths[0].distance, p1.distance);
  EXPECT_EQ(got_reply.lists[0].paths[1].distance, p2.distance);
  EXPECT_EQ(got_reply.lists[1].sgid, 11u);
  EXPECT_TRUE(got_reply.lists[1].paths.empty());

  EXPECT_FALSE(PartialsReply::Decode("garbage", &got_reply).ok());
}

TEST(WireTest, EpochAndPingMessagesRoundTrip) {
  EpochPrepareRequest prepare;
  prepare.epoch = 9;
  prepare.updates = {{0, 1.5, 2.5}, {7, 3.25, 3.25}};
  EpochPrepareRequest got_prepare;
  ASSERT_TRUE(
      EpochPrepareRequest::Decode(prepare.Encode(), &got_prepare).ok());
  EXPECT_EQ(got_prepare.epoch, 9u);
  ASSERT_EQ(got_prepare.updates.size(), 2u);
  EXPECT_EQ(got_prepare.updates[0].edge, 0u);
  EXPECT_EQ(got_prepare.updates[0].new_forward, 1.5);
  EXPECT_EQ(got_prepare.updates[1].edge, 7u);
  EXPECT_EQ(got_prepare.updates[1].new_backward, 3.25);

  EpochPrepareReply prepared;
  prepared.epoch = 9;
  prepared.updates_applied = 13;
  prepared.subgraphs_touched = 4;
  EpochPrepareReply got_prepared;
  ASSERT_TRUE(
      EpochPrepareReply::Decode(prepared.Encode(), &got_prepared).ok());
  EXPECT_EQ(got_prepared.updates_applied, 13u);
  EXPECT_EQ(got_prepared.subgraphs_touched, 4u);

  EpochCommitRequest commit;
  commit.epoch = 9;
  EpochCommitRequest got_commit;
  ASSERT_TRUE(EpochCommitRequest::Decode(commit.Encode(), &got_commit).ok());
  EXPECT_EQ(got_commit.epoch, 9u);

  EpochCommitReply committed;
  committed.epoch = 9;
  EpochCommitReply got_committed;
  ASSERT_TRUE(
      EpochCommitReply::Decode(committed.Encode(), &got_committed).ok());
  EXPECT_EQ(got_committed.epoch, 9u);

  PingRequest ping;
  ping.nonce = 77;
  PingRequest got_ping;
  ASSERT_TRUE(PingRequest::Decode(ping.Encode(), &got_ping).ok());
  EXPECT_EQ(got_ping.nonce, 77u);

  PingReply pong;
  pong.nonce = 77;
  pong.epoch = 3;
  pong.shard_id = 1;
  pong.replica_id = 2;
  // The metrics blob is opaque at this layer but must survive the trip:
  // encode a real worker-style snapshot and decode it back on the far side.
  MetricsRegistry worker_registry;
  worker_registry.GetCounter("worker_pings_total").Increment(5);
  worker_registry.GetGauge("worker_epoch").Set(3);
  pong.metrics_blob = worker_registry.Snapshot().EncodeWire();
  PingReply got_pong;
  ASSERT_TRUE(PingReply::Decode(pong.Encode(), &got_pong).ok());
  EXPECT_EQ(got_pong.nonce, 77u);
  EXPECT_EQ(got_pong.epoch, 3u);
  EXPECT_EQ(got_pong.shard_id, 1u);
  EXPECT_EQ(got_pong.replica_id, 2u);
  MetricsSnapshot carried;
  ASSERT_TRUE(
      MetricsSnapshot::DecodeWire(got_pong.metrics_blob, &carried).ok());
  EXPECT_EQ(carried.CounterTotal("worker_pings_total"), 5u);
  EXPECT_EQ(carried.GaugeSampleCount("worker_epoch"), 1u);

  // A worker that exports no metrics sends an empty blob; that must
  // round-trip too (older replies are exactly this shape).
  PingReply bare;
  bare.nonce = 78;
  PingReply got_bare;
  ASSERT_TRUE(PingReply::Decode(bare.Encode(), &got_bare).ok());
  EXPECT_EQ(got_bare.nonce, 78u);
  EXPECT_TRUE(got_bare.metrics_blob.empty());

  LoadGraphReply loaded;
  loaded.subgraphs_owned = 5;
  loaded.vertices_owned = 40;
  LoadGraphReply got_loaded;
  ASSERT_TRUE(LoadGraphReply::Decode(loaded.Encode(), &got_loaded).ok());
  EXPECT_EQ(got_loaded.subgraphs_owned, 5u);
  EXPECT_EQ(got_loaded.vertices_owned, 40u);
}

TEST(WireTest, ErrorReplyCarriesEveryStatusCode) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::OutOfRange("c"),      Status::FailedPrecondition("d"),
      Status::Internal("e"),        Status::IOError("f"),
      Status::Unavailable("g"),     Status::DeadlineExceeded("h"),
      Status::ResourceExhausted("i"),
  };
  for (const Status& status : statuses) {
    ErrorReply reply = ErrorReply::FromStatus(status);
    ErrorReply decoded;
    ASSERT_TRUE(ErrorReply::Decode(reply.Encode(), &decoded).ok());
    Status got = decoded.ToStatus();
    EXPECT_EQ(got.code(), status.code());
    EXPECT_EQ(got.message(), status.message());
  }
  // Unknown code bytes are rejected, not mapped to something arbitrary.
  WireWriter writer;
  writer.U8(200);
  writer.Str("bogus");
  ErrorReply decoded;
  EXPECT_FALSE(ErrorReply::Decode(writer.Take(), &decoded).ok());
}

// ---------------------------------------------------------------------------
// Client/server behaviour.
// ---------------------------------------------------------------------------

TEST(RpcClientServerTest, EchoRoundTripAndErrorReplies) {
  std::string path = TestSocketPath("echo");
  Result<std::unique_ptr<RpcServer>> server = RpcServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread serving([&] {
    RpcServer::Handler handler =
        [](MessageType type, const std::string& payload,
           MessageType* reply_type, std::string* reply_payload,
           bool* shutdown) -> Status {
      switch (type) {
        case MessageType::kPingRequest:
          *reply_type = MessageType::kPingReply;
          *reply_payload = payload;  // echo
          return Status::OK();
        case MessageType::kPartialsRequest:
          return Status::FailedPrecondition("not loaded");
        case MessageType::kShutdownRequest:
          *reply_type = MessageType::kShutdownReply;
          *shutdown = true;
          return Status::OK();
        default:
          return Status::InvalidArgument("unexpected type");
      }
    };
    Status served = server.value()->Serve(handler, /*idle_timeout_ms=*/10000);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  RpcClientOptions options;
  options.deadline_ms = 2000;
  RpcClient client(path, options);

  PingRequest ping;
  ping.nonce = 123;
  std::string reply_payload;
  Status called = client.Call(MessageType::kPingRequest, ping.Encode(),
                              MessageType::kPingReply, &reply_payload);
  ASSERT_TRUE(called.ok()) << called.ToString();
  PingRequest echoed;
  ASSERT_TRUE(PingRequest::Decode(reply_payload, &echoed).ok());
  EXPECT_EQ(echoed.nonce, 123u);

  // A handler rejection travels back as an ErrorReply and surfaces as the
  // carried Status — and is NOT retried (one call, whatever the budget).
  uint64_t calls_before = client.calls();
  Status rejected =
      client.Call(MessageType::kPartialsRequest, "",
                  MessageType::kPartialsReply, &reply_payload);
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.calls(), calls_before + 1);
  EXPECT_EQ(client.retries(), 0u);

  Status shutdown = client.Call(MessageType::kShutdownRequest, "",
                                MessageType::kShutdownReply, &reply_payload);
  EXPECT_TRUE(shutdown.ok()) << shutdown.ToString();
  serving.join();
}

TEST(RpcClientServerTest, IdleTimeoutReturnsDeadlineExceeded) {
  std::string path = TestSocketPath("idle");
  Result<std::unique_ptr<RpcServer>> server = RpcServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  RpcServer::Handler handler =
      [](MessageType, const std::string&, MessageType*, std::string*,
         bool*) -> Status { return Status::OK(); };
  // No client ever connects: the orphan guard fires.
  Status served = server.value()->Serve(handler, /*idle_timeout_ms=*/50);
  EXPECT_EQ(served.code(), StatusCode::kDeadlineExceeded);
}

// The deadline test the fault model rests on: a peer that accepts the
// connection (full listen backlog) but never reads or replies must cost the
// caller exactly its deadline budget, never a hang.
TEST(RpcClientServerTest, StalledServerYieldsDeadlineExceeded) {
  std::string path = TestSocketPath("stalled");
  int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(listen(listener, 4), 0);
  // Deliberately never accept(): the connect succeeds into the backlog, the
  // request is buffered by the kernel, and no reply ever arrives.

  RpcClientOptions options;
  options.deadline_ms = 150;
  options.max_retries = 1;
  options.backoff_ms = 5;
  RpcClient client(path, options);
  PingRequest ping;
  ping.nonce = 1;
  std::string reply_payload;
  auto start = std::chrono::steady_clock::now();
  Status called = client.Call(MessageType::kPingRequest, ping.Encode(),
                              MessageType::kPingReply, &reply_payload);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(called.code(), StatusCode::kDeadlineExceeded) << called.ToString();
  EXPECT_EQ(client.deadline_expired(), 2u);  // first attempt + one retry
  EXPECT_EQ(client.retries(), 1u);
  // Bounded: two attempts + backoff, with generous slack for slow machines.
  EXPECT_LT(elapsed, 5000);
  close(listener);
  unlink(path.c_str());
}

// The client's transport counters are strictly monotonic over the life of
// the object: Disconnect/reconnect cycles never reset them. The registry
// callbacks that export these (rpc_calls_total and friends) — and any
// rate computed from two scrapes — depend on a counter never going
// backwards.
TEST(RpcClientServerTest, CountersStayMonotonicAcrossReconnects) {
  std::string path = TestSocketPath("monotonic");
  Result<std::unique_ptr<RpcServer>> server = RpcServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::thread serving([&] {
    RpcServer::Handler handler =
        [](MessageType type, const std::string& payload,
           MessageType* reply_type, std::string* reply_payload,
           bool* shutdown) -> Status {
      if (type == MessageType::kShutdownRequest) {
        *reply_type = MessageType::kShutdownReply;
        *shutdown = true;
        return Status::OK();
      }
      *reply_type = MessageType::kPingReply;
      *reply_payload = payload;  // echo
      return Status::OK();
    };
    Status served = server.value()->Serve(handler, /*idle_timeout_ms=*/10000);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  RpcClientOptions options;
  options.deadline_ms = 2000;
  RpcClient client(path, options);
  uint64_t last_calls = 0;
  uint64_t last_sent = 0;
  uint64_t last_received = 0;
  for (int round = 0; round < 3; ++round) {
    PingRequest ping;
    ping.nonce = static_cast<uint64_t>(round);
    std::string reply_payload;
    Status called = client.Call(MessageType::kPingRequest, ping.Encode(),
                                MessageType::kPingReply, &reply_payload);
    ASSERT_TRUE(called.ok()) << "round " << round << ": " << called.ToString();
    EXPECT_GT(client.calls(), last_calls) << round;
    EXPECT_GT(client.bytes_sent(), last_sent) << round;
    EXPECT_GT(client.bytes_received(), last_received) << round;
    last_calls = client.calls();
    last_sent = client.bytes_sent();
    last_received = client.bytes_received();
    // Tear the transport down; the next round reconnects. The counters
    // must carry forward, never restart from zero.
    client.Disconnect();
    EXPECT_EQ(client.calls(), last_calls) << round;
    EXPECT_EQ(client.bytes_sent(), last_sent) << round;
    EXPECT_EQ(client.bytes_received(), last_received) << round;
  }
  EXPECT_EQ(client.calls(), 3u);
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.deadline_expired(), 0u);

  std::string reply_payload;
  EXPECT_TRUE(client
                  .Call(MessageType::kShutdownRequest, "",
                        MessageType::kShutdownReply, &reply_payload)
                  .ok());
  serving.join();
}

TEST(RpcClientServerTest, ConnectToMissingSocketIsBoundedAndUnavailable) {
  RpcClientOptions options;
  options.deadline_ms = 100;
  options.max_retries = 0;
  RpcClient client(TestSocketPath("nonexistent"), options);
  std::string reply_payload;
  Status called = client.Call(MessageType::kPingRequest, PingRequest{}.Encode(),
                              MessageType::kPingReply, &reply_payload);
  EXPECT_FALSE(called.ok());
  EXPECT_TRUE(called.code() == StatusCode::kUnavailable ||
              called.code() == StatusCode::kDeadlineExceeded)
      << called.ToString();
}

}  // namespace
}  // namespace kspdg
