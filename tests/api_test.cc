// Tests for the RoutingService facade (src/api): backend parity, layered
// option validation, the solver registry, and snapshot-safe query/update
// interleaving with epoch monotonicity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/ksp_solver.h"
#include "api/routing_options.h"
#include "api/routing_service.h"
#include "graph/generators.h"
#include "graph/traffic_model.h"
#include "ksp/path.h"
#include "workload/bench_runner.h"

namespace kspdg {
namespace {

std::unique_ptr<RoutingService> MustCreate(Graph g, uint32_t z = 0,
                                           RoutingOptions defaults = {},
                                           unsigned batch_threads = 0) {
  RoutingServiceOptions options;
  options.defaults = std::move(defaults);
  options.batch_threads = batch_threads;
  if (z != 0) options.dtlp.partition.max_vertices = z;
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

RouteRequest MakeRequest(VertexId s, VertexId t, const std::string& backend,
                       uint32_t k) {
  RouteRequest request;
  request.source = s;
  request.target = t;
  request.options.backend = backend;
  request.options.k = k;
  return request;
}

std::vector<Path> MustSolve(const RoutingService& service, VertexId s,
                            VertexId t, const std::string& backend,
                            uint32_t k) {
  Result<RouteResponse> response =
      service.Query(MakeRequest(s, t, backend, k));
  if (!response.ok()) {
    ADD_FAILURE() << response.status().ToString();
    return {};
  }
  EXPECT_EQ(response.value().backend, backend);
  EXPECT_EQ(response.value().k, k);
  return std::move(response).value().paths;
}

void ExpectSameDistances(const std::vector<Path>& got,
                         const std::vector<Path>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-7)
        << label << " rank " << i;
  }
}

TEST(RoutingServiceTest, BackendParityOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = MakeRandomConnected(26, 30, 1, 9, seed * 13 + 1);
    std::unique_ptr<RoutingService> service =
        MustCreate(std::move(g), /*z=*/8);
    ASSERT_TRUE(service != nullptr);
    VertexId s = 0, t = 25;
    std::vector<Path> yen = MustSolve(*service, s, t, kBackendYen, 6);
    std::vector<Path> kspdg = MustSolve(*service, s, t, kBackendKspDg, 6);
    std::vector<Path> findksp = MustSolve(*service, s, t, kBackendFindKsp, 6);
    ASSERT_FALSE(yen.empty());
    ExpectSameDistances(kspdg, yen, "kspdg vs yen seed " +
                                        std::to_string(seed));
    ExpectSameDistances(findksp, yen, "findksp vs yen seed " +
                                          std::to_string(seed));
    std::vector<Path> dijkstra =
        MustSolve(*service, s, t, kBackendDijkstra, 1);
    ASSERT_EQ(dijkstra.size(), 1u);
    EXPECT_NEAR(dijkstra[0].distance, yen[0].distance, 1e-9);
  }
}

TEST(RoutingServiceTest, BackendParityAfterTrafficBatches) {
  Graph g = MakeRandomConnected(30, 36, 2, 12, 99);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/10);
  ASSERT_TRUE(service != nullptr);
  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 5;
  TrafficModel traffic(service->graph(), traffic_options);
  for (int step = 0; step < 4; ++step) {
    std::vector<WeightUpdate> batch = traffic.NextBatch();
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied.value().epoch, static_cast<uint64_t>(step + 1));
    std::vector<Path> yen = MustSolve(*service, 1, 28, kBackendYen, 5);
    std::vector<Path> kspdg = MustSolve(*service, 1, 28, kBackendKspDg, 5);
    ExpectSameDistances(kspdg, yen, "step " + std::to_string(step));
    // Distances must reflect the *current* snapshot exactly.
    for (const Path& p : yen) {
      EXPECT_NEAR(RouteDistance(service->graph(), p.vertices), p.distance,
                  1e-9);
    }
  }
  EXPECT_EQ(service->CurrentEpoch(), 4u);
}

TEST(RoutingServiceTest, InvalidRequestsAreRejected) {
  Graph g = MakeRandomConnected(12, 10, 1, 9, 3);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);

  EXPECT_EQ(service->Query(MakeRequest(0, 5, kBackendYen, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(0, 99, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(99, 0, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(4, 4, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(0, 5, "no-such-backend", 2))
                .status()
                .code(),
            StatusCode::kNotFound);
  // The dijkstra backend serves only the k=1 degenerate case.
  EXPECT_EQ(
      service->Query(MakeRequest(0, 5, kBackendDijkstra, 3)).status().code(),
      StatusCode::kInvalidArgument);
  RouteRequest bad_iters = MakeRequest(0, 5, kBackendKspDg, 2);
  bad_iters.options.max_iterations = 0;
  EXPECT_EQ(service->Query(bad_iters).status().code(),
            StatusCode::kInvalidArgument);

  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.queries_ok, 0u);
  EXPECT_EQ(counters.queries_rejected, 7u);
}

// The registry behind counters(): every Query lands in exactly one of
// queries_ok_total / queries_rejected_total, the per-(kind, backend)
// queries_total split sums to the same total, and every accepted query
// observed one solve-latency sample.
TEST(RoutingServiceTest, MetricsRegistryAccountsForEveryQuery) {
  Graph g = MakeRandomConnected(20, 24, 1, 9, 17);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  for (VertexId s = 0; s < 4; ++s) {
    ASSERT_TRUE(service->Query(MakeRequest(s, 19 - s, kBackendYen, 3)).ok());
  }
  ASSERT_TRUE(service->Query(MakeRequest(0, 19, kBackendKspDg, 3)).ok());
  EXPECT_FALSE(service->Query(MakeRequest(0, 5, kBackendYen, 0)).ok());
  EXPECT_FALSE(service->Query(MakeRequest(0, 99, kBackendYen, 2)).ok());

  MetricsSnapshot snapshot = service->Metrics();
  EXPECT_EQ(snapshot.CounterTotal("queries_ok_total"), 5u);
  EXPECT_EQ(snapshot.CounterTotal("queries_rejected_total"), 2u);
  EXPECT_EQ(snapshot.CounterTotal("queries_total"), 5u);
  uint64_t yen_total = 0;
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name != "queries_total") continue;
    for (const auto& [key, value] : counter.labels) {
      if (key == "backend" && value == kBackendYen) yen_total += counter.value;
    }
  }
  EXPECT_EQ(yen_total, 4u);
  uint64_t latency_samples = 0;
  for (const HistogramSample& histogram : snapshot.histograms) {
    if (histogram.name == "solve_latency_micros") {
      latency_samples += histogram.count;
    }
  }
  EXPECT_EQ(latency_samples, 5u);

  // The legacy counters() struct is a view over the same registry.
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.queries_ok, 5u);
  EXPECT_EQ(counters.queries_rejected, 2u);

  // Traffic-path accounting rides in the same snapshot.
  std::vector<WeightUpdate> update = {{0, 4.0, 4.0}};
  ASSERT_TRUE(service->ApplyTrafficBatch(update).ok());
  snapshot = service->Metrics();
  EXPECT_EQ(snapshot.CounterTotal("traffic_batches_total"), 1u);
  EXPECT_EQ(snapshot.CounterTotal("weight_updates_total"), 1u);
}

TEST(RoutingServiceTest, TrafficBatchValidationIsAtomic) {
  Graph g = MakeRandomConnected(12, 10, 2, 9, 4);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);
  Weight before = service->graph().ForwardWeight(0);

  std::vector<WeightUpdate> bad_edge = {{0, 5.0, 5.0},
                                        {kInvalidEdge, 5.0, 5.0}};
  EXPECT_EQ(service->ApplyTrafficBatch(bad_edge).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<WeightUpdate> bad_weight = {{0, -1.0, 5.0}};
  EXPECT_EQ(service->ApplyTrafficBatch(bad_weight).status().code(),
            StatusCode::kInvalidArgument);

  // Nothing was applied: weights and epoch are untouched.
  EXPECT_DOUBLE_EQ(service->graph().ForwardWeight(0), before);
  EXPECT_EQ(service->CurrentEpoch(), 0u);
}

TEST(RoutingServiceTest, DefaultsAndOverridesLayer) {
  Graph g = MakeRandomConnected(20, 24, 1, 9, 7);
  RoutingOptions defaults;
  defaults.k = 3;
  defaults.backend = kBackendYen;
  std::unique_ptr<RoutingService> service =
      MustCreate(std::move(g), /*z=*/0, defaults);
  ASSERT_TRUE(service != nullptr);

  // No overrides: service defaults apply.
  RouteRequest plain;
  plain.source = 0;
  plain.target = 19;
  Result<RouteResponse> response = service->Query(plain);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().backend, kBackendYen);
  EXPECT_EQ(response.value().k, 3u);
  EXPECT_LE(response.value().paths.size(), 3u);

  // Per-request override wins without disturbing the defaults.
  RouteRequest override_request = plain;
  override_request.options.k = 1;
  override_request.options.backend = kBackendDijkstra;
  Result<RouteResponse> overridden = service->Query(override_request);
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_EQ(overridden.value().backend, kBackendDijkstra);
  EXPECT_EQ(overridden.value().k, 1u);
  EXPECT_EQ(service->defaults().k, 3u);
}

TEST(RoutingServiceTest, ResponsesAreSortedSimpleValidPaths) {
  Graph g = MakeRandomConnected(24, 30, 1, 9, 17);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);
  for (const char* backend : {kBackendKspDg, kBackendYen, kBackendFindKsp}) {
    std::vector<Path> paths = MustSolve(*service, 2, 21, backend, 8);
    for (size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(IsSimpleRoute(paths[i].vertices)) << backend;
      EXPECT_TRUE(IsValidRoute(service->graph(), paths[i].vertices))
          << backend;
      if (i > 0) {
        EXPECT_GE(paths[i].distance, paths[i - 1].distance - 1e-9) << backend;
      }
    }
  }
}

// A trivial backend that returns no paths, to exercise registration.
class NullSolver : public KspSolver {
 public:
  std::string_view name() const override { return "null"; }
  Result<KspQueryResult> Solve(const SolverInput&,
                               SolverScratch*) const override {
    return KspQueryResult{};
  }
};

TEST(SolverRegistryTest, RegistrationRules) {
  SolverRegistry registry = SolverRegistry::Default();
  EXPECT_EQ(registry.size(), 5u);
  EXPECT_NE(registry.Find(kBackendKspDg), nullptr);
  EXPECT_NE(registry.Find(kBackendCands), nullptr);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_TRUE(registry.Register(std::make_unique<NullSolver>()).ok());
  // Duplicate names are rejected.
  EXPECT_EQ(registry.Register(std::make_unique<NullSolver>()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Register(nullptr).code(), StatusCode::kInvalidArgument);
  std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// RegisterSolver is documented "before serving traffic"; the serving-started
// flag turns that from a comment into an enforced precondition.
TEST(RoutingServiceTest, RegisterSolverAfterServingIsRejected) {
  Graph g = MakeRandomConnected(12, 14, 1, 9, 61);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);
  // Before any query: registration is open.
  ASSERT_TRUE(service->RegisterSolver(std::make_unique<NullSolver>()).ok());
  ASSERT_TRUE(service->Query(MakeRequest(0, 11, kBackendYen, 2)).ok());
  // After the first served query the registry is frozen — even a rejected
  // request counts as serving.
  Status frozen =
      service->RegisterSolver(std::make_unique<NullSolver>());
  EXPECT_EQ(frozen.code(), StatusCode::kFailedPrecondition);

  // The same contract holds when the first touch is a batch.
  Graph g2 = MakeRandomConnected(12, 14, 1, 9, 62);
  std::unique_ptr<RoutingService> batch_service = MustCreate(std::move(g2));
  ASSERT_TRUE(batch_service != nullptr);
  std::vector<RouteRequest> requests = {MakeRequest(0, 11, kBackendYen, 2)};
  ASSERT_TRUE(batch_service->QueryBatch(requests).ok());
  EXPECT_EQ(
      batch_service->RegisterSolver(std::make_unique<NullSolver>()).code(),
      StatusCode::kFailedPrecondition);
}

TEST(RoutingServiceTest, CustomSolverServesQueries) {
  Graph g = MakeRandomConnected(10, 8, 1, 9, 23);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);
  ASSERT_TRUE(service->RegisterSolver(std::make_unique<NullSolver>()).ok());
  Result<RouteResponse> response = service->Query(MakeRequest(0, 9, "null", 2));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().paths.empty());
  EXPECT_EQ(response.value().backend, "null");
}

// The enforced-invariant test: queries run concurrently with traffic batches
// and must never observe a half-applied batch. Every edge starts at weight 1
// and batch b sets *all* edges to 1 + b/4, so any path of L edges answered
// at epoch e must have distance exactly L * (1 + e/4); a torn read would mix
// two uniform levels and break the identity. Also asserts per-thread epoch
// monotonicity.
TEST(RoutingServiceTest, ConcurrentQueriesAndUpdatesSeeConsistentEpochs) {
  Graph g = MakeRandomConnected(40, 50, 1, 1, 31);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/12);
  ASSERT_TRUE(service != nullptr);

  constexpr uint64_t kBatches = 12;
  auto level = [](uint64_t epoch) {
    return 1.0 + 0.25 * static_cast<double>(epoch);
  };

  std::atomic<bool> done{false};
  std::atomic<size_t> checks{0};
  std::atomic<size_t> failures{0};

  auto reader = [&](unsigned thread_seed) {
    const char* backends[] = {kBackendKspDg, kBackendYen, kBackendFindKsp};
    uint64_t last_epoch = 0;
    size_t i = thread_seed;
    while (!done.load(std::memory_order_acquire)) {
      VertexId s = static_cast<VertexId>(i * 7 % 40);
      VertexId t = static_cast<VertexId>((i * 13 + 19) % 40);
      ++i;
      if (s == t) continue;
      Result<RouteResponse> response =
          service->Query(MakeRequest(s, t, backends[i % 3], 4));
      if (!response.ok()) {
        failures.fetch_add(1);
        continue;
      }
      const RouteResponse& r = response.value();
      if (r.epoch < last_epoch) failures.fetch_add(1);  // must be monotone
      last_epoch = r.epoch;
      if (r.epoch > kBatches) failures.fetch_add(1);
      const double w = level(r.epoch);
      for (const Path& p : r.paths) {
        const double want = w * static_cast<double>(p.NumEdges());
        if (std::abs(p.distance - want) > 1e-6 * (1.0 + want)) {
          failures.fetch_add(1);
        }
        checks.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 3; ++r) readers.emplace_back(reader, r + 1);

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<WeightUpdate> updates;
    updates.reserve(num_edges);
    const double w = level(batch);
    for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, w, w});
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(updates);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied.value().epoch, batch);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checks.load(), 0u) << "readers never overlapped the updates";
  EXPECT_EQ(service->CurrentEpoch(), kBatches);
  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.batches_applied, kBatches);
  EXPECT_EQ(counters.updates_applied, kBatches * num_edges);
}

// ---------------------------------------------------------------------------
// QueryBatch: snapshot-shared parallel execution.
// ---------------------------------------------------------------------------

TEST(QueryBatchTest, MatchesSequentialAcrossAllBackends) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = MakeRandomConnected(26, 30, 1, 9, seed * 17 + 3);
    std::unique_ptr<RoutingService> service =
        MustCreate(std::move(g), /*z=*/8);
    ASSERT_TRUE(service != nullptr);

    // All four backends over several endpoint pairs in one batch.
    const std::pair<VertexId, VertexId> endpoints[] = {
        {0, 25}, {3, 21}, {7, 14}, {1, 24}};
    std::vector<RouteRequest> requests;
    for (const auto& [s, t] : endpoints) {
      for (const char* backend :
           {kBackendKspDg, kBackendYen, kBackendFindKsp, kBackendDijkstra}) {
        uint32_t k = backend == kBackendDijkstra ? 1 : 5;
        requests.push_back(MakeRequest(s, t, backend, k));
      }
    }
    Result<RouteBatchResponse> batched = service->QueryBatch(requests);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    const RouteBatchResponse& b = batched.value();
    ASSERT_EQ(b.items.size(), requests.size());
    EXPECT_EQ(b.num_ok, requests.size());
    EXPECT_EQ(b.num_rejected, 0u);

    for (size_t i = 0; i < requests.size(); ++i) {
      const RouteBatchItem& item = b.items[i];
      ASSERT_TRUE(item.status.ok()) << i << ": " << item.status.ToString();
      Result<RouteResponse> sequential = service->Query(requests[i]);
      ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
      EXPECT_EQ(item.response.backend, sequential.value().backend);
      ExpectSameDistances(item.response.paths, sequential.value().paths,
                          "batch vs sequential item " + std::to_string(i) +
                              " seed " + std::to_string(seed));
    }
  }
}

TEST(QueryBatchTest, MixedValidAndInvalidRequestsInOneBatch) {
  Graph g = MakeRandomConnected(20, 24, 1, 9, 11);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests;
  requests.push_back(MakeRequest(0, 19, kBackendYen, 3));           // ok
  requests.push_back(MakeRequest(0, 19, kBackendYen, 0));           // k = 0
  requests.push_back(MakeRequest(0, 99, kBackendYen, 2));           // range
  requests.push_back(MakeRequest(0, 19, "no-such-backend", 2));     // name
  requests.push_back(MakeRequest(4, 4, kBackendYen, 2));            // s == t
  requests.push_back(MakeRequest(0, 19, kBackendDijkstra, 3));      // k != 1
  requests.push_back(MakeRequest(2, 17, kBackendKspDg, 4));         // ok

  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  ASSERT_EQ(b.items.size(), 7u);
  EXPECT_EQ(b.num_ok, 2u);
  EXPECT_EQ(b.num_rejected, 5u);

  EXPECT_TRUE(b.items[0].status.ok());
  EXPECT_FALSE(b.items[0].response.paths.empty());
  EXPECT_EQ(b.items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.items[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.items[3].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.items[4].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.items[5].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(b.items[6].status.ok());
  EXPECT_FALSE(b.items[6].response.paths.empty());

  ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.queries_ok, 2u);
  EXPECT_EQ(counters.queries_rejected, 5u);
}

TEST(QueryBatchTest, EveryItemAnsweredAtOneEpoch) {
  Graph g = MakeRandomConnected(24, 30, 1, 9, 13);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);
  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.4;
  traffic_options.seed = 9;
  TrafficModel traffic(service->graph(), traffic_options);
  for (int step = 0; step < 3; ++step) {
    std::vector<WeightUpdate> updates = traffic.NextBatch();
    ASSERT_TRUE(service->ApplyTrafficBatch(updates).ok());
  }

  std::vector<RouteRequest> requests;
  for (VertexId s = 0; s < 8; ++s) {
    requests.push_back(MakeRequest(s, 23 - s, kBackendYen, 3));
    requests.push_back(MakeRequest(s, 23 - s, kBackendKspDg, 3));
  }
  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  EXPECT_EQ(b.epoch, 3u);
  EXPECT_EQ(b.num_ok, requests.size());
  for (const RouteBatchItem& item : b.items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    EXPECT_EQ(item.response.epoch, b.epoch);
  }
}

TEST(QueryBatchTest, EmptyBatchIsOk) {
  Graph g = MakeRandomConnected(12, 12, 1, 9, 21);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);
  Result<RouteBatchResponse> batched = service->QueryBatch({});
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_TRUE(batched.value().items.empty());
  EXPECT_EQ(batched.value().num_ok, 0u);
  EXPECT_EQ(batched.value().epoch, service->CurrentEpoch());
}

// With one worker, the whole batch shares one KSP-DG scratch, so a repeated
// identical query must be served from the warm partial cache: its solve
// performs zero fresh partial-KSP computations.
TEST(QueryBatchTest, SharedScratchReusesPartialsAcrossBatchItems) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 29);
  std::unique_ptr<RoutingService> service =
      MustCreate(std::move(g), /*z=*/8, RoutingOptions{}, /*batch_threads=*/1);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 25, kBackendKspDg, 5),
                                      MakeRequest(0, 25, kBackendKspDg, 5)};
  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  ASSERT_EQ(b.num_ok, 2u);
  ASSERT_FALSE(b.items[0].response.paths.empty());
  ExpectSameDistances(b.items[1].response.paths, b.items[0].response.paths,
                      "duplicate query in one batch");
  const KspDgQueryStats& first = b.items[0].response.stats.engine;
  const KspDgQueryStats& second = b.items[1].response.stats.engine;
  ASSERT_GT(first.partial_ksp_computations, 0u);
  EXPECT_EQ(second.partial_ksp_computations, 0u)
      << "second identical query should be fully served from the shared "
         "partial cache";
  EXPECT_GT(second.partial_cache_hits, 0u);

  // The arena persists across batches while the epoch holds still: a later
  // batch repeating the query is served from the still-warm cache.
  Result<RouteBatchResponse> later = service->QueryBatch(
      std::span<const RouteRequest>(requests.data(), 1));
  ASSERT_TRUE(later.ok()) << later.status().ToString();
  ASSERT_EQ(later.value().num_ok, 1u);
  EXPECT_EQ(
      later.value().items[0].response.stats.engine.partial_ksp_computations,
      0u);
}

// A traffic batch must flush the warm partial caches: a stale cache would
// answer the second batch with the old epoch's distances.
TEST(QueryBatchTest, ArenaCachesAreInvalidatedWhenTheEpochMoves) {
  Graph g = MakeRandomConnected(26, 32, 1, 1, 41);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<RoutingService> service =
      MustCreate(std::move(g), /*z=*/8, RoutingOptions{}, /*batch_threads=*/1);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 25, kBackendKspDg, 4),
                                      MakeRequest(0, 25, kBackendYen, 4)};
  Result<RouteBatchResponse> before = service->QueryBatch(requests);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before.value().num_ok, 2u);

  // Double every weight; all path distances must exactly double.
  std::vector<WeightUpdate> updates;
  updates.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, 2.0, 2.0});
  ASSERT_TRUE(service->ApplyTrafficBatch(updates).ok());

  Result<RouteBatchResponse> after = service->QueryBatch(requests);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().num_ok, 2u);
  EXPECT_EQ(after.value().epoch, before.value().epoch + 1);
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::vector<Path>& old_paths = before.value().items[i].response.paths;
    const std::vector<Path>& new_paths = after.value().items[i].response.paths;
    ASSERT_EQ(new_paths.size(), old_paths.size()) << i;
    for (size_t p = 0; p < new_paths.size(); ++p) {
      EXPECT_NEAR(new_paths[p].distance, 2.0 * old_paths[p].distance, 1e-7)
          << "item " << i << " rank " << p;
    }
  }
}

// The batch analogue of the torn-read test: batches run concurrently with
// uniform-weight traffic batches. Every response in a batch must carry the
// batch's single epoch, and every distance must match that epoch's uniform
// weight level exactly.
TEST(QueryBatchTest, ConcurrentBatchesAndUpdatesStayUniform) {
  Graph g = MakeRandomConnected(40, 50, 1, 1, 37);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/12);
  ASSERT_TRUE(service != nullptr);

  constexpr uint64_t kBatches = 10;
  auto level = [](uint64_t epoch) {
    return 1.0 + 0.25 * static_cast<double>(epoch);
  };

  std::atomic<bool> done{false};
  std::atomic<size_t> checks{0};
  std::atomic<size_t> failures{0};

  auto reader = [&](unsigned thread_seed) {
    const char* backends[] = {kBackendKspDg, kBackendYen, kBackendFindKsp};
    uint64_t last_epoch = 0;
    size_t i = thread_seed;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<RouteRequest> requests;
      for (size_t r = 0; r < 8; ++r) {
        VertexId s = static_cast<VertexId>((i * 7 + r * 11) % 40);
        VertexId t = static_cast<VertexId>((i * 13 + r * 17 + 19) % 40);
        if (s == t) continue;
        requests.push_back(MakeRequest(s, t, backends[(i + r) % 3], 4));
      }
      ++i;
      Result<RouteBatchResponse> batched = service->QueryBatch(requests);
      if (!batched.ok()) {
        failures.fetch_add(1);
        continue;
      }
      const RouteBatchResponse& b = batched.value();
      if (b.epoch < last_epoch) failures.fetch_add(1);  // must be monotone
      last_epoch = b.epoch;
      const double w = level(b.epoch);
      for (const RouteBatchItem& item : b.items) {
        if (!item.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (item.response.epoch != b.epoch) failures.fetch_add(1);
        for (const Path& p : item.response.paths) {
          const double want = w * static_cast<double>(p.NumEdges());
          if (std::abs(p.distance - want) > 1e-6 * (1.0 + want)) {
            failures.fetch_add(1);
          }
          checks.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 2; ++r) readers.emplace_back(reader, r + 1);

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<WeightUpdate> updates;
    updates.reserve(num_edges);
    const double w = level(batch);
    for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, w, w});
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(updates);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checks.load(), 0u) << "batches never overlapped the updates";
  EXPECT_EQ(service->CurrentEpoch(), kBatches);
}

// ---------------------------------------------------------------------------
// Async submission (SubmitBatch / BatchTicket).
// ---------------------------------------------------------------------------

TEST(SubmitBatchTest, TicketMatchesSynchronousQueryBatch) {
  Graph g = MakeRandomConnected(24, 30, 1, 9, 51);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 23, kBackendKspDg, 4),
                                      MakeRequest(2, 19, kBackendYen, 3),
                                      MakeRequest(0, 23, kBackendYen, 0)};
  Result<RouteBatchResponse> sync = service->QueryBatch(requests);
  ASSERT_TRUE(sync.ok());

  std::atomic<int> callbacks{0};
  BatchTicket ticket = service->SubmitBatch(
      requests, [&](const Result<RouteBatchResponse>& outcome) {
        EXPECT_TRUE(outcome.ok());
        callbacks.fetch_add(1);
      });
  ASSERT_TRUE(ticket.valid());
  const Result<RouteBatchResponse>& outcome = ticket.Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(ticket.Ready());
  // The callback fires after the ticket is fulfilled, so Wait() returning
  // does not imply it ran yet; poll briefly.
  while (callbacks.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(callbacks.load(), 1);
  const RouteBatchResponse& b = outcome.value();
  ASSERT_EQ(b.items.size(), 3u);
  EXPECT_EQ(b.num_ok, 2u);
  EXPECT_EQ(b.num_rejected, 1u);  // the k = 0 item, as in the sync batch
  for (size_t i = 0; i < b.items.size(); ++i) {
    ASSERT_EQ(b.items[i].status.ok(), sync.value().items[i].status.ok()) << i;
    if (!b.items[i].status.ok()) continue;
    ExpectSameDistances(b.items[i].response.paths,
                        sync.value().items[i].response.paths,
                        "async vs sync item " + std::to_string(i));
  }
}

TEST(SubmitBatchTest, TicketsCompleteInSubmissionOrderWithMonotoneEpochs) {
  Graph g = MakeRandomConnected(24, 30, 1, 9, 53);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<BatchTicket> tickets;
  for (int round = 0; round < 6; ++round) {
    std::vector<RouteRequest> requests = {
        MakeRequest(0, 23, kBackendYen, 3),
        MakeRequest(3, 20, kBackendFindKsp, 3)};
    tickets.push_back(service->SubmitBatch(std::move(requests)));
  }
  uint64_t last_epoch = 0;
  for (const BatchTicket& ticket : tickets) {
    const Result<RouteBatchResponse>& outcome = ticket.Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.value().num_ok, 2u);
    EXPECT_GE(outcome.value().epoch, last_epoch);  // FIFO execution
    last_epoch = outcome.value().epoch;
  }
}

// The async analogue of the torn-read test: tickets submitted while
// uniform-weight traffic batches land must each observe one snapshot (the
// tsan job repeats all *Concurrent* tests).
TEST(SubmitBatchTest, ConcurrentSubmitAndUpdatesStayUniform) {
  Graph g = MakeRandomConnected(32, 40, 1, 1, 57);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/10);
  ASSERT_TRUE(service != nullptr);

  constexpr uint64_t kBatches = 6;
  auto level = [](uint64_t epoch) {
    return 1.0 + 0.25 * static_cast<double>(epoch);
  };
  std::atomic<size_t> failures{0};
  std::atomic<size_t> checks{0};
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::vector<BatchTicket> inflight;
    size_t i = 1;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<RouteRequest> requests;
      for (size_t r = 0; r < 4; ++r) {
        VertexId s = static_cast<VertexId>((i * 5 + r * 9) % 32);
        VertexId t = static_cast<VertexId>((i * 11 + r * 13 + 7) % 32);
        if (s == t) continue;
        requests.push_back(
            MakeRequest(s, t, r % 2 == 0 ? kBackendKspDg : kBackendYen, 3));
      }
      ++i;
      inflight.push_back(service->SubmitBatch(std::move(requests)));
      if (inflight.size() < 3) continue;
      const Result<RouteBatchResponse>& outcome = inflight.front().Wait();
      if (!outcome.ok()) {
        failures.fetch_add(1);
      } else {
        const double w = level(outcome.value().epoch);
        for (const RouteBatchItem& item : outcome.value().items) {
          if (!item.status.ok() ||
              item.response.epoch != outcome.value().epoch) {
            failures.fetch_add(1);
            continue;
          }
          for (const Path& p : item.response.paths) {
            const double want = w * static_cast<double>(p.NumEdges());
            if (std::abs(p.distance - want) > 1e-6 * (1.0 + want)) {
              failures.fetch_add(1);
            }
            checks.fetch_add(1);
          }
        }
      }
      inflight.erase(inflight.begin());
    }
    for (const BatchTicket& ticket : inflight) ticket.Wait();
  });

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<WeightUpdate> updates;
    updates.reserve(num_edges);
    const double w = level(batch);
    for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, w, w});
    ASSERT_TRUE(service->ApplyTrafficBatch(updates).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  producer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checks.load(), 0u) << "producer never overlapped the updates";
}

// Destroying the service with accepted batches still queued must drain
// them: every ticket is fulfilled, none hangs.
TEST(SubmitBatchTest, DestructionDrainsAcceptedBatches) {
  Graph g = MakeRandomConnected(20, 26, 1, 9, 59);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<BatchTicket> tickets;
  for (int round = 0; round < 4; ++round) {
    tickets.push_back(service->SubmitBatch(
        {MakeRequest(0, 19, kBackendYen, 3)}));
  }
  service.reset();  // drains the submission queue before tearing down
  for (const BatchTicket& ticket : tickets) {
    const Result<RouteBatchResponse>& outcome = ticket.Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.value().num_ok, 1u);
  }
}

// ---------------------------------------------------------------------------
// Admission control (RequestContext: priority / deadline / tenant quota).
// ---------------------------------------------------------------------------

TEST(AdmissionTest, ExpiredDeadlineQueryIsShedNotSolved) {
  Graph g = MakeRandomConnected(20, 26, 1, 9, 61);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  RouteRequest expired = MakeRequest(0, 19, kBackendYen, 3);
  expired.context.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  Result<RouteResponse> response = service->Query(expired);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);

  AdmissionCounters counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, 0u);
  EXPECT_EQ(counters.shed_deadline, 1u);
  EXPECT_EQ(counters.shed_quota, 0u);

  // A still-live deadline solves normally and counts as admitted.
  RouteRequest live = MakeRequest(0, 19, kBackendYen, 3);
  live.context.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  ASSERT_TRUE(service->Query(live).ok());
  counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.shed_deadline, 1u);
}

TEST(AdmissionTest, ExpiredEnvelopeSubmitIsAnsweredWithoutSolving) {
  Graph g = MakeRandomConnected(20, 26, 1, 9, 63);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 19, kBackendYen, 3),
                                        MakeRequest(2, 17, kBackendYen, 3)};
  requests.front().context.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  BatchTicket ticket = service->SubmitBatch(requests);
  const Result<RouteBatchResponse>& outcome = ticket.Wait();
  // Shedding never fails the surrounding batch: the ticket carries an OK
  // envelope whose items hold the shed status + outcome, and no item was
  // ever solved (epoch 0 — no snapshot was read).
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const RouteBatchResponse& batch = outcome.value();
  ASSERT_EQ(batch.items.size(), 2u);
  EXPECT_EQ(batch.num_shed, 2u);
  EXPECT_EQ(batch.num_ok, 0u);
  EXPECT_EQ(batch.epoch, 0u);
  for (const RouteBatchItem& item : batch.items) {
    EXPECT_EQ(item.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(item.admission, AdmissionOutcome::kShedDeadline);
    EXPECT_TRUE(item.response.paths.empty());
  }
  AdmissionCounters counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, 0u);
  EXPECT_EQ(counters.shed_deadline, 2u);
}

TEST(AdmissionTest, TenantOverQuotaSubmitIsShed) {
  Graph g = MakeRandomConnected(20, 26, 1, 9, 65);
  RoutingServiceOptions options;
  options.per_tenant_quota = 1;
  Result<std::unique_ptr<RoutingService>> service_or =
      RoutingService::Create(std::move(g), std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  std::unique_ptr<RoutingService> service = std::move(service_or).value();

  // Park the submission worker inside the first batch's callback so the
  // tenant's next envelope stays pending deterministically.
  std::mutex gate;
  gate.lock();
  std::atomic<bool> parked{false};
  BatchTicket first = service->SubmitBatch(
      {MakeRequest(0, 19, kBackendYen, 3)},
      [&](const Result<RouteBatchResponse>&) {
        parked.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> guard(gate);
      });
  while (!parked.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<RouteRequest> pending = {MakeRequest(2, 17, kBackendYen, 3)};
  pending.front().context.tenant_id = "acme";
  BatchTicket second = service->SubmitBatch(pending);

  std::vector<RouteRequest> over = {MakeRequest(3, 16, kBackendYen, 3)};
  over.front().context.tenant_id = "acme";
  BatchTicket third = service->SubmitBatch(over);
  // Over quota: answered immediately (no blocking), OK envelope, item shed
  // with kResourceExhausted.
  const Result<RouteBatchResponse>& shed = third.Wait();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  ASSERT_EQ(shed.value().items.size(), 1u);
  EXPECT_EQ(shed.value().items.front().status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.value().items.front().admission,
            AdmissionOutcome::kShedQuota);

  gate.unlock();
  ASSERT_TRUE(first.Wait().ok());
  const Result<RouteBatchResponse>& served = second.Wait();
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().num_ok, 1u);

  AdmissionCounters counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, 2u);  // first + second batches, one item each
  EXPECT_EQ(counters.shed_quota, 1u);
  EXPECT_EQ(counters.shed_deadline, 0u);
}

// QoS submits racing traffic batches (the tsan job repeats all *Concurrent*
// tests): every ticket must be fulfilled with an exact admission outcome,
// and the service registry must tell the same story as the tickets.
TEST(AdmissionTest, ConcurrentQosOverloadAndTrafficAccountExactly) {
  Graph g = MakeRandomConnected(28, 36, 1, 9, 67);
  const size_t num_edges = g.NumEdges();
  RoutingServiceOptions options;
  options.submit_queue_capacity = 4;
  options.per_tenant_quota = 2;
  Result<std::unique_ptr<RoutingService>> service_or =
      RoutingService::Create(std::move(g), std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  std::unique_ptr<RoutingService> service = std::move(service_or).value();

  constexpr size_t kSubmits = 48;
  std::atomic<size_t> served{0};
  std::atomic<size_t> shed_deadline{0};
  std::atomic<size_t> shed_quota{0};
  std::atomic<size_t> errors{0};

  std::thread producer([&] {
    std::vector<BatchTicket> tickets;
    for (size_t i = 0; i < kSubmits; ++i) {
      RouteRequest request = MakeRequest(
          static_cast<VertexId>(i % 28),
          static_cast<VertexId>((i * 7 + 11) % 28),
          i % 2 == 0 ? kBackendKspDg : kBackendYen, 3);
      if (request.source == request.target) request.target = 27;
      request.context.priority = static_cast<RequestPriority>(i % 3);
      request.context.tenant_id = i % 2 == 0 ? "even" : "odd";
      if (i % 4 == 0) {
        // A quarter of the load runs on a tight deadline: some of these
        // expire in the queue under contention, exercising both deadline
        // checks concurrently with the traffic writer.
        request.context.deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(2);
      }
      std::vector<RouteRequest> one;
      one.push_back(std::move(request));
      tickets.push_back(service->SubmitBatch(std::move(one)));
    }
    for (const BatchTicket& ticket : tickets) {
      const Result<RouteBatchResponse>& outcome = ticket.Wait();
      if (!outcome.ok() || outcome.value().items.size() != 1) {
        errors.fetch_add(1);
        continue;
      }
      const RouteBatchItem& item = outcome.value().items.front();
      switch (item.admission) {
        case AdmissionOutcome::kServed:
          item.status.ok() ? served.fetch_add(1) : errors.fetch_add(1);
          break;
        case AdmissionOutcome::kShedDeadline:
          shed_deadline.fetch_add(1);
          break;
        case AdmissionOutcome::kShedQuota:
          shed_quota.fetch_add(1);
          break;
        case AdmissionOutcome::kRejected:
          errors.fetch_add(1);
          break;
      }
    }
  });

  for (int batch = 0; batch < 5; ++batch) {
    std::vector<WeightUpdate> updates;
    for (EdgeId e = 0; e < num_edges; e += 3) {
      updates.push_back({e, 2.0 + batch, 2.0 + batch});
    }
    ASSERT_TRUE(service->ApplyTrafficBatch(updates).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(served.load() + shed_deadline.load() + shed_quota.load(),
            kSubmits)
      << "every QoS submit must be accounted exactly once";
  AdmissionCounters counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, served.load());
  EXPECT_EQ(counters.shed_deadline, shed_deadline.load());
  EXPECT_EQ(counters.shed_quota, shed_quota.load());
}

// ---------------------------------------------------------------------------
// Multi-kind query surface (RouteRequest / RouteResponse).
// ---------------------------------------------------------------------------

RouteRequest MakeKindRequest(QueryKind kind, VertexId s, VertexId t) {
  RouteRequest request;
  request.kind = kind;
  request.source = s;
  request.target = t;
  return request;
}

TEST(MultiKindQueryTest, ShortestPathKindRoutesToCandsAndMatchesDijkstra) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = MakeRandomConnected(30, 40, 1, 9, seed * 19 + 3);
    std::unique_ptr<RoutingService> service =
        MustCreate(std::move(g), /*z=*/10);
    ASSERT_TRUE(service != nullptr);

    TrafficModelOptions traffic_options;
    traffic_options.alpha = 0.5;
    traffic_options.seed = seed + 11;
    TrafficModel traffic(service->graph(), traffic_options);

    // Exact shortest paths before AND after traffic batches: the cands
    // index must survive rebuild-on-update with exact answers.
    for (int step = 0; step < 3; ++step) {
      if (step > 0) {
        ASSERT_TRUE(service->ApplyTrafficBatch(traffic.NextBatch()).ok());
      }
      for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
               {0, 29}, {4, 17}, {9, 23}}) {
        Result<RouteResponse> cands =
            service->Query(MakeKindRequest(QueryKind::kShortestPath, s, t));
        ASSERT_TRUE(cands.ok()) << cands.status().ToString();
        EXPECT_EQ(cands.value().kind, QueryKind::kShortestPath);
        EXPECT_EQ(cands.value().backend, kBackendCands);
        EXPECT_EQ(cands.value().k, 1u);
        ASSERT_EQ(cands.value().paths.size(), 1u);

        std::vector<Path> dijkstra =
            MustSolve(*service, s, t, kBackendDijkstra, 1);
        ASSERT_EQ(dijkstra.size(), 1u);
        // The CANDS overlay runs on exact distances; only the summation
        // order differs from flat Dijkstra, so the distances agree to
        // floating-point noise and the route must be real and consistent
        // with the current snapshot.
        EXPECT_NEAR(cands.value().paths[0].distance, dijkstra[0].distance,
                    1e-9 * (1.0 + dijkstra[0].distance))
            << "seed " << seed << " step " << step << " q " << s << "->" << t;
        EXPECT_TRUE(
            IsValidRoute(service->graph(), cands.value().paths[0].vertices));
        EXPECT_NEAR(
            RouteDistance(service->graph(), cands.value().paths[0].vertices),
            cands.value().paths[0].distance, 1e-9);
      }
    }
    // The maintenance stats must show the rebuild work actually happened.
    std::vector<WeightUpdate> one = {{0, 3.5, 3.5}};
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(one);
    ASSERT_TRUE(applied.ok());
    EXPECT_GE(applied.value().cands.subgraphs_rebuilt, 1u);
    EXPECT_GT(applied.value().cands.pair_paths_recomputed, 0u);
  }
}

TEST(MultiKindQueryTest, ShortestPathKindValidatesAndHonoursOverrides) {
  Graph g = MakeRandomConnected(16, 20, 1, 9, 71);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);

  // An explicit k != 1 contradicts the kind.
  RouteRequest bad_k = MakeKindRequest(QueryKind::kShortestPath, 0, 15);
  bad_k.options.k = 3;
  EXPECT_EQ(service->Query(bad_k).status().code(),
            StatusCode::kInvalidArgument);
  // k = 1 explicitly is fine, and the backend override is respected.
  RouteRequest via_dijkstra = MakeKindRequest(QueryKind::kShortestPath, 0, 15);
  via_dijkstra.options.k = 1;
  via_dijkstra.options.backend = kBackendDijkstra;
  Result<RouteResponse> overridden = service->Query(via_dijkstra);
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_EQ(overridden.value().backend, kBackendDijkstra);
  EXPECT_EQ(overridden.value().kind, QueryKind::kShortestPath);
}

TEST(MultiKindQueryTest, CandsBackendFailsCleanlyWhenDisabled) {
  Graph g = MakeRandomConnected(16, 20, 1, 9, 73);
  RoutingServiceOptions options;
  options.enable_cands = false;
  Result<std::unique_ptr<RoutingService>> service =
      RoutingService::Create(std::move(g), std::move(options));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Result<RouteResponse> response = service.value()->Query(
      MakeKindRequest(QueryKind::kShortestPath, 0, 15));
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  // The kind itself stays answerable through an overriding backend.
  RouteRequest via_dijkstra = MakeKindRequest(QueryKind::kShortestPath, 0, 15);
  via_dijkstra.options.backend = kBackendDijkstra;
  EXPECT_TRUE(service.value()->Query(via_dijkstra).ok());
}

TEST(MultiKindQueryTest, DiverseKindIsDeterministicSubsetWithBoundedTheta) {
  for (const char* backend : {kBackendKspDg, kBackendYen}) {
    Graph g = MakeRandomConnected(30, 44, 1, 9, 83);
    std::unique_ptr<RoutingService> service =
        MustCreate(std::move(g), /*z=*/10);
    ASSERT_TRUE(service != nullptr);
    const uint32_t k = 3;
    const uint32_t overfetch = 4;
    const double theta = 0.6;

    RouteRequest diverse = MakeKindRequest(QueryKind::kDiverseKsp, 1, 28);
    diverse.options.backend = backend;
    diverse.options.k = k;
    diverse.options.diversity_theta = theta;
    diverse.options.diversity_overfetch = overfetch;
    Result<RouteResponse> response = service->Query(diverse);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const RouteResponse& r = response.value();
    EXPECT_EQ(r.kind, QueryKind::kDiverseKsp);
    EXPECT_EQ(r.k, k);
    ASSERT_TRUE(r.diverse.has_value());
    EXPECT_LE(r.paths.size(), k);

    // The kept set is a subset (in order) of the k' = k * overfetch KSP
    // answer the same backend gives.
    std::vector<Path> candidates =
        MustSolve(*service, 1, 28, backend, k * overfetch);
    EXPECT_EQ(r.diverse->candidates, candidates.size());
    EXPECT_EQ(r.diverse->kept + r.diverse->filtered, r.diverse->candidates);
    size_t cursor = 0;
    for (const Path& p : r.paths) {
      while (cursor < candidates.size() &&
             candidates[cursor].vertices != p.vertices) {
        ++cursor;
      }
      ASSERT_LT(cursor, candidates.size())
          << backend << ": kept route is not a k' candidate";
      EXPECT_EQ(candidates[cursor].distance, p.distance);
      ++cursor;
    }
    // All pairwise similarities obey θ — recomputed here independently.
    for (size_t i = 0; i < r.paths.size(); ++i) {
      for (size_t j = i + 1; j < r.paths.size(); ++j) {
        EXPECT_LE(RouteEdgeJaccard(r.paths[i], r.paths[j],
                                   service->graph().directed()),
                  theta)
            << backend << " pair " << i << "," << j;
      }
    }
    EXPECT_LE(r.diverse->max_pairwise_similarity, theta);
    EXPECT_LE(r.diverse->ep_path_nodes, r.diverse->ep_raw_entries);

    // Determinism: asking again yields byte-identical routes and stats.
    Result<RouteResponse> again = service->Query(diverse);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again.value().paths.size(), r.paths.size());
    for (size_t i = 0; i < r.paths.size(); ++i) {
      EXPECT_EQ(again.value().paths[i].vertices, r.paths[i].vertices);
      EXPECT_EQ(again.value().paths[i].distance, r.paths[i].distance);
    }
    EXPECT_EQ(again.value().diverse->kept, r.diverse->kept);
    EXPECT_EQ(again.value().diverse->ep_path_nodes, r.diverse->ep_path_nodes);
  }
}

TEST(MultiKindQueryTest, DiverseKindValidation) {
  Graph g = MakeRandomConnected(16, 20, 1, 9, 89);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g));
  ASSERT_TRUE(service != nullptr);

  RouteRequest bad_theta = MakeKindRequest(QueryKind::kDiverseKsp, 0, 15);
  bad_theta.options.diversity_theta = 1.5;
  EXPECT_EQ(service->Query(bad_theta).status().code(),
            StatusCode::kInvalidArgument);
  RouteRequest bad_overfetch = MakeKindRequest(QueryKind::kDiverseKsp, 0, 15);
  bad_overfetch.options.diversity_overfetch = 0;
  EXPECT_EQ(service->Query(bad_overfetch).status().code(),
            StatusCode::kInvalidArgument);
  // The dijkstra backend cannot serve a k' > 1 over-fetch.
  RouteRequest via_dijkstra = MakeKindRequest(QueryKind::kDiverseKsp, 0, 15);
  via_dijkstra.options.backend = kBackendDijkstra;
  EXPECT_EQ(service->Query(via_dijkstra).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiKindQueryTest, MixedKindsInOneBatchMatchSequentialQueries) {
  Graph g = MakeRandomConnected(26, 34, 1, 9, 97);
  std::unique_ptr<RoutingService> service = MustCreate(std::move(g), /*z=*/8);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests;
  requests.push_back(MakeRequest(0, 25, kBackendKspDg, 4));  // kKsp
  requests.push_back(MakeKindRequest(QueryKind::kShortestPath, 2, 21));
  RouteRequest diverse = MakeKindRequest(QueryKind::kDiverseKsp, 3, 19);
  diverse.options.backend = kBackendYen;
  diverse.options.k = 3;
  requests.push_back(diverse);
  RouteRequest bad = MakeKindRequest(QueryKind::kShortestPath, 5, 5);
  requests.push_back(bad);  // s == t: per-item rejection

  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  ASSERT_EQ(b.items.size(), 4u);
  EXPECT_EQ(b.num_ok, 3u);
  EXPECT_EQ(b.num_rejected, 1u);
  EXPECT_EQ(b.items[3].status.code(), StatusCode::kInvalidArgument);

  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(b.items[i].status.ok()) << i;
    Result<RouteResponse> sequential = service->Query(requests[i]);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(b.items[i].response.kind, requests[i].kind);
    ASSERT_EQ(b.items[i].response.paths.size(),
              sequential.value().paths.size())
        << i;
    for (size_t p = 0; p < b.items[i].response.paths.size(); ++p) {
      EXPECT_EQ(b.items[i].response.paths[p].vertices,
                sequential.value().paths[p].vertices);
      EXPECT_EQ(b.items[i].response.paths[p].distance,
                sequential.value().paths[p].distance);
    }
  }
  // The diverse item carries its kind-tagged payload through the batch.
  ASSERT_TRUE(b.items[2].response.diverse.has_value());
  EXPECT_EQ(b.items[2].response.diverse->kept, b.items[2].response.paths.size());
}

TEST(BenchRunnerTest, MixedBenchSmoke) {
  BenchOptions options;
  options.dataset = "NY-S";
  options.target_vertices = 256;
  options.queries_per_backend = 6;
  options.num_batches = 2;
  options.query_threads = 2;
  options.k = 3;
  options.z = 32;
  options.batch_size = 4;
  options.diverse = true;
  options.diverse_theta = 0.6;
  options.diverse_overfetch = 4;
  Result<BenchReport> report = RunMixedBench(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const BenchReport& r = report.value();
  EXPECT_EQ(r.num_vertices, 256u);
  EXPECT_EQ(r.batches_applied, 2u);
  EXPECT_EQ(r.batch_errors, 0u);
  EXPECT_EQ(r.final_epoch, 2u);
  ASSERT_EQ(r.backends.size(), 3u);
  for (const BackendBenchStats& b : r.backends) {
    EXPECT_EQ(b.queries, 6u) << b.backend;
    EXPECT_EQ(b.errors, 0u) << b.backend;
    EXPECT_GT(b.paths_returned, 0u) << b.backend;
    // Percentiles exist and are ordered.
    EXPECT_GT(b.p50_micros, 0.0) << b.backend;
    EXPECT_LE(b.p50_micros, b.p95_micros) << b.backend;
    EXPECT_LE(b.p95_micros, b.p99_micros) << b.backend;
    EXPECT_LE(b.p99_micros, b.max_micros) << b.backend;
  }
  EXPECT_GT(r.update_p50_micros, 0.0);
  EXPECT_LE(r.update_p50_micros, r.update_p99_micros);
  // Batch phase ran over the full mixed request list without errors and
  // every batch stayed on one epoch.
  EXPECT_EQ(r.batch.batch_size, 4u);
  EXPECT_EQ(r.batch.requests, 18u);
  EXPECT_EQ(r.batch.errors, 0u);
  EXPECT_EQ(r.batch.non_uniform_batches, 0u);
  EXPECT_GT(r.batch.sequential_qps, 0.0);
  EXPECT_GT(r.batch.batch_qps, 0.0);
  // CANDS maintenance ran inside the same traffic batches the DTLP
  // maintenance did (the Figures 40-41 contrast).
  EXPECT_GT(r.cands_subgraphs_rebuilt, 0u);
  EXPECT_GT(r.cands_pair_paths_recomputed, 0u);
  EXPECT_GT(r.cands_rebuild_micros, 0.0);
  // Diverse phase: every query answered, similarity bound respected, and
  // the per-query MFP trees compressed the EP incidences.
  EXPECT_EQ(r.diverse.requests, 18u);
  EXPECT_EQ(r.diverse.errors, 0u);
  EXPECT_GE(r.diverse.kept_min, 1u);
  EXPECT_LE(r.diverse.kept_max, 3u);
  EXPECT_EQ(r.diverse.kept_total + r.diverse.filtered_total,
            r.diverse.candidates_total);
  EXPECT_LE(r.diverse.max_pairwise_similarity, options.diverse_theta);
  EXPECT_LE(r.diverse.mean_pairwise_similarity,
            r.diverse.max_pairwise_similarity + 1e-12);
  EXPECT_GT(r.diverse.ep_raw_entries, 0u);
  EXPECT_LE(r.diverse.ep_path_nodes, r.diverse.ep_raw_entries);
  EXPECT_GT(r.diverse.diverse_qps, 0.0);
  EXPECT_GT(r.diverse.plain_qps, 0.0);
  EXPECT_LE(r.diverse.p50_micros, r.diverse.p99_micros);
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\"dataset\": \"NY-S\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"kspdg\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"p95_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"diverse\""), std::string::npos);
  EXPECT_NE(json.find("\"mfp_compression_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"cands_rebuild_micros\""), std::string::npos);
  BenchOptions bad = options;
  bad.backends = {};
  EXPECT_FALSE(RunMixedBench(bad).ok());
}

}  // namespace
}  // namespace kspdg
