// Tests for replicated shard workers (src/remote at num_replicas > 1):
// replication must be invisible in the answers — byte-identical to the
// in-process ShardedRoutingService no matter which replica serves each
// partial fetch, across replica/shard counts, traffic, and every fault the
// harness can script (a replica killed mid-two-phase-commit, a replica
// silently missing epochs, a whole shard dead). Catch-up — in-place replay
// for a lagging replica, checkpoint + replay for a respawned one — must
// converge every replica back to the committed epoch with bit-identical
// state. Drills named *Replica*/*Concurrent* also run under the tsan
// repeat leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "fault_harness.h"
#include "graph/generators.h"
#include "graph/traffic_model.h"
#include "ksp/path.h"
#include "parity_harness.h"
#include "remote/remote_sharded_routing_service.h"
#include "shard/sharded_routing_service.h"

namespace kspdg {
namespace {

RouteRequest MakeKindRequest(QueryKind kind, VertexId s, VertexId t) {
  RouteRequest request;
  request.kind = kind;
  request.source = s;
  request.target = t;
  request.options.k = 4;
  if (kind == QueryKind::kShortestPath) {
    request.options.k = 1;
  } else if (kind == QueryKind::kDiverseKsp) {
    request.options.k = 3;
    request.options.diversity_theta = 0.6;
  }
  return request;
}

// ---------------------------------------------------------------------------
// Parity across the (replicas x shards) grid: replication must be
// answer-invisible for every QueryKind, before and after traffic.
// ---------------------------------------------------------------------------

TEST(ReplicaTest, ReplicaParityAcrossShardAndReplicaCounts) {
  for (uint32_t num_replicas : {1u, 2u, 3u}) {
    for (uint32_t num_shards : {1u, 2u, 4u}) {
      Graph g = MakeRandomConnected(40, 52, 1, 9, 401);
      Graph g_remote = g;
      std::unique_ptr<ShardedRoutingService> sharded =
          MustCreateSharded(std::move(g), /*z=*/10, num_shards);
      std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateRemote(
          std::move(g_remote), /*z=*/10, num_shards, num_replicas);
      ASSERT_TRUE(sharded != nullptr && remote != nullptr);
      ASSERT_EQ(remote->num_replicas(), num_replicas);
      ASSERT_EQ(remote->WorkerInfos().size(),
                size_t{num_shards} * num_replicas);

      TrafficModelOptions traffic_options;
      traffic_options.alpha = 0.5;
      traffic_options.seed = 43;
      TrafficModel traffic(sharded->graph(), traffic_options);

      for (int step = 0; step < 2; ++step) {
        if (step > 0) {
          std::vector<WeightUpdate> batch = traffic.NextBatch();
          ASSERT_TRUE(sharded->ApplyTrafficBatch(batch).ok());
          Result<TrafficBatchResult> applied = remote->ApplyTrafficBatch(batch);
          ASSERT_TRUE(applied.ok()) << applied.status().ToString();
        }
        const std::string tag = " r=" + std::to_string(num_replicas) +
                                " shards=" + std::to_string(num_shards) +
                                " step=" + std::to_string(step);
        for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
                 {0, 39}, {17, 22}}) {
          for (QueryKind kind : {QueryKind::kKsp, QueryKind::kShortestPath,
                                 QueryKind::kDiverseKsp}) {
            ExpectQueryParity(*remote, *sharded, MakeKindRequest(kind, s, t),
                              "kind=" + std::to_string(static_cast<int>(kind)) +
                                  tag);
          }
        }
      }
      // Every replica of every shard acknowledged the committed epoch.
      for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
        EXPECT_TRUE(info.alive) << info.shard << "/" << info.replica;
        EXPECT_EQ(info.epoch, 1u) << info.shard << "/" << info.replica;
      }
    }
  }
}

// At R=2 reads actually rotate: both replicas of a shard serve fetches.
TEST(ReplicaTest, ReplicaReadsRotateRoundRobin) {
  Graph g = MakeRandomConnected(40, 52, 1, 9, 409);
  std::unique_ptr<RemoteShardedRoutingService> remote =
      MustCreateRemote(std::move(g), /*z=*/10, /*num_shards=*/2,
                       /*num_replicas=*/2);
  ASSERT_TRUE(remote != nullptr);
  for (VertexId s = 0; s < 10; ++s) {
    ASSERT_TRUE(remote->Query(MakeRequest(s, 39 - s, kBackendKspDg, 4)).ok());
  }
  uint64_t total_reads = 0;
  uint64_t replicas_reading = 0;
  for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
    total_reads += info.reads;
    if (info.reads > 0) ++replicas_reading;
  }
  EXPECT_GT(total_reads, 0u);
  // Round-robin across 10 multi-fetch queries must touch more than one
  // replica (strict balance is not asserted — per-query shard fan-out
  // varies — but rotation must be visible).
  EXPECT_GT(replicas_reading, 2u) << "reads did not rotate across replicas";
  // The per-replica read share is exported with replica labels.
  MetricsSnapshot fleet = remote->Metrics();
  std::set<std::pair<std::string, std::string>> labeled;
  for (const CounterSample& counter : fleet.counters) {
    if (counter.name != "reads_by_replica_total") continue;
    std::string shard, replica;
    for (const auto& [key, value] : counter.labels) {
      if (key == "shard") shard = value;
      if (key == "replica") replica = value;
    }
    labeled.insert({shard, replica});
  }
  EXPECT_EQ(labeled.size(), 4u) << "expected a labeled series per replica";
}

// ---------------------------------------------------------------------------
// Replication invariants under faults.
// ---------------------------------------------------------------------------

// Kill one replica deterministically mid-two-phase-commit (at the instant
// its prepare would go out): the batch still commits, the sibling serves
// every read, and answers stay byte-identical to the in-process service.
TEST(ReplicaTest, ReplicaKillOneMidBatchKeepsAnswersIdentical) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 419);
  Graph g_ref = g;
  auto plan = std::make_shared<FaultPlan>();
  plan->shard = 0;
  plan->replica = 1;
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2, plan);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(remote != nullptr && reference != nullptr);

  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 71;
  TrafficModel traffic(reference->graph(), traffic_options);

  std::vector<WeightUpdate> first = traffic.NextBatch();
  ASSERT_TRUE(reference->ApplyTrafficBatch(first).ok());
  ASSERT_TRUE(remote->ApplyTrafficBatch(first).ok());

  // Arm the crash: replica (0,1) dies exactly at its epoch-2 prepare.
  plan->kill_at_prepare.store(true);
  std::vector<WeightUpdate> second = traffic.NextBatch();
  ASSERT_TRUE(reference->ApplyTrafficBatch(second).ok());
  Result<TrafficBatchResult> applied = remote->ApplyTrafficBatch(second);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().epoch, 2u);
  EXPECT_GE(plan->prepares_seen.load(), 2) << "fault point never reached";

  const std::vector<RemoteWorkerInfo> after_kill = remote->WorkerInfos();
  const RemoteWorkerInfo* killed = FindReplica(after_kill, 0, 1);
  ASSERT_NE(killed, nullptr);
  EXPECT_FALSE(killed->alive) << "mid-batch kill was not detected";

  // Every query answers (sibling failover) and matches bit-for-bit.
  for (VertexId s = 0; s < 6; ++s) {
    for (QueryKind kind :
         {QueryKind::kKsp, QueryKind::kShortestPath, QueryKind::kDiverseKsp}) {
      ExpectQueryParity(*remote, *reference, MakeKindRequest(kind, s, 29 - s),
                        "after mid-batch kill, q " + std::to_string(s));
    }
  }
  EXPECT_EQ(remote->counters().sharded.base.queries_rejected, 0u);
  // The surviving replica of shard 0 carried that shard's reads.
  const std::vector<RemoteWorkerInfo> after_queries = remote->WorkerInfos();
  const RemoteWorkerInfo* sibling = FindReplica(after_queries, 0, 0);
  ASSERT_NE(sibling, nullptr);
  EXPECT_TRUE(sibling->alive);
}

// A replica that silently misses an epoch (dropped prepare — a lost
// message) leaves the read rotation, the service keeps answering from its
// sibling, and an explicit RestartDeadWorkers catches it back up IN PLACE:
// replica_epoch converges to the committed epoch and post-catch-up answers
// still match the in-process service.
TEST(ReplicaTest, ReplicaLaggingCatchUpConvergesEpochAndAnswers) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 421);
  Graph g_ref = g;
  auto plan = std::make_shared<FaultPlan>();
  plan->shard = 1;
  plan->replica = 0;
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2, plan);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(remote != nullptr && reference != nullptr);

  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 73;
  TrafficModel traffic(reference->graph(), traffic_options);

  plan->drop_prepares.store(1);  // replica (1,0) misses epoch 1
  for (int step = 0; step < 2; ++step) {
    std::vector<WeightUpdate> batch = traffic.NextBatch();
    ASSERT_TRUE(reference->ApplyTrafficBatch(batch).ok());
    ASSERT_TRUE(remote->ApplyTrafficBatch(batch).ok());
  }
  EXPECT_EQ(plan->drop_prepares.load(), 0) << "fault point never reached";

  // Lagging but alive: out of rotation, not dead.
  const std::vector<RemoteWorkerInfo> while_lagging = remote->WorkerInfos();
  const RemoteWorkerInfo* lagging = FindReplica(while_lagging, 1, 0);
  ASSERT_NE(lagging, nullptr);
  EXPECT_TRUE(lagging->alive);
  EXPECT_LT(lagging->epoch, 2u);

  // Queries keep answering correctly from the up-to-date sibling.
  for (VertexId s = 0; s < 4; ++s) {
    ExpectQueryParity(*remote, *reference,
                      MakeRequest(s, 29 - s, kBackendKspDg, 4),
                      "lagging replica, q " + std::to_string(s));
  }

  Status restarted = remote->RestartDeadWorkers();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();

  // replica_epoch converged: every replica (exported gauge included) is at
  // the committed epoch, and the in-place replay counted as a catch-up.
  for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
    EXPECT_TRUE(info.alive) << info.shard << "/" << info.replica;
    EXPECT_EQ(info.epoch, 2u) << info.shard << "/" << info.replica;
    EXPECT_EQ(info.restarts, 0u) << "catch-up must not respawn";
  }
  const std::vector<RemoteWorkerInfo> after_catchup = remote->WorkerInfos();
  const RemoteWorkerInfo* caught = FindReplica(after_catchup, 1, 0);
  ASSERT_NE(caught, nullptr);
  EXPECT_GE(caught->catchups, 1u);
  EXPECT_GE(remote->counters().replica_catchups, 1u);
  MetricsSnapshot fleet = remote->Metrics();
  size_t converged = 0;
  for (const GaugeSample& gauge : fleet.gauges) {
    if (gauge.name != "replica_epoch") continue;
    EXPECT_EQ(gauge.value, 2) << "replica_epoch did not converge";
    ++converged;
  }
  EXPECT_EQ(converged, 4u);
  EXPECT_GE(fleet.CounterTotal("replica_catchups_total"), 1u);

  // Post-catch-up answers match (the caught-up replica is back in
  // rotation, so these fetches exercise it too).
  for (VertexId s = 0; s < 6; ++s) {
    for (QueryKind kind :
         {QueryKind::kKsp, QueryKind::kShortestPath, QueryKind::kDiverseKsp}) {
      ExpectQueryParity(*remote, *reference, MakeKindRequest(kind, s, 29 - s),
                        "post-catch-up q " + std::to_string(s));
    }
  }
}

// Both replicas of one shard dead: queries needing that shard fail with a
// clean per-query status (kUnavailable once detected), never hang; the
// other shard and coordinator-only backends keep serving.
TEST(ReplicaTest, ReplicaAllDeadShardYieldsUnavailableNoHang) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 431);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(remote != nullptr && reference != nullptr);

  KillReplica(*remote, /*shard=*/0, /*replica=*/0);
  KillReplica(*remote, /*shard=*/0, /*replica=*/1);

  const auto start = std::chrono::steady_clock::now();
  size_t errors = 0;
  for (VertexId s = 0; s < 8; ++s) {
    RouteRequest request = MakeRequest(s, 25 - s, kBackendKspDg, 4);
    Result<RouteResponse> got = remote->Query(request);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().code() == StatusCode::kUnavailable ||
                  got.status().code() == StatusCode::kDeadlineExceeded)
          << got.status().ToString();
      ++errors;
      continue;
    }
    // Queries not touching shard 0 must still be exactly right.
    Result<RouteResponse> want = reference->Query(request);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(got.value().paths, want.value().paths,
                         "surviving query " + std::to_string(s));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GT(errors, 0u) << "no query exercised the dead shard";
  EXPECT_LT(elapsed.count(), 30) << "dead shard must fail fast, not hang";
  // Once both replicas are known dead, the failure is the documented
  // all-replicas-dead status.
  Result<RouteResponse> after = remote->Query(MakeRequest(0, 25, kBackendKspDg, 4));
  if (!after.ok()) {
    EXPECT_EQ(after.status().code(), StatusCode::kUnavailable)
        << after.status().ToString();
  }
  EXPECT_EQ(remote->counters().partial_rpc_errors,
            remote->counters().sharded.base.queries_rejected);
}

// The retained history is bounded by checkpoints, and a replica respawned
// AFTER a checkpoint (its pre-checkpoint batches are gone) still converges
// bit-identically: it loads the checkpoint snapshot and replays only the
// tail.
TEST(ReplicaTest, ReplicaCheckpointBoundsHistoryAndRestartConverges) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 433);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2,
      /*plan=*/nullptr, /*auto_restart=*/false, /*max_history_batches=*/2);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(remote != nullptr && reference != nullptr);

  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 79;
  TrafficModel traffic(reference->graph(), traffic_options);
  for (int step = 0; step < 3; ++step) {
    std::vector<WeightUpdate> batch = traffic.NextBatch();
    ASSERT_TRUE(reference->ApplyTrafficBatch(batch).ok());
    ASSERT_TRUE(remote->ApplyTrafficBatch(batch).ok());
  }
  // Batches 1+2 hit max_history_batches=2 -> checkpoint at epoch 2, log
  // truncated; batch 3 is the only retained entry.
  EXPECT_EQ(remote->checkpoint_epoch(), 2u);
  EXPECT_EQ(remote->history_size(), 1u);

  // Kill a replica and respawn it: batches 1-2 are no longer replayable,
  // so convergence MUST go through the checkpoint.
  KillReplica(*remote, /*shard=*/1, /*replica=*/1);
  Status restarted = remote->RestartDeadWorkers();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  const std::vector<RemoteWorkerInfo> after_restart = remote->WorkerInfos();
  const RemoteWorkerInfo* revived = FindReplica(after_restart, 1, 1);
  ASSERT_NE(revived, nullptr);
  EXPECT_TRUE(revived->alive);
  EXPECT_EQ(revived->epoch, 3u);
  EXPECT_GE(revived->restarts, 1u);
  EXPECT_GE(revived->catchups, 1u);

  // Bit-identical convergence: answers match the reference that applied
  // the full history incrementally.
  for (VertexId s = 0; s < 6; ++s) {
    for (QueryKind kind :
         {QueryKind::kKsp, QueryKind::kShortestPath, QueryKind::kDiverseKsp}) {
      ExpectQueryParity(*remote, *reference, MakeKindRequest(kind, s, 29 - s),
                        "post-checkpoint restart q " + std::to_string(s));
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded randomized parity sweep: mixed kinds, interleaved traffic, random
// single-replica kills — remote-replicated must stay path-identical to the
// in-process sharded service throughout.
// ---------------------------------------------------------------------------

class ReplicaRandomizedParitySweep : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(ReplicaRandomizedParitySweep, ReplicaRandomizedParitySweepSeeded) {
  const uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  Graph g = MakeRandomConnected(32, 42, 1, 9, 500 + seed);
  Graph g_remote = g;
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  // auto_restart on: a killed replica is revived by the next batch, so the
  // sweep exercises kill -> degraded reads -> respawn -> catch-up cycles.
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g_remote), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2,
      /*plan=*/nullptr, /*auto_restart=*/true);
  ASSERT_TRUE(reference != nullptr && remote != nullptr);

  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = seed * 7 + 1;
  TrafficModel traffic(reference->graph(), traffic_options);
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<VertexId> vertex_dist(0, 31);
  std::uniform_int_distribution<uint32_t> pick_dist(0, 1);

  const QueryKind kinds[] = {QueryKind::kKsp, QueryKind::kShortestPath,
                             QueryKind::kDiverseKsp};
  for (int step = 0; step < 40; ++step) {
    const int op = op_dist(rng);
    if (op < 70) {
      VertexId s = vertex_dist(rng);
      VertexId t = vertex_dist(rng);
      if (s == t) t = (t + 1) % 32;
      QueryKind kind = kinds[static_cast<size_t>(op) % 3];
      ExpectQueryParity(*remote, *reference, MakeKindRequest(kind, s, t),
                        "seed " + std::to_string(seed) + " step " +
                            std::to_string(step));
    } else if (op < 90) {
      std::vector<WeightUpdate> batch = traffic.NextBatch();
      ASSERT_TRUE(reference->ApplyTrafficBatch(batch).ok());
      Result<TrafficBatchResult> applied = remote->ApplyTrafficBatch(batch);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    } else {
      // Kill one random replica, but never the last live one of a shard —
      // the sweep asserts every query succeeds, which holds exactly while
      // each shard keeps a live replica.
      ShardId shard = pick_dist(rng);
      uint32_t replica = pick_dist(rng);
      const std::vector<RemoteWorkerInfo> infos = remote->WorkerInfos();
      const RemoteWorkerInfo* target = FindReplica(infos, shard, replica);
      const RemoteWorkerInfo* sibling =
          FindReplica(infos, shard, 1 - replica);
      ASSERT_TRUE(target != nullptr && sibling != nullptr);
      if (target->alive && sibling->alive) {
        KillReplica(*remote, shard, replica);
      }
    }
  }

  // Quiesce: revive everything and prove full convergence.
  ASSERT_TRUE(remote->RestartDeadWorkers().ok());
  const uint64_t committed = remote->CurrentEpoch();
  for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
    EXPECT_TRUE(info.alive) << info.shard << "/" << info.replica;
    EXPECT_EQ(info.epoch, committed) << info.shard << "/" << info.replica;
  }
  for (VertexId s = 0; s < 6; ++s) {
    ExpectQueryParity(*remote, *reference,
                      MakeRequest(s, 31 - s, kBackendKspDg, 4),
                      "seed " + std::to_string(seed) + " final");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaRandomizedParitySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Concurrency drill (tsan repeat leg): queries race a replica kill and a
// traffic batch (which auto-restarts the victim). Every query either
// succeeds with a bit-exact answer for its pinned epoch or fails with a
// clean transport status.
// ---------------------------------------------------------------------------

TEST(ReplicaTest, ConcurrentReplicaQueriesWithKillAndRestart) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 439);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> remote = MustCreateReplicated(
      std::move(g), /*z=*/8, /*num_shards=*/2, /*num_replicas=*/2,
      /*plan=*/nullptr, /*auto_restart=*/true);
  ASSERT_TRUE(remote != nullptr);

  // Reference answers for both epochs the racing queries can pin: epoch 1
  // (pre-batch) and epoch 2 (post-batch).
  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 83;
  TrafficModel traffic_a(g_ref, traffic_options);
  std::vector<WeightUpdate> first = traffic_a.NextBatch();
  std::vector<WeightUpdate> second = traffic_a.NextBatch();
  Graph g_ref2 = g_ref;
  std::unique_ptr<ShardedRoutingService> ref_epoch1 =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  std::unique_ptr<ShardedRoutingService> ref_epoch2 =
      MustCreateSharded(std::move(g_ref2), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(ref_epoch1 != nullptr && ref_epoch2 != nullptr);
  ASSERT_TRUE(ref_epoch1->ApplyTrafficBatch(first).ok());
  ASSERT_TRUE(ref_epoch2->ApplyTrafficBatch(first).ok());
  ASSERT_TRUE(ref_epoch2->ApplyTrafficBatch(second).ok());
  ASSERT_TRUE(remote->ApplyTrafficBatch(first).ok());

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> error_count{0};
  std::atomic<bool> failed{false};
  auto query_loop = [&](unsigned tid) {
    for (int i = 0; i < 20 && !failed.load(); ++i) {
      VertexId s = (tid * 5 + static_cast<VertexId>(i)) % 30;
      VertexId t = 29 - s == s ? (s + 1) % 30 : 29 - s;
      Result<RouteResponse> got =
          remote->Query(MakeRequest(s, t, kBackendKspDg, 4));
      if (!got.ok()) {
        if (got.status().code() != StatusCode::kUnavailable &&
            got.status().code() != StatusCode::kDeadlineExceeded) {
          ADD_FAILURE() << "unclean failure: " << got.status().ToString();
          failed.store(true);
        }
        error_count.fetch_add(1);
        continue;
      }
      ShardedRoutingService& want_service =
          got.value().epoch >= 2 ? *ref_epoch2 : *ref_epoch1;
      Result<RouteResponse> want =
          want_service.Query(MakeRequest(s, t, kBackendKspDg, 4));
      if (!want.ok()) {
        ADD_FAILURE() << want.status().ToString();
        failed.store(true);
        continue;
      }
      ExpectIdenticalPaths(got.value().paths, want.value().paths,
                           "concurrent q tid=" + std::to_string(tid) +
                               " i=" + std::to_string(i) + " epoch=" +
                               std::to_string(got.value().epoch));
      ok_count.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back(query_loop, tid);
  }
  // Race: kill a replica under the readers, then commit a batch (which
  // auto-restarts and catches it up) while queries are still in flight.
  KillReplica(*remote, /*shard=*/0, /*replica=*/1);
  Result<TrafficBatchResult> applied = remote->ApplyTrafficBatch(second);
  for (std::thread& thread : threads) thread.join();

  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(ok_count.load(), 0u);
  // Post-quiesce: the killed replica is back at the committed epoch and
  // answers converge.
  ASSERT_TRUE(remote->RestartDeadWorkers().ok());
  for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
    EXPECT_TRUE(info.alive) << info.shard << "/" << info.replica;
    EXPECT_EQ(info.epoch, 2u) << info.shard << "/" << info.replica;
  }
  for (VertexId s = 0; s < 4; ++s) {
    ExpectQueryParity(*remote, *ref_epoch2,
                      MakeRequest(s, 29 - s, kBackendKspDg, 4),
                      "post-drill q " + std::to_string(s));
  }
}

}  // namespace
}  // namespace kspdg
