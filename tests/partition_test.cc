// Unit + property tests for the BFS partitioner (§3.3): coverage of vertices
// and edges, the z cap, edge-disjointness, boundary detection.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "partition/partitioner.h"

namespace kspdg {
namespace {

Partition MustPartition(const Graph& g, uint32_t z) {
  PartitionOptions opt;
  opt.max_vertices = z;
  Result<Partition> part = PartitionGraph(g, opt);
  EXPECT_TRUE(part.ok()) << part.status().ToString();
  return std::move(part).value();
}

/// Checks the three §3.3 invariants plus structural consistency.
void CheckPartitionInvariants(const Graph& g, const Partition& part,
                              uint32_t z) {
  // (1) V1 u ... u Vn = V.
  std::vector<int> vertex_cover(g.NumVertices(), 0);
  for (const Subgraph& sg : part.subgraphs) {
    EXPECT_LE(sg.NumVertices(), z);
    for (VertexId local = 0; local < sg.NumVertices(); ++local) {
      vertex_cover[sg.GlobalOf(local)]++;
      EXPECT_EQ(sg.LocalOf(sg.GlobalOf(local)), local);
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(vertex_cover[v], 1) << "vertex " << v << " uncovered";
  }
  // (2) E1 u ... u En = E, and subgraphs share no edges.
  std::vector<int> edge_cover(g.NumEdges(), 0);
  for (const Subgraph& sg : part.subgraphs) {
    for (EdgeId le = 0; le < sg.NumEdges(); ++le) {
      EdgeId ge = sg.GlobalEdgeOf(le);
      edge_cover[ge]++;
      // Weights and vfrags must mirror the global edge.
      EXPECT_EQ(sg.local().ForwardVfrags(le), g.ForwardVfrags(ge));
      EXPECT_DOUBLE_EQ(sg.local().ForwardWeight(le), g.ForwardWeight(ge));
      // Orientation preserved.
      EXPECT_EQ(sg.GlobalOf(sg.local().EdgeU(le)), g.EdgeU(ge));
      EXPECT_EQ(sg.GlobalOf(sg.local().EdgeV(le)), g.EdgeV(ge));
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(edge_cover[e], 1) << "edge " << e << " covered "
                                << edge_cover[e] << " times";
    EXPECT_NE(part.subgraph_of_edge[e], kInvalidSubgraph);
  }
  // Boundary = membership in >= 2 subgraphs.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(part.is_boundary[v] != 0, part.subgraphs_of_vertex[v].size() >= 2);
  }
  // Per-subgraph boundary lists agree with the global flags.
  for (const Subgraph& sg : part.subgraphs) {
    std::set<VertexId> listed(sg.boundary_local().begin(),
                              sg.boundary_local().end());
    for (VertexId local = 0; local < sg.NumVertices(); ++local) {
      EXPECT_EQ(listed.count(local) > 0,
                part.is_boundary[sg.GlobalOf(local)] != 0);
    }
  }
}

TEST(PartitionerTest, RejectsTinyZ) {
  Graph g = MakeRandomConnected(10, 5, 1, 5, 1);
  PartitionOptions opt;
  opt.max_vertices = 1;
  EXPECT_FALSE(PartitionGraph(g, opt).ok());
}

TEST(PartitionerTest, SingleSubgraphWhenZLarge) {
  Graph g = MakeRandomConnected(20, 10, 1, 5, 2);
  Partition part = MustPartition(g, 100);
  EXPECT_EQ(part.subgraphs.size(), 1u);
  EXPECT_TRUE(part.boundary_vertices.empty());
  CheckPartitionInvariants(g, part, 100);
}

TEST(PartitionerTest, InvariantsOnRoadNetwork) {
  RoadNetworkOptions opt;
  opt.rows = 20;
  opt.cols = 20;
  opt.seed = 3;
  Graph g = MakeRoadNetwork(opt);
  for (uint32_t z : {8u, 20u, 50u, 200u}) {
    Partition part = MustPartition(g, z);
    CheckPartitionInvariants(g, part, z);
    if (z < g.NumVertices()) {
      EXPECT_GT(part.subgraphs.size(), 1u);
      EXPECT_FALSE(part.boundary_vertices.empty());
    }
  }
}

TEST(PartitionerTest, InvariantsOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = MakeRandomConnected(120, 90, 1, 12, seed);
    Partition part = MustPartition(g, 16);
    CheckPartitionInvariants(g, part, 16);
  }
}

TEST(PartitionerTest, HandlesIsolatedVertices) {
  Graph g(5);
  g.AddEdge(0, 1, 2);  // vertices 2, 3, 4 isolated
  Partition part = MustPartition(g, 4);
  CheckPartitionInvariants(g, part, 4);
}

TEST(PartitionerTest, HandlesStarGraphSmallZ) {
  // A star forces repeated growth from the hub.
  Graph g(10);
  for (VertexId v = 1; v < 10; ++v) g.AddEdge(0, v, 1);
  Partition part = MustPartition(g, 3);
  CheckPartitionInvariants(g, part, 3);
  // The hub belongs to several subgraphs, hence is a boundary vertex.
  EXPECT_GE(part.subgraphs_of_vertex[0].size(), 2u);
  EXPECT_TRUE(part.is_boundary[0]);
}

TEST(PartitionerTest, DirectedGraphPreservesPerDirectionWeights) {
  RoadNetworkOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.directed = true;
  opt.asymmetric_prob = 1.0;
  opt.seed = 9;
  Graph g = MakeRoadNetwork(opt);
  Partition part = MustPartition(g, 12);
  for (const Subgraph& sg : part.subgraphs) {
    EXPECT_TRUE(sg.local().directed());
    for (EdgeId le = 0; le < sg.NumEdges(); ++le) {
      EdgeId ge = sg.GlobalEdgeOf(le);
      EXPECT_EQ(sg.local().BackwardVfrags(le), g.BackwardVfrags(ge));
      EXPECT_DOUBLE_EQ(sg.local().BackwardWeight(le), g.BackwardWeight(ge));
    }
  }
}

TEST(PartitionerTest, SubgraphsContainingBoth) {
  RoadNetworkOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = 11;
  Graph g = MakeRoadNetwork(opt);
  Partition part = MustPartition(g, 12);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    // The endpoints of any edge co-occur at least in the owning subgraph.
    std::vector<SubgraphId> both =
        part.SubgraphsContainingBoth(g.EdgeU(e), g.EdgeV(e));
    EXPECT_FALSE(both.empty());
    bool owner_found = false;
    for (SubgraphId s : both) owner_found |= (s == part.subgraph_of_edge[e]);
    EXPECT_TRUE(owner_found);
  }
}

TEST(PartitionerTest, ApplyUpdatePropagatesToSubgraph) {
  Graph g = MakeRandomConnected(40, 30, 2, 9, 12);
  Partition part = MustPartition(g, 10);
  WeightUpdate upd{0, 3.5, 3.5};
  SubgraphId owner = part.subgraph_of_edge[0];
  EXPECT_TRUE(part.subgraphs[owner].ApplyUpdate(upd));
  EdgeId local = part.subgraphs[owner].LocalEdgeOf(0);
  EXPECT_DOUBLE_EQ(part.subgraphs[owner].local().ForwardWeight(local), 3.5);
  // Subgraphs not containing the edge refuse it.
  for (const Subgraph& sg : part.subgraphs) {
    if (sg.id() != owner) {
      Subgraph& mutable_sg = const_cast<Subgraph&>(sg);
      EXPECT_FALSE(mutable_sg.ApplyUpdate(upd));
    }
  }
}

TEST(PartitionerTest, BoundaryCountStatistic) {
  RoadNetworkOptions opt;
  opt.rows = 16;
  opt.cols = 16;
  opt.seed = 13;
  Graph g = MakeRoadNetwork(opt);
  Partition part = MustPartition(g, 20);
  size_t above0 = part.CountSubgraphsWithBoundaryAbove(0);
  size_t above5 = part.CountSubgraphsWithBoundaryAbove(5);
  EXPECT_GE(above0, above5);
  EXPECT_GT(above0, 0u);
}

}  // namespace
}  // namespace kspdg
