// Tests for the out-of-process serving layer (src/remote + the
// shard_worker binary): byte-identical parity with the in-process
// ShardedRoutingService at 1/2/4 shards for every QueryKind, single and
// batched, before and after traffic; the cross-process two-phase epoch
// commit; and the fault model — killed workers degrade to clean per-query
// Status errors (never a hang, never a wrong answer) and come back via
// restart + history replay with their exact incremental state.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>

#include <chrono>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "graph/generators.h"
#include "graph/traffic_model.h"
#include "ksp/path.h"
#include "parity_harness.h"
#include "remote/remote_sharded_routing_service.h"
#include "shard/sharded_routing_service.h"
#include "workload/bench_runner.h"

namespace kspdg {
namespace {

void KillAllWorkers(const RemoteShardedRoutingService& service) {
  for (const RemoteWorkerInfo& info : service.WorkerInfos()) {
    ASSERT_GT(info.pid, 0);
    ASSERT_EQ(kill(info.pid, SIGKILL), 0);
  }
}

// ---------------------------------------------------------------------------
// Parity with the in-process sharded service: every kind, pre/post traffic.
// ---------------------------------------------------------------------------

TEST(RemoteShardedRoutingServiceTest, ParityWithInProcessAcrossKindsAndTraffic) {
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    Graph g = MakeRandomConnected(40, 52, 1, 9, 307);
    Graph g_remote = g;
    std::unique_ptr<ShardedRoutingService> sharded =
        MustCreateSharded(std::move(g), /*z=*/10, num_shards);
    std::unique_ptr<RemoteShardedRoutingService> remote =
        MustCreateRemote(std::move(g_remote), /*z=*/10, num_shards);
    ASSERT_TRUE(sharded != nullptr && remote != nullptr);
    ASSERT_EQ(remote->num_shards(), num_shards);
    ASSERT_EQ(remote->assignment().shard_of_subgraph,
              sharded->assignment().shard_of_subgraph);

    TrafficModelOptions traffic_options;
    traffic_options.alpha = 0.5;
    traffic_options.seed = 41;
    TrafficModel traffic(sharded->graph(), traffic_options);

    for (int step = 0; step < 3; ++step) {
      if (step > 0) {
        std::vector<WeightUpdate> batch = traffic.NextBatch();
        Result<TrafficBatchResult> want_applied =
            sharded->ApplyTrafficBatch(batch);
        Result<TrafficBatchResult> got_applied =
            remote->ApplyTrafficBatch(batch);
        ASSERT_TRUE(want_applied.ok()) << want_applied.status().ToString();
        ASSERT_TRUE(got_applied.ok()) << got_applied.status().ToString();
        EXPECT_EQ(got_applied.value().epoch, want_applied.value().epoch);
        // Identical Algorithm 2 maintenance on the coordinator's master
        // copy: the remote fan-out composes the same primitives.
        EXPECT_EQ(got_applied.value().dtlp.updates_applied,
                  want_applied.value().dtlp.updates_applied);
        EXPECT_EQ(got_applied.value().dtlp.subgraphs_touched,
                  want_applied.value().dtlp.subgraphs_touched);
      }
      const std::string tag = " shards=" + std::to_string(num_shards) +
                              " step=" + std::to_string(step);
      for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
               {0, 39}, {3, 31}, {17, 22}}) {
        // kKsp on every stock backend (kspdg is the one whose refine step
        // crosses the process boundary).
        for (const char* backend :
             {kBackendKspDg, kBackendYen, kBackendDijkstra}) {
          uint32_t k = backend == kBackendDijkstra ? 1 : 5;
          ExpectQueryParity(*remote, *sharded, MakeRequest(s, t, backend, k),
                            std::string(backend) + tag);
        }

        // kShortestPath through the coordinator-owned CANDS index.
        RouteRequest shortest;
        shortest.kind = QueryKind::kShortestPath;
        shortest.source = s;
        shortest.target = t;
        Result<RouteResponse> want_sp = sharded->Query(shortest);
        Result<RouteResponse> got_sp = remote->Query(shortest);
        ASSERT_TRUE(want_sp.ok() && got_sp.ok());
        EXPECT_EQ(got_sp.value().backend, kBackendCands);
        ExpectIdenticalPaths(got_sp.value().paths, want_sp.value().paths,
                             "cands" + tag);

        // kDiverseKsp: candidates flow through the remote partials.
        RouteRequest diverse;
        diverse.kind = QueryKind::kDiverseKsp;
        diverse.source = s;
        diverse.target = t;
        diverse.options.k = 3;
        diverse.options.diversity_theta = 0.6;
        Result<RouteResponse> want_div = sharded->Query(diverse);
        Result<RouteResponse> got_div = remote->Query(diverse);
        ASSERT_TRUE(want_div.ok() && got_div.ok());
        ExpectIdenticalPaths(got_div.value().paths, want_div.value().paths,
                             "diverse" + tag);
        ASSERT_TRUE(got_div.value().diverse.has_value());
        ASSERT_TRUE(want_div.value().diverse.has_value());
        EXPECT_EQ(got_div.value().diverse->kept,
                  want_div.value().diverse->kept);
        EXPECT_EQ(got_div.value().diverse->candidates,
                  want_div.value().diverse->candidates);
      }
    }
    EXPECT_EQ(remote->CurrentEpoch(), 2u);
    // Every worker acknowledged both epochs.
    for (const RemoteWorkerInfo& info : remote->WorkerInfos()) {
      EXPECT_TRUE(info.alive) << "shard " << info.shard;
      EXPECT_EQ(info.epoch, 2u) << "shard " << info.shard;
      EXPECT_EQ(info.restarts, 0u) << "shard " << info.shard;
    }
  }
}

TEST(RemoteShardedRoutingServiceTest, BatchAndSubmitParityWithInProcess) {
  Graph g = MakeRandomConnected(36, 48, 1, 9, 311);
  Graph g_remote = g;
  std::unique_ptr<ShardedRoutingService> sharded =
      MustCreateSharded(std::move(g), /*z=*/10, /*num_shards=*/2);
  std::unique_ptr<RemoteShardedRoutingService> remote =
      MustCreateRemote(std::move(g_remote), /*z=*/10, /*num_shards=*/2);
  ASSERT_TRUE(sharded != nullptr && remote != nullptr);

  // Move both off epoch 0 so batches run against updated weights.
  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.4;
  traffic_options.seed = 59;
  TrafficModel traffic(sharded->graph(), traffic_options);
  std::vector<WeightUpdate> updates = traffic.NextBatch();
  ASSERT_TRUE(sharded->ApplyTrafficBatch(updates).ok());
  ASSERT_TRUE(remote->ApplyTrafficBatch(updates).ok());

  std::vector<RouteRequest> requests;
  for (VertexId s = 0; s < 6; ++s) {
    RouteRequest request =
        MakeRequest(s, 35 - s, s % 2 == 0 ? kBackendKspDg : kBackendYen, 4);
    if (s % 3 == 0) {
      request.kind = QueryKind::kDiverseKsp;
      request.options.k = 3;
    }
    requests.push_back(request);
  }

  Result<RouteBatchResponse> want = sharded->QueryBatch(requests);
  Result<RouteBatchResponse> got = remote->QueryBatch(requests);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().num_ok, requests.size());
  EXPECT_EQ(got.value().epoch, want.value().epoch);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(got.value().items[i].status.ok())
        << got.value().items[i].status.ToString();
    ExpectIdenticalPaths(got.value().items[i].response.paths,
                         want.value().items[i].response.paths,
                         "batch item " + std::to_string(i));
  }

  // Async submission answers the identical batch.
  BatchTicket ticket = remote->SubmitBatch(requests);
  ASSERT_TRUE(ticket.valid());
  const Result<RouteBatchResponse>& async = ticket.Wait();
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  ASSERT_EQ(async.value().num_ok, requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectIdenticalPaths(async.value().items[i].response.paths,
                         want.value().items[i].response.paths,
                         "async item " + std::to_string(i));
  }
}

TEST(RemoteShardedRoutingServiceTest, RejectsInvalidRequestsAndCounts) {
  Graph g = MakeRandomConnected(16, 14, 1, 9, 313);
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemote(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);
  EXPECT_EQ(service->Query(MakeRequest(0, 5, kBackendYen, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(0, 99, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service->Query(MakeRequest(0, 5, "no-such-backend", 2)).status().code(),
      StatusCode::kNotFound);
  RemoteServiceCounters counters = service->counters();
  EXPECT_EQ(counters.sharded.base.queries_ok, 0u);
  EXPECT_EQ(counters.sharded.base.queries_rejected, 3u);
  EXPECT_EQ(counters.partial_rpc_errors, 0u);
}

TEST(RemoteShardedRoutingServiceTest, CreateRejectsMissingWorkerBinary) {
  Graph g = MakeRandomConnected(12, 10, 1, 9, 317);
  RemoteShardedRoutingServiceOptions options;
  options.remote.worker_binary = "/nonexistent/shard_worker";
  EXPECT_FALSE(
      RemoteShardedRoutingService::Create(std::move(g), options).ok());
}

TEST(RemoteShardedRoutingServiceTest, WorkerFleetTelemetryIsCoherent) {
  Graph g = MakeRandomConnected(60, 80, 1, 9, 331);
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemote(std::move(g), /*z=*/10, /*num_shards=*/3);
  ASSERT_TRUE(service != nullptr);
  for (VertexId s = 0; s < 10; ++s) {
    ASSERT_TRUE(service->Query(MakeRequest(s, 59 - s, kBackendKspDg, 4)).ok());
  }
  std::vector<RemoteWorkerInfo> infos = service->WorkerInfos();
  ASSERT_EQ(infos.size(), 3u);
  size_t subgraphs = 0;
  uint64_t worker_partials = 0;
  for (const RemoteWorkerInfo& info : infos) {
    EXPECT_TRUE(info.alive) << info.shard;
    EXPECT_GT(info.pid, 0) << info.shard;
    subgraphs += info.subgraphs;
    worker_partials += info.partial_requests;
    EXPECT_GE(info.yen_runs, info.partial_requests) << info.shard;
  }
  EXPECT_EQ(subgraphs, service->dtlp().NumSubgraphs());
  RemoteServiceCounters counters = service->counters();
  EXPECT_EQ(counters.sharded.base.queries_ok, 10u);
  EXPECT_GT(counters.rpc_calls, 0u);
  EXPECT_EQ(counters.worker_restarts, 0u);
  EXPECT_GE(worker_partials, counters.sharded.direct_partial_requests +
                                 counters.sharded.scattered_partial_requests);
}

// Worker-registry round-trip: each shard_worker keeps its own
// MetricsRegistry and ships an encoded snapshot back in every Ping reply;
// the coordinator's Metrics() merges those snapshots into the fleet view,
// tagging each worker's samples with its shard id.
TEST(RemoteShardedRoutingServiceTest, FleetMetricsMergeWorkerRegistries) {
  Graph g = MakeRandomConnected(40, 52, 1, 9, 359);
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemote(std::move(g), /*z=*/10, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);
  for (VertexId s = 0; s < 6; ++s) {
    ASSERT_TRUE(service->Query(MakeRequest(s, 39 - s, kBackendKspDg, 4)).ok());
  }

  MetricsSnapshot fleet = service->Metrics();
  // Coordinator-side accounting covers every issued query.
  EXPECT_EQ(fleet.CounterTotal("queries_ok_total"), 6u);
  EXPECT_EQ(fleet.CounterTotal("queries_rejected_total"), 0u);
  // Both workers reported a registry (one worker_epoch gauge each).
  EXPECT_EQ(fleet.GaugeSampleCount("worker_epoch"), 2u);

  std::set<std::string> shards;
  uint64_t worker_pings = 0;
  for (const CounterSample& counter : fleet.counters) {
    if (counter.name.rfind("worker_", 0) != 0) continue;
    for (const auto& [key, value] : counter.labels) {
      if (key == "shard") shards.insert(value);
    }
    if (counter.name == "worker_pings_total") worker_pings += counter.value;
  }
  EXPECT_EQ(shards, (std::set<std::string>{"0", "1"}));
  // The scrape itself pings the fleet, so every worker saw >= 1 ping.
  EXPECT_GT(worker_pings, 0u);
  // The workers' own partials accounting rode along with the merge.
  RemoteServiceCounters counters = service->counters();
  EXPECT_GE(fleet.CounterTotal("worker_partials_requests_total"),
            counters.sharded.direct_partial_requests +
                counters.sharded.scattered_partial_requests);
}

// Duplicate KSP-DG queries inside one batch are served from the
// per-(shard, worker) partial caches — no second round of partials RPCs.
TEST(RemoteShardedRoutingServiceTest, PartialCachesServeDuplicateInBatch) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 337);
  RemoteShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = 8;
  options.num_shards = 2;
  options.batch_threads = 1;
  Result<std::unique_ptr<RemoteShardedRoutingService>> created =
      RemoteShardedRoutingService::Create(std::move(g), std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<RemoteShardedRoutingService> service =
      std::move(created).value();

  std::vector<RouteRequest> requests = {MakeRequest(0, 25, kBackendKspDg, 5),
                                        MakeRequest(0, 25, kBackendKspDg, 5)};
  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched.value().num_ok, 2u);
  ASSERT_FALSE(batched.value().items[0].response.paths.empty());
  ExpectIdenticalPaths(batched.value().items[1].response.paths,
                       batched.value().items[0].response.paths,
                       "duplicate query in one remote batch");
  EXPECT_GT(service->counters().sharded.partial_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Fault model: killed workers degrade to per-query errors, never a hang or
// a wrong answer; restart + replay restores the exact state.
// ---------------------------------------------------------------------------

// Fault-suite options: tight per-attempt deadline so a dead worker is
// detected in well under a second.
std::unique_ptr<RemoteShardedRoutingService> MustCreateRemoteFastFail(
    Graph g, uint32_t z, uint32_t num_shards, bool auto_restart) {
  RemoteShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = z;
  options.num_shards = num_shards;
  options.remote.rpc_deadline_ms = 300;
  options.remote.rpc_max_retries = 0;
  options.remote.rpc_backoff_ms = 1;
  options.remote.auto_restart = auto_restart;
  Result<std::unique_ptr<RemoteShardedRoutingService>> service =
      RemoteShardedRoutingService::Create(std::move(g), std::move(options));
  if (!service.ok()) {
    ADD_FAILURE() << service.status().ToString();
    return nullptr;
  }
  return std::move(service).value();
}

TEST(RemoteFaultTest, KilledWorkersYieldCleanErrorsNeverHangsOrWrongAnswers) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 347);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemoteFastFail(std::move(g), /*z=*/8, /*num_shards=*/2,
                               /*auto_restart=*/false);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr && reference != nullptr);

  KillAllWorkers(*service);

  const auto start = std::chrono::steady_clock::now();
  size_t errors = 0;
  for (VertexId s = 0; s < 8; ++s) {
    RouteRequest request = MakeRequest(s, 25 - s, kBackendKspDg, 4);
    Result<RouteResponse> got = service->Query(request);
    if (!got.ok()) {
      // The documented degradation: a clean transport status, per query.
      EXPECT_TRUE(got.status().code() == StatusCode::kUnavailable ||
                  got.status().code() == StatusCode::kDeadlineExceeded)
          << got.status().ToString();
      ++errors;
      continue;
    }
    // A query that needed no remote partials is answered entirely from the
    // coordinator's master state — and must still be exactly right.
    Result<RouteResponse> want = reference->Query(request);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(got.value().paths, want.value().paths,
                         "surviving query " + std::to_string(s));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GT(errors, 0u) << "no query exercised the dead workers";
  // Fast-fail: the first failure marks the worker dead; later queries skip
  // the deadline wait entirely. Generous bound, but a hang would blow it.
  EXPECT_LT(elapsed.count(), 30);

  RemoteServiceCounters counters = service->counters();
  EXPECT_EQ(counters.partial_rpc_errors, errors);
  EXPECT_EQ(counters.sharded.base.queries_rejected, errors);

  // Backends that never leave the coordinator still serve every query.
  for (VertexId s = 0; s < 4; ++s) {
    RouteRequest request = MakeRequest(s, 25 - s, kBackendDijkstra, 1);
    Result<RouteResponse> got = service->Query(request);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<RouteResponse> want = reference->Query(request);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(got.value().paths, want.value().paths,
                         "dijkstra under dead workers");
  }
}

TEST(RemoteFaultTest, RestartDeadWorkersReplaysHistoryAndRestoresParity) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 349);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemoteFastFail(std::move(g), /*z=*/8, /*num_shards=*/2,
                               /*auto_restart=*/false);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr && reference != nullptr);

  // Commit real history first: the restarted workers must re-derive the
  // exact incrementally-maintained state, not a rebuild from flat weights.
  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 61;
  TrafficModel traffic(reference->graph(), traffic_options);
  for (int step = 0; step < 2; ++step) {
    std::vector<WeightUpdate> batch = traffic.NextBatch();
    ASSERT_TRUE(reference->ApplyTrafficBatch(batch).ok());
    ASSERT_TRUE(service->ApplyTrafficBatch(batch).ok());
  }

  KillAllWorkers(*service);
  // Surface the deaths (RestartDeadWorkers health-checks anyway, but this
  // exercises the query-path detection too).
  (void)service->Query(MakeRequest(0, 29, kBackendKspDg, 4));

  Status restarted = service->RestartDeadWorkers();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  uint64_t total_restarts = 0;
  for (const RemoteWorkerInfo& info : service->WorkerInfos()) {
    EXPECT_TRUE(info.alive) << "shard " << info.shard;
    EXPECT_EQ(info.epoch, 2u) << "shard " << info.shard;
    total_restarts += info.restarts;
  }
  EXPECT_GT(total_restarts, 0u);
  EXPECT_EQ(service->counters().worker_restarts, total_restarts);

  // Full parity at the committed snapshot: replay reconstructed the state.
  for (VertexId s = 0; s < 6; ++s) {
    for (const char* backend : {kBackendKspDg, kBackendYen}) {
      RouteRequest request = MakeRequest(s, 29 - s, backend, 4);
      Result<RouteResponse> got = service->Query(request);
      Result<RouteResponse> want = reference->Query(request);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got.value().epoch, 2u);
      ExpectIdenticalPaths(got.value().paths, want.value().paths,
                           std::string(backend) + " after restart, q " +
                               std::to_string(s));
    }
  }
}

TEST(RemoteFaultTest, ApplyTrafficBatchAutoRestartsDeadWorkers) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 353);
  Graph g_ref = g;
  std::unique_ptr<RemoteShardedRoutingService> service =
      MustCreateRemoteFastFail(std::move(g), /*z=*/8, /*num_shards=*/2,
                               /*auto_restart=*/true);
  std::unique_ptr<ShardedRoutingService> reference =
      MustCreateSharded(std::move(g_ref), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr && reference != nullptr);

  TrafficModelOptions traffic_options;
  traffic_options.alpha = 0.5;
  traffic_options.seed = 67;
  TrafficModel traffic(reference->graph(), traffic_options);
  std::vector<WeightUpdate> first = traffic.NextBatch();
  ASSERT_TRUE(reference->ApplyTrafficBatch(first).ok());
  ASSERT_TRUE(service->ApplyTrafficBatch(first).ok());

  KillAllWorkers(*service);

  // The next traffic batch revives the fleet (replaying batch 1), then
  // commits epoch 2 across it.
  std::vector<WeightUpdate> second = traffic.NextBatch();
  ASSERT_TRUE(reference->ApplyTrafficBatch(second).ok());
  Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(second);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().epoch, 2u);

  uint64_t total_restarts = 0;
  for (const RemoteWorkerInfo& info : service->WorkerInfos()) {
    EXPECT_TRUE(info.alive) << "shard " << info.shard;
    EXPECT_EQ(info.epoch, 2u) << "shard " << info.shard;
    total_restarts += info.restarts;
  }
  EXPECT_EQ(total_restarts, 2u) << "both workers were killed once";

  for (VertexId s = 0; s < 6; ++s) {
    RouteRequest request = MakeRequest(s, 25 - s, kBackendKspDg, 4);
    Result<RouteResponse> got = service->Query(request);
    Result<RouteResponse> want = reference->Query(request);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(got.value().paths, want.value().paths,
                         "post-auto-restart q " + std::to_string(s));
  }
}

// ---------------------------------------------------------------------------
// Bench remote_shard phase: the parity gate CI reads from the JSON.
// ---------------------------------------------------------------------------

TEST(BenchRunnerTest, RemoteShardPhaseReportsParity) {
  BenchOptions options;
  options.dataset = "NY-S";
  options.target_vertices = 256;
  options.queries_per_backend = 5;
  options.num_batches = 2;
  options.query_threads = 2;
  options.k = 3;
  options.z = 32;
  options.remote_shards = 2;
  Result<BenchReport> report = RunMixedBench(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const RemoteShardPhaseStats& phase = report.value().remote_shard;
  EXPECT_EQ(phase.num_shards, 2u);
  EXPECT_EQ(phase.requests, 15u);  // 5 queries x 3 default backends
  EXPECT_EQ(phase.errors, 0u);
  EXPECT_EQ(phase.mismatches, 0u);
  EXPECT_EQ(phase.batches_applied, 2u);
  EXPECT_EQ(phase.final_epoch, 2u);
  EXPECT_EQ(phase.worker_restarts, 0u);
  EXPECT_EQ(phase.rpc_deadline_expired, 0u);
  EXPECT_GT(phase.rpc_calls, 0u);
  EXPECT_EQ(phase.batch_size, 8u);  // default batched leg
  EXPECT_EQ(phase.batches_submitted, 2u);  // ceil(15 / 8)
  EXPECT_GT(phase.remote_qps, 0.0);
  EXPECT_GT(phase.remote_batch_qps, 0.0);
  EXPECT_GT(phase.inprocess_qps, 0.0);
  std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"remote_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_restarts\": 0"), std::string::npos);
}

// The admission surface crosses the process boundary unchanged: the remote
// coordinator sheds expired work before any RPC leaves the master, and its
// Metrics() exports the same admission series names as the in-process
// services, readable through the same AdmissionCountersFrom view.
TEST(RemoteShardedRoutingServiceTest, AdmissionSeriesMatchInProcessServices) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 313);
  std::unique_ptr<RemoteShardedRoutingService> remote =
      MustCreateRemote(std::move(g), /*z=*/10, /*num_shards=*/2);
  ASSERT_TRUE(remote != nullptr);

  RouteRequest expired = MakeRequest(0, 29, kBackendYen, 3);
  expired.context.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  Result<RouteResponse> response = remote->Query(expired);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(remote->Query(MakeRequest(0, 29, kBackendYen, 3)).ok());

  AdmissionCounters counters = AdmissionCountersFrom(remote->Metrics());
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.shed_deadline, 1u);
  EXPECT_EQ(counters.shed_quota, 0u);
}

}  // namespace
}  // namespace kspdg
