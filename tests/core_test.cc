// Unit tests for src/core: Status/Result, Rng, IndexedMinHeap, SmallSortedSet,
// ParallelFor, ThreadPool, EpochLock.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/epoch_coordinator.h"
#include "core/epoch_lock.h"
#include "core/indexed_heap.h"
#include "core/parallel_for.h"
#include "core/rng.h"
#include "core/small_set.h"
#include "core/status.h"
#include "core/submission_queue.h"
#include "core/thread_pool.h"
#include "core/types.h"

namespace kspdg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be >= 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be >= 1");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be >= 1");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(WeightsTest, EqualityTolerance) {
  EXPECT_TRUE(WeightsEqual(1.0, 1.0));
  EXPECT_TRUE(WeightsEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(WeightsEqual(1.0, 1.001));
  EXPECT_TRUE(WeightLess(1.0, 2.0));
  EXPECT_FALSE(WeightLess(1.0, 1.0 + 1e-12));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, RangeDouble) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-0.3, 0.3);
    EXPECT_GE(d, -0.3);
    EXPECT_LT(d, 0.3);
  }
}

TEST(IndexedHeapTest, PushPopOrdered) {
  IndexedMinHeap heap(10);
  heap.PushOrDecrease(3, 5.0);
  heap.PushOrDecrease(1, 2.0);
  heap.PushOrDecrease(7, 9.0);
  heap.PushOrDecrease(2, 3.0);
  double key;
  EXPECT_EQ(heap.PopMin(&key), 1u);
  EXPECT_DOUBLE_EQ(key, 2.0);
  EXPECT_EQ(heap.PopMin(&key), 2u);
  EXPECT_EQ(heap.PopMin(&key), 3u);
  EXPECT_EQ(heap.PopMin(&key), 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedHeapTest, DecreaseKeyReordersEntry) {
  IndexedMinHeap heap(10);
  heap.PushOrDecrease(0, 10.0);
  heap.PushOrDecrease(1, 20.0);
  EXPECT_TRUE(heap.PushOrDecrease(1, 5.0));
  EXPECT_EQ(heap.PopMin(), 1u);
  EXPECT_EQ(heap.PopMin(), 0u);
}

TEST(IndexedHeapTest, IncreaseIsIgnored) {
  IndexedMinHeap heap(4);
  heap.PushOrDecrease(0, 1.0);
  EXPECT_FALSE(heap.PushOrDecrease(0, 9.0));
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 1.0);
}

TEST(IndexedHeapTest, TieBrokenById) {
  IndexedMinHeap heap(10);
  heap.PushOrDecrease(5, 1.0);
  heap.PushOrDecrease(2, 1.0);
  heap.PushOrDecrease(8, 1.0);
  EXPECT_EQ(heap.PopMin(), 2u);
  EXPECT_EQ(heap.PopMin(), 5u);
  EXPECT_EQ(heap.PopMin(), 8u);
}

TEST(IndexedHeapTest, MatchesStdPriorityQueueOnRandomWorkload) {
  Rng rng(11);
  const size_t n = 500;
  IndexedMinHeap heap(n);
  std::vector<double> best(n, kInfiniteWeight);
  for (int round = 0; round < 2000; ++round) {
    uint32_t id = static_cast<uint32_t>(rng.NextBounded(n));
    double key = rng.NextDouble() * 100;
    if (key < best[id]) best[id] = key;
    heap.PushOrDecrease(id, key);
  }
  double prev = -1;
  while (!heap.empty()) {
    double key;
    uint32_t id = heap.PopMin(&key);
    EXPECT_DOUBLE_EQ(key, best[id]);
    EXPECT_GE(key, prev);
    prev = key;
  }
}

TEST(IndexedHeapTest, ClearResets) {
  IndexedMinHeap heap(4);
  heap.PushOrDecrease(1, 1.0);
  heap.PushOrDecrease(2, 2.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
  heap.PushOrDecrease(1, 3.0);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 3.0);
}

TEST(SmallSortedSetTest, InsertContainsErase) {
  SmallSortedSet<int> set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_TRUE(set.Erase(1));
  EXPECT_FALSE(set.Erase(1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(SmallSortedSetTest, IteratesSorted) {
  SmallSortedSet<int> set;
  for (int v : {9, 3, 7, 1}) set.Insert(v);
  std::vector<int> got(set.begin(), set.end());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), 4u);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(hits.size(), 4, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), 1, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int> sum{0};
  ParallelFor(3, 16, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, ZeroItemsIsNoOp) {
  ParallelFor(0, 4, [](size_t) { FAIL(); });
}

TEST(ParallelForChunkedTest, CoversAllIndicesWithValidWorkerIds) {
  constexpr unsigned kThreads = 4;
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<int> bad_worker{0};
  ParallelForChunked(hits.size(), 16, kThreads, [&](unsigned worker, size_t i) {
    if (worker >= kThreads) bad_worker.fetch_add(1);
    hits[i]++;
  });
  EXPECT_EQ(bad_worker.load(), 0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunkedTest, ChunkLargerThanCountRunsInline) {
  std::vector<int> hits(10, 0);
  int workers_seen = 0;
  ParallelForChunked(hits.size(), 64, 4, [&](unsigned worker, size_t i) {
    // Inline fallback: single worker 0, no data race on plain ints.
    workers_seen |= static_cast<int>(worker);
    hits[i]++;
  });
  EXPECT_EQ(workers_seen, 0);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForChunkedTest, ZeroChunkTreatedAsOne) {
  std::vector<std::atomic<int>> hits(64);
  ParallelForChunked(hits.size(), 0, 3, [&](unsigned, size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, CoversAllIndicesAcrossRepeatedLoops) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(500);
    pool.ParallelFor(hits.size(), 8, [&](unsigned worker, size_t i) {
      EXPECT_LT(worker, 4u);
      hits[i]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), 4, [&](unsigned worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroItemsIsNoOp) {
  ThreadPool pool(3);
  pool.ParallelFor(0, 4, [](unsigned, size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WorkerIndexIsStableHomeForScratch) {
  // Per-worker accumulators must never be touched by two threads at once;
  // summing them afterwards has to account for every item exactly once.
  ThreadPool pool(4);
  std::vector<int64_t> per_worker(pool.num_threads(), 0);
  pool.ParallelFor(10000, 32, [&](unsigned worker, size_t i) {
    per_worker[worker] += static_cast<int64_t>(i);
  });
  int64_t total = 0;
  for (int64_t v : per_worker) total += v;
  EXPECT_EQ(total, int64_t{10000} * 9999 / 2);
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeSafely) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(100, 7, [&](unsigned, size_t) { sum.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(sum.load(), 4 * 10 * 100);
}

TEST(EpochLockTest, ExclusiveAndSharedBasics) {
  EpochLock lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());  // readers may share
  EXPECT_FALSE(lock.try_lock());        // writer excluded by readers
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());  // reader excluded by writer
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

// The property std::shared_mutex does not give us: a writer must get in
// even while readers continuously re-acquire the shared lock (this is what
// lets ApplyTrafficBatch drain queries on a saturated service).
TEST(EpochLockTest, WriterIsNotStarvedByReaderChurn) {
  EpochLock lock;
  std::atomic<bool> stop{false};
  std::atomic<int> writes{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 50; ++i) {
      lock.lock();
      writes.fetch_add(1);
      lock.unlock();
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(writes.load(), 50);
}

TEST(EpochCoordinatorTest, AdvanceProtocolMovesAllShardsTogether) {
  EpochCoordinator epochs(3);
  EXPECT_EQ(epochs.num_shards(), 3u);
  EXPECT_EQ(epochs.global(), 0u);
  EXPECT_TRUE(epochs.Consistent());

  uint64_t next = epochs.BeginAdvance();
  EXPECT_EQ(next, 1u);
  EXPECT_EQ(epochs.global(), 0u);  // not committed yet
  epochs.PublishShard(0, next);
  epochs.PublishShard(1, next);
  EXPECT_FALSE(epochs.Consistent());  // shard 2 still at the old epoch
  epochs.PublishShard(2, next);
  epochs.Commit(next);
  EXPECT_EQ(epochs.global(), 1u);
  EXPECT_TRUE(epochs.Consistent());
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(epochs.shard(shard), 1u) << shard;
  }
}

TEST(EpochCoordinatorTest, ShardsPublishConcurrently) {
  constexpr size_t kShards = 8;
  EpochCoordinator epochs(kShards);
  for (uint64_t round = 1; round <= 20; ++round) {
    uint64_t next = epochs.BeginAdvance();
    EXPECT_EQ(next, round);
    std::vector<std::thread> workers;
    for (size_t shard = 0; shard < kShards; ++shard) {
      workers.emplace_back(
          [&epochs, shard, next] { epochs.PublishShard(shard, next); });
    }
    for (std::thread& t : workers) t.join();
    epochs.Commit(next);
    EXPECT_EQ(epochs.global(), round);
    EXPECT_TRUE(epochs.Consistent());
  }
}

TEST(EpochCoordinatorTest, SingleShardDegeneratesToPlainCounter) {
  EpochCoordinator epochs(1);
  for (uint64_t round = 1; round <= 5; ++round) {
    uint64_t next = epochs.BeginAdvance();
    epochs.PublishShard(0, next);
    epochs.Commit(next);
  }
  EXPECT_EQ(epochs.global(), 5u);
  EXPECT_EQ(epochs.shard(0), 5u);
  EXPECT_TRUE(epochs.Consistent());
}

TEST(EpochCoordinatorTest, ReadPinObservesOneCoherentSnapshot) {
  EpochCoordinator epochs(3);
  {
    uint64_t next = epochs.BeginAdvance();
    for (size_t shard = 0; shard < 3; ++shard) epochs.PublishShard(shard, next);
    epochs.Commit(next);
  }
  EpochCoordinator::ReadPin pin(epochs);
  EXPECT_EQ(pin.epoch(), 1u);
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(pin.shard_epoch(shard), pin.epoch()) << shard;
    EpochReaderLock lock = pin.LockShard(shard);
    EXPECT_TRUE(lock.owns_lock());
  }
}

TEST(EpochCoordinatorTest, ReadPinBlocksConcurrentAdvance) {
  EpochCoordinator epochs(2);
  std::atomic<bool> advanced{false};
  std::thread writer;
  {
    EpochCoordinator::ReadPin pin(epochs);
    writer = std::thread([&] {
      // The write half of the protocol: exclusive global lock, advance.
      std::unique_lock<EpochLock> lock(epochs.global_lock());
      uint64_t next = epochs.BeginAdvance();
      for (size_t shard = 0; shard < 2; ++shard) {
        std::unique_lock<EpochLock> shard_lock(epochs.shard_lock(shard));
        epochs.PublishShard(shard, next);
      }
      epochs.Commit(next);
      advanced.store(true, std::memory_order_release);
    });
    // The writer must wait for the pin: the pinned epoch stays committed
    // and consistent the whole time the pin is held.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(advanced.load(std::memory_order_acquire));
    EXPECT_EQ(pin.epoch(), 0u);
    EXPECT_TRUE(epochs.Consistent());
  }
  writer.join();
  EXPECT_TRUE(advanced.load());
  EXPECT_EQ(epochs.global(), 1u);
  EXPECT_TRUE(epochs.Consistent());
}

// ---------------------------------------------------------------------------
// SubmissionQueue.
// ---------------------------------------------------------------------------

TEST(SubmissionQueueTest, RunsEveryAcceptedJobInFifoOrder) {
  std::vector<int> order;
  std::mutex order_mu;
  {
    SubmissionQueue queue(/*capacity=*/4);
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(queue.Submit([i, &order, &order_mu] {
        std::lock_guard<std::mutex> guard(order_mu);
        order.push_back(i);
      }));
    }
  }  // destructor drains and joins
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(SubmissionQueueTest, BoundedCapacityAppliesBackpressure) {
  SubmissionQueue queue(/*capacity=*/2);
  std::mutex gate;
  gate.lock();  // the first job parks the worker until we release it
  std::atomic<int> ran{0};
  std::atomic<bool> started{false};
  ASSERT_TRUE(queue.Submit([&] {
    started.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> guard(gate);
    ran.fetch_add(1);
  }));
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The worker is parked on the gate; fill the queue behind it, then
  // measure that the next Submit really blocks until a slot frees up.
  for (size_t i = 0; i < queue.capacity(); ++i) {
    ASSERT_TRUE(queue.Submit([&] { ran.fetch_add(1); }));
  }
  EXPECT_EQ(queue.pending(), queue.capacity());
  std::atomic<bool> fourth_accepted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(queue.Submit([&] { ran.fetch_add(1); }));
    fourth_accepted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fourth_accepted.load(std::memory_order_acquire))
      << "Submit must block while the queue is full";
  gate.unlock();  // worker drains; the blocked Submit completes
  blocked.join();
  EXPECT_TRUE(fourth_accepted.load());
  queue.Shutdown();
}

TEST(SubmissionQueueTest, ShutdownDrainsAcceptedAndRefusesNew) {
  std::atomic<int> ran{0};
  SubmissionQueue queue(/*capacity=*/8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Submit([&] { ran.fetch_add(1); }));
  }
  queue.Shutdown();
  EXPECT_FALSE(queue.Submit([&] { ran.fetch_add(1); }));
  // Destructor joins; all five accepted jobs must have run, the refused
  // one must not.
  while (queue.completed() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(queue.submitted(), 5u);
}

TEST(SubmissionQueueTest, CountersTrackSubmittedAndCompleted) {
  SubmissionQueue queue(/*capacity=*/4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_EQ(queue.submitted(), 0u);
  ASSERT_TRUE(queue.Submit([] {}));
  ASSERT_TRUE(queue.Submit([] {}));
  EXPECT_EQ(queue.submitted(), 2u);
  while (queue.completed() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.pending(), 0u);
}

// ---------------------------------------------------------------------------
// SubmissionQueue admission control (QoS submits).
// ---------------------------------------------------------------------------

namespace {

/// Parks the queue's worker on `gate` (held locked by the caller) so tests
/// can stack up pending entries deterministically, then release them all at
/// once by unlocking.
void ParkWorker(SubmissionQueue& queue, std::mutex& gate,
                std::atomic<bool>& started) {
  ASSERT_TRUE(queue.Submit([&gate, &started] {
    started.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> guard(gate);
  }));
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

TEST(SubmissionQueueTest, StrictPriorityDequeueFifoWithinClass) {
  std::mutex gate;
  gate.lock();
  std::atomic<bool> started{false};
  std::vector<std::string> order;
  std::mutex order_mu;
  {
    SubmissionQueue queue(/*capacity=*/16);
    ParkWorker(queue, gate, started);
    // Stack up a deliberately inverted arrival order while the worker is
    // parked: batch first, interactive last. Dequeue must run interactive
    // first, batch last, FIFO within each class.
    auto submit = [&](RequestPriority priority, const std::string& tag) {
      RequestContext ctx;
      ctx.priority = priority;
      EXPECT_EQ(queue.Submit(ctx,
                             [tag, &order, &order_mu](AdmissionOutcome got) {
                               EXPECT_EQ(got, AdmissionOutcome::kServed);
                               std::lock_guard<std::mutex> guard(order_mu);
                               order.push_back(tag);
                             }),
                SubmitOutcome::kAdmitted);
    };
    submit(RequestPriority::kBatch, "b0");
    submit(RequestPriority::kBatch, "b1");
    submit(RequestPriority::kNormal, "n0");
    submit(RequestPriority::kInteractive, "i0");
    submit(RequestPriority::kNormal, "n1");
    submit(RequestPriority::kInteractive, "i1");
    EXPECT_EQ(queue.pending(RequestPriority::kInteractive), 2u);
    EXPECT_EQ(queue.pending(RequestPriority::kNormal), 2u);
    EXPECT_EQ(queue.pending(RequestPriority::kBatch), 2u);
    gate.unlock();
  }  // destructor drains and joins
  std::vector<std::string> want = {"i0", "i1", "n0", "n1", "b0", "b1"};
  EXPECT_EQ(order, want);
}

TEST(SubmissionQueueTest, PerTenantQuotaShedsInsteadOfBlocking) {
  std::mutex gate;
  gate.lock();
  std::atomic<bool> started{false};
  AdmissionOptions admission;
  admission.per_tenant_quota = 2;
  SubmissionQueue queue(/*capacity=*/16, /*num_workers=*/1, {}, admission);
  ParkWorker(queue, gate, started);
  RequestContext tenant_a;
  tenant_a.tenant_id = "a";
  std::atomic<int> shed{0};
  auto tally = [&shed](AdmissionOutcome got) {
    if (got != AdmissionOutcome::kServed) shed.fetch_add(1);
  };
  EXPECT_EQ(queue.Submit(tenant_a, tally), SubmitOutcome::kAdmitted);
  EXPECT_EQ(queue.Submit(tenant_a, tally), SubmitOutcome::kAdmitted);
  // Third pending entry for "a" exceeds the quota: shed immediately (the
  // job hears kShedQuota on this thread), never blocked.
  EXPECT_EQ(queue.Submit(tenant_a, tally), SubmitOutcome::kShedQuota);
  EXPECT_EQ(shed.load(), 1);
  // A different tenant is unaffected, as is the unmetered empty id.
  RequestContext tenant_b;
  tenant_b.tenant_id = "b";
  EXPECT_EQ(queue.Submit(tenant_b, tally), SubmitOutcome::kAdmitted);
  EXPECT_EQ(queue.shed_quota(), 1u);
  gate.unlock();
  // The charge releases at dequeue: once drained, "a" can submit again.
  while (queue.pending() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.Submit(tenant_a, tally), SubmitOutcome::kAdmitted);
  queue.Shutdown();
}

TEST(SubmissionQueueTest, ExpiredSubmitIsAnsweredWithoutRunning) {
  SubmissionQueue queue(/*capacity=*/4);
  RequestContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(5);
  std::atomic<bool> answered{false};
  EXPECT_EQ(queue.Submit(ctx,
                         [&answered](AdmissionOutcome got) {
                           EXPECT_EQ(got, AdmissionOutcome::kShedDeadline);
                           answered.store(true, std::memory_order_release);
                         }),
            SubmitOutcome::kShedDeadline);
  // Shed at enqueue: answered synchronously on the submitting thread, never
  // queued, never counted as submitted work.
  EXPECT_TRUE(answered.load(std::memory_order_acquire));
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.submitted(), 0u);
  EXPECT_EQ(queue.shed_deadline(), 1u);
}

TEST(SubmissionQueueTest, DeadlineExpiringInQueueShedsAtDequeue) {
  std::mutex gate;
  gate.lock();
  std::atomic<bool> started{false};
  SubmissionQueue queue(/*capacity=*/4);
  ParkWorker(queue, gate, started);
  RequestContext ctx;
  ctx.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  std::atomic<bool> served{false};
  std::atomic<bool> shed{false};
  EXPECT_EQ(queue.Submit(ctx,
                         [&](AdmissionOutcome got) {
                           if (got == AdmissionOutcome::kServed) {
                             served.store(true);
                           } else if (got == AdmissionOutcome::kShedDeadline) {
                             shed.store(true);
                           }
                         }),
            SubmitOutcome::kAdmitted);
  // Let the deadline lapse while the entry waits behind the parked worker;
  // the dequeue-time check must answer it instead of solving it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.unlock();
  while (queue.completed() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(served.load());
  EXPECT_TRUE(shed.load());
  EXPECT_EQ(queue.shed_deadline(), 1u);
  queue.Shutdown();
}

TEST(SubmissionQueueTest, UrgentArrivalDisplacesQueuedBatchWork) {
  std::mutex gate;
  gate.lock();
  std::atomic<bool> started{false};
  SubmissionQueue queue(/*capacity=*/2);
  ParkWorker(queue, gate, started);
  RequestContext batch_ctx;
  batch_ctx.priority = RequestPriority::kBatch;
  std::vector<AdmissionOutcome> batch_outcomes(2, AdmissionOutcome::kServed);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(queue.Submit(batch_ctx,
                           [i, &batch_outcomes](AdmissionOutcome got) {
                             batch_outcomes[i] = got;
                           }),
              SubmitOutcome::kAdmitted);
  }
  EXPECT_EQ(queue.pending(), queue.capacity());
  // A full queue sheds the NEWEST entry of the least-urgent strictly-lower
  // class to admit a more urgent arrival — never blocks it.
  RequestContext interactive_ctx;
  interactive_ctx.priority = RequestPriority::kInteractive;
  std::atomic<bool> interactive_served{false};
  EXPECT_EQ(queue.Submit(interactive_ctx,
                         [&interactive_served](AdmissionOutcome got) {
                           if (got == AdmissionOutcome::kServed) {
                             interactive_served.store(true);
                           }
                         }),
            SubmitOutcome::kAdmitted);
  EXPECT_EQ(queue.pending(), queue.capacity());
  // A batch arrival into the still-full queue has nothing lower to
  // displace: IT is shed.
  std::atomic<bool> late_batch_shed{false};
  EXPECT_EQ(queue.Submit(batch_ctx,
                         [&late_batch_shed](AdmissionOutcome got) {
                           if (got == AdmissionOutcome::kShedQuota) {
                             late_batch_shed.store(true);
                           }
                         }),
            SubmitOutcome::kShedQuota);
  EXPECT_TRUE(late_batch_shed.load());
  gate.unlock();
  // Parked job + served batch + evicted batch + interactive all count as
  // completed admitted work; wait for the drain before reading outcomes.
  while (queue.completed() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Shutdown();
  EXPECT_TRUE(interactive_served.load());
  EXPECT_EQ(batch_outcomes[0], AdmissionOutcome::kServed) << "older survives";
  EXPECT_EQ(batch_outcomes[1], AdmissionOutcome::kShedQuota)
      << "newest batch entry is the victim";
  EXPECT_EQ(queue.shed_quota(), 2u);
}

}  // namespace
}  // namespace kspdg
