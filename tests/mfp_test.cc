// Direct units for the §4 machinery (src/mfp): MfpTree insert/recover
// round-trips and the prefix-compaction bound, seeded MinHash/LSH banding
// behaviour (similar columns collide, dissimilar ones do not), and the
// diversity selection pipeline built on top of them.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/rng.h"
#include "ksp/path.h"
#include "mfp/diversity.h"
#include "mfp/mfp_tree.h"
#include "mfp/minhash_lsh.h"

namespace kspdg {
namespace {

// ---------------------------------------------------------------------------
// MfpTree.
// ---------------------------------------------------------------------------

TEST(MfpTreeTest, RoundTripRecoversInsertedSequences) {
  MfpTree tree;
  const std::vector<std::vector<uint32_t>> lists = {
      {5, 3, 9}, {5, 3}, {7}, {5, 3, 9, 11}, {2, 5}};
  for (EdgeId e = 0; e < lists.size(); ++e) tree.InsertEdge(e, lists[e]);
  for (EdgeId e = 0; e < lists.size(); ++e) {
    EXPECT_TRUE(tree.ContainsEdge(e));
    EXPECT_EQ(tree.PathsOfEdge(e), lists[e]) << "edge " << e;
  }
  EXPECT_FALSE(tree.ContainsEdge(99));
  EXPECT_TRUE(tree.PathsOfEdge(99).empty());
}

TEST(MfpTreeTest, PrefixCompactionNeverExceedsRawEntries) {
  // The compression metric of §4.2: the raw EP-Index stores sum(|P(e)|)
  // path references; the tree stores NumPathNodes() <= that, with equality
  // only when no two lists share a usable prefix.
  MfpTree tree;
  const std::vector<std::vector<uint32_t>> lists = {
      {1, 2, 3, 4}, {1, 2, 3}, {1, 2, 5}, {1, 2, 3, 4, 6}};
  size_t raw = 0;
  for (EdgeId e = 0; e < lists.size(); ++e) {
    tree.InsertEdge(e, lists[e]);
    raw += lists[e].size();
  }
  EXPECT_LE(tree.NumPathNodes(), raw);
  // {1,2,3,4} contributes 4 nodes; {1,2,3} reuses 3; {1,2,5} reuses 2 and
  // adds one; {1,2,3,4,6} reuses 4 and adds one: 6 path nodes total.
  EXPECT_EQ(tree.NumPathNodes(), 6u);
  for (EdgeId e = 0; e < lists.size(); ++e) {
    EXPECT_EQ(tree.PathsOfEdge(e), lists[e]) << "edge " << e;
  }
}

TEST(MfpTreeTest, PrefixMayAttachMidTree) {
  // Unlike a classic FP-tree, the longest matching prefix may start at ANY
  // node: {2, 3} attaches at the interior node for 2 of the {1, 2, 3}
  // chain, adding zero new path nodes.
  MfpTree tree;
  tree.InsertEdge(0, {1, 2, 3});
  ASSERT_EQ(tree.NumPathNodes(), 3u);
  tree.InsertEdge(1, {2, 3});
  EXPECT_EQ(tree.NumPathNodes(), 3u);
  EXPECT_EQ(tree.PathsOfEdge(1), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(tree.PathsOfEdge(0), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(MfpTreeTest, SeededRandomisedRoundTrip) {
  // Many overlapping frequency-sorted lists: every recover must be exact
  // and the compaction bound must hold.
  uint64_t state = 2024;
  for (int trial = 0; trial < 10; ++trial) {
    MfpTree tree;
    std::vector<std::vector<uint32_t>> lists;
    size_t raw = 0;
    const size_t num_edges = 1 + SplitMix64(state) % 12;
    for (EdgeId e = 0; e < num_edges; ++e) {
      // Draw a strictly-descending "frequency order" list from a small
      // universe so prefixes overlap often.
      std::vector<uint32_t> list;
      for (uint32_t item = 0; item < 10; ++item) {
        if (SplitMix64(state) % 3 == 0) list.push_back(item);
      }
      if (list.empty()) list.push_back(static_cast<uint32_t>(e) % 10);
      lists.push_back(list);
      raw += list.size();
      tree.InsertEdge(e, list);
    }
    for (EdgeId e = 0; e < num_edges; ++e) {
      EXPECT_EQ(tree.PathsOfEdge(e), lists[e])
          << "trial " << trial << " edge " << e;
    }
    EXPECT_LE(tree.NumPathNodes(), raw) << "trial " << trial;
    EXPECT_GT(tree.MemoryBytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// MinHash / LSH banding.
// ---------------------------------------------------------------------------

TEST(MinHashLshTest, IdenticalSetsProduceIdenticalSignatures) {
  LshOptions options;
  options.num_hashes = 16;
  options.num_bands = 4;
  options.seed = 7;
  std::vector<std::vector<uint32_t>> columns = {
      {1, 2, 3, 4}, {1, 2, 3, 4}, {10, 11, 12, 13}};
  std::vector<std::vector<uint64_t>> sigs =
      ComputeMinHashSignatures(columns, options);
  ASSERT_EQ(sigs.size(), 3u);
  EXPECT_EQ(sigs[0], sigs[1]);
  EXPECT_NE(sigs[0], sigs[2]);
}

TEST(MinHashLshTest, BandingGroupsSimilarColumnsAndSeparatesDissimilar) {
  // Two near-identical columns must share an LSH bucket in some band
  // (identical sets give identical band keys, so collision is guaranteed);
  // fully disjoint columns land apart under this seed — the banding
  // behaviour §4.1 relies on, pinned deterministically.
  LshOptions options;
  options.num_hashes = 16;
  options.num_bands = 4;
  options.seed = 1234;
  std::vector<std::vector<uint32_t>> columns = {
      {1, 2, 3, 4, 5, 6},     // A
      {1, 2, 3, 4, 5, 6},     // identical to A: must collide
      {100, 200, 300, 400},   // disjoint from A
      {100, 200, 300, 400},   // identical to the disjoint set
  };
  std::vector<uint32_t> groups =
      LshGroupColumns(ComputeMinHashSignatures(columns, options), options);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[2], groups[3]);
  EXPECT_NE(groups[0], groups[2]);
}

TEST(MinHashLshTest, SignatureAgreementTracksJaccard) {
  // With enough hash functions the fraction of agreeing MinHash components
  // approximates Jaccard: near-duplicate sets agree on most components,
  // disjoint sets on almost none (deterministic under the fixed seed).
  LshOptions options;
  options.num_hashes = 128;
  options.num_bands = 16;
  options.seed = 99;
  std::vector<uint32_t> base(40);
  std::iota(base.begin(), base.end(), 0);
  std::vector<uint32_t> similar = base;  // drop 2, add 2 => Jaccard ~ 0.9
  similar[0] = 1000;
  similar[1] = 1001;
  std::sort(similar.begin(), similar.end());
  std::vector<uint32_t> disjoint(40);
  std::iota(disjoint.begin(), disjoint.end(), 500);
  std::vector<std::vector<uint64_t>> sigs = ComputeMinHashSignatures(
      {base, similar, disjoint}, options);
  auto agreement = [&](size_t a, size_t b) {
    size_t agree = 0;
    for (size_t i = 0; i < options.num_hashes; ++i) {
      agree += sigs[a][i] == sigs[b][i];
    }
    return static_cast<double>(agree) / options.num_hashes;
  };
  EXPECT_GT(agreement(0, 1), 0.7);
  EXPECT_LT(agreement(0, 2), 0.2);
}

TEST(MinHashLshTest, ExactJaccardBasics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3, 4}, {3, 4, 5, 6}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
}

// ---------------------------------------------------------------------------
// Diversity selection (the kDiverseKsp pipeline).
// ---------------------------------------------------------------------------

Path MakePath(std::vector<VertexId> vertices, Weight distance) {
  Path p;
  p.vertices = std::move(vertices);
  p.distance = distance;
  return p;
}

TEST(DiversityTest, RouteEdgeJaccardMatchesHandComputation) {
  Path a = MakePath({0, 1, 2, 3}, 3);      // edges 01 12 23
  Path b = MakePath({0, 1, 2, 4, 3}, 4);   // edges 01 12 24 43
  Path c = MakePath({0, 5, 6, 3}, 4);      // disjoint from a
  // |a ∩ b| = 2 (01, 12); |a ∪ b| = 5.
  EXPECT_DOUBLE_EQ(RouteEdgeJaccard(a, b, /*directed=*/false), 0.4);
  EXPECT_DOUBLE_EQ(RouteEdgeJaccard(a, c, /*directed=*/false), 0.0);
  EXPECT_DOUBLE_EQ(RouteEdgeJaccard(a, a, /*directed=*/false), 1.0);
  // Undirected edge identity is orientation-free: the reverse route is the
  // same edge set.
  Path reversed = MakePath({3, 2, 1, 0}, 3);
  EXPECT_DOUBLE_EQ(RouteEdgeJaccard(a, reversed, /*directed=*/false), 1.0);
  EXPECT_DOUBLE_EQ(RouteEdgeJaccard(a, reversed, /*directed=*/true), 0.0);
}

TEST(DiversityTest, GreedySelectionRespectsThetaAndOrder) {
  std::vector<Path> candidates = {
      MakePath({0, 1, 2, 3}, 3.0),     // kept (first)
      MakePath({0, 1, 2, 4, 3}, 3.5),  // sim 0.4 with #0
      MakePath({0, 5, 6, 3}, 4.0),     // disjoint
  };
  DiversityOptions options;
  options.theta = 0.3;
  std::vector<Path> kept;
  DiverseStats stats = SelectDiversePaths(candidates, /*k=*/2,
                                          /*directed=*/false, options, &kept);
  // θ = 0.3 rejects the 0.4-similar deviation and keeps the disjoint route.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].vertices, candidates[0].vertices);
  EXPECT_EQ(kept[1].vertices, candidates[2].vertices);
  EXPECT_EQ(stats.candidates, 3u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.filtered, 1u);
  EXPECT_LE(stats.max_pairwise_similarity, options.theta);
  EXPECT_LE(stats.mean_pairwise_similarity, stats.max_pairwise_similarity);

  // θ = 1 disables filtering: the kept set is the k-prefix of the
  // candidate list.
  options.theta = 1.0;
  DiverseStats unfiltered = SelectDiversePaths(
      candidates, /*k=*/2, /*directed=*/false, options, &kept);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].vertices, candidates[0].vertices);
  EXPECT_EQ(kept[1].vertices, candidates[1].vertices);
  EXPECT_EQ(unfiltered.filtered, 1u);  // truncated, not similarity-filtered
}

TEST(DiversityTest, SelectionIsDeterministicAndPure) {
  // The pipeline is a pure function of (candidates, k, options): repeated
  // calls must agree bit for bit — the property that keeps sharded diverse
  // answers identical to unsharded ones.
  std::vector<Path> candidates;
  uint64_t state = 77;
  for (int c = 0; c < 12; ++c) {
    std::vector<VertexId> route{0};
    VertexId v = 1 + static_cast<VertexId>(SplitMix64(state) % 5);
    while (route.size() < 6 && v != 0) {
      route.push_back(v);
      v = static_cast<VertexId>(SplitMix64(state) % 12);
    }
    route.push_back(20);
    candidates.push_back(
        MakePath(route, 3.0 + 0.25 * static_cast<double>(c)));
  }
  DiversityOptions options;
  options.theta = 0.5;
  std::vector<Path> kept_a, kept_b;
  DiverseStats a = SelectDiversePaths(candidates, 4, false, options, &kept_a);
  DiverseStats b = SelectDiversePaths(candidates, 4, false, options, &kept_b);
  ASSERT_EQ(kept_a.size(), kept_b.size());
  for (size_t i = 0; i < kept_a.size(); ++i) {
    EXPECT_EQ(kept_a[i].vertices, kept_b[i].vertices);
    EXPECT_EQ(kept_a[i].distance, kept_b[i].distance);
  }
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.signature_rejections, b.signature_rejections);
  EXPECT_EQ(a.exact_checks, b.exact_checks);
  EXPECT_EQ(a.ep_raw_entries, b.ep_raw_entries);
  EXPECT_EQ(a.ep_path_nodes, b.ep_path_nodes);
  // Every kept route is one of the candidates, in candidate order.
  size_t cursor = 0;
  for (const Path& p : kept_a) {
    while (cursor < candidates.size() &&
           candidates[cursor].vertices != p.vertices) {
      ++cursor;
    }
    ASSERT_LT(cursor, candidates.size()) << "kept route not a candidate";
    ++cursor;
  }
}

TEST(DiversityTest, EpIndexCompressionStatsAreConsistent) {
  // Heavily overlapping candidates: the per-query EP-Index must report
  // raw incidences >= MFP path nodes (the trees can only compact).
  std::vector<Path> candidates = {
      MakePath({0, 1, 2, 3, 4}, 4.0), MakePath({0, 1, 2, 3, 5, 4}, 4.5),
      MakePath({0, 1, 2, 6, 4}, 5.0), MakePath({0, 7, 2, 3, 4}, 5.5)};
  DiversityOptions options;
  options.theta = 1.0;  // keep everything; we only probe the EP stats
  std::vector<Path> kept;
  DiverseStats stats =
      SelectDiversePaths(candidates, 4, /*directed=*/false, options, &kept);
  EXPECT_EQ(stats.kept, 4u);
  EXPECT_GT(stats.ep_raw_entries, 0u);
  EXPECT_LE(stats.ep_path_nodes, stats.ep_raw_entries);
  EXPECT_GT(stats.lsh_groups, 0u);
  EXPECT_GT(stats.mfp_compression_ratio, 0.0);
  EXPECT_LE(stats.mfp_compression_ratio, 1.0);
}

TEST(DiversityTest, EdgeCases) {
  DiversityOptions options;
  std::vector<Path> kept;
  DiverseStats empty =
      SelectDiversePaths({}, 3, /*directed=*/false, options, &kept);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(empty.candidates, 0u);
  EXPECT_EQ(empty.kept, 0u);

  // Fewer candidates than k: keep them all (subject to θ).
  options.theta = 1.0;
  std::vector<Path> two = {MakePath({0, 1, 2}, 2.0),
                           MakePath({0, 3, 2}, 2.5)};
  DiverseStats stats =
      SelectDiversePaths(two, 5, /*directed=*/false, options, &kept);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_EQ(stats.filtered, 0u);
}

}  // namespace
}  // namespace kspdg
