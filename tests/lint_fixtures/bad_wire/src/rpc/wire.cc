// Fixture: FooRequest encodes two U32 fields but decodes only one — the
// classic added-a-field-to-one-side bug wire-symmetry exists to catch.
#include "rpc/wire.h"

namespace kspdg {

std::string FooRequest::Encode() const {
  WireWriter w;
  w.U32(x);
  w.U32(y);
  return w.Take();
}

Status FooRequest::Decode(std::string_view payload, FooRequest* out) {
  WireReader r(payload);
  KSPDG_RETURN_NOT_OK(r.U32(&out->x));
  return r.ExpectEnd();
}

// And an encoder with no decoder at all.
std::string OrphanReply::Encode() const {
  WireWriter w;
  w.U64(epoch);
  return w.Take();
}

}  // namespace kspdg
