// Fixture: a counter without the `_total` suffix must trip metric-names.
#include "obs/metrics.h"

namespace kspdg {

void Register(MetricsRegistry& registry) {
  (void)registry.GetCounter("queries_ok");
}

}  // namespace kspdg
