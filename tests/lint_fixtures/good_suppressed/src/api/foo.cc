// Fixture: every violation here carries an allow() comment, so the linter
// must exit 0 — this is the suppression-path self-test.
#include <mutex>
#include <thread>

namespace kspdg {

struct Foo {
  std::mutex mu;  // kspdg-lint: allow(raw-mutex)
};

inline void Spawn() {
  // kspdg-lint: allow(raw-thread) — previous-line form.
  std::thread t([] {});
  t.join();  // no std:: token on this line; nothing to allow
}

}  // namespace kspdg
