// Fixture: a naked std::mutex outside src/core/ must trip raw-mutex.
#include <mutex>

namespace kspdg {

struct Foo {
  std::mutex mu;
};

}  // namespace kspdg
