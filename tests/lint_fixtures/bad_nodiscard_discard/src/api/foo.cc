// Fixture: a Submit result dropped on the floor as a bare statement must
// trip nodiscard. The assignment and the (void) cast below are both legal.
#include "core/submission_queue.h"

namespace kspdg {

void Drive(SubmissionQueue& queue) {
  bool accepted = queue.Submit([] {});
  (void)accepted;
  (void)queue.Submit([] {});
  queue.Submit([] {});
}

}  // namespace kspdg
