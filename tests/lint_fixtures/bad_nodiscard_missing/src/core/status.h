// Fixture: Status/Result without class-level [[nodiscard]] must trip
// nodiscard — the whole discard-checking scheme hangs off these two
// attributes.
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

namespace kspdg {

class Status {};

template <typename T>
class Result {};

}  // namespace kspdg

#endif  // FIXTURE_STATUS_H_
