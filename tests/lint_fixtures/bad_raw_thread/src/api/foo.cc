// Fixture: a naked std::thread outside src/core/ must trip raw-thread.
// Note std::thread::hardware_concurrency() below is legal — it queries the
// machine, it does not spawn.
#include <thread>

namespace kspdg {

inline unsigned Cores() { return std::thread::hardware_concurrency(); }

inline void Spawn() {
  std::thread t([] {});
  t.join();
}

}  // namespace kspdg
