// Fixture: a CamelCase metric name must trip metric-names.
#include "obs/metrics.h"

namespace kspdg {

void Register(MetricsRegistry& registry) {
  (void)registry.GetGauge("QueueDepth");
}

}  // namespace kspdg
