// Tests for the sharded serving layer (src/shard + partition shard
// assignment): shard-vs-unsharded parity on every backend (sharding may
// move work, never change answers), cross-shard correctness after traffic
// batches, the global-epoch protocol, and a threaded scatter/gather +
// update interleave (the tsan job watches the per-shard lock discipline).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/routing_options.h"
#include "api/routing_service.h"
#include "graph/generators.h"
#include "graph/traffic_model.h"
#include "ksp/path.h"
#include "parity_harness.h"
#include "partition/shard_assignment.h"
#include "shard/sharded_routing_service.h"
#include "workload/bench_runner.h"

namespace kspdg {
namespace {

// ---------------------------------------------------------------------------
// Shard assignment.
// ---------------------------------------------------------------------------

TEST(ShardAssignmentTest, CoversEverySubgraphExactlyOnce) {
  Graph g = MakeRandomConnected(60, 80, 1, 9, 11);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/12, /*num_shards=*/3);
  ASSERT_TRUE(service != nullptr);
  const ShardAssignment& assignment = service->assignment();
  const size_t num_subgraphs = service->dtlp().NumSubgraphs();
  ASSERT_EQ(assignment.shard_of_subgraph.size(), num_subgraphs);

  std::vector<size_t> seen(num_subgraphs, 0);
  for (ShardId shard = 0; shard < assignment.num_shards; ++shard) {
    for (SubgraphId sgid : assignment.subgraphs_of_shard[shard]) {
      ASSERT_LT(sgid, num_subgraphs);
      EXPECT_EQ(assignment.shard_of_subgraph[sgid], shard);
      ++seen[sgid];
    }
    EXPECT_TRUE(std::is_sorted(assignment.subgraphs_of_shard[shard].begin(),
                               assignment.subgraphs_of_shard[shard].end()));
  }
  for (size_t sgid = 0; sgid < num_subgraphs; ++sgid) {
    EXPECT_EQ(seen[sgid], 1u) << "subgraph " << sgid;
  }
}

TEST(ShardAssignmentTest, BalancesVerticesAcrossShards) {
  Graph g = MakeRandomConnected(120, 150, 1, 9, 13);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/16, /*num_shards=*/4);
  ASSERT_TRUE(service != nullptr);
  const ShardAssignment& assignment = service->assignment();
  size_t total = std::accumulate(assignment.vertices_of_shard.begin(),
                                 assignment.vertices_of_shard.end(),
                                 size_t{0});
  // LPT bound: no shard may exceed the ideal share by more than the largest
  // single subgraph (z vertices).
  size_t ideal = total / assignment.num_shards;
  for (ShardId shard = 0; shard < assignment.num_shards; ++shard) {
    EXPECT_LE(assignment.vertices_of_shard[shard], ideal + 16)
        << "shard " << shard << " of " << total << " total";
  }
}

TEST(ShardAssignmentTest, RejectsZeroShardsAndToleratesSurplusShards) {
  Graph g = MakeRandomConnected(20, 24, 1, 9, 17);
  Result<std::unique_ptr<Dtlp>> dtlp = Dtlp::Build(g, {});
  ASSERT_TRUE(dtlp.ok());
  EXPECT_EQ(AssignShards(dtlp.value()->partition(), 0).status().code(),
            StatusCode::kInvalidArgument);

  // More shards than subgraphs: the surplus shards own nothing but the
  // assignment still covers everything.
  size_t num_subgraphs = dtlp.value()->NumSubgraphs();
  Result<ShardAssignment> wide = AssignShards(
      dtlp.value()->partition(), static_cast<uint32_t>(num_subgraphs + 5));
  ASSERT_TRUE(wide.ok());
  size_t owned = 0;
  for (const std::vector<SubgraphId>& list :
       wide.value().subgraphs_of_shard) {
    owned += list.size();
  }
  EXPECT_EQ(owned, num_subgraphs);
}

TEST(ShardAssignmentTest, DeterministicForFixedInputs) {
  Graph g1 = MakeRandomConnected(50, 60, 1, 9, 19);
  Graph g2 = g1;
  std::unique_ptr<ShardedRoutingService> a =
      MustCreateSharded(std::move(g1), /*z=*/10, /*num_shards=*/3);
  std::unique_ptr<ShardedRoutingService> b =
      MustCreateSharded(std::move(g2), /*z=*/10, /*num_shards=*/3);
  ASSERT_TRUE(a != nullptr && b != nullptr);
  EXPECT_EQ(a->assignment().shard_of_subgraph,
            b->assignment().shard_of_subgraph);
}

// ---------------------------------------------------------------------------
// Sharded-vs-unsharded parity.
// ---------------------------------------------------------------------------

TEST(ShardedRoutingServiceTest, ParityWithUnshardedOnAllBackends) {
  const char* backends[] = {kBackendKspDg, kBackendYen, kBackendFindKsp,
                            kBackendDijkstra};
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      Graph g = MakeRandomConnected(40, 52, 1, 9, seed * 23 + 5);
      Graph g_sharded = g;
      std::unique_ptr<RoutingService> plain =
          MustCreatePlain(std::move(g), /*z=*/10);
      std::unique_ptr<ShardedRoutingService> sharded =
          MustCreateSharded(std::move(g_sharded), /*z=*/10, num_shards);
      ASSERT_TRUE(plain != nullptr && sharded != nullptr);

      for (const char* backend : backends) {
        uint32_t k = backend == kBackendDijkstra ? 1 : 6;
        for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
                 {0, 39}, {3, 31}, {17, 22}}) {
          ExpectQueryParity(
              *sharded, *plain, MakeRequest(s, t, backend, k),
              std::string(backend) + " shards=" + std::to_string(num_shards) +
                  " seed=" + std::to_string(seed) + " q=" + std::to_string(s) +
                  "->" + std::to_string(t));
        }
      }
    }
  }
}

TEST(ShardedRoutingServiceTest, CrossShardParityAfterTrafficBatches) {
  for (uint32_t num_shards : {2u, 4u}) {
    Graph g = MakeRandomConnected(48, 60, 2, 12, 101);
    Graph g_sharded = g;
    std::unique_ptr<RoutingService> plain =
        MustCreatePlain(std::move(g), /*z=*/12);
    std::unique_ptr<ShardedRoutingService> sharded =
        MustCreateSharded(std::move(g_sharded), /*z=*/12, num_shards);
    ASSERT_TRUE(plain != nullptr && sharded != nullptr);

    TrafficModelOptions traffic_options;
    traffic_options.alpha = 0.5;
    traffic_options.seed = 31;
    TrafficModel traffic(plain->graph(), traffic_options);
    for (int step = 0; step < 5; ++step) {
      std::vector<WeightUpdate> batch = traffic.NextBatch();
      Result<TrafficBatchResult> plain_applied =
          plain->ApplyTrafficBatch(batch);
      Result<TrafficBatchResult> sharded_applied =
          sharded->ApplyTrafficBatch(batch);
      ASSERT_TRUE(plain_applied.ok()) << plain_applied.status().ToString();
      ASSERT_TRUE(sharded_applied.ok()) << sharded_applied.status().ToString();
      // Identical epochs and identical Algorithm 2 maintenance statistics:
      // the sharded fan-out composes the same per-subgraph primitives.
      EXPECT_EQ(sharded_applied.value().epoch, plain_applied.value().epoch);
      EXPECT_EQ(sharded_applied.value().dtlp.updates_applied,
                plain_applied.value().dtlp.updates_applied);
      EXPECT_EQ(sharded_applied.value().dtlp.subgraphs_touched,
                plain_applied.value().dtlp.subgraphs_touched);
      EXPECT_EQ(sharded_applied.value().dtlp.skeleton_pairs_refreshed,
                plain_applied.value().dtlp.skeleton_pairs_refreshed);

      for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
               {1, 46}, {7, 40}, {13, 29}}) {
        for (const char* backend : {kBackendKspDg, kBackendYen}) {
          RouteRequest request = MakeRequest(s, t, backend, 5);
          Result<RouteResponse> want = plain->Query(request);
          Result<RouteResponse> got = sharded->Query(request);
          ASSERT_TRUE(want.ok() && got.ok());
          EXPECT_EQ(got.value().epoch, static_cast<uint64_t>(step + 1));
          ExpectIdenticalPaths(got.value().paths, want.value().paths,
                               std::string(backend) + " step " +
                                   std::to_string(step) + " shards " +
                                   std::to_string(num_shards));
          // Distances reflect the current snapshot exactly.
          for (const Path& p : got.value().paths) {
            EXPECT_NEAR(RouteDistance(sharded->graph(), p.vertices),
                        p.distance, 1e-9);
          }
        }
      }
    }
    EXPECT_EQ(sharded->CurrentEpoch(), 5u);
    EXPECT_EQ(plain->CurrentEpoch(), 5u);
  }
}

// ---------------------------------------------------------------------------
// Service semantics.
// ---------------------------------------------------------------------------

TEST(ShardedRoutingServiceTest, RejectsInvalidRequestsLikeUnsharded) {
  Graph g = MakeRandomConnected(16, 14, 1, 9, 43);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);
  EXPECT_EQ(service->Query(MakeRequest(0, 5, kBackendYen, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(0, 99, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(MakeRequest(4, 4, kBackendYen, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service->Query(MakeRequest(0, 5, "no-such-backend", 2)).status().code(),
      StatusCode::kNotFound);
  ShardedServiceCounters counters = service->counters();
  EXPECT_EQ(counters.base.queries_ok, 0u);
  EXPECT_EQ(counters.base.queries_rejected, 4u);
}

TEST(ShardedRoutingServiceTest, CreateRejectsZeroShards) {
  Graph g = MakeRandomConnected(12, 10, 1, 9, 47);
  ShardedRoutingServiceOptions options;
  options.num_shards = 0;
  EXPECT_EQ(
      ShardedRoutingService::Create(std::move(g), options).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ShardedRoutingServiceTest, TrafficBatchValidationIsAtomic) {
  Graph g = MakeRandomConnected(16, 14, 2, 9, 53);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);
  Weight before = service->graph().ForwardWeight(0);
  std::vector<WeightUpdate> bad_edge = {{0, 5.0, 5.0},
                                        {kInvalidEdge, 5.0, 5.0}};
  EXPECT_EQ(service->ApplyTrafficBatch(bad_edge).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<WeightUpdate> bad_weight = {{0, -1.0, 5.0}};
  EXPECT_EQ(service->ApplyTrafficBatch(bad_weight).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(service->graph().ForwardWeight(0), before);
  EXPECT_EQ(service->CurrentEpoch(), 0u);
}

TEST(ShardedRoutingServiceTest, ShardInfosAndRoutingCountersAreCoherent) {
  Graph g = MakeRandomConnected(60, 80, 1, 9, 59);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/10, /*num_shards=*/3);
  ASSERT_TRUE(service != nullptr);

  // A spread of KSP-DG queries must exercise the partial routing.
  for (VertexId s = 0; s < 12; ++s) {
    RouteRequest request = MakeRequest(s, 59 - s, kBackendKspDg, 4);
    ASSERT_TRUE(service->Query(request).ok());
  }

  std::vector<ShardInfo> infos = service->ShardInfos();
  ASSERT_EQ(infos.size(), 3u);
  size_t subgraphs = 0;
  uint64_t shard_partials = 0;
  for (const ShardInfo& info : infos) {
    subgraphs += info.subgraphs;
    shard_partials += info.partial_requests;
    EXPECT_EQ(info.epoch, service->CurrentEpoch()) << info.shard;
    EXPECT_GE(info.yen_runs, info.partial_requests) << info.shard;
  }
  EXPECT_EQ(subgraphs, service->dtlp().NumSubgraphs());

  ShardedServiceCounters counters = service->counters();
  EXPECT_EQ(counters.base.queries_ok, 12u);
  EXPECT_EQ(counters.single_shard_queries + counters.cross_shard_queries,
            12u);
  EXPECT_GT(counters.direct_partial_requests +
                counters.scattered_partial_requests,
            0u);
  // Every boundary-pair request landed on >= 1 shard; scattered requests
  // land on >= 2, so the shard-side tally must be at least the query-side
  // request count.
  EXPECT_GE(shard_partials, counters.direct_partial_requests +
                                counters.scattered_partial_requests);
}

TEST(ShardedRoutingServiceTest, CustomSolversPlugIntoShardedService) {
  class EmptySolver : public KspSolver {
   public:
    std::string_view name() const override { return "empty"; }
    Result<KspQueryResult> Solve(const SolverInput&,
                                 SolverScratch*) const override {
      return KspQueryResult{};
    }
  };
  Graph g = MakeRandomConnected(12, 10, 1, 9, 61);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);
  ASSERT_TRUE(service->RegisterSolver(std::make_unique<EmptySolver>()).ok());
  Result<RouteResponse> response = service->Query(MakeRequest(0, 9, "empty", 2));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().paths.empty());
  // Once the first query has been served, the registry is frozen — the
  // documented "before serving traffic" contract is now enforced.
  class LateSolver : public KspSolver {
   public:
    std::string_view name() const override { return "late"; }
    Result<KspQueryResult> Solve(const SolverInput&,
                                 SolverScratch*) const override {
      return KspQueryResult{};
    }
  };
  EXPECT_EQ(service->RegisterSolver(std::make_unique<LateSolver>()).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Multi-kind parity: the kDiverseKsp filter and the cands backend must be
// invisible to sharding — byte-identical answers at 1/2/4 shards, before
// and after traffic.
// ---------------------------------------------------------------------------

TEST(ShardedRoutingServiceTest, DiverseAndShortestPathParityWithUnsharded) {
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    Graph g = MakeRandomConnected(40, 54, 1, 9, 271);
    Graph g_sharded = g;
    std::unique_ptr<RoutingService> plain =
        MustCreatePlain(std::move(g), /*z=*/10);
    std::unique_ptr<ShardedRoutingService> sharded =
        MustCreateSharded(std::move(g_sharded), /*z=*/10, num_shards);
    ASSERT_TRUE(plain != nullptr && sharded != nullptr);

    TrafficModelOptions traffic_options;
    traffic_options.alpha = 0.4;
    traffic_options.seed = 53;
    TrafficModel traffic(plain->graph(), traffic_options);

    for (int step = 0; step < 3; ++step) {
      if (step > 0) {
        std::vector<WeightUpdate> batch = traffic.NextBatch();
        ASSERT_TRUE(plain->ApplyTrafficBatch(batch).ok());
        ASSERT_TRUE(sharded->ApplyTrafficBatch(batch).ok());
      }
      for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
               {0, 39}, {5, 33}, {11, 26}}) {
        // Diversity-aware KSP through the kspdg backend (the interesting
        // one: its candidates flow through the scatter/gather partials).
        RouteRequest diverse;
        diverse.kind = QueryKind::kDiverseKsp;
        diverse.source = s;
        diverse.target = t;
        diverse.options.k = 3;
        diverse.options.diversity_theta = 0.6;
        Result<RouteResponse> want = plain->Query(diverse);
        Result<RouteResponse> got = sharded->Query(diverse);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectIdenticalPaths(got.value().paths, want.value().paths,
                             "diverse shards=" + std::to_string(num_shards) +
                                 " step=" + std::to_string(step));
        ASSERT_TRUE(want.value().diverse.has_value());
        ASSERT_TRUE(got.value().diverse.has_value());
        EXPECT_EQ(got.value().diverse->kept, want.value().diverse->kept);
        EXPECT_EQ(got.value().diverse->candidates,
                  want.value().diverse->candidates);
        EXPECT_EQ(got.value().diverse->ep_path_nodes,
                  want.value().diverse->ep_path_nodes);
        EXPECT_EQ(got.value().diverse->max_pairwise_similarity,
                  want.value().diverse->max_pairwise_similarity);

        // Single shortest path through the coordinator-owned cands index.
        RouteRequest shortest;
        shortest.kind = QueryKind::kShortestPath;
        shortest.source = s;
        shortest.target = t;
        Result<RouteResponse> want_sp = plain->Query(shortest);
        Result<RouteResponse> got_sp = sharded->Query(shortest);
        ASSERT_TRUE(want_sp.ok() && got_sp.ok());
        EXPECT_EQ(got_sp.value().backend, kBackendCands);
        ExpectIdenticalPaths(got_sp.value().paths, want_sp.value().paths,
                             "cands shards=" + std::to_string(num_shards) +
                                 " step=" + std::to_string(step));
      }
    }
  }
}

// Batched diverse queries must equal unsharded sequential ones too (the
// filter runs inside the batch worker, after the scatter/gather solve).
TEST(ShardedQueryBatchTest, DiverseBatchParityWithUnshardedSequential) {
  Graph g = MakeRandomConnected(36, 48, 1, 9, 283);
  Graph g_sharded = g;
  std::unique_ptr<RoutingService> plain =
      MustCreatePlain(std::move(g), /*z=*/10);
  std::unique_ptr<ShardedRoutingService> sharded =
      MustCreateSharded(std::move(g_sharded), /*z=*/10, /*num_shards=*/2);
  ASSERT_TRUE(plain != nullptr && sharded != nullptr);

  std::vector<RouteRequest> requests;
  for (VertexId s = 0; s < 6; ++s) {
    RouteRequest request;
    request.kind = QueryKind::kDiverseKsp;
    request.source = s;
    request.target = 35 - s;
    request.options.k = 3;
    request.options.backend = s % 2 == 0 ? kBackendKspDg : kBackendYen;
    requests.push_back(request);
  }
  Result<RouteBatchResponse> batched = sharded->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched.value().num_ok, requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<RouteResponse> want = plain->Query(requests[i]);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(batched.value().items[i].response.paths,
                         want.value().paths,
                         "diverse batch item " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Threaded scatter/gather + update interleave (tsan watches the per-shard
// lock protocol; the uniform-weight identity catches torn snapshots).
// ---------------------------------------------------------------------------

TEST(ShardedRoutingServiceTest, ConcurrentScatterGatherAndUpdatesStayUniform) {
  Graph g = MakeRandomConnected(40, 50, 1, 1, 67);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<ShardedRoutingService> service = MustCreateSharded(
      std::move(g), /*z=*/10, /*num_shards=*/4, /*apply_threads=*/2);
  ASSERT_TRUE(service != nullptr);

  constexpr uint64_t kBatches = 10;
  auto level = [](uint64_t epoch) {
    return 1.0 + 0.25 * static_cast<double>(epoch);
  };

  std::atomic<bool> done{false};
  std::atomic<size_t> checks{0};
  std::atomic<size_t> failures{0};

  auto reader = [&](unsigned thread_seed) {
    const char* backends[] = {kBackendKspDg, kBackendKspDg, kBackendYen};
    uint64_t last_epoch = 0;
    size_t i = thread_seed;
    while (!done.load(std::memory_order_acquire)) {
      VertexId s = static_cast<VertexId>(i * 7 % 40);
      VertexId t = static_cast<VertexId>((i * 13 + 19) % 40);
      ++i;
      if (s == t) continue;
      Result<RouteResponse> response =
          service->Query(MakeRequest(s, t, backends[i % 3], 4));
      if (!response.ok()) {
        failures.fetch_add(1);
        continue;
      }
      const RouteResponse& r = response.value();
      if (r.epoch < last_epoch) failures.fetch_add(1);  // must be monotone
      last_epoch = r.epoch;
      const double w = level(r.epoch);
      for (const Path& p : r.paths) {
        const double want = w * static_cast<double>(p.NumEdges());
        if (std::abs(p.distance - want) > 1e-6 * (1.0 + want)) {
          failures.fetch_add(1);
        }
        checks.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 3; ++r) readers.emplace_back(reader, r + 1);

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<WeightUpdate> updates;
    updates.reserve(num_edges);
    const double w = level(batch);
    for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, w, w});
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(updates);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied.value().epoch, batch);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checks.load(), 0u) << "readers never overlapped the updates";
  EXPECT_EQ(service->CurrentEpoch(), kBatches);
  ShardedServiceCounters counters = service->counters();
  EXPECT_EQ(counters.base.batches_applied, kBatches);
  EXPECT_EQ(counters.base.updates_applied, kBatches * num_edges);
}

// ---------------------------------------------------------------------------
// Sharded QueryBatch: whole batches answered at one multi-shard snapshot,
// byte-identical to asking an unsharded service sequentially.
// ---------------------------------------------------------------------------

TEST(ShardedQueryBatchTest, ParityWithUnshardedSequentialOnAllBackends) {
  const char* backends[] = {kBackendKspDg, kBackendYen, kBackendFindKsp,
                            kBackendDijkstra};
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    for (size_t batch_size : {size_t{1}, size_t{8}}) {
      Graph g = MakeRandomConnected(40, 52, 1, 9, 71);
      Graph g_sharded = g;
      std::unique_ptr<RoutingService> plain =
          MustCreatePlain(std::move(g), /*z=*/10);
      std::unique_ptr<ShardedRoutingService> sharded =
          MustCreateSharded(std::move(g_sharded), /*z=*/10, num_shards);
      ASSERT_TRUE(plain != nullptr && sharded != nullptr);

      // Move both services off epoch 0 so the parity also covers updated
      // weights (identical batch => identical snapshots).
      TrafficModelOptions traffic_options;
      traffic_options.alpha = 0.4;
      traffic_options.seed = 77;
      TrafficModel traffic(plain->graph(), traffic_options);
      std::vector<WeightUpdate> updates = traffic.NextBatch();
      ASSERT_TRUE(plain->ApplyTrafficBatch(updates).ok());
      ASSERT_TRUE(sharded->ApplyTrafficBatch(updates).ok());

      std::vector<RouteRequest> requests;
      for (const char* backend : backends) {
        uint32_t k = backend == kBackendDijkstra ? 1 : 5;
        for (const auto& [s, t] : std::vector<std::pair<VertexId, VertexId>>{
                 {0, 39}, {3, 31}, {17, 22}, {5, 28}}) {
          requests.push_back(MakeRequest(s, t, backend, k));
        }
      }
      std::vector<std::vector<Path>> expected;
      for (const RouteRequest& request : requests) {
        Result<RouteResponse> want = plain->Query(request);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        expected.push_back(std::move(want).value().paths);
      }

      size_t next = 0;
      for (size_t begin = 0; begin < requests.size(); begin += batch_size) {
        size_t count = std::min(batch_size, requests.size() - begin);
        Result<RouteBatchResponse> batched = sharded->QueryBatch(
            std::span<const RouteRequest>(requests.data() + begin, count));
        ASSERT_TRUE(batched.ok()) << batched.status().ToString();
        const RouteBatchResponse& b = batched.value();
        EXPECT_EQ(b.num_ok, count);
        EXPECT_EQ(b.epoch, 1u);
        for (const RouteBatchItem& item : b.items) {
          ASSERT_TRUE(item.status.ok()) << item.status.ToString();
          EXPECT_EQ(item.response.epoch, b.epoch);
          ExpectIdenticalPaths(
              item.response.paths, expected[next],
              "shards=" + std::to_string(num_shards) + " batch_size=" +
                  std::to_string(batch_size) + " item " +
                  std::to_string(next));
          ++next;
        }
      }
      EXPECT_EQ(next, requests.size());
    }
  }
}

TEST(ShardedQueryBatchTest, MixedValidAndInvalidRequests) {
  Graph g = MakeRandomConnected(20, 24, 1, 9, 73);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests;
  requests.push_back(MakeRequest(0, 19, kBackendYen, 3));        // ok
  requests.push_back(MakeRequest(0, 19, kBackendYen, 0));        // k = 0
  requests.push_back(MakeRequest(0, 99, kBackendYen, 2));        // range
  requests.push_back(MakeRequest(0, 19, "no-such-backend", 2));  // name
  requests.push_back(MakeRequest(4, 4, kBackendYen, 2));         // s == t
  requests.push_back(MakeRequest(2, 17, kBackendKspDg, 4));      // ok

  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  ASSERT_EQ(b.items.size(), 6u);
  EXPECT_EQ(b.num_ok, 2u);
  EXPECT_EQ(b.num_rejected, 4u);
  EXPECT_TRUE(b.items[0].status.ok());
  EXPECT_EQ(b.items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.items[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.items[3].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.items[4].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(b.items[5].status.ok());

  ShardedServiceCounters counters = service->counters();
  EXPECT_EQ(counters.base.queries_ok, 2u);
  EXPECT_EQ(counters.base.queries_rejected, 4u);
}

// With one worker, a duplicate KSP-DG query inside one batch must be served
// from the per-(shard, worker) partial caches: its solve performs zero
// fresh partial-KSP computations, and the shard-side hit counters move.
TEST(ShardedQueryBatchTest, PerShardScratchServesDuplicateInBatch) {
  Graph g = MakeRandomConnected(26, 32, 1, 9, 79);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2,
                        /*apply_threads=*/0, /*batch_threads=*/1);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 25, kBackendKspDg, 5),
                                      MakeRequest(0, 25, kBackendKspDg, 5)};
  Result<RouteBatchResponse> batched = service->QueryBatch(requests);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const RouteBatchResponse& b = batched.value();
  ASSERT_EQ(b.num_ok, 2u);
  ASSERT_FALSE(b.items[0].response.paths.empty());
  ExpectIdenticalPaths(b.items[1].response.paths, b.items[0].response.paths,
                       "duplicate query in one sharded batch");
  const KspDgQueryStats& first = b.items[0].response.stats.engine;
  const KspDgQueryStats& second = b.items[1].response.stats.engine;
  ASSERT_GT(first.partial_ksp_computations, 0u);
  EXPECT_EQ(second.partial_ksp_computations, 0u)
      << "second identical query should be fully served from the per-shard "
         "partial caches";
  EXPECT_GT(service->counters().partial_cache_hits, 0u);
  uint64_t shard_hits = 0;
  for (const ShardInfo& info : service->ShardInfos()) {
    shard_hits += info.partial_cache_hits;
  }
  EXPECT_EQ(shard_hits, service->counters().partial_cache_hits);

  // The caches persist across batches while the epoch holds still: a later
  // batch repeating the query is served warm as well.
  Result<RouteBatchResponse> later =
      service->QueryBatch(std::span<const RouteRequest>(requests.data(), 1));
  ASSERT_TRUE(later.ok()) << later.status().ToString();
  ASSERT_EQ(later.value().num_ok, 1u);
  EXPECT_EQ(
      later.value().items[0].response.stats.engine.partial_ksp_computations,
      0u);
}

// A traffic batch bumps every shard's epoch; the per-shard caches must be
// flushed — stale partials would answer with the old epoch's distances.
TEST(ShardedQueryBatchTest, PerShardCachesFlushWhenShardEpochBumps) {
  Graph g = MakeRandomConnected(26, 32, 1, 1, 83);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2,
                        /*apply_threads=*/0, /*batch_threads=*/1);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 25, kBackendKspDg, 4),
                                      MakeRequest(0, 25, kBackendYen, 4)};
  Result<RouteBatchResponse> before = service->QueryBatch(requests);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before.value().num_ok, 2u);

  // Double every weight; all path distances must exactly double.
  std::vector<WeightUpdate> updates;
  updates.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, 2.0, 2.0});
  ASSERT_TRUE(service->ApplyTrafficBatch(updates).ok());

  Result<RouteBatchResponse> after = service->QueryBatch(requests);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().num_ok, 2u);
  EXPECT_EQ(after.value().epoch, before.value().epoch + 1);
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::vector<Path>& old_paths =
        before.value().items[i].response.paths;
    const std::vector<Path>& new_paths = after.value().items[i].response.paths;
    ASSERT_EQ(new_paths.size(), old_paths.size()) << i;
    for (size_t p = 0; p < new_paths.size(); ++p) {
      EXPECT_NEAR(new_paths[p].distance, 2.0 * old_paths[p].distance, 1e-7)
          << "item " << i << " rank " << p;
    }
  }
}

// A traffic batch touching only ONE shard's subgraphs must not flush the
// other shards' caches (flush is keyed on the shard's weights stamp, not
// the published epoch) — and the retained entries must still produce
// answers byte-identical to a fresh unsharded service at the new snapshot.
TEST(ShardedQueryBatchTest, UntouchedShardsKeepTheirCachesAcrossTraffic) {
  Graph g = MakeRandomConnected(48, 60, 1, 9, 91);
  Graph g_plain = g;
  std::unique_ptr<ShardedRoutingService> sharded =
      MustCreateSharded(std::move(g), /*z=*/10, /*num_shards=*/3,
                        /*apply_threads=*/0, /*batch_threads=*/1);
  std::unique_ptr<RoutingService> plain =
      MustCreatePlain(std::move(g_plain), /*z=*/10);
  ASSERT_TRUE(sharded != nullptr && plain != nullptr);

  // Warm the per-shard caches with a spread of KSP-DG queries.
  std::vector<RouteRequest> requests;
  for (VertexId s = 0; s < 8; ++s) {
    requests.push_back(MakeRequest(s, 47 - s, kBackendKspDg, 4));
  }
  ASSERT_TRUE(sharded->QueryBatch(requests).ok());

  // Re-apply ONE edge's current weights: the epoch advances and exactly
  // one shard's slice is written, but every weight stays bit-identical —
  // so the repeat batch requests exactly the same boundary pairs, and any
  // fresh computation on an untouched shard can only mean its cache was
  // wrongly flushed.
  const Partition& partition = sharded->dtlp().partition();
  EdgeId edge = 0;
  SubgraphId owner = partition.subgraph_of_edge[edge];
  ASSERT_NE(owner, kInvalidSubgraph);
  ShardId touched_shard = sharded->assignment().shard_of_subgraph[owner];
  std::vector<WeightUpdate> noop = {{edge, sharded->graph().ForwardWeight(edge),
                                     sharded->graph().BackwardWeight(edge)}};
  ASSERT_TRUE(sharded->ApplyTrafficBatch(noop).ok());
  EXPECT_EQ(sharded->CurrentEpoch(), 1u);

  std::vector<ShardInfo> before = sharded->ShardInfos();
  Result<RouteBatchResponse> repeat = sharded->QueryBatch(requests);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  ASSERT_EQ(repeat.value().num_ok, requests.size());
  std::vector<ShardInfo> after_noop = sharded->ShardInfos();
  for (const ShardInfo& info : after_noop) {
    if (info.shard == touched_shard) continue;
    EXPECT_EQ(info.partial_requests, before[info.shard].partial_requests)
        << "shard " << info.shard
        << " recomputed partials although its slice never changed";
  }

  // A real weight change on the same shard: parity against an unsharded
  // service proves the retained entries on untouched shards are not stale.
  std::vector<WeightUpdate> update = {{edge, 7.5, 7.5}};
  ASSERT_TRUE(sharded->ApplyTrafficBatch(update).ok());
  ASSERT_TRUE(plain->ApplyTrafficBatch(noop).ok());
  ASSERT_TRUE(plain->ApplyTrafficBatch(update).ok());
  Result<RouteBatchResponse> after = sharded->QueryBatch(requests);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().num_ok, requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<RouteResponse> want = plain->Query(requests[i]);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalPaths(after.value().items[i].response.paths,
                         want.value().paths,
                         "post-update item " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Async submission: SubmitBatch tickets complete under concurrent traffic
// batches and every answered batch stays snapshot-uniform (the tsan job
// repeats all *Concurrent* tests to shake out flaky interleavings).
// ---------------------------------------------------------------------------

TEST(ShardedSubmitBatchTest, TicketMatchesSynchronousQueryBatch) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 89);
  std::unique_ptr<ShardedRoutingService> service =
      MustCreateSharded(std::move(g), /*z=*/8, /*num_shards=*/2);
  ASSERT_TRUE(service != nullptr);

  std::vector<RouteRequest> requests = {MakeRequest(0, 29, kBackendKspDg, 4),
                                      MakeRequest(3, 21, kBackendYen, 3)};
  Result<RouteBatchResponse> sync = service->QueryBatch(requests);
  ASSERT_TRUE(sync.ok());

  std::atomic<int> callbacks{0};
  BatchTicket ticket = service->SubmitBatch(
      requests, [&](const Result<RouteBatchResponse>& outcome) {
        EXPECT_TRUE(outcome.ok());
        callbacks.fetch_add(1);
      });
  ASSERT_TRUE(ticket.valid());
  const Result<RouteBatchResponse>& outcome = ticket.Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(ticket.Ready());
  // The callback fires after the ticket is fulfilled, so Wait() returning
  // does not imply it ran yet; poll briefly.
  while (callbacks.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(callbacks.load(), 1);
  ASSERT_EQ(outcome.value().items.size(), requests.size());
  EXPECT_EQ(outcome.value().num_ok, requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectIdenticalPaths(outcome.value().items[i].response.paths,
                         sync.value().items[i].response.paths,
                         "async vs sync item " + std::to_string(i));
  }
}

TEST(ShardedSubmitBatchTest, ConcurrentSubmitAndTrafficStayUniform) {
  Graph g = MakeRandomConnected(40, 50, 1, 1, 97);  // all weights 1
  const size_t num_edges = g.NumEdges();
  std::unique_ptr<ShardedRoutingService> service = MustCreateSharded(
      std::move(g), /*z=*/10, /*num_shards=*/3, /*apply_threads=*/2);
  ASSERT_TRUE(service != nullptr);

  constexpr uint64_t kBatches = 8;
  auto level = [](uint64_t epoch) {
    return 1.0 + 0.25 * static_cast<double>(epoch);
  };

  std::atomic<bool> done{false};
  std::atomic<size_t> checks{0};
  std::atomic<size_t> failures{0};

  // Producer: pipeline async batches (several tickets in flight) while the
  // main thread applies uniform-weight traffic batches.
  std::thread producer([&] {
    const char* backends[] = {kBackendKspDg, kBackendYen, kBackendFindKsp};
    std::vector<BatchTicket> inflight;
    size_t i = 1;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<RouteRequest> requests;
      for (size_t r = 0; r < 6; ++r) {
        VertexId s = static_cast<VertexId>((i * 7 + r * 11) % 40);
        VertexId t = static_cast<VertexId>((i * 13 + r * 17 + 19) % 40);
        if (s == t) continue;
        requests.push_back(MakeRequest(s, t, backends[(i + r) % 3], 4));
      }
      ++i;
      inflight.push_back(service->SubmitBatch(std::move(requests)));
      if (inflight.size() < 3) continue;  // keep a few tickets in flight
      const Result<RouteBatchResponse>& outcome = inflight.front().Wait();
      if (!outcome.ok()) {
        failures.fetch_add(1);
      } else {
        const RouteBatchResponse& b = outcome.value();
        const double w = level(b.epoch);
        for (const RouteBatchItem& item : b.items) {
          if (!item.status.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (item.response.epoch != b.epoch) failures.fetch_add(1);
          for (const Path& p : item.response.paths) {
            const double want = w * static_cast<double>(p.NumEdges());
            if (std::abs(p.distance - want) > 1e-6 * (1.0 + want)) {
              failures.fetch_add(1);
            }
            checks.fetch_add(1);
          }
        }
      }
      inflight.erase(inflight.begin());
    }
    for (const BatchTicket& ticket : inflight) ticket.Wait();
  });

  for (uint64_t batch = 1; batch <= kBatches; ++batch) {
    std::vector<WeightUpdate> updates;
    updates.reserve(num_edges);
    const double w = level(batch);
    for (EdgeId e = 0; e < num_edges; ++e) updates.push_back({e, w, w});
    Result<TrafficBatchResult> applied = service->ApplyTrafficBatch(updates);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied.value().epoch, batch);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  producer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(checks.load(), 0u) << "producer never overlapped the updates";
  EXPECT_EQ(service->CurrentEpoch(), kBatches);
}

// ---------------------------------------------------------------------------
// Bench shard phase.
// ---------------------------------------------------------------------------

TEST(BenchRunnerTest, ShardPhaseReportsParity) {
  BenchOptions options;
  options.dataset = "NY-S";
  options.target_vertices = 256;
  options.queries_per_backend = 5;
  options.num_batches = 2;
  options.query_threads = 2;
  options.k = 3;
  options.z = 32;
  options.shards = 2;
  Result<BenchReport> report = RunMixedBench(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ShardPhaseStats& shard = report.value().shard;
  EXPECT_EQ(shard.num_shards, 2u);
  EXPECT_EQ(shard.requests, 15u);  // 5 queries x 3 default backends
  EXPECT_EQ(shard.errors, 0u);
  EXPECT_EQ(shard.mismatches, 0u);
  EXPECT_EQ(shard.batches_applied, 2u);
  EXPECT_EQ(shard.final_epoch, 2u);
  EXPECT_GT(shard.direct_partials + shard.scattered_partials, 0u);
  EXPECT_GT(shard.single_shard_queries + shard.cross_shard_queries, 0u);
  EXPECT_GE(shard.max_subgraphs_per_shard, shard.min_subgraphs_per_shard);
  EXPECT_GT(shard.sharded_qps, 0.0);
  EXPECT_GT(shard.unsharded_qps, 0.0);
  std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"num_shards\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mismatches\": 0"), std::string::npos);
}

TEST(BenchRunnerTest, ShardBatchPhaseReportsParity) {
  BenchOptions options;
  options.dataset = "NY-S";
  options.target_vertices = 256;
  options.queries_per_backend = 5;
  options.num_batches = 2;
  options.query_threads = 2;
  options.k = 3;
  options.z = 32;
  options.shards = 2;
  options.batch_size = 4;
  Result<BenchReport> report = RunMixedBench(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ShardBatchPhaseStats& combined = report.value().shard_batch;
  EXPECT_EQ(combined.num_shards, 2u);
  EXPECT_EQ(combined.batch_size, 4u);
  EXPECT_EQ(combined.requests, 15u);  // 5 queries x 3 default backends
  EXPECT_EQ(combined.batches_submitted, 4u);  // ceil(15 / 4)
  EXPECT_EQ(combined.errors, 0u);
  EXPECT_EQ(combined.mismatches, 0u);
  EXPECT_EQ(combined.non_uniform_batches, 0u);
  EXPECT_GT(combined.direct_partials + combined.scattered_partials, 0u);
  EXPECT_GT(combined.sharded_batch_qps, 0.0);
  EXPECT_GT(combined.unsharded_sequential_qps, 0.0);
  std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"shard_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"batches_submitted\": 4"), std::string::npos);
}

// The admission surface is part of the shared serving contract: the
// sharded service answers deadline/quota pressure exactly like the plain
// one and exports the same admission series names, readable through the
// same AdmissionCountersFrom view.
TEST(ShardedRoutingServiceTest, AdmissionSeriesMatchThePlainService) {
  Graph g = MakeRandomConnected(30, 38, 1, 9, 101);
  ShardedRoutingServiceOptions options;
  options.dtlp.partition.max_vertices = 10;
  options.num_shards = 2;
  options.per_tenant_quota = 1;
  Result<std::unique_ptr<ShardedRoutingService>> service_or =
      ShardedRoutingService::Create(std::move(g), std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  std::unique_ptr<ShardedRoutingService> service =
      std::move(service_or).value();

  RouteRequest expired = MakeRequest(0, 29, kBackendYen, 3);
  expired.context.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  Result<RouteResponse> response = service->Query(expired);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(service->Query(MakeRequest(0, 29, kBackendYen, 3)).ok());

  // Quota shed through the shared SubmitBatch seam: park the submission
  // worker inside the first batch's callback so the tenant's next envelope
  // stays pending, then exceed the quota.
  std::mutex gate;
  gate.lock();
  std::atomic<bool> parked{false};
  BatchTicket first = service->SubmitBatch(
      {MakeRequest(3, 21, kBackendYen, 3)},
      [&](const Result<RouteBatchResponse>&) {
        parked.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> guard(gate);
      });
  while (!parked.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<RouteRequest> pending = {MakeRequest(3, 21, kBackendYen, 3)};
  pending.front().context.tenant_id = "acme";
  BatchTicket second = service->SubmitBatch(pending);
  std::vector<RouteRequest> over = {MakeRequest(5, 19, kBackendYen, 3)};
  over.front().context.tenant_id = "acme";
  BatchTicket third = service->SubmitBatch(over);
  const Result<RouteBatchResponse>& shed = third.Wait();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  ASSERT_EQ(shed.value().items.size(), 1u);
  EXPECT_EQ(shed.value().items.front().status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.value().items.front().admission,
            AdmissionOutcome::kShedQuota);
  gate.unlock();
  ASSERT_TRUE(first.Wait().ok());
  ASSERT_TRUE(second.Wait().ok());

  // Same series names as RoutingService (AdmissionCountersFrom reads the
  // exact admission_* totals), same accounting.
  AdmissionCounters counters = AdmissionCountersFrom(service->Metrics());
  EXPECT_EQ(counters.admitted, 3u);  // ok query + first + second batches
  EXPECT_EQ(counters.shed_deadline, 1u);
  EXPECT_EQ(counters.shed_quota, 1u);
}

}  // namespace
}  // namespace kspdg
