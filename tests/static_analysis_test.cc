// Tests for the static-analysis layer (see docs/STATIC_ANALYSIS.md):
//
//  1. The annotated core wrappers (core/mutex.h, core/epoch_lock.h) really
//     behave like the raw primitives they replace — exclusion, signaling,
//     shared access, early release.
//  2. The runtime lock-order checker (core/lock_order.h) aborts on an
//     A->B / B->A inversion and stays quiet on consistent orders and on
//     same-name sibling locks. Compiled only under KSPDG_CHECK_LOCK_ORDER
//     (the asan CI leg); skipped elsewhere.
//  3. tools/kspdg_lint.py is self-tested against the known-bad fixture
//     trees in tests/lint_fixtures/ — the linter must flag each one and
//     pass both the real tree and the suppression fixture.
//
// Raw std::thread use in this file is fine: the raw-primitives lint rule
// covers src/ and tools/, not tests.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/epoch_lock.h"
#include "core/lock_order.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace kspdg {
namespace {

// ---------------------------------------------------------------------------
// 1. Wrapper semantics.
// ---------------------------------------------------------------------------

TEST(MutexWrapperTest, MutexLockProvidesExclusion) {
  Mutex mu("sa_test::exclusion");
  int counter = 0;  // guarded by mu (GUARDED_BY applies to members only)
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock guard(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock guard(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexWrapperTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu("sa_test::trylock");
  mu.Lock();
  std::atomic<bool> acquired{false};
  std::thread other([&] { acquired.store(mu.TryLock()); });
  other.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  std::thread retry([&] {
    acquired.store(mu.TryLock());
    if (acquired.load()) mu.Unlock();
  });
  retry.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MutexWrapperTest, MutexLockEarlyUnlockAndRelock) {
  Mutex mu("sa_test::early_unlock");
  bool flag = false;  // guarded by mu
  MutexLock guard(mu);
  flag = true;
  guard.Unlock();
  // The lock is free here: another thread can take it.
  std::atomic<bool> other_got_it{false};
  std::thread other([&] {
    MutexLock inner(mu);
    other_got_it.store(true);
  });
  other.join();
  EXPECT_TRUE(other_got_it.load());
  guard.Lock();
  EXPECT_TRUE(flag);
}  // dtor releases the re-taken lock

TEST(MutexWrapperTest, CondVarSignalsUnderWrapperMutex) {
  Mutex mu("sa_test::condvar");
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::atomic<bool> observed{false};
  std::thread waiter([&] {
    MutexLock guard(mu);
    while (!ready) cv.Wait(mu);
    observed.store(true);
  });
  {
    MutexLock guard(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed.load());
}

TEST(SharedMutexWrapperTest, AdmitsConcurrentReaders) {
  SharedMutex mu("sa_test::shared");
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      ReaderMutexLock guard(mu);
      inside.fetch_add(1);
      // Spin briefly so the two shared holds overlap.
      for (int spin = 0; spin < 1000 && inside.load() < 2; ++spin) {
        std::this_thread::yield();
      }
      if (inside.load() == 2) both_seen.store(true);
      inside.fetch_sub(1);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(both_seen.load()) << "two shared holds never overlapped";
}

TEST(SharedMutexWrapperTest, WriterExcludesReaders) {
  SharedMutex mu("sa_test::shared_writer");
  int value = 0;  // guarded by mu
  std::atomic<bool> writer_done{false};
  std::atomic<bool> reader_saw_done{false};
  std::thread reader;
  {
    WriterMutexLock guard(mu);
    reader = std::thread([&] {
      // Blocks until the writer releases, so it must observe writer_done.
      ReaderMutexLock inner(mu);
      reader_saw_done.store(writer_done.load());
    });
    value = 42;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    writer_done.store(true);
  }
  reader.join();
  EXPECT_TRUE(reader_saw_done.load());
  ReaderMutexLock guard(mu);
  EXPECT_EQ(value, 42);
}

TEST(EpochLockGuardTest, OwnsLockTracksEarlyUnlock) {
  EpochLock lock("sa_test::epoch");
  {
    EpochWriterLock writer(lock);
    EXPECT_TRUE(writer.owns_lock());
    writer.Unlock();
    EXPECT_FALSE(writer.owns_lock());
    // The lock is free again: a reader may pin it.
    EpochReaderLock reader(lock);
    EXPECT_TRUE(reader.owns_lock());
  }
  // Both guards released; an exclusive hold must succeed immediately.
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ---------------------------------------------------------------------------
// 2. Lock-order checker.
// ---------------------------------------------------------------------------

#ifdef KSPDG_CHECK_LOCK_ORDER

TEST(LockOrderDeathTest, AbortsOnInversion) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The whole sequence runs in the death-test child so the poisoned edges
  // never enter this process's order graph.
  EXPECT_DEATH(
      {
        Mutex a("sa_death::A");
        Mutex b("sa_death::B");
        {  // Establish A -> B.
          MutexLock la(a);
          MutexLock lb(b);
        }
        {  // B -> A closes the cycle: abort on acquiring A.
          MutexLock lb(b);
          MutexLock la(a);
        }
      },
      "lock order inversion");
}

TEST(LockOrderTest, ConsistentOrderIsQuiet) {
  Mutex a("sa_order::A");
  Mutex b("sa_order::B");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  // Same order again on another thread: still fine.
  std::thread t([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t.join();
}

TEST(LockOrderTest, SameNameSiblingsAreNotOrdered) {
  // The per-shard pattern: many instances sharing one role name may be
  // held together in any order (readers pin siblings concurrently).
  Mutex s0("sa_order::shard");
  Mutex s1("sa_order::shard");
  {
    MutexLock l0(s0);
    MutexLock l1(s1);
  }
  {
    MutexLock l1(s1);
    MutexLock l0(s0);
  }
}

TEST(LockOrderTest, CvWaitKeepsMutexInHeldStack) {
  // A cv wait releases and reacquires the mutex internally; the checker
  // must treat the hold as continuous (no spurious edge churn, no abort).
  Mutex outer("sa_order::outer");
  Mutex inner("sa_order::inner");
  CondVar cv;
  bool ready = false;  // guarded by inner
  std::thread signaller([&] {
    MutexLock guard(inner);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lo(outer);
    MutexLock li(inner);
    while (!ready) cv.Wait(inner);
  }
  signaller.join();
  // outer -> inner is now established; repeating it must stay quiet.
  MutexLock lo(outer);
  MutexLock li(inner);
}

#else  // !KSPDG_CHECK_LOCK_ORDER

TEST(LockOrderDeathTest, AbortsOnInversion) {
  GTEST_SKIP() << "built without KSPDG_CHECK_LOCK_ORDER";
}

#endif  // KSPDG_CHECK_LOCK_ORDER

// ---------------------------------------------------------------------------
// 3. Linter self-test against the fixture trees.
// ---------------------------------------------------------------------------

#ifndef KSPDG_SOURCE_DIR
#error "CMake must define KSPDG_SOURCE_DIR for static_analysis_test"
#endif

int RunLint(const std::string& root) {
  std::string cmd = std::string("python3 ") + KSPDG_SOURCE_DIR +
                    "/tools/kspdg_lint.py --root " + root + " > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  return rc;
}

bool HavePython() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

class LintSelfTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!HavePython()) GTEST_SKIP() << "python3 not available";
  }
};

TEST_F(LintSelfTest, RealTreeIsClean) {
  EXPECT_EQ(RunLint(KSPDG_SOURCE_DIR), 0)
      << "tools/kspdg_lint.py flags the checked-in tree";
}

TEST_F(LintSelfTest, FlagsEveryBadFixture) {
  const char* fixtures[] = {
      "bad_raw_mutex",
      "bad_raw_thread",
      "bad_wire",
      "bad_metric_case",
      "bad_metric_total",
      "bad_nodiscard_discard",
      "bad_nodiscard_missing",
  };
  for (const char* fixture : fixtures) {
    std::string root =
        std::string(KSPDG_SOURCE_DIR) + "/tests/lint_fixtures/" + fixture;
    EXPECT_NE(RunLint(root), 0) << fixture << " was not flagged";
  }
}

TEST_F(LintSelfTest, SuppressionCommentsAreHonored) {
  std::string root =
      std::string(KSPDG_SOURCE_DIR) + "/tests/lint_fixtures/good_suppressed";
  EXPECT_EQ(RunLint(root), 0) << "allow() comments were not honored";
}

}  // namespace
}  // namespace kspdg
