#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json artifacts emitted by kspdg_bench.

Replaces the inline heredoc validators that used to live in
.github/workflows/ci.yml, so the gate is runnable locally:

    scripts/validate_bench.py BENCH_smoke.json
    scripts/validate_bench.py BENCH_shard_batch.json \
        --check 'shard_batch.mismatches==0' --check 'shard_batch.errors==0'

Every file is validated STRICTLY against the schema of BenchReport::ToJson
(src/workload/bench_runner.cc): every known field must be present with the
right JSON type, and unknown fields fail the check — if you add a field to
ToJson, teach this validator (and docs/BENCHMARKING.md) about it in the same
change.

--check expressions are dotted paths into the report compared with one of
==, !=, >=, <=, >, < against either a numeric literal or another dotted
path (applied to every FILE given), e.g.
'metrics.mixed.queries_total==metrics.mixed.issued_requests'. Exit status
is non-zero on any failure.

--baseline PREV.json compares every FILE's throughput against a previous
report: for each phase whose workload matches the baseline's (same dataset,
graph size, k, and the phase's own shape — shards, batch size, request
count), every qps field may not regress by more than --max-regression
(default 0.20, i.e. 20%). Phases with a different workload are skipped —
qps at different workloads is not comparable — but if NO phase is
comparable the check fails, so a silently drifted workload cannot disarm
the gate.
"""

import argparse
import json
import re
import sys

NUM = (int, float)  # ToJson prints micros/qps with decimals, counters without

# --- the BENCH report schema (mirrors BenchReport::ToJson exactly) ---------

BATCH_SCHEMA = {
    "batch_size": int,
    "requests": int,
    "errors": int,
    "non_uniform_batches": int,
    "sequential_micros": NUM,
    "batch_micros": NUM,
    "sequential_qps": NUM,
    "batch_qps": NUM,
    "speedup": NUM,
}

DIVERSE_SCHEMA = {
    "requests": int,
    "errors": int,
    "k": int,
    "overfetch": int,
    "theta": NUM,
    "candidates_total": int,
    "kept_total": int,
    "filtered_total": int,
    "kept_min": int,
    "kept_max": int,
    "mean_pairwise_similarity": NUM,
    "max_pairwise_similarity": NUM,
    "ep_raw_entries": int,
    "ep_path_nodes": int,
    "mfp_compression_ratio": NUM,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "plain_micros": NUM,
    "diverse_micros": NUM,
    "plain_qps": NUM,
    "diverse_qps": NUM,
    "overhead": NUM,
}

SHARD_SCHEMA = {
    "num_shards": int,
    "requests": int,
    "diverse_requests": int,
    "errors": int,
    "mismatches": int,
    "batches_applied": int,
    "final_epoch": int,
    "direct_partials": int,
    "scattered_partials": int,
    "single_shard_queries": int,
    "cross_shard_queries": int,
    "min_subgraphs_per_shard": int,
    "max_subgraphs_per_shard": int,
    "sharded_micros": NUM,
    "unsharded_micros": NUM,
    "sharded_qps": NUM,
    "unsharded_qps": NUM,
}

SHARD_BATCH_SCHEMA = {
    "num_shards": int,
    "batch_size": int,
    "requests": int,
    "batches_submitted": int,
    "errors": int,
    "mismatches": int,
    "non_uniform_batches": int,
    "partial_cache_hits": int,
    "direct_partials": int,
    "scattered_partials": int,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "sharded_batch_micros": NUM,
    "unsharded_sequential_micros": NUM,
    "sharded_batch_qps": NUM,
    "unsharded_sequential_qps": NUM,
    "speedup": NUM,
}

REMOTE_SHARD_SCHEMA = {
    "num_shards": int,
    "num_replicas": int,
    "requests": int,
    "diverse_requests": int,
    "batch_size": int,
    "batches_submitted": int,
    "errors": int,
    "mismatches": int,
    "batches_applied": int,
    "final_epoch": int,
    "rpc_calls": int,
    "rpc_retries": int,
    "rpc_deadline_expired": int,
    "worker_restarts": int,
    "replica_catchups": int,
    "reads_by_replica": list,  # one read-count per (shard, replica) worker
    "baseline_r1_qps": NUM,
    "failover_requests": int,
    "failover_errors": int,
    "failover_mismatches": int,
    "partial_cache_hits": int,
    "partial_cache_skips": int,
    "direct_partials": int,
    "scattered_partials": int,
    "remote_micros": NUM,
    "remote_batch_micros": NUM,
    "inprocess_micros": NUM,
    "remote_qps": NUM,
    "remote_batch_qps": NUM,
    "inprocess_qps": NUM,
}

# Per-priority slice of the overload phase: one object each for the
# "interactive" / "normal" / "batch" keys of overload.per_priority.
OVERLOAD_PRIORITY_SCHEMA = {
    "issued": int,
    "served": int,
    "shed_deadline": int,
    "shed_quota": int,
    "errors": int,
    "goodput_qps": NUM,
    "p50_micros": NUM,
    "p99_micros": NUM,
}

# Open-loop overload phase (--overload-factor F): the harness offers F x the
# measured capacity with mixed priorities/deadlines/tenants and partitions
# every request into admitted / shed_deadline / shed_quota ("accounted" is
# their precomputed sum because --check cannot add paths). registry_* are
# the AdmissionCounters deltas from the service's own metrics registry; CI
# cross-checks them against the harness tallies.
OVERLOAD_SCHEMA = {
    "factor": NUM,
    "requests": int,
    "queue_capacity": int,
    "per_tenant_quota": int,
    "num_tenants": int,
    "capacity_qps": NUM,
    "offered_qps": NUM,
    "admitted": int,
    "shed_deadline": int,
    "shed_quota": int,
    "accounted": int,
    "errors": int,
    "mismatches": int,
    "registry_admitted": int,
    "registry_shed_deadline": int,
    "registry_shed_quota": int,
    "elapsed_micros": NUM,
    "goodput_qps": NUM,
    "interactive_goodput_qps": NUM,
    "batch_goodput_qps": NUM,
    "interactive_p99_micros": NUM,
    "batch_p99_micros": NUM,
    "per_priority": {
        "interactive": OVERLOAD_PRIORITY_SCHEMA,
        "normal": OVERLOAD_PRIORITY_SCHEMA,
        "batch": OVERLOAD_PRIORITY_SCHEMA,
    },
}

# Registry cross-check: each phase pairs what the harness issued with what
# the service's metrics registry accounted for (queries_total must equal
# issued_requests on a healthy run — CI asserts this via --check).
MIXED_METRICS_SCHEMA = {
    "issued_requests": int,
    "queries_total": int,
    "queries_rejected_total": int,
}

SHARD_BATCH_METRICS_SCHEMA = dict(MIXED_METRICS_SCHEMA, partial_cache_hits=int)

REMOTE_SHARD_METRICS_SCHEMA = dict(
    SHARD_BATCH_METRICS_SCHEMA, worker_snapshots=int
)

METRICS_SCHEMA = {
    "mixed": MIXED_METRICS_SCHEMA,
    "shard_batch": SHARD_BATCH_METRICS_SCHEMA,
    "remote_shard": REMOTE_SHARD_METRICS_SCHEMA,
}

BACKEND_SCHEMA = {
    "backend": str,
    "queries": int,
    "errors": int,
    "paths_returned": int,
    "total_micros": NUM,
    "mean_micros": NUM,
    "max_micros": NUM,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "min_epoch": int,
    "max_epoch": int,
    "engine_iterations": int,
}

TOP_SCHEMA = {
    "dataset": str,
    "num_vertices": int,
    "num_edges": int,
    "num_subgraphs": int,
    "k": int,
    "index_build_micros": NUM,
    "batches_applied": int,
    "batch_errors": int,
    "updates_applied": int,
    "update_total_micros": NUM,
    "update_p50_micros": NUM,
    "update_p95_micros": NUM,
    "update_p99_micros": NUM,
    "cands_subgraphs_rebuilt": int,
    "cands_pair_paths_recomputed": int,
    "cands_rebuild_micros": NUM,
    "final_epoch": int,
    "batch": BATCH_SCHEMA,
    "diverse": DIVERSE_SCHEMA,
    "shard": SHARD_SCHEMA,
    "shard_batch": SHARD_BATCH_SCHEMA,
    "remote_shard": REMOTE_SHARD_SCHEMA,
    "overload": OVERLOAD_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "backends": BACKEND_SCHEMA,  # list of objects
}


def type_name(expected):
    if expected is NUM:
        return "number"
    if isinstance(expected, tuple):
        return "/".join(t.__name__ for t in expected)
    return expected.__name__


def check_object(obj, schema, where, failures):
    if not isinstance(obj, dict):
        failures.append(f"{where}: expected an object, got {type(obj).__name__}")
        return
    for key in sorted(set(obj) - set(schema)):
        failures.append(
            f"{where}.{key}: unknown field (update scripts/validate_bench.py"
            " and docs/BENCHMARKING.md when adding BENCH fields)"
        )
    for key, expected in schema.items():
        if key not in obj:
            failures.append(f"{where}.{key}: missing field")
            continue
        value = obj[key]
        if isinstance(expected, dict):
            if key == "backends":  # handled by caller
                continue
            check_object(value, expected, f"{where}.{key}", failures)
        elif expected is list:
            if not isinstance(value, list) or any(
                not isinstance(v, int) or isinstance(v, bool) for v in value
            ):
                failures.append(
                    f"{where}.{key}: expected an array of integers,"
                    f" got {json.dumps(value)}"
                )
        elif not isinstance(value, expected) or isinstance(value, bool):
            failures.append(
                f"{where}.{key}: expected {type_name(expected)},"
                f" got {json.dumps(value)}"
            )


def validate_report(report, where, failures):
    check_object(report, TOP_SCHEMA, where, failures)
    if not isinstance(report, dict):
        return
    backends = report.get("backends")
    if not isinstance(backends, list) or not backends:
        failures.append(f"{where}.backends: must be a non-empty array")
        return
    for i, backend in enumerate(backends):
        check_object(backend, BACKEND_SCHEMA, f"{where}.backends[{i}]", failures)


# RHS is a numeric literal or another dotted path (a path never starts with
# a digit or '-', so the two alternatives cannot collide).
CHECK_RE = re.compile(
    r"^([A-Za-z0-9_.\[\]]+?)\s*(==|!=|>=|<=|>|<)"
    r"\s*(-?[0-9.]+|[A-Za-z_][A-Za-z0-9_.\[\]]*)$"
)

NUMBER_RE = re.compile(r"-?[0-9.]+")

OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def lookup(report, path):
    node = report
    for part in path.split("."):
        match = re.fullmatch(r"([A-Za-z0-9_]+)(?:\[(\d+)\])?", part)
        if match is None:
            raise KeyError(part)
        node = node[match.group(1)]
        if match.group(2) is not None:
            node = node[int(match.group(2))]
    return node


def run_check(report, where, expr, failures):
    match = CHECK_RE.match(expr)
    if match is None:
        failures.append(f"--check {expr!r}: cannot parse (PATH OP NUMBER|PATH)")
        return
    path, op, rhs = match.groups()

    def resolve(p):
        try:
            value = lookup(report, p)
        except (KeyError, IndexError, TypeError):
            failures.append(f"{where}: --check {expr!r}: no field {p!r}")
            return None
        if not isinstance(value, NUM) or isinstance(value, bool):
            failures.append(f"{where}: --check {expr!r}: {p} is not numeric")
            return None
        return value

    value = resolve(path)
    if value is None:
        return
    if NUMBER_RE.fullmatch(rhs):
        want = float(rhs) if "." in rhs else int(rhs)
    else:
        want = resolve(rhs)
        if want is None:
            return
    if not OPS[op](value, want):
        failures.append(
            f"{where}: check failed: {path} = {value}, wanted {op} {rhs}"
            + (f" (= {want})" if not NUMBER_RE.fullmatch(rhs) else "")
        )


# --- baseline comparison ---------------------------------------------------

# qps fields per phase, compared only when the phase's workload keys all
# match the baseline (same shape => comparable throughput).
PHASE_QPS_FIELDS = {
    "batch": ["sequential_qps", "batch_qps"],
    "diverse": ["plain_qps", "diverse_qps"],
    "shard": ["sharded_qps", "unsharded_qps"],
    "shard_batch": ["sharded_batch_qps", "unsharded_sequential_qps"],
    "remote_shard": ["remote_qps", "remote_batch_qps", "inprocess_qps"],
    # capacity_qps is measured, not offered, so only the no-pressure
    # reference throughput is baseline-gated; shed-heavy goodput depends on
    # the offered factor and is asserted via --check instead.
    "overload": ["capacity_qps"],
}

PHASE_WORKLOAD_KEYS = {
    "batch": ["batch_size", "requests"],
    "diverse": ["requests", "k", "overfetch"],
    "shard": ["num_shards", "requests"],
    "shard_batch": ["num_shards", "batch_size", "requests"],
    # num_replicas is part of the shape: a replicated run also pays for the
    # R=1 baseline fleet and the failover drill, so its qps is only
    # comparable against another run at the same replica count.
    "remote_shard": ["num_shards", "num_replicas", "batch_size", "requests"],
    "overload": ["factor", "requests", "queue_capacity", "per_tenant_quota"],
}


def compare_baseline(report, baseline, where, max_regression, failures):
    """Fails on any qps field more than max_regression below the baseline
    at equal workload; fails if nothing was comparable at all."""
    for key in ("dataset", "num_vertices", "num_edges", "k"):
        if report.get(key) != baseline.get(key):
            failures.append(
                f"{where}: baseline not comparable: {key} is"
                f" {json.dumps(report.get(key))} vs baseline"
                f" {json.dumps(baseline.get(key))}"
            )
            return
    compared = 0
    floor = 1.0 - max_regression

    def check_qps(path, current, base):
        nonlocal compared
        if (
            not isinstance(current, NUM)
            or not isinstance(base, NUM)
            or isinstance(current, bool)
            or isinstance(base, bool)
            or base <= 0
        ):
            return
        compared += 1
        if current < base * floor:
            failures.append(
                f"{where}: qps regression: {path} = {current:.1f} vs"
                f" baseline {base:.1f}"
                f" ({(1.0 - current / base) * 100.0:.1f}% drop,"
                f" allowed {max_regression * 100.0:.0f}%)"
            )

    # Per-backend throughput of the mixed phase (equal query counts and an
    # error-free run on both sides required for comparability).
    base_backends = {
        b.get("backend"): b
        for b in baseline.get("backends", [])
        if isinstance(b, dict)
    }
    for b in report.get("backends", []):
        if not isinstance(b, dict):
            continue
        base = base_backends.get(b.get("backend"))
        if (
            base is None
            or b.get("queries") != base.get("queries")
            or b.get("errors") != 0
            or base.get("errors") != 0
        ):
            continue
        cur_micros = b.get("total_micros")
        base_micros = base.get("total_micros")
        if (
            isinstance(cur_micros, NUM)
            and isinstance(base_micros, NUM)
            and cur_micros > 0
            and base_micros > 0
        ):
            check_qps(
                f"backends[{b['backend']}].qps",
                b["queries"] / (cur_micros / 1e6),
                base["queries"] / (base_micros / 1e6),
            )

    for phase, qps_fields in PHASE_QPS_FIELDS.items():
        current = report.get(phase)
        base = baseline.get(phase)
        if not isinstance(current, dict) or not isinstance(base, dict):
            continue
        if current.get("requests", 0) == 0:
            continue  # phase did not run
        if any(
            current.get(k) != base.get(k) for k in PHASE_WORKLOAD_KEYS[phase]
        ):
            continue  # different workload: not comparable
        for field in qps_fields:
            check_qps(f"{phase}.{field}", current.get(field), base.get(field))

    if compared == 0:
        failures.append(
            f"{where}: baseline check compared nothing — no phase ran at the"
            " baseline's workload (dataset/size/k/shape must match)"
        )


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument(
        "--check",
        action="append",
        default=[],
        metavar="EXPR",
        help="dotted-path assertion, e.g. 'shard_batch.mismatches==0'",
    )
    parser.add_argument(
        "--baseline",
        metavar="PREV.json",
        help="previous BENCH report; fail if any qps field at an equal "
        "workload regresses by more than --max-regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        metavar="FRAC",
        help="allowed fractional qps drop vs --baseline (default 0.20)",
    )
    args = parser.parse_args(argv)

    failures = []
    baseline = None
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"--baseline {args.baseline}: {err}")
        if baseline is not None and not isinstance(baseline, dict):
            failures.append(f"--baseline {args.baseline}: not a JSON object")
            baseline = None
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            failures.append(f"{path}: {err}")
            continue
        if not text.strip():
            failures.append(f"{path}: empty file")
            continue
        try:
            report = json.loads(text)
        except json.JSONDecodeError as err:
            failures.append(f"{path}: invalid JSON: {err}")
            continue
        validate_report(report, path, failures)
        for expr in args.check:
            run_check(report, path, expr, failures)
        if baseline is not None:
            compare_baseline(
                report, baseline, path, args.max_regression, failures
            )

    if failures:
        print("BENCH validation FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    checks = f", {len(args.check)} checks each" if args.check else ""
    print(f"BENCH validation OK: {len(args.files)} file(s){checks}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
