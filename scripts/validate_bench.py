#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json artifacts emitted by kspdg_bench.

Replaces the inline heredoc validators that used to live in
.github/workflows/ci.yml, so the gate is runnable locally:

    scripts/validate_bench.py BENCH_smoke.json
    scripts/validate_bench.py BENCH_shard_batch.json \
        --check 'shard_batch.mismatches==0' --check 'shard_batch.errors==0'

Every file is validated STRICTLY against the schema of BenchReport::ToJson
(src/workload/bench_runner.cc): every known field must be present with the
right JSON type, and unknown fields fail the check — if you add a field to
ToJson, teach this validator (and docs/BENCHMARKING.md) about it in the same
change.

--check expressions are dotted paths into the report compared against a
numeric literal with one of ==, !=, >=, <=, >, < (applied to every FILE
given). Exit status is non-zero on any failure.
"""

import argparse
import json
import re
import sys

NUM = (int, float)  # ToJson prints micros/qps with decimals, counters without

# --- the BENCH report schema (mirrors BenchReport::ToJson exactly) ---------

BATCH_SCHEMA = {
    "batch_size": int,
    "requests": int,
    "errors": int,
    "non_uniform_batches": int,
    "sequential_micros": NUM,
    "batch_micros": NUM,
    "sequential_qps": NUM,
    "batch_qps": NUM,
    "speedup": NUM,
}

DIVERSE_SCHEMA = {
    "requests": int,
    "errors": int,
    "k": int,
    "overfetch": int,
    "theta": NUM,
    "candidates_total": int,
    "kept_total": int,
    "filtered_total": int,
    "kept_min": int,
    "kept_max": int,
    "mean_pairwise_similarity": NUM,
    "max_pairwise_similarity": NUM,
    "ep_raw_entries": int,
    "ep_path_nodes": int,
    "mfp_compression_ratio": NUM,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "plain_micros": NUM,
    "diverse_micros": NUM,
    "plain_qps": NUM,
    "diverse_qps": NUM,
    "overhead": NUM,
}

SHARD_SCHEMA = {
    "num_shards": int,
    "requests": int,
    "diverse_requests": int,
    "errors": int,
    "mismatches": int,
    "batches_applied": int,
    "final_epoch": int,
    "direct_partials": int,
    "scattered_partials": int,
    "single_shard_queries": int,
    "cross_shard_queries": int,
    "min_subgraphs_per_shard": int,
    "max_subgraphs_per_shard": int,
    "sharded_micros": NUM,
    "unsharded_micros": NUM,
    "sharded_qps": NUM,
    "unsharded_qps": NUM,
}

SHARD_BATCH_SCHEMA = {
    "num_shards": int,
    "batch_size": int,
    "requests": int,
    "batches_submitted": int,
    "errors": int,
    "mismatches": int,
    "non_uniform_batches": int,
    "partial_cache_hits": int,
    "direct_partials": int,
    "scattered_partials": int,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "sharded_batch_micros": NUM,
    "unsharded_sequential_micros": NUM,
    "sharded_batch_qps": NUM,
    "unsharded_sequential_qps": NUM,
    "speedup": NUM,
}

BACKEND_SCHEMA = {
    "backend": str,
    "queries": int,
    "errors": int,
    "paths_returned": int,
    "total_micros": NUM,
    "mean_micros": NUM,
    "max_micros": NUM,
    "p50_micros": NUM,
    "p95_micros": NUM,
    "p99_micros": NUM,
    "min_epoch": int,
    "max_epoch": int,
    "engine_iterations": int,
}

TOP_SCHEMA = {
    "dataset": str,
    "num_vertices": int,
    "num_edges": int,
    "num_subgraphs": int,
    "k": int,
    "index_build_micros": NUM,
    "batches_applied": int,
    "batch_errors": int,
    "updates_applied": int,
    "update_total_micros": NUM,
    "update_p50_micros": NUM,
    "update_p95_micros": NUM,
    "update_p99_micros": NUM,
    "cands_subgraphs_rebuilt": int,
    "cands_pair_paths_recomputed": int,
    "cands_rebuild_micros": NUM,
    "final_epoch": int,
    "batch": BATCH_SCHEMA,
    "diverse": DIVERSE_SCHEMA,
    "shard": SHARD_SCHEMA,
    "shard_batch": SHARD_BATCH_SCHEMA,
    "backends": BACKEND_SCHEMA,  # list of objects
}


def type_name(expected):
    if expected is NUM:
        return "number"
    if isinstance(expected, tuple):
        return "/".join(t.__name__ for t in expected)
    return expected.__name__


def check_object(obj, schema, where, failures):
    if not isinstance(obj, dict):
        failures.append(f"{where}: expected an object, got {type(obj).__name__}")
        return
    for key in sorted(set(obj) - set(schema)):
        failures.append(
            f"{where}.{key}: unknown field (update scripts/validate_bench.py"
            " and docs/BENCHMARKING.md when adding BENCH fields)"
        )
    for key, expected in schema.items():
        if key not in obj:
            failures.append(f"{where}.{key}: missing field")
            continue
        value = obj[key]
        if isinstance(expected, dict):
            if key == "backends":  # handled by caller
                continue
            check_object(value, expected, f"{where}.{key}", failures)
        elif not isinstance(value, expected) or isinstance(value, bool):
            failures.append(
                f"{where}.{key}: expected {type_name(expected)},"
                f" got {json.dumps(value)}"
            )


def validate_report(report, where, failures):
    check_object(report, TOP_SCHEMA, where, failures)
    if not isinstance(report, dict):
        return
    backends = report.get("backends")
    if not isinstance(backends, list) or not backends:
        failures.append(f"{where}.backends: must be a non-empty array")
        return
    for i, backend in enumerate(backends):
        check_object(backend, BACKEND_SCHEMA, f"{where}.backends[{i}]", failures)


CHECK_RE = re.compile(r"^([A-Za-z0-9_.\[\]]+?)\s*(==|!=|>=|<=|>|<)\s*(-?[0-9.]+)$")

OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def lookup(report, path):
    node = report
    for part in path.split("."):
        match = re.fullmatch(r"([A-Za-z0-9_]+)(?:\[(\d+)\])?", part)
        if match is None:
            raise KeyError(part)
        node = node[match.group(1)]
        if match.group(2) is not None:
            node = node[int(match.group(2))]
    return node


def run_check(report, where, expr, failures):
    match = CHECK_RE.match(expr)
    if match is None:
        failures.append(f"--check {expr!r}: cannot parse (PATH OP NUMBER)")
        return
    path, op, literal = match.groups()
    try:
        value = lookup(report, path)
    except (KeyError, IndexError, TypeError):
        failures.append(f"{where}: --check {expr!r}: no field {path!r}")
        return
    if not isinstance(value, NUM) or isinstance(value, bool):
        failures.append(f"{where}: --check {expr!r}: {path} is not numeric")
        return
    want = float(literal) if "." in literal else int(literal)
    if not OPS[op](value, want):
        failures.append(f"{where}: check failed: {path} = {value}, wanted {op} {literal}")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument(
        "--check",
        action="append",
        default=[],
        metavar="EXPR",
        help="dotted-path assertion, e.g. 'shard_batch.mismatches==0'",
    )
    args = parser.parse_args(argv)

    failures = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            failures.append(f"{path}: {err}")
            continue
        if not text.strip():
            failures.append(f"{path}: empty file")
            continue
        try:
            report = json.loads(text)
        except json.JSONDecodeError as err:
            failures.append(f"{path}: invalid JSON: {err}")
            continue
        validate_report(report, path, failures)
        for expr in args.check:
            run_check(report, path, expr, failures)

    if failures:
        print("BENCH validation FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    checks = f", {len(args.check)} checks each" if args.check else ""
    print(f"BENCH validation OK: {len(args.files)} file(s){checks}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
