#!/usr/bin/env bash
# Documentation gate (the CI docs job):
#   1. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file (anchors stripped; external URLs skipped), and
#   2. every src/*/ subdirectory is mentioned in docs/ARCHITECTURE.md, so a
#      new subsystem cannot land undocumented.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import os
import re
import sys

failures = []

# --- 1. relative links resolve -------------------------------------------
doc_files = ["README.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md")
)
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for doc in doc_files:
    with open(doc, encoding="utf-8") as fh:
        text = fh.read()
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(os.path.dirname(doc), path))
        if not os.path.exists(resolved):
            failures.append(f"{doc}: broken link -> {target}")

# --- 2. every src subsystem appears in ARCHITECTURE.md -------------------
with open("docs/ARCHITECTURE.md", encoding="utf-8") as fh:
    architecture = fh.read()
subsystems = sorted(
    d for d in os.listdir("src") if os.path.isdir(os.path.join("src", d))
)
for subsystem in subsystems:
    if f"src/{subsystem}" not in architecture:
        failures.append(
            f"docs/ARCHITECTURE.md: subsystem src/{subsystem}/ is not"
            " documented (mention it in the layer diagram or a subsystem"
            " paragraph)"
        )

if failures:
    print("documentation check FAILED:", file=sys.stderr)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    sys.exit(1)
print(
    f"documentation check OK: {len(doc_files)} files linked cleanly,"
    f" {len(subsystems)} src/ subsystems documented"
)
EOF
