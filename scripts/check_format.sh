#!/usr/bin/env bash
# clang-format dry run over the first-party sources. Exits non-zero if any
# file needs reformatting; prints the offending files. Skipped (exit 0,
# with a notice) when clang-format is not installed.
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 0
fi

mapfile -t files < <(find src tests tools -name '*.cc' -o -name '*.h' | sort)

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror --style=Google "$f" >/dev/null 2>&1; then
    echo "needs format: $f"
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "run: clang-format -i --style=Google <files>" >&2
fi
exit "$bad"
